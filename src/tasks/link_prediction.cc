#include "src/tasks/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/random.h"
#include "src/matrix/vector_ops.h"

namespace pane {
namespace {

uint64_t PairKey(int64_t u, int64_t v, int64_t n) {
  return static_cast<uint64_t>(u) * static_cast<uint64_t>(n) +
         static_cast<uint64_t>(v);
}

}  // namespace

Result<LinkSplit> SplitEdges(const AttributedGraph& graph,
                             double holdout_fraction, uint64_t seed) {
  if (holdout_fraction <= 0.0 || holdout_fraction >= 1.0) {
    return Status::InvalidArgument("holdout_fraction must be in (0, 1)");
  }
  const int64_t n = graph.num_nodes();
  Rng rng(seed);

  // Collect edges; for undirected graphs keep each pair once (u < v).
  std::vector<std::pair<int64_t, int64_t>> edges;
  std::unordered_set<uint64_t> present;
  for (int64_t u = 0; u < n; ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      const int64_t v = row.cols[p];
      present.insert(PairKey(u, v, n));
      if (graph.undirected() && u > v) continue;
      edges.emplace_back(u, v);
    }
  }
  if (edges.size() < 4) {
    return Status::InvalidArgument("too few edges to split");
  }
  Shuffle(&edges, &rng);
  const int64_t holdout = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(edges.size()) *
                              holdout_fraction));

  LinkSplit split;
  GraphBuilder builder(n, graph.num_attributes());
  for (int64_t i = 0; i < static_cast<int64_t>(edges.size()); ++i) {
    const auto& [u, v] = edges[static_cast<size_t>(i)];
    if (i < holdout) {
      split.test_positives.emplace_back(u, v);
    } else if (graph.undirected()) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  for (int64_t v = 0; v < n; ++v) {
    const CsrMatrix::RowView row = graph.attributes().Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      builder.AddNodeAttribute(v, row.cols[p], row.vals[p]);
    }
    for (int32_t l : graph.labels()[static_cast<size_t>(v)]) {
      builder.AddLabel(v, l);
    }
  }
  PANE_ASSIGN_OR_RETURN(split.residual_graph, builder.Build(graph.undirected()));

  // Negatives: pairs with no edge in either direction in the full graph.
  split.test_negatives.reserve(split.test_positives.size());
  const uint64_t max_attempts =
      100 * static_cast<uint64_t>(split.test_positives.size()) + 1000;
  uint64_t attempts = 0;
  while (split.test_negatives.size() < split.test_positives.size() &&
         attempts++ < max_attempts) {
    const int64_t u =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int64_t v =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u == v) continue;
    if (present.count(PairKey(u, v, n)) > 0) continue;
    if (graph.undirected() && present.count(PairKey(v, u, n)) > 0) continue;
    split.test_negatives.emplace_back(u, v);
  }
  if (split.test_negatives.size() < split.test_positives.size()) {
    return Status::Internal("could not sample enough non-edges; graph dense");
  }
  return split;
}

AucAp EvaluateLinkPrediction(
    const LinkSplit& split,
    const std::function<double(int64_t, int64_t)>& score) {
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(split.test_positives.size() + split.test_negatives.size());
  labels.reserve(scores.capacity());
  for (const auto& [u, v] : split.test_positives) {
    scores.push_back(score(u, v));
    labels.push_back(1);
  }
  for (const auto& [u, v] : split.test_negatives) {
    scores.push_back(score(u, v));
    labels.push_back(0);
  }
  return ComputeAucAp(scores, labels);
}

double InnerProductScore(const DenseMatrix& embedding, int64_t u, int64_t v) {
  return Dot(embedding.Row(u), embedding.Row(v), embedding.cols());
}

double CosineScore(const DenseMatrix& embedding, int64_t u, int64_t v) {
  const int64_t k = embedding.cols();
  const double dot = Dot(embedding.Row(u), embedding.Row(v), k);
  const double nu = Norm2(embedding.Row(u), k);
  const double nv = Norm2(embedding.Row(v), k);
  if (nu == 0.0 || nv == 0.0) return 0.0;
  return dot / (nu * nv);
}

double HammingScore(const DenseMatrix& embedding, int64_t u, int64_t v) {
  const int64_t k = embedding.cols();
  const double* a = embedding.Row(u);
  const double* b = embedding.Row(v);
  int64_t mismatches = 0;
  for (int64_t i = 0; i < k; ++i) {
    mismatches += ((a[i] >= 0.0) != (b[i] >= 0.0));
  }
  return -static_cast<double>(mismatches);
}

double EdgeFeatureScore(const DenseMatrix& embedding,
                        const std::vector<double>& weights, int64_t u,
                        int64_t v) {
  const int64_t k = embedding.cols();
  const double* a = embedding.Row(u);
  const double* b = embedding.Row(v);
  double s = 0.0;
  for (int64_t i = 0; i < k; ++i) s += weights[static_cast<size_t>(i)] * a[i] * b[i];
  return s;
}

}  // namespace pane
