// Thin single-query wrappers over the serving engine's exact mode: one
// code path scores offline calls and served batches, so both return the
// same indices and bitwise the same scores under the deterministic
// (score desc, index asc) order of src/common/topk.h.
#include "src/tasks/ranking.h"

#include "src/common/logging.h"
#include "src/serve/query_engine.h"

namespace pane {

Ranking TopKAttributes(const PaneEmbedding& embedding, int64_t v, int64_t k,
                       const AttributedGraph* exclude) {
  PANE_CHECK(v >= 0 && v < embedding.num_nodes());
  PANE_CHECK(k > 0);
  serve::QueryEngineOptions options;
  options.precompute_link_gram = false;  // attribute-only: Z is not needed
  auto engine = serve::QueryEngine::Create(
      embedding.xf.View(), embedding.xb.View(), embedding.y.View(),
      ConstMatrixView(), options);
  PANE_CHECK(engine.ok()) << engine.status();
  return engine->TopKAttributes({{v, k}}, exclude)[0];
}

Ranking TopKTargets(const PaneEmbedding& embedding, const EdgeScorer& scorer,
                    int64_t u, int64_t k, const AttributedGraph* exclude) {
  PANE_CHECK(u >= 0 && u < embedding.num_nodes());
  PANE_CHECK(k > 0);
  // The scorer's precomputed Z = Xb (Y^T Y) is the scoring operand, so a
  // wrapped call costs no more than the historical loop.
  serve::QueryEngineOptions options;
  auto engine = serve::QueryEngine::Create(
      scorer.xf(), ConstMatrixView(), ConstMatrixView(), scorer.z(), options);
  PANE_CHECK(engine.ok()) << engine.status();
  return engine->TopKTargets({{u, k}}, exclude)[0];
}

}  // namespace pane
