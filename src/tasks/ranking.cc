#include "src/tasks/ranking.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pane {
namespace {

// Keeps the k best (index, score) pairs out of a scored stream.
Ranking SelectTopK(Ranking candidates, int64_t k) {
  const int64_t kk = std::min<int64_t>(k, static_cast<int64_t>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + kk,
                    candidates.end(), [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  candidates.resize(static_cast<size_t>(kk));
  return candidates;
}

}  // namespace

Ranking TopKAttributes(const PaneEmbedding& embedding, int64_t v, int64_t k,
                       const AttributedGraph* exclude) {
  PANE_CHECK(v >= 0 && v < embedding.num_nodes());
  PANE_CHECK(k > 0);
  Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_attributes()));
  for (int64_t r = 0; r < embedding.num_attributes(); ++r) {
    if (exclude != nullptr && exclude->attributes().At(v, r) != 0.0) continue;
    candidates.emplace_back(r, embedding.AttributeScore(v, r));
  }
  return SelectTopK(std::move(candidates), k);
}

Ranking TopKTargets(const PaneEmbedding& embedding, const EdgeScorer& scorer,
                    int64_t u, int64_t k, const AttributedGraph* exclude) {
  PANE_CHECK(u >= 0 && u < embedding.num_nodes());
  PANE_CHECK(k > 0);
  Ranking candidates;
  candidates.reserve(static_cast<size_t>(embedding.num_nodes()));
  for (int64_t v = 0; v < embedding.num_nodes(); ++v) {
    if (v == u) continue;
    if (exclude != nullptr && exclude->adjacency().At(u, v) != 0.0) continue;
    candidates.emplace_back(v, scorer.Score(u, v));
  }
  return SelectTopK(std::move(candidates), k);
}

}  // namespace pane
