#include "src/tasks/attribute_inference.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/random.h"

namespace pane {
namespace {

// Packs a (node, attribute) pair into one key for membership tests.
uint64_t PairKey(int64_t v, int64_t r, int64_t d) {
  return static_cast<uint64_t>(v) * static_cast<uint64_t>(d) +
         static_cast<uint64_t>(r);
}

}  // namespace

Result<AttributeSplit> SplitAttributes(const AttributedGraph& graph,
                                       double test_fraction, uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  const int64_t n = graph.num_nodes();
  const int64_t d = graph.num_attributes();
  const int64_t total = graph.num_attribute_entries();
  if (total < 4) {
    return Status::InvalidArgument("too few attribute entries to split");
  }
  Rng rng(seed);

  // Collect all entries, shuffle, split.
  struct Entry {
    int64_t v;
    int64_t r;
    double w;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(total));
  std::unordered_set<uint64_t> present;
  present.reserve(static_cast<size_t>(total) * 2);
  for (int64_t v = 0; v < n; ++v) {
    const CsrMatrix::RowView row = graph.attributes().Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      entries.push_back(Entry{v, row.cols[p], row.vals[p]});
      present.insert(PairKey(v, row.cols[p], d));
    }
  }
  Shuffle(&entries, &rng);
  const int64_t test_count = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(total) * test_fraction));

  AttributeSplit split;
  GraphBuilder builder(n, d);
  for (int64_t u = 0; u < n; ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) builder.AddEdge(u, row.cols[p]);
  }
  for (int64_t i = 0; i < total; ++i) {
    const Entry& e = entries[static_cast<size_t>(i)];
    if (i < test_count) {
      split.test_positives.emplace_back(e.v, e.r);
    } else {
      builder.AddNodeAttribute(e.v, e.r, e.w);
    }
  }
  for (int64_t v = 0; v < n; ++v) {
    for (int32_t l : graph.labels()[static_cast<size_t>(v)]) {
      builder.AddLabel(v, l);
    }
  }
  PANE_ASSIGN_OR_RETURN(split.train_graph, builder.Build(graph.undirected()));

  // Negatives: uniform (node, attribute) pairs not present in the full R.
  split.test_negatives.reserve(split.test_positives.size());
  const uint64_t max_attempts = 100 * static_cast<uint64_t>(test_count) + 1000;
  uint64_t attempts = 0;
  while (split.test_negatives.size() < split.test_positives.size() &&
         attempts++ < max_attempts) {
    const int64_t v =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int64_t r =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(d)));
    if (present.count(PairKey(v, r, d)) > 0) continue;
    split.test_negatives.emplace_back(v, r);
  }
  if (split.test_negatives.size() < split.test_positives.size()) {
    return Status::Internal("could not sample enough negative pairs; "
                            "attribute matrix nearly dense");
  }
  return split;
}

AucAp EvaluateAttributeInference(
    const AttributeSplit& split,
    const std::function<double(int64_t, int64_t)>& score) {
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(split.test_positives.size() + split.test_negatives.size());
  labels.reserve(scores.capacity());
  for (const auto& [v, r] : split.test_positives) {
    scores.push_back(score(v, r));
    labels.push_back(1);
  }
  for (const auto& [v, r] : split.test_negatives) {
    scores.push_back(score(v, r));
    labels.push_back(0);
  }
  return ComputeAucAp(scores, labels);
}

}  // namespace pane
