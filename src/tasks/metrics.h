// Evaluation metrics used in Section 5: AUC and Average Precision for
// attribute inference / link prediction, micro- and macro-F1 for node
// classification.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace pane {

/// \brief Area under the ROC curve for binary labels (1 = positive).
///
/// Rank-based (Mann-Whitney U) computation; tied scores receive averaged
/// ranks, so the result is the probability a random positive outranks a
/// random negative with ties counted half. Returns 0.5 when either class is
/// empty.
double AreaUnderRocCurve(const std::vector<double>& scores,
                         const std::vector<int>& labels);

/// \brief Average precision: mean of precision@rank over positive items,
/// scores sorted descending (ties broken by original order).
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels);

/// \brief Micro/macro F1 for (multi-)label prediction.
struct F1Scores {
  double micro = 0.0;
  double macro = 0.0;
};

/// \param truth / \param predicted per-example label sets (duplicates
/// ignored); \param num_classes total classes for the macro average.
F1Scores ComputeF1(const std::vector<std::vector<int32_t>>& truth,
                   const std::vector<std::vector<int32_t>>& predicted,
                   int32_t num_classes);

/// \brief Fraction of the top-k scored items that are positives.
double PrecisionAtK(const std::vector<double>& scores,
                    const std::vector<int>& labels, int64_t k);

/// \brief AUC + AP pair, the unit most experiment tables report.
struct AucAp {
  double auc = 0.0;
  double ap = 0.0;
};

AucAp ComputeAucAp(const std::vector<double>& scores,
                   const std::vector<int>& labels);

}  // namespace pane
