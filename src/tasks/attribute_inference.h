// Attribute-inference harness (Section 5.2): hold out 20% of the non-zero
// attribute entries E_R, train on the remaining 80%, then score held-out
// (node, attribute) positives against an equal number of sampled negative
// pairs, reporting AUC and AP.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/tasks/metrics.h"

namespace pane {

/// \brief Train/test split of the node-attribute associations.
struct AttributeSplit {
  /// Same topology / labels, attributes restricted to the training 80%.
  AttributedGraph train_graph;
  /// Held-out positive (node, attribute) pairs.
  std::vector<std::pair<int64_t, int64_t>> test_positives;
  /// Sampled (node, attribute) pairs absent from the *full* matrix R.
  std::vector<std::pair<int64_t, int64_t>> test_negatives;
};

/// \param test_fraction fraction of E_R held out (paper: 0.2).
Result<AttributeSplit> SplitAttributes(const AttributedGraph& graph,
                                       double test_fraction, uint64_t seed);

/// \brief Scores every test pair with `score(node, attribute)` and computes
/// AUC / AP with held-out entries as positives.
AucAp EvaluateAttributeInference(
    const AttributeSplit& split,
    const std::function<double(int64_t, int64_t)>& score);

}  // namespace pane
