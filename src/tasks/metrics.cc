#include "src/tasks/metrics.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace pane {

double AreaUnderRocCurve(const std::vector<double>& scores,
                         const std::vector<int>& labels) {
  PANE_CHECK(scores.size() == labels.size());
  const size_t n = scores.size();
  int64_t num_pos = 0;
  for (int l : labels) num_pos += (l != 0);
  const int64_t num_neg = static_cast<int64_t>(n) - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average ranks across tied score groups, then U = sum of positive ranks.
  double pos_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j + 1));
    for (size_t t = i; t <= j; ++t) {
      if (labels[order[t]] != 0) pos_rank_sum += avg_rank;
    }
    i = j + 1;
  }
  const double u = pos_rank_sum -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels) {
  PANE_CHECK(scores.size() == labels.size());
  const size_t n = scores.size();
  int64_t num_pos = 0;
  for (int l : labels) num_pos += (l != 0);
  if (num_pos == 0) return 0.0;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  double ap = 0.0;
  int64_t hits = 0;
  for (size_t rank = 0; rank < n; ++rank) {
    if (labels[order[rank]] != 0) {
      ++hits;
      ap += static_cast<double>(hits) / static_cast<double>(rank + 1);
    }
  }
  return ap / static_cast<double>(num_pos);
}

F1Scores ComputeF1(const std::vector<std::vector<int32_t>>& truth,
                   const std::vector<std::vector<int32_t>>& predicted,
                   int32_t num_classes) {
  PANE_CHECK(truth.size() == predicted.size());
  PANE_CHECK(num_classes > 0);
  std::vector<int64_t> tp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fn(static_cast<size_t>(num_classes), 0);

  std::vector<char> truth_mask(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < truth.size(); ++i) {
    for (int32_t l : truth[i]) {
      if (l >= 0 && l < num_classes) truth_mask[static_cast<size_t>(l)] = 1;
    }
    for (int32_t l : predicted[i]) {
      if (l < 0 || l >= num_classes) continue;
      if (truth_mask[static_cast<size_t>(l)] == 1) {
        ++tp[static_cast<size_t>(l)];
        truth_mask[static_cast<size_t>(l)] = 2;  // matched; dups ignored
      } else if (truth_mask[static_cast<size_t>(l)] == 0) {
        ++fp[static_cast<size_t>(l)];
      }
    }
    for (int32_t l : truth[i]) {
      if (l < 0 || l >= num_classes) continue;
      if (truth_mask[static_cast<size_t>(l)] == 1) ++fn[static_cast<size_t>(l)];
      truth_mask[static_cast<size_t>(l)] = 0;  // reset for next example
    }
  }

  int64_t tp_sum = 0, fp_sum = 0, fn_sum = 0;
  double macro_sum = 0.0;
  int32_t macro_count = 0;
  for (int32_t c = 0; c < num_classes; ++c) {
    const int64_t tpc = tp[static_cast<size_t>(c)];
    const int64_t fpc = fp[static_cast<size_t>(c)];
    const int64_t fnc = fn[static_cast<size_t>(c)];
    tp_sum += tpc;
    fp_sum += fpc;
    fn_sum += fnc;
    if (tpc + fpc + fnc > 0) {
      macro_sum += 2.0 * tpc / static_cast<double>(2 * tpc + fpc + fnc);
      ++macro_count;
    }
  }
  F1Scores out;
  out.micro = (2 * tp_sum + fp_sum + fn_sum) > 0
                  ? 2.0 * tp_sum / static_cast<double>(2 * tp_sum + fp_sum + fn_sum)
                  : 0.0;
  out.macro = macro_count > 0 ? macro_sum / macro_count : 0.0;
  return out;
}

double PrecisionAtK(const std::vector<double>& scores,
                    const std::vector<int>& labels, int64_t k) {
  PANE_CHECK(scores.size() == labels.size());
  PANE_CHECK(k > 0);
  const int64_t n = static_cast<int64_t>(scores.size());
  const int64_t kk = std::min(k, n);
  std::vector<size_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  int64_t hits = 0;
  for (int64_t i = 0; i < kk; ++i) hits += (labels[order[static_cast<size_t>(i)]] != 0);
  return static_cast<double>(hits) / static_cast<double>(kk);
}

AucAp ComputeAucAp(const std::vector<double>& scores,
                   const std::vector<int>& labels) {
  AucAp out;
  out.auc = AreaUnderRocCurve(scores, labels);
  out.ap = AveragePrecision(scores, labels);
  return out;
}

}  // namespace pane
