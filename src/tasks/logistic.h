// L2-regularized logistic regression trained by SGD, plus the edge-feature
// training protocol from the link-prediction literature [14, 26]: pairs are
// featurized as the Hadamard product of endpoint embeddings and a logistic
// model is fit on held-in positives vs sampled negatives. This completes
// the fourth of the four baseline scoring conventions Section 5.3 lists
// (inner product / cosine / Hamming / edge features).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

/// \brief Binary logistic regression: p(y=1|x) = sigmoid(w.x + b).
class LogisticRegression {
 public:
  struct Options {
    int epochs = 30;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    uint64_t seed = 19;
  };

  LogisticRegression() = default;
  explicit LogisticRegression(Options options) : options_(options) {}

  /// \param features one row per example; \param labels 0/1 per row.
  Status Train(const DenseMatrix& features, const std::vector<int>& labels);

  /// Probability of the positive class for one feature row.
  double Predict(const double* x) const;

  /// Raw decision value w.x + b.
  double Decision(const double* x) const;

  const std::vector<double>& weights() const { return w_; }

 private:
  Options options_;
  std::vector<double> w_;  // last entry is the bias
};

/// \brief Trains edge-feature weights on Hadamard features
/// emb[u] * emb[v] over the given positive / negative training pairs.
/// The returned vector plugs into EdgeFeatureScore() (link_prediction.h).
Result<std::vector<double>> TrainEdgeFeatureWeights(
    const DenseMatrix& embedding,
    const std::vector<std::pair<int64_t, int64_t>>& positives,
    const std::vector<std::pair<int64_t, int64_t>>& negatives,
    const LogisticRegression::Options& options = {});

}  // namespace pane
