// Node-classification harness (Section 5.4): train a one-vs-rest linear SVM
// on a random fraction of the nodes' embedding features and report micro /
// macro F1 on the rest, averaged over repeats. The SVM is a from-scratch
// dual coordinate-descent solver for the L1-loss (hinge) linear SVM [6],
// the same family as the LIBLINEAR classifier the paper uses.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/tasks/metrics.h"

namespace pane {

/// \brief Binary L1-loss linear SVM trained by dual coordinate descent.
///
///   min_w 0.5 ||w||^2 + C sum_i max(0, 1 - y_i w.x_i)
///
/// A constant bias feature is appended internally.
class LinearSvm {
 public:
  struct Options {
    double c = 1.0;        ///< soft-margin penalty
    int max_epochs = 60;   ///< dual CD sweeps
    double tolerance = 1e-3;
    uint64_t seed = 7;
  };

  LinearSvm() = default;
  explicit LinearSvm(Options options) : options_(options) {}

  /// \param features n x dim matrix; \param labels +1/-1 per row of
  /// `row_indices`; only rows listed in `row_indices` participate.
  Status Train(const DenseMatrix& features, const std::vector<int>& labels,
               const std::vector<int64_t>& row_indices);

  /// w . x + b for one feature row (length = features.cols() at Train time).
  double Decision(const double* x) const;

  const std::vector<double>& weights() const { return w_; }

 private:
  Options options_;
  std::vector<double> w_;  // last entry is the bias
};

/// \brief Builds the classifier features the paper uses for PANE / NRP:
/// row-wise L2-normalized Xf concatenated with normalized Xb.
DenseMatrix ConcatNormalizedEmbeddings(const DenseMatrix& xf,
                                       const DenseMatrix& xb);

/// \brief Row-wise L2-normalized copy (features for single-matrix methods).
DenseMatrix RowNormalizedCopy(const DenseMatrix& m);

struct NodeClassificationOptions {
  double train_fraction = 0.5;
  int repeats = 5;       ///< paper: average of 5 runs
  double svm_c = 1.0;
  uint64_t seed = 17;
};

/// \brief Full protocol: sample train nodes, fit one-vs-rest SVMs, predict
/// on the rest (argmax for single-label graphs; all-positive classes, or
/// argmax fallback, for multi-label graphs), return mean micro/macro F1.
Result<F1Scores> EvaluateNodeClassification(
    const DenseMatrix& features, const AttributedGraph& graph,
    const NodeClassificationOptions& options);

}  // namespace pane
