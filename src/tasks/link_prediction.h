// Link-prediction harness (Section 5.3): remove 30% of the edges, train on
// the residual graph, then score removed edges against an equal number of
// sampled non-edges. Also hosts the four baseline scoring conventions the
// paper evaluates competitors under (inner product / cosine / Hamming /
// edge features).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/tasks/metrics.h"

namespace pane {

/// \brief Residual graph + held-out positive and sampled negative pairs.
struct LinkSplit {
  AttributedGraph residual_graph;
  /// Removed edges (u, v); for undirected graphs each pair appears once.
  std::vector<std::pair<int64_t, int64_t>> test_positives;
  /// Sampled node pairs with no edge in the *full* graph.
  std::vector<std::pair<int64_t, int64_t>> test_negatives;
};

/// \param holdout_fraction fraction of edges removed (paper: 0.3).
Result<LinkSplit> SplitEdges(const AttributedGraph& graph,
                             double holdout_fraction, uint64_t seed);

/// \brief Scores all test pairs with `score(u, v)` and computes AUC / AP.
AucAp EvaluateLinkPrediction(
    const LinkSplit& split,
    const std::function<double(int64_t, int64_t)>& score);

/// \name Baseline pair-scoring conventions over a single embedding matrix
/// (one row per node). The paper runs each competitor under all four and
/// keeps the best; callers can do the same.
/// @{
double InnerProductScore(const DenseMatrix& embedding, int64_t u, int64_t v);
double CosineScore(const DenseMatrix& embedding, int64_t u, int64_t v);
/// Negated Hamming distance of the sign patterns (binary embeddings, BANE).
double HammingScore(const DenseMatrix& embedding, int64_t u, int64_t v);
/// Hadamard edge-feature score against a weight vector (edge-feature
/// convention with a logistic model trained by the caller).
double EdgeFeatureScore(const DenseMatrix& embedding,
                        const std::vector<double>& weights, int64_t u,
                        int64_t v);
/// @}

}  // namespace pane
