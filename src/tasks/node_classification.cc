#include "src/tasks/node_classification.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/matrix/vector_ops.h"

namespace pane {

Status LinearSvm::Train(const DenseMatrix& features,
                        const std::vector<int>& labels,
                        const std::vector<int64_t>& row_indices) {
  if (labels.size() != row_indices.size()) {
    return Status::InvalidArgument("labels/rows size mismatch");
  }
  const int64_t dim = features.cols();
  const int64_t m = static_cast<int64_t>(row_indices.size());
  if (m == 0) return Status::InvalidArgument("empty training set");
  w_.assign(static_cast<size_t>(dim) + 1, 0.0);

  // Dual coordinate descent (Hsieh et al. style) with the bias folded in as
  // a constant feature of value 1.
  std::vector<double> alpha(static_cast<size_t>(m), 0.0);
  std::vector<double> q_diag(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    const double* x = features.Row(row_indices[static_cast<size_t>(i)]);
    q_diag[static_cast<size_t>(i)] = SquaredNorm(x, dim) + 1.0;  // + bias^2
  }

  Rng rng(options_.seed);
  std::vector<int64_t> order(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) order[static_cast<size_t>(i)] = i;

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    Shuffle(&order, &rng);
    double max_step = 0.0;
    for (int64_t oi = 0; oi < m; ++oi) {
      const int64_t i = order[static_cast<size_t>(oi)];
      const double* x = features.Row(row_indices[static_cast<size_t>(i)]);
      const double yi = labels[static_cast<size_t>(i)] > 0 ? 1.0 : -1.0;
      // G = y_i * (w.x + b) - 1
      const double decision = Dot(w_.data(), x, dim) + w_[static_cast<size_t>(dim)];
      const double g = yi * decision - 1.0;
      const double alpha_old = alpha[static_cast<size_t>(i)];
      double alpha_new =
          std::min(std::max(alpha_old - g / q_diag[static_cast<size_t>(i)], 0.0),
                   options_.c);
      const double delta = alpha_new - alpha_old;
      if (delta == 0.0) continue;
      alpha[static_cast<size_t>(i)] = alpha_new;
      Axpy(delta * yi, x, w_.data(), dim);
      w_[static_cast<size_t>(dim)] += delta * yi;  // bias feature = 1
      max_step = std::max(max_step, std::fabs(delta));
    }
    if (max_step < options_.tolerance) break;
  }
  return Status::OK();
}

double LinearSvm::Decision(const double* x) const {
  PANE_DCHECK(!w_.empty());
  const int64_t dim = static_cast<int64_t>(w_.size()) - 1;
  return Dot(w_.data(), x, dim) + w_[static_cast<size_t>(dim)];
}

DenseMatrix RowNormalizedCopy(const DenseMatrix& m) {
  DenseMatrix out = m;
  for (int64_t i = 0; i < out.rows(); ++i) {
    NormalizeL2(out.Row(i), out.cols());
  }
  return out;
}

DenseMatrix ConcatNormalizedEmbeddings(const DenseMatrix& xf,
                                       const DenseMatrix& xb) {
  PANE_CHECK(xf.rows() == xb.rows());
  DenseMatrix out(xf.rows(), xf.cols() + xb.cols());
  for (int64_t i = 0; i < xf.rows(); ++i) {
    double* row = out.Row(i);
    Copy(xf.Row(i), row, xf.cols());
    NormalizeL2(row, xf.cols());
    Copy(xb.Row(i), row + xf.cols(), xb.cols());
    NormalizeL2(row + xf.cols(), xb.cols());
  }
  return out;
}

Result<F1Scores> EvaluateNodeClassification(
    const DenseMatrix& features, const AttributedGraph& graph,
    const NodeClassificationOptions& options) {
  if (!graph.has_labels()) {
    return Status::InvalidArgument("graph has no labels");
  }
  if (features.rows() != graph.num_nodes()) {
    return Status::InvalidArgument("features/nodes size mismatch");
  }
  if (options.train_fraction <= 0.0 || options.train_fraction >= 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1)");
  }
  const int64_t n = graph.num_nodes();
  const int32_t num_classes = graph.num_label_classes();

  // Multi-label graphs predict every positive class; single-label argmax.
  bool multi_label = false;
  for (const auto& ls : graph.labels()) {
    if (ls.size() > 1) {
      multi_label = true;
      break;
    }
  }

  // Only labeled nodes participate.
  std::vector<int64_t> labeled;
  labeled.reserve(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    if (!graph.labels()[static_cast<size_t>(v)].empty()) labeled.push_back(v);
  }
  if (labeled.size() < 10) {
    return Status::InvalidArgument("too few labeled nodes");
  }

  double micro_sum = 0.0;
  double macro_sum = 0.0;
  for (int rep = 0; rep < options.repeats; ++rep) {
    Rng rng(options.seed + static_cast<uint64_t>(rep) * 1000003ULL);
    std::vector<int64_t> perm = labeled;
    Shuffle(&perm, &rng);
    const int64_t train_count = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(perm.size()) *
                                options.train_fraction));
    const std::vector<int64_t> train_rows(perm.begin(),
                                          perm.begin() + train_count);
    const std::vector<int64_t> test_rows(perm.begin() + train_count,
                                         perm.end());
    if (test_rows.empty()) {
      return Status::InvalidArgument("train_fraction leaves no test nodes");
    }

    // One-vs-rest SVMs.
    std::vector<LinearSvm> classifiers;
    classifiers.reserve(static_cast<size_t>(num_classes));
    for (int32_t c = 0; c < num_classes; ++c) {
      std::vector<int> y(train_rows.size(), -1);
      for (size_t i = 0; i < train_rows.size(); ++i) {
        const auto& ls = graph.labels()[static_cast<size_t>(train_rows[i])];
        if (std::binary_search(ls.begin(), ls.end(), c)) y[i] = 1;
      }
      LinearSvm::Options svm_options;
      svm_options.c = options.svm_c;
      svm_options.seed = options.seed + static_cast<uint64_t>(c);
      LinearSvm svm(svm_options);
      PANE_RETURN_NOT_OK(svm.Train(features, y, train_rows));
      classifiers.push_back(std::move(svm));
    }

    // Predict.
    std::vector<std::vector<int32_t>> truth;
    std::vector<std::vector<int32_t>> predicted;
    truth.reserve(test_rows.size());
    predicted.reserve(test_rows.size());
    for (int64_t v : test_rows) {
      truth.push_back(graph.labels()[static_cast<size_t>(v)]);
      const double* x = features.Row(v);
      std::vector<int32_t> pred;
      int32_t best_class = 0;
      double best_score = -1e300;
      for (int32_t c = 0; c < num_classes; ++c) {
        const double s = classifiers[static_cast<size_t>(c)].Decision(x);
        if (s > best_score) {
          best_score = s;
          best_class = c;
        }
        if (multi_label && s > 0.0) pred.push_back(c);
      }
      if (pred.empty()) pred.push_back(best_class);
      predicted.push_back(std::move(pred));
    }
    const F1Scores f1 = ComputeF1(truth, predicted, num_classes);
    micro_sum += f1.micro;
    macro_sum += f1.macro;
  }

  F1Scores out;
  out.micro = micro_sum / options.repeats;
  out.macro = macro_sum / options.repeats;
  return out;
}

}  // namespace pane
