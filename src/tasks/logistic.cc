#include "src/tasks/logistic.h"

#include <cmath>

#include "src/common/random.h"
#include "src/matrix/vector_ops.h"

namespace pane {
namespace {

double Sigmoid(double z) {
  // Split by sign for numerical stability at large |z|.
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Status LogisticRegression::Train(const DenseMatrix& features,
                                 const std::vector<int>& labels) {
  const int64_t m = features.rows();
  const int64_t dim = features.cols();
  if (static_cast<int64_t>(labels.size()) != m) {
    return Status::InvalidArgument("labels/features size mismatch");
  }
  if (m == 0) return Status::InvalidArgument("empty training set");
  w_.assign(static_cast<size_t>(dim) + 1, 0.0);

  Rng rng(options_.seed);
  std::vector<int64_t> order(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) order[static_cast<size_t>(i)] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Shuffle(&order, &rng);
    // 1/sqrt(epoch) step decay.
    const double lr =
        options_.learning_rate / std::sqrt(static_cast<double>(epoch + 1));
    for (int64_t i : order) {
      const double* x = features.Row(i);
      const double y = labels[static_cast<size_t>(i)] != 0 ? 1.0 : 0.0;
      const double p = Sigmoid(Dot(w_.data(), x, dim) + w_[static_cast<size_t>(dim)]);
      const double g = p - y;  // dLoss/dz
      // w <- w - lr * (g * x + l2 * w); bias unregularized.
      for (int64_t j = 0; j < dim; ++j) {
        w_[static_cast<size_t>(j)] -=
            lr * (g * x[j] + options_.l2 * w_[static_cast<size_t>(j)]);
      }
      w_[static_cast<size_t>(dim)] -= lr * g;
    }
  }
  return Status::OK();
}

double LogisticRegression::Decision(const double* x) const {
  const int64_t dim = static_cast<int64_t>(w_.size()) - 1;
  return Dot(w_.data(), x, dim) + w_[static_cast<size_t>(dim)];
}

double LogisticRegression::Predict(const double* x) const {
  return Sigmoid(Decision(x));
}

Result<std::vector<double>> TrainEdgeFeatureWeights(
    const DenseMatrix& embedding,
    const std::vector<std::pair<int64_t, int64_t>>& positives,
    const std::vector<std::pair<int64_t, int64_t>>& negatives,
    const LogisticRegression::Options& options) {
  if (positives.empty() || negatives.empty()) {
    return Status::InvalidArgument(
        "edge-feature training needs positives and negatives");
  }
  const int64_t k = embedding.cols();
  const int64_t m =
      static_cast<int64_t>(positives.size() + negatives.size());
  DenseMatrix features(m, k);
  std::vector<int> labels(static_cast<size_t>(m), 0);
  int64_t row = 0;
  auto emit = [&](const std::vector<std::pair<int64_t, int64_t>>& pairs,
                  int label) {
    for (const auto& [u, v] : pairs) {
      const double* a = embedding.Row(u);
      const double* b = embedding.Row(v);
      double* out = features.Row(row);
      for (int64_t j = 0; j < k; ++j) out[j] = a[j] * b[j];  // Hadamard
      labels[static_cast<size_t>(row)] = label;
      ++row;
    }
  };
  emit(positives, 1);
  emit(negatives, 0);

  LogisticRegression model(options);
  PANE_RETURN_NOT_OK(model.Train(features, labels));
  // Drop the bias: EdgeFeatureScore ranks pairs, and a constant offset
  // does not change the ranking.
  std::vector<double> weights(model.weights().begin(),
                              model.weights().end() - 1);
  return weights;
}

}  // namespace pane
