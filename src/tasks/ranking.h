// Top-k retrieval over trained embeddings — the serving-side API for the
// two prediction tasks: "which attributes does node v most likely have?"
// (attribute recommendation) and "which edges from u are most likely?"
// (link recommendation).
#pragma once

#include <cstdint>

#include "src/common/topk.h"
#include "src/core/embedding.h"
#include "src/graph/graph.h"

namespace pane {

// Ranking (and the deterministic score-desc / index-asc order these helpers
// rank by) lives in src/common/topk.h, shared with the serving engine.
// Both functions below are thin single-query wrappers over
// serve::QueryEngine's exact mode, so an offline call and a served batch
// return identical results — same indices, same bitwise scores,
// reproducible across thread counts.

/// \brief Top-k attributes for node v by the Eq. 21 score. If `exclude` is
/// non-null, attributes already associated with v in that graph are
/// skipped (recommendation mode).
Ranking TopKAttributes(const PaneEmbedding& embedding, int64_t v, int64_t k,
                       const AttributedGraph* exclude = nullptr);

/// \brief Top-k target nodes for source u by the Eq. 22 edge score. If
/// `exclude` is non-null, existing out-neighbors of u (and u itself) are
/// skipped.
Ranking TopKTargets(const PaneEmbedding& embedding, const EdgeScorer& scorer,
                    int64_t u, int64_t k,
                    const AttributedGraph* exclude = nullptr);

}  // namespace pane
