#include "src/obs/trace.h"

namespace pane {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kDecode:
      return "decode";
    case Stage::kBatchWait:
      return "batch_wait";
    case Stage::kScan:
      return "engine_scan";
    case Stage::kSelect:
      return "topk_select";
    case Stage::kFanout:
      return "fanout";
    case Stage::kMerge:
      return "merge";
    case Stage::kEncode:
      return "encode";
  }
  return "unknown";
}

int64_t RequestTrace::total_us() const {
  int64_t total = 0;
  for (const int64_t us : us_) total += us;
  return total;
}

std::string RequestTrace::FormatBreakdown() const {
  std::string out;
  for (int i = 0; i < kNumStages; ++i) {
    if (!out.empty()) out += ' ';
    out += StageName(static_cast<Stage>(i));
    out += "_us=";
    out += std::to_string(us_[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace obs
}  // namespace pane
