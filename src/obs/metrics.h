// Observability primitives for the serving stack: named counters, gauges,
// and log-linear latency histograms collected in a process-wide
// MetricsRegistry and exported as Prometheus text exposition.
//
// Design goals, in order:
//   1. Safe to hammer from many threads. Counter/Gauge are single relaxed
//      atomics; Histogram serializes on its own pane::Mutex with capability
//      annotations, so both -Werror=thread-safety and the TSan tier cover
//      every record path.
//   2. Cheap enough for the request hot path. A Record() is one branch-free
//      bucket computation plus one short critical section touching two
//      cache lines; there is no allocation after registration.
//   3. Deterministic, testable percentiles. The bucket layout is fixed
//      (HDR-style: 32 exact linear buckets, then 32 sub-buckets per power
//      of two), Percentile() always returns the lower bound of the rank's
//      bucket clamped to the observed [min, max], and the known-answer
//      tests in tests/histogram_test.cc pin the exact boundaries.
//
// Everything in this file is engine-agnostic: src/serve/ records into it,
// benches dump it, and the `metrics` protocol verb renders it, but nothing
// here knows about requests or shards.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"

namespace pane {
namespace obs {

/// Monotonically increasing event count. Prometheus convention: name it
/// `*_total` and never decrement.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (active connections, last-batch tile count). Unlike
/// Counter it may move both ways.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-linear histogram over non-negative int64 values (latencies in
/// microseconds, sizes in bytes).
///
/// Bucket layout: values 0..31 get one exact bucket each; every later power
/// of two [2^m, 2^(m+1)) is split into 32 equal sub-buckets, so the
/// relative bucket width — and therefore the worst-case percentile error —
/// is bounded by 1/32 (~3.2%) while values below 64 stay exact. Negative
/// values clamp to 0 and values above kMaxValue land in one overflow
/// bucket; exact min/max/sum/count are tracked separately so Max() never
/// loses resolution.
class Histogram {
 public:
  static constexpr int kLinearBuckets = 32;   ///< exact buckets for 0..31
  static constexpr int kSubBuckets = 32;      ///< sub-buckets per octave
  /// Values above this clamp into the final (overflow) bucket.
  static constexpr int64_t kMaxValue = int64_t{1} << 62;
  /// BucketIndex(kMaxValue) + 1.
  static constexpr int kNumBuckets =
      kLinearBuckets + (62 - 5) * kSubBuckets + 1;

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value) PANE_EXCLUDES(mu_);

  /// One consistent view of the distribution, taken under a single lock
  /// hold. Percentiles are bucket lower bounds clamped to [min, max], so a
  /// single-valued distribution reports that value exactly and p100 == max.
  struct Snapshot {
    uint64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
    int64_t p50 = 0;
    int64_t p90 = 0;
    int64_t p99 = 0;
  };
  Snapshot TakeSnapshot() const PANE_EXCLUDES(mu_);

  /// Value at percentile `p` in (0, 100]; 0 when empty.
  int64_t Percentile(double p) const PANE_EXCLUDES(mu_);

  uint64_t Count() const PANE_EXCLUDES(mu_);

  /// Exposed for the known-answer tests: which bucket `value` lands in and
  /// the smallest value that bucket holds.
  static int BucketIndex(int64_t value);
  static int64_t BucketLowerBound(int index);

 private:
  int64_t PercentileLocked(double p) const PANE_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<uint64_t> buckets_ PANE_GUARDED_BY(mu_);
  uint64_t count_ PANE_GUARDED_BY(mu_) = 0;
  int64_t sum_ PANE_GUARDED_BY(mu_) = 0;
  int64_t min_ PANE_GUARDED_BY(mu_) = 0;
  int64_t max_ PANE_GUARDED_BY(mu_) = 0;
};

/// Named metric store. Metrics are created on first use and live for the
/// registry's lifetime at stable addresses, so callers fetch their handles
/// once (registration takes the registry lock) and then record lock-free /
/// under the histogram's own mutex — never through the registry again.
///
/// Keys are (name, labels): `GetHistogram("pane_router_hop_us",
/// "shard=\"0\"")` and the same name with `shard="1"` are two series of one
/// family. Names must match Prometheus `[a-zA-Z_:][a-zA-Z0-9_:]*`; labels
/// are either empty or a comma-separated `key="value"` list (checked at
/// registration, fatal on violation — a bad metric name is a programming
/// error, not an input error). Re-requesting a name with a different
/// metric kind is fatal for the same reason.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name,
                      const std::string& labels = "") PANE_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name,
                  const std::string& labels = "") PANE_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name,
                          const std::string& labels = "")
      PANE_EXCLUDES(mu_);

  /// Prometheus text exposition, families in lexicographic name order with
  /// one `# TYPE` header each. Counters and gauges render one sample per
  /// labelset; histograms render as summaries: `quantile` labels 0.5 /
  /// 0.9 / 0.99 / 1 (the 1-quantile is the exact max) plus `_sum` and
  /// `_count`. Does NOT append the `# EOF` terminator — the caller owns
  /// framing.
  std::string RenderPrometheus() const PANE_EXCLUDES(mu_);

 private:
  enum class Kind : int8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric* GetOrCreate(const std::string& name, const std::string& labels,
                      Kind kind) PANE_EXCLUDES(mu_);

  mutable Mutex mu_;
  /// Ordered by (name, labels) so RenderPrometheus walks families
  /// contiguously; std::map nodes give the stable addresses the handle
  /// contract requires.
  std::map<std::pair<std::string, std::string>, Metric> metrics_
      PANE_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace pane
