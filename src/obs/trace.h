// Per-request stage timeline. A RequestTrace rides along with one batch
// through the serving stack and accumulates how long each pipeline stage
// took, in the order a request actually experiences them:
//
//   decode      bytes -> Request structs (codec + request-line parse)
//   batch_wait  first request parsed -> batch dispatched to the engine
//   engine_scan scoring work: tile dot-products (exact) or IVF probes
//   topk_select per-tile heap selection of the running top-k
//   fanout      router scatter: per-shard hops, issued concurrently
//   merge       router gather: k-way merge + reformat of shard answers
//   encode      response strings -> wire bytes
//
// Unsharded servers fill scan/select and leave fanout/merge at zero; a
// routing front-end does the reverse (its shards fill scan/select on their
// side). The trace itself is plain data owned by one session — it is NOT
// thread-safe; cross-thread accumulation happens in EngineCallStats
// (query_engine.h) and is folded in by the owner.
//
// Two consumers: PaneServer records each stage into the registry's
// pane_stage_* histograms, and --slow-query-us logs FormatBreakdown() for
// batches over the threshold.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace pane {
namespace obs {

enum class Stage : int {
  kDecode = 0,
  kBatchWait,
  kScan,
  kSelect,
  kFanout,
  kMerge,
  kEncode,
};

inline constexpr int kNumStages = 7;

/// Stable lowercase token used in metric names, the slow-query log line,
/// and the README stage glossary.
const char* StageName(Stage stage);

class RequestTrace {
 public:
  void Add(Stage stage, int64_t us) {
    us_[static_cast<size_t>(stage)] += us;
  }

  int64_t us(Stage stage) const { return us_[static_cast<size_t>(stage)]; }

  int64_t total_us() const;

  void Reset() { us_.fill(0); }

  /// One space-separated token per stage, in pipeline order:
  /// "decode_us=12 batch_wait_us=3 engine_scan_us=840 ...".
  std::string FormatBreakdown() const;

 private:
  std::array<int64_t, kNumStages> us_{};
};

}  // namespace obs
}  // namespace pane
