#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pane {
namespace obs {
namespace {

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!alpha && !(digit && i > 0)) return false;
  }
  return true;
}

/// Accepts "" or `key="value"(,key="value")*` with Prometheus label-name
/// keys and quote/backslash/newline-free values. Deliberately strict: the
/// registry is the last gate before the exposition format, and a bad label
/// here would corrupt every scrape.
bool IsValidLabelList(const std::string& labels) {
  size_t i = 0;
  while (i < labels.size()) {
    size_t k = i;
    while (k < labels.size() &&
           ((labels[k] >= 'a' && labels[k] <= 'z') ||
            (labels[k] >= 'A' && labels[k] <= 'Z') || labels[k] == '_' ||
            (labels[k] >= '0' && labels[k] <= '9' && k > i))) {
      ++k;
    }
    if (k == i || k + 1 >= labels.size() || labels[k] != '=' ||
        labels[k + 1] != '"') {
      return false;
    }
    size_t v = k + 2;
    while (v < labels.size() && labels[v] != '"' && labels[v] != '\\' &&
           labels[v] != '\n') {
      ++v;
    }
    if (v >= labels.size() || labels[v] != '"') return false;
    i = v + 1;
    if (i == labels.size()) return true;
    if (labels[i] != ',') return false;
    ++i;
  }
  return labels.empty();
}

std::string Braced(const std::string& labels) {
  return labels.empty() ? std::string() : "{" + labels + "}";
}

/// Merges a quantile label into an existing (possibly empty) label list.
std::string WithQuantile(const std::string& labels, const char* quantile) {
  std::string merged = labels;
  if (!merged.empty()) merged += ',';
  merged += "quantile=\"";
  merged += quantile;
  merged += '"';
  return "{" + merged + "}";
}

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  if (value > kMaxValue) value = kMaxValue;
  if (value < kLinearBuckets) return static_cast<int>(value);
  // For v >= 32 the top set bit is at position msb >= 5; dropping to the
  // 5 bits below it picks one of 32 sub-buckets inside the octave.
  const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int shift = msb - 5;
  const int sub = static_cast<int>((value >> shift) - kLinearBuckets);
  return kLinearBuckets + shift * kSubBuckets + sub;
}

int64_t Histogram::BucketLowerBound(int index) {
  PANE_CHECK(index >= 0 && index < kNumBuckets);
  if (index < kLinearBuckets) return index;
  const int shift = (index - kLinearBuckets) / kSubBuckets;
  const int sub = (index - kLinearBuckets) % kSubBuckets;
  return static_cast<int64_t>(kSubBuckets + sub) << shift;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  const int index = BucketIndex(value);
  MutexLock lock(&mu_);
  ++buckets_[static_cast<size_t>(index)];
  sum_ += value;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

int64_t Histogram::PercentileLocked(double p) const {
  if (count_ == 0) return 0;
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::max<uint64_t>(1, std::min(rank, count_));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      // The true value lies inside this bucket; clamping its lower bound
      // to the observed range makes narrow distributions exact.
      return std::min(max_, std::max(min_, BucketLowerBound(i)));
    }
  }
  return max_;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  MutexLock lock(&mu_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = PercentileLocked(50.0);
  snap.p90 = PercentileLocked(90.0);
  snap.p99 = PercentileLocked(99.0);
  return snap;
}

int64_t Histogram::Percentile(double p) const {
  MutexLock lock(&mu_);
  return PercentileLocked(p);
}

uint64_t Histogram::Count() const {
  MutexLock lock(&mu_);
  return count_;
}

MetricsRegistry::Metric* MetricsRegistry::GetOrCreate(
    const std::string& name, const std::string& labels, Kind kind) {
  PANE_CHECK(IsValidMetricName(name)) << "bad metric name: " << name;
  PANE_CHECK(IsValidLabelList(labels))
      << "bad label list for " << name << ": " << labels;
  MutexLock lock(&mu_);
  auto [it, inserted] = metrics_.try_emplace({name, labels});
  Metric& metric = it->second;
  if (inserted) {
    metric.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        metric.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        metric.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        metric.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    PANE_CHECK(metric.kind == kind)
        << "metric " << name << " re-registered with a different kind";
  }
  return &metric;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  return GetOrCreate(name, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  return GetOrCreate(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& labels) {
  return GetOrCreate(name, labels, Kind::kHistogram)->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(&mu_);
  std::string out;
  const std::string* last_name = nullptr;
  for (const auto& [key, metric] : metrics_) {
    const std::string& name = key.first;
    const std::string& labels = key.second;
    const bool new_family = last_name == nullptr || *last_name != name;
    last_name = &name;
    switch (metric.kind) {
      case Kind::kCounter:
        if (new_family) out += "# TYPE " + name + " counter\n";
        out += name + Braced(labels) + ' ' +
               std::to_string(metric.counter->value()) + '\n';
        break;
      case Kind::kGauge:
        if (new_family) out += "# TYPE " + name + " gauge\n";
        out += name + Braced(labels) + ' ' +
               std::to_string(metric.gauge->value()) + '\n';
        break;
      case Kind::kHistogram: {
        if (new_family) out += "# TYPE " + name + " summary\n";
        const Histogram::Snapshot snap = metric.histogram->TakeSnapshot();
        out += name + WithQuantile(labels, "0.5") + ' ' +
               std::to_string(snap.p50) + '\n';
        out += name + WithQuantile(labels, "0.9") + ' ' +
               std::to_string(snap.p90) + '\n';
        out += name + WithQuantile(labels, "0.99") + ' ' +
               std::to_string(snap.p99) + '\n';
        out += name + WithQuantile(labels, "1") + ' ' +
               std::to_string(snap.max) + '\n';
        out += name + "_sum" + Braced(labels) + ' ' +
               std::to_string(snap.sum) + '\n';
        out += name + "_count" + Braced(labels) + ' ' +
               std::to_string(snap.count) + '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace pane
