// Shared implementation of the blocked dot kernel, included by the
// baseline (dot_block.cc) and AVX2 (dot_block_avx2.cc) translation units
// so both compile the exact same arithmetic under different instruction
// sets. Everything here is inline; the per-TU entry points wrap
// DotBlockDriver.
//
// The per-(query, candidate) accumulation reproduces vector_ops::Dot
// exactly — four stride-4 partial sums combined as (s0 + s1) + (s2 + s3),
// then the ascending tail — while the q-inner loops run over QB
// independent accumulators. QB and the panel width LD are compile-time
// constants (the driver dispatches over the supported power-of-two
// widths): with both known, the accumulator arrays live in registers and
// the compiler vectorizes the contiguous q-dimension cleanly. A runtime
// panel width defeats that (GCC falls back to cross-chain gathers over t,
// ~3x slower), which is why callers pad query blocks to a supported
// width instead of passing arbitrary ones.
#pragma once

#include <cstdint>

namespace pane {
namespace serve {
namespace detail {

template <int QB, int LD>
inline void DotBlockFixed(const double* qt, int64_t h, const double* cand,
                          double* out, int64_t out_stride, bool add) {
  double s0[QB], s1[QB], s2[QB], s3[QB];
  for (int q = 0; q < QB; ++q) s0[q] = 0.0;
  for (int q = 0; q < QB; ++q) s1[q] = 0.0;
  for (int q = 0; q < QB; ++q) s2[q] = 0.0;
  for (int q = 0; q < QB; ++q) s3[q] = 0.0;
  int64_t t = 0;
  for (; t + 4 <= h; t += 4) {
    const double c0 = cand[t];
    const double c1 = cand[t + 1];
    const double c2 = cand[t + 2];
    const double c3 = cand[t + 3];
    const double* r0 = qt + t * LD;
    const double* r1 = r0 + LD;
    const double* r2 = r0 + 2 * LD;
    const double* r3 = r0 + 3 * LD;
    // One q-loop per partial-sum chain: each is a contiguous-stride
    // vectorizable update (a fused single loop tempts the vectorizer into
    // cross-chain gathers over t, an order of magnitude slower).
    for (int q = 0; q < QB; ++q) s0[q] += r0[q] * c0;
    for (int q = 0; q < QB; ++q) s1[q] += r1[q] * c1;
    for (int q = 0; q < QB; ++q) s2[q] += r2[q] * c2;
    for (int q = 0; q < QB; ++q) s3[q] += r3[q] * c3;
  }
  double o[QB];
  for (int q = 0; q < QB; ++q) o[q] = (s0[q] + s1[q]) + (s2[q] + s3[q]);
  for (; t < h; ++t) {
    const double ct = cand[t];
    const double* r = qt + t * LD;
    for (int q = 0; q < QB; ++q) o[q] += r[q] * ct;
  }
  if (add) {
    for (int q = 0; q < QB; ++q) out[q * out_stride] += o[q];
  } else {
    for (int q = 0; q < QB; ++q) out[q * out_stride] = o[q];
  }
}

/// One full panel of compile-time width LD: register sub-tiles of 8 (or
/// the whole panel for the narrow widths).
template <int LD>
inline void DotBlockWidth(const double* qt, int64_t h, const double* cand,
                          double* out, int64_t out_stride, bool add) {
  if constexpr (LD >= 8) {
    for (int q = 0; q + 8 <= LD; q += 8) {
      DotBlockFixed<8, LD>(qt + q, h, cand, out + q * out_stride, out_stride,
                           add);
    }
  } else {
    DotBlockFixed<LD, LD>(qt, h, cand, out, out_stride, add);
  }
}

/// Slow-path fallback for widths outside the supported set (kept for API
/// completeness; the engine always pads to a supported width).
template <int QB>
inline void DotBlockRuntimeLd(const double* qt, int64_t h, int64_t ld,
                              const double* cand, double* out,
                              int64_t out_stride, bool add) {
  double s[QB];
  for (int q = 0; q < QB; ++q) s[q] = 0.0;
  double s0, s1, s2, s3;
  for (int q = 0; q < QB; ++q) {
    s0 = s1 = s2 = s3 = 0.0;
    int64_t t = 0;
    for (; t + 4 <= h; t += 4) {
      s0 += qt[t * ld + q] * cand[t];
      s1 += qt[(t + 1) * ld + q] * cand[t + 1];
      s2 += qt[(t + 2) * ld + q] * cand[t + 2];
      s3 += qt[(t + 3) * ld + q] * cand[t + 3];
    }
    double o = (s0 + s1) + (s2 + s3);
    for (; t < h; ++t) o += qt[t * ld + q] * cand[t];
    s[q] = o;
  }
  if (add) {
    for (int q = 0; q < QB; ++q) out[q * out_stride] += s[q];
  } else {
    for (int q = 0; q < QB; ++q) out[q * out_stride] = s[q];
  }
}

/// Width dispatch. ld should be one of kDotBlockWidths (the engine pads
/// its panels accordingly); other widths take the scalar fallback.
inline void DotBlockDriver(const double* qt, int64_t h, int64_t ld,
                           const double* cand, double* out,
                           int64_t out_stride, bool add) {
  switch (ld) {
    case 64:
      DotBlockWidth<64>(qt, h, cand, out, out_stride, add);
      return;
    case 32:
      DotBlockWidth<32>(qt, h, cand, out, out_stride, add);
      return;
    case 16:
      DotBlockWidth<16>(qt, h, cand, out, out_stride, add);
      return;
    case 8:
      DotBlockWidth<8>(qt, h, cand, out, out_stride, add);
      return;
    case 4:
      DotBlockWidth<4>(qt, h, cand, out, out_stride, add);
      return;
    case 2:
      DotBlockWidth<2>(qt, h, cand, out, out_stride, add);
      return;
    case 1:
      DotBlockWidth<1>(qt, h, cand, out, out_stride, add);
      return;
    default:
      break;
  }
  int64_t q = 0;
  for (; q + 8 <= ld; q += 8) {
    DotBlockRuntimeLd<8>(qt + q, h, ld, cand, out + q * out_stride,
                         out_stride, add);
  }
  for (; q < ld; ++q) {
    DotBlockRuntimeLd<1>(qt + q, h, ld, cand, out + q * out_stride,
                         out_stride, add);
  }
}

}  // namespace detail
}  // namespace serve
}  // namespace pane
