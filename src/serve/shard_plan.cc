#include "src/serve/shard_plan.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/matrix/gemm.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/embedding_store.h"
#include "src/store/container.h"

namespace pane {
namespace serve {
namespace {

/// Strict non-negative integer parse for the plan-response fields.
bool ParseCount(std::string_view token, int64_t* out) {
  if (token.empty() || token.size() > 18) return false;
  int64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

/// Splits "a<sep>b" into exactly two numeric halves.
bool SplitPair(std::string_view token, char sep, int64_t* a, int64_t* b) {
  const size_t cut = token.find(sep);
  if (cut == std::string_view::npos) return false;
  return ParseCount(token.substr(0, cut), a) &&
         ParseCount(token.substr(cut + 1), b);
}

}  // namespace

ShardPlan MakeShardPlan(int64_t num_nodes, int64_t num_attributes,
                        int num_shards) {
  ShardPlan plan;
  plan.num_nodes = num_nodes;
  plan.num_attributes = num_attributes;
  const std::vector<Range> node_ranges = PartitionRange(num_nodes, num_shards);
  const std::vector<Range> attr_ranges =
      PartitionRange(num_attributes, num_shards);
  plan.shards.resize(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    ShardSpec& spec = plan.shards[static_cast<size_t>(i)];
    spec.shard_index = i;
    spec.shard_count = num_shards;
    spec.num_nodes = num_nodes;
    spec.num_attributes = num_attributes;
    spec.node_begin = node_ranges[static_cast<size_t>(i)].begin;
    spec.node_end = node_ranges[static_cast<size_t>(i)].end;
    spec.attr_begin = attr_ranges[static_cast<size_t>(i)].begin;
    spec.attr_end = attr_ranges[static_cast<size_t>(i)].end;
  }
  return plan;
}

Status ValidateShardSpecs(const std::vector<ShardSpec>& specs,
                          ShardPlan* plan) {
  if (specs.empty()) {
    return Status::InvalidArgument("shard plan needs at least one shard");
  }
  const int64_t count = static_cast<int64_t>(specs.size());
  int64_t node_cursor = 0, attr_cursor = 0;
  for (int64_t i = 0; i < count; ++i) {
    const ShardSpec& s = specs[static_cast<size_t>(i)];
    const std::string who = "shard " + std::to_string(i);
    if (s.shard_index != i || s.shard_count != count) {
      return Status::InvalidArgument(
          who + " reports plan position " + std::to_string(s.shard_index) +
          "/" + std::to_string(s.shard_count) + "; pass backends in plan "
          "order (expected " + std::to_string(i) + "/" +
          std::to_string(count) + ")");
    }
    if (s.num_nodes != specs[0].num_nodes ||
        s.num_attributes != specs[0].num_attributes ||
        s.dim != specs[0].dim) {
      return Status::InvalidArgument(
          who + " disagrees with shard 0 on the global shapes — the "
          "backends were cut from different artifacts");
    }
    if (s.node_begin != node_cursor || s.attr_begin != attr_cursor ||
        s.node_end < s.node_begin || s.attr_end < s.attr_begin) {
      return Status::InvalidArgument(
          who + " ranges do not continue the previous shard's — the plan "
          "must tile the candidate space contiguously");
    }
    node_cursor = s.node_end;
    attr_cursor = s.attr_end;
  }
  if (node_cursor != specs[0].num_nodes ||
      attr_cursor != specs[0].num_attributes) {
    return Status::InvalidArgument(
        "shard ranges stop at " + std::to_string(node_cursor) + "/" +
        std::to_string(attr_cursor) + " but the globals are " +
        std::to_string(specs[0].num_nodes) + "/" +
        std::to_string(specs[0].num_attributes) + " — a shard is missing");
  }
  if (plan != nullptr) {
    plan->num_nodes = specs[0].num_nodes;
    plan->num_attributes = specs[0].num_attributes;
    plan->shards = specs;
  }
  return Status::OK();
}

Status SplitEmbeddingArtifact(const std::string& input_path,
                              const std::string& out_prefix, int num_shards,
                              std::vector<std::string>* out_paths) {
  if (num_shards <= 0) {
    return Status::InvalidArgument("shard count must be positive");
  }
  PANE_ASSIGN_OR_RETURN(EmbeddingStore store,
                        EmbeddingStore::Open(input_path));
  if (store.sharded()) {
    return Status::InvalidArgument(input_path +
                                   " is already a shard container");
  }
  if (!store.has_attribute_factors()) {
    return Status::InvalidArgument(
        "sharding needs the xf/xb/y factor blocks (artifact method '" +
        store.method() + "' lacks them)");
  }
  const ConstMatrixView xf = store.xf();
  const ConstMatrixView xb = store.xb();
  const ConstMatrixView y = store.y();
  const int64_t n = xf.rows();
  const int64_t d = y.rows();
  const int64_t h = xf.cols();

  // Derive the full Z once with the unsharded engine's exact kernel
  // sequence, then slice rows: GemmRows fills each output row
  // independently, so shard slices are bitwise the unsharded Z rows.
  DenseMatrix gram, z;
  GemmTransA(y, y, &gram);
  Gemm(xb, gram, &z);

  const ShardPlan plan = MakeShardPlan(n, d, num_shards);
  for (const ShardSpec& ranges : plan.shards) {
    store::ShardExtents extents;
    extents.meta = ranges;
    extents.meta.dim = h;
    extents.meta.has_attributes = true;
    extents.meta.has_links = true;
    extents.meta.method = store.method();
    extents.xf = {xf.Row(0), n, h};
    extents.xb = {xb.Row(0), n, h};
    if (ranges.attr_end > ranges.attr_begin) {
      extents.y = {y.Row(ranges.attr_begin), ranges.attr_end - ranges.attr_begin,
                   h};
    }
    if (ranges.node_end > ranges.node_begin) {
      extents.z = {z.Row(ranges.node_begin),
                   ranges.node_end - ranges.node_begin, h};
    }
    store::ContainerWriter writer;
    std::string meta_buf;
    PANE_RETURN_NOT_OK(store::AppendShardStreams(extents, &meta_buf, &writer));
    const std::string path =
        out_prefix + "." + std::to_string(ranges.shard_index);
    PANE_RETURN_NOT_OK(writer.WriteTo(path));
    if (out_paths != nullptr) out_paths->push_back(path);
  }
  return Status::OK();
}

std::string FormatPlanResponse(const ShardSpec& spec) {
  std::string out = "plan ok shard=";
  out += std::to_string(spec.shard_index);
  out += '/';
  out += std::to_string(spec.shard_count);
  out += " nodes=";
  out += std::to_string(spec.node_begin);
  out += ':';
  out += std::to_string(spec.node_end);
  out += '/';
  out += std::to_string(spec.num_nodes);
  out += " attrs=";
  out += std::to_string(spec.attr_begin);
  out += ':';
  out += std::to_string(spec.attr_end);
  out += '/';
  out += std::to_string(spec.num_attributes);
  out += " dim=";
  out += std::to_string(spec.dim);
  out += " attr_scoring=";
  out += spec.has_attributes ? '1' : '0';
  out += " link_scoring=";
  out += spec.has_links ? '1' : '0';
  return out;
}

Result<ShardSpec> ParsePlanResponse(std::string_view payload) {
  const std::vector<std::string_view> tokens = SplitWhitespace(payload);
  if (tokens.size() != 8 || tokens[0] != "plan" || tokens[1] != "ok") {
    return Status::InvalidArgument("not a plan response: " +
                                   std::string(payload));
  }
  ShardSpec spec;
  const auto field = [&tokens](size_t i, std::string_view key)
      -> Result<std::string_view> {
    const std::string_view token = tokens[i];
    if (token.size() <= key.size() + 1 ||
        token.substr(0, key.size()) != key || token[key.size()] != '=') {
      return Status::InvalidArgument("plan response field " +
                                     std::to_string(i) + " is not " +
                                     std::string(key) + "=...");
    }
    return token.substr(key.size() + 1);
  };
  PANE_ASSIGN_OR_RETURN(std::string_view shard, field(2, "shard"));
  PANE_ASSIGN_OR_RETURN(std::string_view nodes, field(3, "nodes"));
  PANE_ASSIGN_OR_RETURN(std::string_view attrs, field(4, "attrs"));
  PANE_ASSIGN_OR_RETURN(std::string_view dim, field(5, "dim"));
  PANE_ASSIGN_OR_RETURN(std::string_view attr_scoring,
                        field(6, "attr_scoring"));
  PANE_ASSIGN_OR_RETURN(std::string_view link_scoring,
                        field(7, "link_scoring"));

  const auto range = [](std::string_view token, int64_t* begin, int64_t* end,
                        int64_t* total) {
    const size_t slash = token.rfind('/');
    if (slash == std::string_view::npos) return false;
    return SplitPair(token.substr(0, slash), ':', begin, end) &&
           ParseCount(token.substr(slash + 1), total);
  };
  bool ok = SplitPair(shard, '/', &spec.shard_index, &spec.shard_count);
  ok = ok && range(nodes, &spec.node_begin, &spec.node_end, &spec.num_nodes);
  ok = ok &&
       range(attrs, &spec.attr_begin, &spec.attr_end, &spec.num_attributes);
  ok = ok && ParseCount(dim, &spec.dim);
  ok = ok && (attr_scoring == "0" || attr_scoring == "1") &&
       (link_scoring == "0" || link_scoring == "1");
  if (!ok) {
    return Status::InvalidArgument("malformed plan response: " +
                                   std::string(payload));
  }
  spec.has_attributes = attr_scoring == "1";
  spec.has_links = link_scoring == "1";
  if (spec.shard_count <= 0 || spec.shard_index < 0 ||
      spec.shard_index >= spec.shard_count || spec.node_begin < 0 ||
      spec.node_end < spec.node_begin || spec.node_end > spec.num_nodes ||
      spec.attr_begin < 0 || spec.attr_end < spec.attr_begin ||
      spec.attr_end > spec.num_attributes || spec.dim <= 0) {
    return Status::InvalidArgument("inconsistent plan response: " +
                                   std::string(payload));
  }
  return spec;
}

}  // namespace serve
}  // namespace pane
