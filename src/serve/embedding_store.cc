#include "src/serve/embedding_store.h"

#include <cmath>
#include <cstring>
#include <memory>

#include "src/store/embedding_pages.h"

namespace pane {
namespace serve {
namespace {

namespace fmt = embedding_format;

/// Bounds-checked cursor over the mapped bytes. All multi-byte fields go
/// through memcpy: the mapping carries no alignment guarantee for the
/// header fields, and a misaligned int64 load is UB even on x86.
class MapCursor {
 public:
  MapCursor(const char* base, int64_t size) : p_(base), remaining_(size) {}

  int64_t remaining() const { return remaining_; }
  const char* position() const { return p_; }

  template <typename T>
  Status ReadPod(T* value) {
    if (remaining_ < static_cast<int64_t>(sizeof(T))) {
      return Status::IOError("truncated embedding artifact");
    }
    std::memcpy(value, p_, sizeof(T));
    p_ += sizeof(T);
    remaining_ -= static_cast<int64_t>(sizeof(T));
    return Status::OK();
  }

  Status Skip(int64_t count) {
    if (remaining_ < count) {
      return Status::IOError("truncated embedding artifact");
    }
    p_ += count;
    remaining_ -= count;
    return Status::OK();
  }

 private:
  const char* p_;
  int64_t remaining_;
};

/// One matrix record: shape validated against the remaining mapped bytes,
/// then either viewed in place (payload 8-byte aligned) or copied into
/// `owned`. `*zero_copy` is cleared when any matrix needs the copy path.
Status ParseMatrix(MapCursor* cursor, DenseMatrix* owned,
                   ConstMatrixView* view, bool* zero_copy) {
  int64_t rows = 0, cols = 0;
  PANE_RETURN_NOT_OK(cursor->ReadPod(&rows));
  PANE_RETURN_NOT_OK(cursor->ReadPod(&cols));
  if (rows < 0 || cols < 0) {
    return Status::IOError("negative matrix shape in embedding artifact");
  }
  const int64_t max_doubles =
      cursor->remaining() / static_cast<int64_t>(sizeof(double));
  if (rows > 0 && cols > max_doubles / rows) {
    return Status::IOError(
        "matrix shape in embedding artifact exceeds the mapped size");
  }
  const char* payload = cursor->position();
  const int64_t bytes = rows * cols * static_cast<int64_t>(sizeof(double));
  PANE_RETURN_NOT_OK(cursor->Skip(bytes));
  if (reinterpret_cast<uintptr_t>(payload) % alignof(double) == 0) {
    *view = ConstMatrixView(reinterpret_cast<const double*>(payload), rows,
                            cols);
    return Status::OK();
  }
  // Version-1 artifacts put payloads at odd offsets; copy once at open.
  *zero_copy = false;
  owned->Resize(rows, cols);
  std::memcpy(owned->data(), payload, static_cast<size_t>(bytes));
  *view = owned->View();
  return Status::OK();
}

}  // namespace

FloatMatrix ToFloatMatrix(ConstMatrixView m, bool l2_normalize) {
  FloatMatrix out;
  out.Resize(m.rows(), m.cols());
  for (int64_t i = 0; i < m.rows(); ++i) {
    const double* src = m.Row(i);
    float* dst = out.MutableRow(i);
    double norm_sq = 0.0;
    for (int64_t j = 0; j < m.cols(); ++j) norm_sq += src[j] * src[j];
    const double inv =
        (l2_normalize && norm_sq > 0.0) ? 1.0 / std::sqrt(norm_sq) : 1.0;
    for (int64_t j = 0; j < m.cols(); ++j) {
      dst[j] = static_cast<float>(src[j] * inv);
    }
  }
  return out;
}

Result<EmbeddingStore> EmbeddingStore::Open(
    const std::string& path, const EmbeddingStoreOptions& options) {
  if (store::Container::PathIsContainer(path)) {
    EmbeddingStore store;
    PANE_ASSIGN_OR_RETURN(store::Container container,
                          store::Container::Open(path));
    store.container_ =
        std::make_unique<store::Container>(std::move(container));
    if (store::HasShardStreams(*store.container_)) {
      // One shard of a split artifact: full xf/xb, y/z slices, no features.
      PANE_ASSIGN_OR_RETURN(
          store::ShardExtents extents,
          store::ReadShardStreams(*store.container_,
                                  options.verify_checksums));
      store.shard_ = std::make_unique<store::ShardMeta>(extents.meta);
      store.method_ = store.shard_->method;
      const auto view_of = [](const store::MatrixExtent& e) {
        return e.present() ? ConstMatrixView(e.data, e.rows, e.cols)
                           : ConstMatrixView();
      };
      store.xf_ = view_of(extents.xf);
      store.xb_ = view_of(extents.xb);
      store.y_ = view_of(extents.y);
      store.z_ = view_of(extents.z);
      store.zero_copy_ = true;
      PANE_RETURN_NOT_OK(store.FinishOpen(path, options));
      return store;
    }
    if (!store::HasEmbeddingStreams(*store.container_)) {
      return Status::InvalidArgument("container " + path +
                                     " holds no embedding artifact");
    }
    PANE_ASSIGN_OR_RETURN(
        store::EmbeddingExtents extents,
        store::ReadEmbeddingStreams(*store.container_,
                                    options.verify_checksums));
    if (extents.link_convention < 0 ||
        extents.link_convention >
            static_cast<int8_t>(LinkConvention::kAsymmetricDot)) {
      return Status::InvalidArgument("bad link convention in " + path);
    }
    if (extents.attribute_convention < 0 ||
        extents.attribute_convention >
            static_cast<int8_t>(AttributeConvention::kFactors)) {
      return Status::InvalidArgument("bad attribute convention in " + path);
    }
    store.method_ = std::move(extents.method);
    store.link_convention_ =
        static_cast<LinkConvention>(extents.link_convention);
    store.attribute_convention_ =
        static_cast<AttributeConvention>(extents.attribute_convention);
    const auto view_of = [](const store::MatrixExtent& e) {
      return e.present() ? ConstMatrixView(e.data, e.rows, e.cols)
                         : ConstMatrixView();
    };
    store.features_ = view_of(extents.features);
    store.xf_ = view_of(extents.xf);
    store.xb_ = view_of(extents.xb);
    store.y_ = view_of(extents.y);
    // Container payloads are page-aligned: the views always point straight
    // into the mapping.
    store.zero_copy_ = true;
    PANE_RETURN_NOT_OK(store.FinishOpen(path, options));
    return store;
  }

  EmbeddingStore store;
  PANE_ASSIGN_OR_RETURN(store.map_, MappedFile::OpenReadOnly(path));
  MapCursor cursor(store.map_.data(), store.map_.size());

  uint64_t magic = 0;
  PANE_RETURN_NOT_OK(cursor.ReadPod(&magic));
  if (magic != fmt::kMagic) {
    return Status::InvalidArgument("not a NodeEmbedding artifact: " + path);
  }
  uint32_t version = 0;
  PANE_RETURN_NOT_OK(cursor.ReadPod(&version));
  if (version != fmt::kVersionUnaligned && version != fmt::kVersionAligned) {
    return Status::InvalidArgument("unsupported NodeEmbedding version in " +
                                   path);
  }
  uint32_t method_len = 0;
  PANE_RETURN_NOT_OK(cursor.ReadPod(&method_len));
  if (method_len > fmt::kMaxMethodNameLength) {
    return Status::InvalidArgument("implausible method-name length in " +
                                   path);
  }
  if (cursor.remaining() < static_cast<int64_t>(method_len)) {
    return Status::IOError("truncated embedding artifact");
  }
  store.method_.assign(cursor.position(), method_len);
  PANE_RETURN_NOT_OK(cursor.Skip(method_len));

  int8_t link = 0, attr = 0;
  PANE_RETURN_NOT_OK(cursor.ReadPod(&link));
  PANE_RETURN_NOT_OK(cursor.ReadPod(&attr));
  if (link < 0 || link > static_cast<int8_t>(LinkConvention::kAsymmetricDot)) {
    return Status::InvalidArgument("bad link convention in " + path);
  }
  if (attr < 0 || attr > static_cast<int8_t>(AttributeConvention::kFactors)) {
    return Status::InvalidArgument("bad attribute convention in " + path);
  }
  store.link_convention_ = static_cast<LinkConvention>(link);
  store.attribute_convention_ = static_cast<AttributeConvention>(attr);

  uint8_t mask = 0;
  PANE_RETURN_NOT_OK(cursor.ReadPod(&mask));
  if ((mask & ~fmt::kKnownMaskBits) != 0) {
    return Status::InvalidArgument("unknown presence-mask bits in " + path);
  }
  if (version == fmt::kVersionAligned) {
    PANE_RETURN_NOT_OK(
        cursor.Skip(fmt::PaddingFor(fmt::HeaderBytes(method_len))));
  }

  store.zero_copy_ = true;
  PANE_RETURN_NOT_OK(ParseMatrix(&cursor, &store.owned_features_,
                                 &store.features_, &store.zero_copy_));
  if (mask & fmt::kHasXf) {
    PANE_RETURN_NOT_OK(ParseMatrix(&cursor, &store.owned_xf_, &store.xf_,
                                   &store.zero_copy_));
  }
  if (mask & fmt::kHasXb) {
    PANE_RETURN_NOT_OK(ParseMatrix(&cursor, &store.owned_xb_, &store.xb_,
                                   &store.zero_copy_));
  }
  if (mask & fmt::kHasY) {
    PANE_RETURN_NOT_OK(ParseMatrix(&cursor, &store.owned_y_, &store.y_,
                                   &store.zero_copy_));
  }

  PANE_RETURN_NOT_OK(store.FinishOpen(path, options));
  return store;
}

Status EmbeddingStore::FinishOpen(const std::string& path,
                                  const EmbeddingStoreOptions& options) {
  // Cross-matrix consistency. Shard artifacts carry no features block —
  // their shapes were already validated against the shard meta's declared
  // ranges by ReadShardStreams — so only the factor relations apply.
  if (!sharded() && features_.rows() * features_.cols() == 0) {
    return Status::InvalidArgument("embedding artifact has no features: " +
                                   path);
  }
  const bool has_xf = xf_.rows() > 0;
  const bool has_xb = xb_.rows() > 0;
  const int64_t expected_rows = sharded() ? xf_.rows() : features_.rows();
  if (has_xf != has_xb ||
      (has_xf && (xf_.rows() != expected_rows ||
                  xf_.rows() != xb_.rows() || xf_.cols() != xb_.cols()))) {
    return Status::InvalidArgument(
        "inconsistent factor blocks in embedding artifact: " + path);
  }
  if (y_.rows() > 0 && (!has_xf || y_.cols() != xf_.cols())) {
    return Status::InvalidArgument(
        "attribute factor inconsistent with node factors in: " + path);
  }

  if (options.float_copies) {
    const bool norm = options.l2_normalize_floats;
    if (has_node_factors()) {
      xf_f32_ = ToFloatMatrix(xf_, norm);
      xb_f32_ = ToFloatMatrix(xb_, norm);
      if (y_.rows() > 0) {
        y_f32_ = ToFloatMatrix(y_, norm);
      }
    } else {
      features_f32_ = ToFloatMatrix(features_, norm);
    }
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace pane
