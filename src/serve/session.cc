#include "src/serve/session.h"

#include <cstring>
#include <utility>

#include "src/common/timer.h"
#include "src/serve/line_protocol.h"

namespace pane {
namespace serve {

ServeSession::ServeSession(PaneServer* server, Protocol requested)
    : server_(server),
      requested_(requested),
      timed_(server->metrics() != nullptr) {
  batch_.reserve(static_cast<size_t>(server_->options().batch_size));
}

ConnectionHandler::Action ServeSession::OnData(std::string* input,
                                               std::string* output) {
  return Pump(input, output, /*at_eof=*/false);
}

void ServeSession::OnEof(std::string* input, std::string* output) {
  Pump(input, output, /*at_eof=*/true);
}

void ServeSession::PushPayload(std::string_view payload) {
  if (timed_ && batch_.empty()) batch_first_us_ = MonotonicMicros();
  PaneServer::BatchEntry entry;
  const auto parsed = ParseRequestLine(payload);
  if (parsed.ok()) {
    entry.request = *parsed;
  } else {
    entry.parse_error = true;
    entry.error = parsed.status().message();
  }
  batch_.push_back(std::move(entry));
}

void ServeSession::FlushBatch(std::string* output) {
  if (batch_.empty()) return;
  if (timed_) {
    trace_.Add(obs::Stage::kBatchWait,
               MonotonicMicros() - batch_first_us_);
  }
  std::vector<std::string> responses;
  server_->ExecuteBatch(&batch_, &responses, &quit_,
                        timed_ ? &trace_ : nullptr);
  const int64_t encode_start_us = timed_ ? MonotonicMicros() : 0;
  for (const std::string& response : responses) {
    codec_->Encode(response, output);
  }
  if (timed_) {
    server_->RecordStageTime(obs::Stage::kEncode,
                             MonotonicMicros() - encode_start_us);
    trace_.Reset();
  }
}

ConnectionHandler::Action ServeSession::Pump(std::string* input,
                                             std::string* output,
                                             bool at_eof) {
  if (quit_) {
    // Everything after `quit` is ignored, exactly like the getline loop
    // that stopped reading once the quit batch flushed.
    input->clear();
    return Action::kClose;
  }
  if (codec_ == nullptr) {
    if (input->empty()) return at_eof ? Action::kClose : Action::kKeepOpen;
    codec_ = MakeCodec(
        requested_, static_cast<unsigned char>((*input)[0]),
        static_cast<size_t>(server_->options().max_frame_bytes));
  }
  const bool framed = std::strcmp(codec_->name(), "frame") == 0;
  const int64_t batch_size = server_->options().batch_size;

  size_t pos = 0;
  bool close = false;
  while (!close) {
    // Decode = framing scan + request parse; only completed messages are
    // charged (a partial tail or flush marker is noise, not a stage).
    const int64_t decode_start_us = timed_ ? MonotonicMicros() : 0;
    std::string_view payload;
    std::string error;
    const ProtocolCodec::Decoded decoded =
        codec_->Decode(*input, &pos, &payload, &error);
    if (decoded == ProtocolCodec::Decoded::kNeedMore) break;
    if (decoded == ProtocolCodec::Decoded::kFlush) {
      FlushBatch(output);
      continue;
    }
    if (decoded == ProtocolCodec::Decoded::kError) {
      // Answer everything decoded before the bad bytes, then the error
      // itself, then hang up — the stream is unrecoverable past this.
      FlushBatch(output);
      PaneServer::BatchEntry entry;
      entry.parse_error = true;
      entry.error = std::move(error);
      batch_.push_back(std::move(entry));
      FlushBatch(output);
      close = true;
      break;
    }
    if (framed) server_->RecordFrames();
    PushPayload(payload);
    if (timed_) {
      trace_.Add(obs::Stage::kDecode, MonotonicMicros() - decode_start_us);
    }
    const PaneServer::BatchEntry& last = batch_.back();
    const bool is_quit =
        !last.parse_error && last.request.type == Request::Type::kQuit;
    if (static_cast<int64_t>(batch_.size()) >= batch_size || is_quit) {
      FlushBatch(output);
      if (quit_) close = true;
    }
  }
  input->erase(0, pos);
  if (close) {
    input->clear();
    return Action::kClose;
  }
  if (at_eof) {
    if (!input->empty()) {
      std::string_view payload;
      std::string error;
      if (codec_->DecodeFinal(*input, &payload, &error)) {
        PushPayload(payload);
      } else if (!error.empty()) {
        PaneServer::BatchEntry entry;
        entry.parse_error = true;
        entry.error = std::move(error);
        batch_.push_back(std::move(entry));
      }
      input->clear();
    }
    FlushBatch(output);
    return Action::kClose;
  }
  // Input drained with no complete message left: answer what we have now
  // rather than waiting for bytes that may never come (the event-loop
  // equivalent of the old in_avail() <= 0 flush).
  FlushBatch(output);
  return Action::kKeepOpen;
}

}  // namespace serve
}  // namespace pane
