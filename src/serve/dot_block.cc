#include "src/serve/dot_block.h"

#include "src/serve/dot_block_impl.h"

namespace pane {
namespace serve {

namespace detail {

void DotBlockGeneric(const double* qt, int64_t h, int64_t ld,
                     const double* cand, double* out, int64_t out_stride,
                     bool add) {
  DotBlockDriver(qt, h, ld, cand, out, out_stride, add);
}

}  // namespace detail

DotBlockFn GetDotBlock() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // Resolved once; __builtin_cpu_supports reads cpuid through a cached
  // libgcc probe, but keep the static anyway so the choice is a plain load.
  static const DotBlockFn chosen = __builtin_cpu_supports("avx2")
                                       ? detail::DotBlockAvx2
                                       : detail::DotBlockGeneric;
  return chosen;
#else
  return detail::DotBlockGeneric;
#endif
}

}  // namespace serve
}  // namespace pane
