// The serving engine's blocked dot-product kernel, behind a runtime ISA
// dispatch. One translation unit compiles the shared implementation
// (dot_block_impl.h) at the build's baseline ISA, a second compiles the
// same code with AVX2 enabled (x86-64 only, no FMA — fused multiply-add
// would change rounding and break the bitwise contract with
// vector_ops::Dot); GetDotBlock() picks the widest variant the running CPU
// supports, once, at first use.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace pane {
namespace serve {

/// Scores one candidate row against a transposed query block of width ld:
/// writes the inner product of query q (column q of `qt`) with `cand`
/// (length h) to out[q * out_stride] for every q in [0, ld). Per-pair
/// accumulation is bitwise identical to vector_ops::Dot.
using DotBlockFn = void (*)(const double* qt, int64_t h, int64_t ld,
                            const double* cand, double* out,
                            int64_t out_stride, bool add);

/// The best variant for this CPU (resolved once; thread-safe).
DotBlockFn GetDotBlock();

/// Panel widths with fast compile-time kernels. Blocks are padded up to
/// one of these (zero-filled query columns; their outputs are ignored) —
/// an arbitrary runtime width falls back to a ~3x slower scalar path.
inline int64_t PadDotBlockWidth(int64_t b) {
  for (const int64_t w : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8},
                          int64_t{16}, int64_t{32}, int64_t{64}}) {
    if (b <= w) return w;
  }
  return b;
}

namespace detail {
void DotBlockGeneric(const double* qt, int64_t h, int64_t ld,
                     const double* cand, double* out, int64_t out_stride,
                     bool add);
#if defined(__x86_64__)
void DotBlockAvx2(const double* qt, int64_t h, int64_t ld,
                  const double* cand, double* out, int64_t out_stride,
                  bool add);
#endif
}  // namespace detail

}  // namespace serve
}  // namespace pane
