#include "src/serve/router.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/matrix/gemm.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/embedding_store.h"
#include "src/serve/frame_protocol.h"

namespace pane {
namespace serve {
namespace {

/// The one degradation payload: every query touched by an unreachable
/// shard answers this, never a top-k silently merged from a subset.
const char kShardUnavailable[] = "err shard unavailable";

ServerOptions ShardServerOptions(const ServerOptions& options) {
  ServerOptions shard = options;
  shard.cache_capacity = 0;  // the router's cache is the only cache
  shard.slow_query_us = 0;   // only the fronting server logs slow queries
  return shard;
}

}  // namespace

// ---- LocalShard ----------------------------------------------------------

LocalShard::LocalShard(const QueryEngine* engine,
                       const ServerOptions& options, int shard_index)
    : server_(engine, ShardServerOptions(options)),
      name_("local:" + std::to_string(shard_index)) {}

Status LocalShard::Execute(const std::vector<std::string>& requests,
                           std::vector<std::string>* responses) {
  std::vector<PaneServer::BatchEntry> batch;
  batch.reserve(requests.size());
  for (const std::string& payload : requests) {
    PaneServer::BatchEntry entry;
    const auto parsed = ParseRequestLine(payload);
    if (parsed.ok()) {
      entry.request = *parsed;
    } else {
      entry.parse_error = true;
      entry.error = parsed.status().message();
    }
    batch.push_back(std::move(entry));
  }
  bool quit = false;
  server_.ExecuteBatch(&batch, responses, &quit);
  return Status::OK();
}

// ---- RemoteShard ---------------------------------------------------------

RemoteShard::RemoteShard(std::string address, const RouterOptions& options)
    : address_(std::move(address)),
      hop_timeout_ms_(options.hop_timeout_ms),
      max_frame_payload_(options.max_frame_bytes > 0
                             ? static_cast<size_t>(options.max_frame_bytes)
                             : kMaxFramePayload) {}

Status RemoteShard::EnsureConnected(int64_t deadline_ms) {
  if (conn_.connected()) return Status::OK();
  const auto budget = [deadline_ms]() {
    return deadline_ms - ShardConnection::NowMs();
  };
  // Retry the connect once: a shard restarting between batches costs one
  // extra round, not a dead hop.
  Status status = conn_.Connect(address_, budget());
  if (!status.ok() && budget() > 0) {
    status = conn_.Connect(address_, budget());
  }
  return status;
}

Status RemoteShard::Execute(const std::vector<std::string>& requests,
                            std::vector<std::string>* responses) {
  const int64_t deadline_ms = ShardConnection::NowMs() + hop_timeout_ms_;
  PANE_RETURN_NOT_OK(EnsureConnected(deadline_ms));

  std::string wire;
  for (const std::string& payload : requests) {
    AppendFrame(payload, &wire);
  }
  Status status = conn_.SendAll(wire, deadline_ms);
  if (!status.ok()) {
    conn_.Close();
    return status;
  }

  FrameCodec codec(max_frame_payload_);
  std::string buffer;
  size_t pos = 0;
  responses->clear();
  responses->reserve(requests.size());
  while (responses->size() < requests.size()) {
    std::string_view payload;
    std::string error;
    const ProtocolCodec::Decoded decoded =
        codec.Decode(buffer, &pos, &payload, &error);
    if (decoded == ProtocolCodec::Decoded::kMessage) {
      responses->emplace_back(payload);
      continue;
    }
    if (decoded == ProtocolCodec::Decoded::kNeedMore) {
      status = conn_.RecvSome(&buffer, deadline_ms);
      if (!status.ok()) {
        conn_.Close();
        return status;
      }
      continue;
    }
    conn_.Close();
    return Status::IOError("bad frame from shard " + address_ + ": " + error);
  }
  return Status::OK();
}

// ---- Router --------------------------------------------------------------

Result<Router> Router::Create(
    std::vector<std::unique_ptr<ShardBackend>> shards,
    const RouterOptions& options) {
  if (shards.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  Router router;
  router.options_ = options;
  router.shards_ = std::move(shards);
  router.health_mutex_ = std::make_unique<Mutex>();
  router.health_.resize(router.shards_.size());
  for (size_t i = 0; i < router.health_.size(); ++i) {
    if (options.metrics != nullptr) {
      router.health_[i].latency = options.metrics->GetHistogram(
          "pane_router_hop_us", "shard=\"" + std::to_string(i) + "\"");
    } else {
      router.owned_latency_.push_back(std::make_unique<obs::Histogram>());
      router.health_[i].latency = router.owned_latency_.back().get();
    }
  }

  // Plan handshake: every backend reports its spec; together they must
  // tile one consistent plan. Sequential — startup, not the hot path.
  std::vector<ShardSpec> specs;
  specs.reserve(router.shards_.size());
  const std::vector<std::string> plan_request = {"plan"};
  for (size_t i = 0; i < router.shards_.size(); ++i) {
    std::vector<std::string> replies;
    PANE_RETURN_NOT_OK(router.shards_[i]->Execute(plan_request, &replies));
    if (replies.size() != 1) {
      return Status::IOError("shard " + router.shards_[i]->describe() +
                             " answered " + std::to_string(replies.size()) +
                             " payloads to `plan`");
    }
    PANE_ASSIGN_OR_RETURN(ShardSpec spec, ParsePlanResponse(replies[0]));
    specs.push_back(std::move(spec));
  }
  PANE_RETURN_NOT_OK(ValidateShardSpecs(specs, &router.plan_));
  const int64_t now = ShardConnection::NowMs();
  for (ShardHealth& h : router.health_) h.last_alive_ms = now;
  return router;
}

Status Router::CallShard(size_t shard,
                         const std::vector<std::string>& requests,
                         std::vector<std::string>* responses) {
  const int64_t start_us = MonotonicMicros();
  const Status status = shards_[shard]->Execute(requests, responses);
  const int64_t elapsed_us = MonotonicMicros() - start_us;
  MutexLock lock(health_mutex_.get());
  ShardHealth& h = health_[shard];
  h.requests += requests.size();
  if (status.ok()) {
    h.alive = true;
    h.last_alive_ms = ShardConnection::NowMs();
    h.latency->Record(elapsed_us);
  } else {
    h.alive = false;
    h.errors += requests.size();
  }
  return status;
}

void Router::ForEachShard(const std::function<void(size_t)>& fn) {
  const int64_t count = static_cast<int64_t>(shards_.size());
  if (options_.pool != nullptr && options_.pool->num_threads() > 1 &&
      count > 1) {
    ParallelFor(options_.pool, 0, count, [&fn](int64_t begin, int64_t end) {
      for (int64_t s = begin; s < end; ++s) {
        fn(static_cast<size_t>(s));
      }
    });
  } else {
    for (int64_t s = 0; s < count; ++s) fn(static_cast<size_t>(s));
  }
}

std::vector<std::string> Router::MergeTopKFamily(
    const std::vector<Request>& requests, Request::Type type,
    obs::RequestTrace* trace) {
  std::vector<std::string> out(requests.size());
  if (requests.empty()) return out;
  std::vector<std::string> payloads;
  payloads.reserve(requests.size());
  for (const Request& r : requests) payloads.push_back(FormatRequest(r));

  const size_t num_shards = shards_.size();
  std::vector<std::vector<std::string>> replies(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  // rankings[i][s]: request i's already-sorted ranking from shard s. A
  // shard reply that fails to parse demotes the shard to unavailable —
  // merging a garbled ranking would break the bitwise guarantee. Parsing
  // runs inside the fan-out (each task touches only its own column s), so
  // the serial tail is just the merge + reformat below.
  std::vector<std::vector<Ranking>> rankings(
      requests.size(), std::vector<Ranking>(num_shards));
  const int64_t fanout_start_us =
      trace != nullptr ? MonotonicMicros() : 0;
  ForEachShard([&](size_t s) {
    statuses[s] = CallShard(s, payloads, &replies[s]);
    if (!statuses[s].ok()) return;
    if (replies[s].size() != requests.size()) {
      statuses[s] = Status::IOError("shard answered a short batch");
      return;
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      const Status parsed = ParseRankingResponse(
          replies[s][i], type, requests[i].a, &rankings[i][s]);
      if (!parsed.ok()) {
        statuses[s] = parsed;
        return;
      }
    }
  });
  const int64_t merge_start_us = trace != nullptr ? MonotonicMicros() : 0;
  if (trace != nullptr) {
    trace->Add(obs::Stage::kFanout, merge_start_us - fanout_start_us);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (statuses[s].ok()) continue;
    PANE_LOG(WARNING) << "shard " << shards_[s]->describe()
                      << " unavailable: " << statuses[s].message();
    for (std::string& response : out) response = kShardUnavailable;
    return out;
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    out[i] = FormatRanking(requests[i],
                           MergeTopK(rankings[i], requests[i].k));
  }
  if (trace != nullptr) {
    trace->Add(obs::Stage::kMerge, MonotonicMicros() - merge_start_us);
  }
  return out;
}

std::vector<std::string> Router::TopKAttributes(
    const std::vector<Request>& requests, obs::RequestTrace* trace) {
  return MergeTopKFamily(requests, Request::Type::kTopKAttributes, trace);
}

std::vector<std::string> Router::TopKTargets(
    const std::vector<Request>& requests, obs::RequestTrace* trace) {
  return MergeTopKFamily(requests, Request::Type::kTopKTargets, trace);
}

size_t Router::OwnerShard(int64_t id, bool by_attribute) const {
  for (size_t s = 0; s < plan_.shards.size(); ++s) {
    const ShardSpec& spec = plan_.shards[s];
    const int64_t begin = by_attribute ? spec.attr_begin : spec.node_begin;
    const int64_t end = by_attribute ? spec.attr_end : spec.node_end;
    if (id >= begin && id < end) return s;
  }
  PANE_CHECK(false) << "candidate id " << id
                    << " outside the validated plan ranges";
  return 0;
}

std::vector<std::string> Router::RoutePairs(
    const std::vector<Request>& requests, bool by_attribute,
    obs::RequestTrace* trace) {
  std::vector<std::string> out(requests.size());
  if (requests.empty()) return out;
  const size_t num_shards = shards_.size();
  std::vector<std::vector<std::string>> payloads(num_shards);
  std::vector<std::vector<size_t>> owners(num_shards);
  for (size_t i = 0; i < requests.size(); ++i) {
    const size_t s = OwnerShard(requests[i].b, by_attribute);
    payloads[s].push_back(FormatRequest(requests[i]));
    owners[s].push_back(i);
  }
  std::vector<std::vector<std::string>> replies(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  const int64_t fanout_start_us =
      trace != nullptr ? MonotonicMicros() : 0;
  ForEachShard([&](size_t s) {
    if (payloads[s].empty()) return;
    statuses[s] = CallShard(s, payloads[s], &replies[s]);
    if (statuses[s].ok() && replies[s].size() != payloads[s].size()) {
      statuses[s] = Status::IOError("shard answered a short batch");
    }
  });
  const int64_t merge_start_us = trace != nullptr ? MonotonicMicros() : 0;
  if (trace != nullptr) {
    trace->Add(obs::Stage::kFanout, merge_start_us - fanout_start_us);
  }
  // Pair responses forward verbatim: the shard already formats
  // "pattr <a> <b> ok <score>", byte-equal to the unsharded server's. A
  // dead owner degrades only its own pairs — the other shards' answers
  // stand.
  for (size_t s = 0; s < num_shards; ++s) {
    if (payloads[s].empty()) continue;
    if (!statuses[s].ok()) {
      PANE_LOG(WARNING) << "shard " << shards_[s]->describe()
                        << " unavailable: " << statuses[s].message();
      for (const size_t i : owners[s]) out[i] = kShardUnavailable;
      continue;
    }
    for (size_t j = 0; j < owners[s].size(); ++j) {
      out[owners[s][j]] = std::move(replies[s][j]);
    }
  }
  if (trace != nullptr) {
    trace->Add(obs::Stage::kMerge, MonotonicMicros() - merge_start_us);
  }
  return out;
}

std::vector<std::string> Router::AttributeScores(
    const std::vector<Request>& requests, obs::RequestTrace* trace) {
  return RoutePairs(requests, /*by_attribute=*/true, trace);
}

std::vector<std::string> Router::LinkScores(
    const std::vector<Request>& requests, obs::RequestTrace* trace) {
  return RoutePairs(requests, /*by_attribute=*/false, trace);
}

std::string Router::StatsSuffix() const {
  std::string out;
  const int64_t now = ShardConnection::NowMs();
  MutexLock lock(health_mutex_.get());
  for (size_t s = 0; s < health_.size(); ++s) {
    const ShardHealth& h = health_[s];
    const obs::Histogram::Snapshot latency = h.latency->TakeSnapshot();
    const std::string prefix = " shard" + std::to_string(s) + '.';
    out += prefix + "requests=" + std::to_string(h.requests);
    out += prefix + "errors=" + std::to_string(h.errors);
    out += prefix + "p50_us=" + std::to_string(latency.p50);
    out += prefix + "p99_us=" + std::to_string(latency.p99);
    out += prefix + "max_us=" + std::to_string(latency.max);
    out += prefix + "alive=" + (h.alive ? "1" : "0");
    out += prefix + "age_ms=" + std::to_string(now - h.last_alive_ms);
  }
  return out;
}

// ---- BuildLocalShards ----------------------------------------------------

Result<LocalFleet> BuildLocalShards(const EmbeddingStore& store,
                                    int num_shards,
                                    const QueryEngineOptions& engine_options,
                                    const ServerOptions& shard_options,
                                    const IvfOptions* ivf) {
  if (num_shards <= 0) {
    return Status::InvalidArgument("shard count must be positive");
  }
  if (store.sharded()) {
    return Status::InvalidArgument(
        "store already holds one shard; local fleets cut an unsharded "
        "artifact");
  }
  if (!store.has_attribute_factors()) {
    return Status::InvalidArgument(
        "sharding needs the xf/xb/y factor blocks (artifact method '" +
        store.method() + "' lacks them)");
  }
  const ConstMatrixView xf = store.xf();
  const ConstMatrixView xb = store.xb();
  const ConstMatrixView y = store.y();
  const int64_t n = xf.rows();
  const int64_t d = y.rows();
  const int64_t h = xf.cols();

  LocalFleet fleet;
  // Full Z once, then row slices: bitwise the unsharded engine's Z (see
  // SplitEmbeddingArtifact, which shares this derivation).
  DenseMatrix gram;
  GemmTransA(y, y, &gram);
  Gemm(xb, gram, &fleet.z);

  const ShardPlan plan = MakeShardPlan(n, d, num_shards);
  for (const ShardSpec& ranges : plan.shards) {
    ShardSpec spec = ranges;
    spec.dim = h;
    spec.has_attributes = true;
    spec.has_links = true;
    spec.method = store.method();
    ConstMatrixView y_slice, z_slice;
    if (spec.attr_end > spec.attr_begin) {
      y_slice = ConstMatrixView(y.Row(spec.attr_begin),
                                spec.attr_end - spec.attr_begin, h);
    }
    if (spec.node_end > spec.node_begin) {
      z_slice = ConstMatrixView(fleet.z.Row(spec.node_begin),
                                spec.node_end - spec.node_begin, h);
    }
    PANE_ASSIGN_OR_RETURN(
        QueryEngine engine,
        QueryEngine::CreateSharded(xf, xb, y_slice, z_slice, spec,
                                   engine_options));
    auto owned = std::make_unique<QueryEngine>(std::move(engine));
    if (ivf != nullptr) {
      PANE_RETURN_NOT_OK(owned->BuildPrunedIndex(*ivf));
    }
    fleet.backends.push_back(std::make_unique<LocalShard>(
        owned.get(), shard_options,
        static_cast<int>(spec.shard_index)));
    fleet.engines.push_back(std::move(owned));
  }
  return fleet;
}

}  // namespace serve
}  // namespace pane
