// The scatter-gather layer of the sharded serving fabric. A Router fronts
// N shard backends — each one EmbeddingStore slice + QueryEngine, either
// in-process (LocalShard) or a remote pane_server reached over the frame
// protocol (RemoteShard) — and answers every query with byte-exactly the
// payload an unsharded server would produce:
//
//   top-k    fan the request out to every shard, parse each shard's
//            already-sorted ranking (global ids), k-way MergeTopK under the
//            (score desc, index asc) total order, reformat. Scores print
//            with %.17g on the shard and parse with strtod here, which
//            round-trips doubles exactly, so parse -> merge -> reformat is
//            byte-stable.
//   pairs    route to the single shard owning the candidate row (pattr by
//            attribute range, pair by target-node range) and forward the
//            response verbatim.
//
// At Create the router handshakes each backend with the `plan` verb and
// cross-validates the reported specs: every shard must agree on the global
// (n, d, dim) and the ranges must tile [0, n) and [0, d) exactly — a fleet
// mixing shards of two different splits is an error at startup, not wrong
// answers at query time.
//
// Degradation: each hop runs under a configurable deadline; a shard that
// cannot be reached (after one reconnect attempt) marks itself dead and
// every query in the affected batch answers `err shard unavailable` —
// top-k answers are never silently computed from a subset of shards. Per-
// shard health (requests, errors, p50/p99/max hop latency, last-alive
// age) is surfaced through StatsSuffix on the router's `stats` response;
// hop latencies live in per-shard `pane_router_hop_us` histograms
// (src/obs/metrics.h), shared with the Prometheus exposition when the
// router is built over a MetricsRegistry.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/matrix/dense_matrix.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/line_protocol.h"
#include "src/serve/server.h"
#include "src/serve/shard_plan.h"
#include "src/serve/transport.h"

namespace pane {

class ThreadPool;

namespace serve {

struct RouterOptions {
  /// Per-hop budget covering connect + send + receive for one batch.
  int64_t hop_timeout_ms = 2000;
  /// Inbound bound on one shard-reply frame (0 = kMaxFramePayload).
  int64_t max_frame_bytes = 0;
  /// Fans batches out across shards concurrently. Null => sequential hops.
  /// Local shards run serial engines, so this pool is the parallelism.
  ThreadPool* pool = nullptr;
  /// Optional registry for the per-shard hop-latency histograms
  /// (pane_router_hop_us{shard="N"}). Null keeps the histograms
  /// router-private (stats still reports them); the registry must outlive
  /// the router.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One shard as the router sees it: a batch of request payloads in, one
/// response payload per request out. Implementations are single-owner —
/// the router serializes calls per backend (fan-out parallelism is across
/// backends, never into one).
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Executes `requests` (line-protocol payloads) as one batch and fills
  /// one response payload per request, in order. A non-OK status means the
  /// shard is unreachable or answered garbage; the router degrades the
  /// whole batch.
  virtual Status Execute(const std::vector<std::string>& requests,
                         std::vector<std::string>* responses) = 0;

  /// Stable human-readable identity ("local:2", "127.0.0.1:7071").
  virtual const std::string& describe() const = 0;
};

/// In-process shard: a sharded QueryEngine behind an internal PaneServer
/// (cache disabled — the router's own cache is the only cache), so local
/// and remote hops answer through the identical ExecuteBatch path.
class LocalShard final : public ShardBackend {
 public:
  /// `engine` must outlive the shard. `options` mirrors the fronting
  /// server's serving semantics (pruned / nprobe / exclude); its cache is
  /// forced off here.
  LocalShard(const QueryEngine* engine, const ServerOptions& options,
             int shard_index);

  Status Execute(const std::vector<std::string>& requests,
                 std::vector<std::string>* responses) override;
  const std::string& describe() const override { return name_; }

 private:
  PaneServer server_;
  std::string name_;
};

/// Remote shard: one blocking ShardConnection speaking the frame protocol,
/// reconnecting (once per Execute) after a drop, with every batch under
/// the router's hop deadline.
class RemoteShard final : public ShardBackend {
 public:
  RemoteShard(std::string address, const RouterOptions& options);

  Status Execute(const std::vector<std::string>& requests,
                 std::vector<std::string>* responses) override;
  const std::string& describe() const override { return address_; }

 private:
  Status EnsureConnected(int64_t deadline_ms);

  std::string address_;
  int64_t hop_timeout_ms_;
  size_t max_frame_payload_;
  ShardConnection conn_;
};

class Router {
 public:
  /// Handshakes every backend with `plan`, validates that the specs tile
  /// one consistent shard plan, and adopts the fleet. At least one shard;
  /// every shard must be reachable at create time.
  static Result<Router> Create(
      std::vector<std::unique_ptr<ShardBackend>> shards,
      const RouterOptions& options);

  Router(Router&&) = default;
  Router& operator=(Router&&) = default;

  // ---- Plan-derived introspection (mirrors QueryEngine's) ---------------
  int64_t num_nodes() const { return plan_.num_nodes; }
  int64_t num_attributes() const { return plan_.num_attributes; }
  int64_t dim() const { return plan_.shards[0].dim; }
  bool supports_attributes() const {
    return plan_.shards[0].has_attributes;
  }
  bool supports_links() const { return plan_.shards[0].has_links; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // ---- Query execution --------------------------------------------------
  // Each call takes pre-validated requests of one family and returns one
  // formatted response payload (no wire framing) per request, in order. A
  // non-null `trace` gets the fan-out and merge stage times stamped onto
  // it (the caller owns recording them into histograms).

  /// Fan-out + merge for kTopKAttributes requests.
  std::vector<std::string> TopKAttributes(
      const std::vector<Request>& requests,
      obs::RequestTrace* trace = nullptr);
  /// Fan-out + merge for kTopKTargets requests.
  std::vector<std::string> TopKTargets(const std::vector<Request>& requests,
                                       obs::RequestTrace* trace = nullptr);
  /// Owner-shard routing for kAttributePair requests.
  std::vector<std::string> AttributeScores(
      const std::vector<Request>& requests,
      obs::RequestTrace* trace = nullptr);
  /// Owner-shard routing for kLinkPair requests.
  std::vector<std::string> LinkScores(const std::vector<Request>& requests,
                                      obs::RequestTrace* trace = nullptr);

  /// " shard0.requests=.. shard0.errors=.. shard0.p50_us=..
  /// shard0.p99_us=.. shard0.max_us=.. shard0.alive=.. shard0.age_ms=..
  /// shard1. ..." — appended to the stats response. The p50_us field keeps
  /// its pre-histogram position and spelling; p99_us / max_us are the
  /// histogram's additions.
  std::string StatsSuffix() const;

 private:
  struct ShardHealth {
    uint64_t requests = 0;
    uint64_t errors = 0;
    /// Hop-latency histogram: registry-owned when RouterOptions.metrics is
    /// set, else one of owned_latency_'s. Never null after Create.
    obs::Histogram* latency = nullptr;
    int64_t last_alive_ms = 0;
    bool alive = true;
  };

  Router() = default;

  /// One tracked hop: delegates to the backend, records latency / health.
  Status CallShard(size_t shard, const std::vector<std::string>& requests,
                   std::vector<std::string>* responses);
  /// Runs fn(shard) for every shard, across the pool when present.
  void ForEachShard(const std::function<void(size_t)>& fn);
  /// Shared fan-out + parse + merge path for both top-k families.
  std::vector<std::string> MergeTopKFamily(
      const std::vector<Request>& requests, Request::Type type,
      obs::RequestTrace* trace);
  /// Shared owner-routing path for both pair families.
  std::vector<std::string> RoutePairs(const std::vector<Request>& requests,
                                      bool by_attribute,
                                      obs::RequestTrace* trace);
  /// Index of the shard whose range holds this candidate id.
  size_t OwnerShard(int64_t id, bool by_attribute) const;

  RouterOptions options_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<ShardBackend>> shards_;

  mutable std::unique_ptr<Mutex> health_mutex_;  // unique_ptr: movable
  std::vector<ShardHealth> health_;
  /// Backing storage for ShardHealth::latency when no registry is supplied
  /// (unique_ptrs: addresses survive Router moves).
  std::vector<std::unique_ptr<obs::Histogram>> owned_latency_;
};

/// A complete in-process shard fleet over one unsharded store: Z derived
/// once (bitwise the unsharded engine's), candidate matrices row-sliced
/// per MakeShardPlan, one serial sharded QueryEngine per shard, one
/// LocalShard backend per engine. The struct owns everything the backends
/// borrow, so keep it alive as long as the Router.
struct LocalFleet {
  DenseMatrix z;
  std::vector<std::unique_ptr<QueryEngine>> engines;
  std::vector<std::unique_ptr<ShardBackend>> backends;
};

/// Builds `num_shards` local shards over `store` (which must stay alive
/// and hold attribute factors). `shard_options` carries the serving
/// semantics for the per-shard servers (pruned / nprobe / exclude);
/// `ivf` non-null builds each shard's pruned indexes with those options.
Result<LocalFleet> BuildLocalShards(const EmbeddingStore& store,
                                    int num_shards,
                                    const QueryEngineOptions& engine_options,
                                    const ServerOptions& shard_options,
                                    const IvfOptions* ivf);

}  // namespace serve
}  // namespace pane
