// The serving stack's codec seam. A ProtocolCodec turns the byte stream of
// one connection into request payloads and wraps response payloads back
// into wire bytes; everything between those two calls (parsing, batching,
// dedup, cache, engine) is payload-format-agnostic. Two implementations
// exist:
//
//   LineCodec   (line_protocol.h)   one request per '\n'-terminated line;
//                                   a blank line is an explicit batch-flush
//                                   marker. The human-debuggable default.
//   FrameCodec  (frame_protocol.h)  length-prefixed binary frames (magic +
//                                   version + u32 length + payload), the
//                                   cheap-to-delimit format for shard hops
//                                   and high-throughput clients.
//
// The payload itself is identical in both codecs — the request / response
// text of line_protocol.h — so the two wire formats decode to byte-equal
// conversations and the differential harness can diff them against one
// golden transcript.
//
// Which codec a connection speaks is decided once, from its first byte
// (DetectProtocol): a frame stream always begins with the non-ASCII frame
// magic, a line stream with a printable verb. A server may also pin the
// codec per ServerOptions instead of sniffing.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace pane {
namespace serve {

/// Wire format selection for a server or a tool endpoint.
enum class Protocol : int8_t {
  kAuto,   ///< sniff per connection from the first byte
  kLine,   ///< newline-delimited text (line_protocol.h)
  kFrame,  ///< length-prefixed binary frames (frame_protocol.h)
};

/// Parses a --protocol flag value ("auto" / "line" / "frame"); returns
/// false on anything else.
bool ParseProtocolName(std::string_view name, Protocol* out);
const char* ProtocolName(Protocol protocol);

class ProtocolCodec {
 public:
  enum class Decoded : int8_t {
    kMessage,   ///< one request payload extracted, *pos advanced past it
    kFlush,     ///< an explicit batch-flush marker (line codec blank line)
    kNeedMore,  ///< no complete message buffered; wait for more bytes
    kError,     ///< unrecoverable framing error; close after answering
  };

  virtual ~ProtocolCodec() = default;

  virtual const char* name() const = 0;

  /// Examines buffer[*pos..). On kMessage fills *payload (a view into
  /// `buffer` — valid only until the buffer mutates) and advances *pos; on
  /// kFlush just advances *pos; on kError fills *error. Never reads past
  /// buffer.size(): every length field is validated against the bytes
  /// actually buffered before anything is trusted.
  virtual Decoded Decode(std::string_view buffer, size_t* pos,
                         std::string_view* payload, std::string* error) = 0;

  /// Appends one response payload, wrapped in this codec's wire format,
  /// to *out.
  virtual void Encode(std::string_view payload, std::string* out) = 0;

  /// End-of-input with a nonempty undecodable remainder. Line treats the
  /// trailing unterminated text as a final request (getline semantics) and
  /// returns true with *payload set; frame reports a truncated frame and
  /// returns false with *error set.
  virtual bool DecodeFinal(std::string_view remainder,
                           std::string_view* payload, std::string* error) = 0;
};

/// Codec for a connection whose first byte is `first`: the frame magic
/// selects FrameCodec, anything else LineCodec. `requested` != kAuto
/// overrides sniffing. `max_frame_payload` bounds inbound frame lengths
/// for the frame codec (0 = the protocol default, kMaxFramePayload).
std::unique_ptr<ProtocolCodec> MakeCodec(Protocol requested,
                                         unsigned char first,
                                         size_t max_frame_payload = 0);

}  // namespace serve
}  // namespace pane
