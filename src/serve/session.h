// The serving stack's session layer: one ServeSession per connection,
// sitting between the transport (raw byte buffers) and the PaneServer
// batching core (parsed requests). The session owns exactly three things:
//
//   - which codec the connection speaks (pinned by ServerOptions::protocol
//     or sniffed from the first byte via MakeCodec),
//   - the per-connection batch of decoded-but-unanswered requests,
//   - the quit flag that turns a `quit` response into a connection close.
//
// Batching policy is unchanged from the monolithic server: flush when the
// batch reaches batch_size, on `quit`, on an explicit flush marker (the
// line codec's blank line), and whenever the input drains without a
// complete message left — the event-loop equivalent of the old
// `in_avail() <= 0` heuristic. Responses always come back in request
// order.
//
// A framing error (bad magic, oversized length, truncated final frame)
// first answers everything decoded before it, then answers the error
// itself as a normal `err ...` response, then closes — a hostile client
// can never make the server drop already-accepted requests or abort.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/transport.h"

namespace pane {
namespace serve {

class ServeSession final : public ConnectionHandler {
 public:
  /// The server must outlive the session (the transport guarantees this:
  /// sessions live in connections the transport closes before returning
  /// from Run()).
  ServeSession(PaneServer* server, Protocol requested);

  Action OnData(std::string* input, std::string* output) override;
  void OnEof(std::string* input, std::string* output) override;

 private:
  /// Decodes every complete message in *input, batching and flushing per
  /// the policy above; with at_eof also resolves the trailing remainder
  /// via DecodeFinal. Consumed bytes are erased from *input.
  Action Pump(std::string* input, std::string* output, bool at_eof);
  /// Parses one request payload into the batch.
  void PushPayload(std::string_view payload);
  /// Executes the pending batch and encodes its responses into *output.
  void FlushBatch(std::string* output);

  PaneServer* server_;
  Protocol requested_;
  std::unique_ptr<ProtocolCodec> codec_;  // chosen on the first byte
  std::vector<PaneServer::BatchEntry> batch_;
  bool quit_ = false;

  /// Stage timing, on when the server's metrics subsystem is (fixed at
  /// construction — no per-message branch re-derivation).
  const bool timed_;
  /// The current batch's stage timeline: the session stamps decode and
  /// batch-wait, ExecuteBatch adds the engine-side stages, encode is
  /// recorded directly after the batch returns. Reset per batch.
  obs::RequestTrace trace_;
  /// When the current batch's first request was enqueued (batch-wait = the
  /// gap from then to the flush).
  int64_t batch_first_us_ = 0;
};

}  // namespace serve
}  // namespace pane
