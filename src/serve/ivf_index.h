// IVF-style cluster-pruned retrieval for the approximate serving mode
// (FastGAE's sample-for-scale idea applied to retrieval): candidate vectors
// are k-means-partitioned into inverted lists; a query scores the cluster
// centroids, probes only the `nprobe` best lists, and scans their members
// in single precision. Retrieval cost drops from O(n·h) per query to
// O(C·h + n·h·nprobe/C), and `nprobe` is the recall knob — nprobe == C
// scans everything (recall 1.0 up to float rounding), nprobe == 1 is the
// fastest / coarsest. Recall@k is measured, not assumed: see RecallAtK and
// the bench_serve sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/topk.h"
#include "src/serve/embedding_store.h"
#include "src/store/container.h"

namespace pane {

class ThreadPool;

namespace serve {

struct IvfOptions {
  /// Inverted lists; 0 derives ceil(sqrt(#candidates)).
  int64_t num_clusters = 0;
  /// Lloyd iterations for the k-means build.
  int kmeans_iters = 10;
  uint64_t seed = 42;
  /// Parallelizes the assignment step of the build (search is always
  /// caller-threaded). Null => serial.
  ThreadPool* pool = nullptr;
};

/// \brief Immutable inverted-file index over one candidate matrix (Y rows
/// for attribute queries, Z = Xb (Y^T Y) rows for link queries).
class IvfIndex {
 public:
  IvfIndex() = default;

  /// K-means over the candidate rows (double input copied to float once).
  /// Deterministic for a fixed (seed, candidates, options).
  static Result<IvfIndex> Build(ConstMatrixView candidates,
                                const IvfOptions& options);
  /// Same, reusing an existing single-precision copy (e.g. the store's).
  static Result<IvfIndex> Build(const FloatMatrix& candidates,
                                const IvfOptions& options);

  /// Top-k candidates by inner product with `query` (length dim(), double;
  /// scored in float). Probes the `nprobe` centroid-best lists. `excluded`
  /// is a sorted id list to skip (may be empty); `skip_id` < 0 disables the
  /// self-skip. Scores in the result are the float dots widened to double.
  /// `id_base` shifts every member id into a global id space before the
  /// exclusion / self-skip checks and the result — a shard engine indexes
  /// its local candidate slice but answers (and excludes) in global ids.
  /// When `scanned` is non-null it is incremented by the number of
  /// candidates in the probed lists (before exclusion), the engine's
  /// pruning-effectiveness metric: pruned = num_candidates() - scanned.
  Ranking Search(const double* query, int64_t k, int64_t nprobe,
                 const std::vector<int64_t>& excluded = {},
                 int64_t skip_id = -1, int64_t id_base = 0,
                 int64_t* scanned = nullptr) const;

  int64_t num_clusters() const { return centroids_.rows; }
  int64_t num_candidates() const {
    return static_cast<int64_t>(member_ids_.size());
  }
  int64_t dim() const { return centroids_.cols; }
  bool empty() const { return member_ids_.empty(); }

  /// Registers the index as `<prefix>ivf.*` streams (meta, centroids,
  /// members, member_ids, offsets) on `writer`, so several indexes — e.g.
  /// the query engine's "attr." and "link." pair — pack into one container.
  /// The caller keeps the index and `meta_buf` alive until
  /// ContainerWriter::WriteTo returns, and `meta_buf` must outlive *this*
  /// call distinctly per index (one buffer per prefix).
  Status AppendToContainer(const std::string& prefix, std::string* meta_buf,
                           store::ContainerWriter* writer) const;

  /// Decodes `<prefix>ivf.*` streams from an opened container, verifying
  /// their page checksums and the structural invariants (offset monotonicity,
  /// id ranges, shape agreement). NotFound when the prefix is absent.
  static Result<IvfIndex> FromContainer(const store::Container& container,
                                        const std::string& prefix);

  /// Whole-index save/load as a standalone container file — what
  /// pane_server uses to skip the k-means build on restart.
  Status Save(const std::string& path) const;
  static Result<IvfIndex> Load(const std::string& path);

 private:
  FloatMatrix centroids_;              // C x dim
  FloatMatrix members_;                // candidate rows in cluster order
  std::vector<int32_t> member_ids_;    // original ids, ascending per cluster
  std::vector<int64_t> list_offsets_;  // C + 1 offsets into members_
};

/// \brief |approx ∩ exact| / |exact| over the result indices — the
/// measured recall@k the pruned mode reports.
double RecallAtK(const Ranking& exact, const Ranking& approx);

}  // namespace serve
}  // namespace pane
