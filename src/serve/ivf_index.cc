#include "src/serve/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "src/common/random.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace serve {
namespace {

float FloatDot(const float* x, const float* y, int64_t n) {
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double SquaredL2(const float* x, const float* y, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
    s += d * d;
  }
  return s;
}

/// Nearest centroid by L2; ties go to the lowest cluster id, so the
/// assignment is deterministic whether it runs serially or in parallel.
int64_t NearestCentroid(const FloatMatrix& centroids, const float* row) {
  int64_t best = 0;
  double best_dist = SquaredL2(centroids.Row(0), row, centroids.cols);
  for (int64_t c = 1; c < centroids.rows; ++c) {
    const double dist = SquaredL2(centroids.Row(c), row, centroids.cols);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

}  // namespace

Result<IvfIndex> IvfIndex::Build(ConstMatrixView candidates,
                                 const IvfOptions& options) {
  return Build(ToFloatMatrix(candidates, /*l2_normalize=*/false), options);
}

Result<IvfIndex> IvfIndex::Build(const FloatMatrix& candidates,
                                 const IvfOptions& options) {
  const int64_t n = candidates.rows;
  const int64_t dim = candidates.cols;
  if (n == 0 || dim == 0) {
    return Status::InvalidArgument("IvfIndex needs a non-empty candidate set");
  }
  int64_t num_clusters = options.num_clusters;
  if (num_clusters <= 0) {
    num_clusters = static_cast<int64_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  }
  num_clusters = std::min(num_clusters, n);

  IvfIndex index;
  index.centroids_.Resize(num_clusters, dim);
  // Seed centroids from distinct candidate rows.
  Rng rng(options.seed);
  const std::vector<int64_t> seeds =
      SampleWithoutReplacement(n, num_clusters, &rng);
  for (int64_t c = 0; c < num_clusters; ++c) {
    std::memcpy(index.centroids_.MutableRow(c), candidates.Row(seeds[c]),
                static_cast<size_t>(dim) * sizeof(float));
  }

  std::vector<int32_t> assignment(static_cast<size_t>(n), 0);
  std::vector<double> sums;  // accumulate means in double
  std::vector<int64_t> counts;
  for (int iter = 0; iter < std::max(1, options.kmeans_iters); ++iter) {
    const auto assign = [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        assignment[static_cast<size_t>(i)] = static_cast<int32_t>(
            NearestCentroid(index.centroids_, candidates.Row(i)));
      }
    };
    if (options.pool != nullptr && options.pool->num_threads() > 1) {
      ParallelFor(options.pool, 0, n, assign);
    } else {
      assign(0, n);
    }
    sums.assign(static_cast<size_t>(num_clusters * dim), 0.0);
    counts.assign(static_cast<size_t>(num_clusters), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = assignment[static_cast<size_t>(i)];
      const float* row = candidates.Row(i);
      double* sum = sums.data() + c * dim;
      for (int64_t j = 0; j < dim; ++j) sum[j] += row[j];
      ++counts[static_cast<size_t>(c)];
    }
    for (int64_t c = 0; c < num_clusters; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old centroid
      const double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
      const double* sum = sums.data() + c * dim;
      float* centroid = index.centroids_.MutableRow(c);
      for (int64_t j = 0; j < dim; ++j) {
        centroid[j] = static_cast<float>(sum[j] * inv);
      }
    }
  }

  // Inverted lists: bucket-count, prefix-sum, then a stable fill in
  // ascending candidate order (ids ascend within each list).
  index.list_offsets_.assign(static_cast<size_t>(num_clusters + 1), 0);
  for (int64_t i = 0; i < n; ++i) {
    ++index.list_offsets_[static_cast<size_t>(assignment[static_cast<size_t>(i)]) + 1];
  }
  for (int64_t c = 0; c < num_clusters; ++c) {
    index.list_offsets_[static_cast<size_t>(c) + 1] +=
        index.list_offsets_[static_cast<size_t>(c)];
  }
  index.member_ids_.assign(static_cast<size_t>(n), 0);
  index.members_.Resize(n, dim);
  std::vector<int64_t> cursor(index.list_offsets_.begin(),
                              index.list_offsets_.end() - 1);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = assignment[static_cast<size_t>(i)];
    const int64_t slot = cursor[static_cast<size_t>(c)]++;
    index.member_ids_[static_cast<size_t>(slot)] = static_cast<int32_t>(i);
    std::memcpy(index.members_.MutableRow(slot), candidates.Row(i),
                static_cast<size_t>(dim) * sizeof(float));
  }
  return index;
}

Ranking IvfIndex::Search(const double* query, int64_t k, int64_t nprobe,
                         const std::vector<int64_t>& excluded,
                         int64_t skip_id) const {
  const int64_t dim = centroids_.cols;
  std::vector<float> q(static_cast<size_t>(dim));
  for (int64_t j = 0; j < dim; ++j) q[static_cast<size_t>(j)] = static_cast<float>(query[j]);

  // Probe order: centroid inner-product score, deterministic tie-break.
  Ranking probes;
  probes.reserve(static_cast<size_t>(centroids_.rows));
  for (int64_t c = 0; c < centroids_.rows; ++c) {
    probes.emplace_back(
        c, static_cast<double>(FloatDot(q.data(), centroids_.Row(c), dim)));
  }
  probes = SelectTopK(std::move(probes), std::min(nprobe, centroids_.rows));

  TopKHeap heap(k);
  for (const auto& [cluster, centroid_score] : probes) {
    (void)centroid_score;
    const int64_t begin = list_offsets_[static_cast<size_t>(cluster)];
    const int64_t end = list_offsets_[static_cast<size_t>(cluster) + 1];
    for (int64_t slot = begin; slot < end; ++slot) {
      const int64_t id = member_ids_[static_cast<size_t>(slot)];
      if (id == skip_id) continue;
      if (!excluded.empty() &&
          std::binary_search(excluded.begin(), excluded.end(), id)) {
        continue;
      }
      heap.Offer(id, static_cast<double>(
                         FloatDot(q.data(), members_.Row(slot), dim)));
    }
  }
  return heap.Take();
}

double RecallAtK(const Ranking& exact, const Ranking& approx) {
  if (exact.empty()) return 1.0;
  std::unordered_set<int64_t> truth;
  truth.reserve(exact.size() * 2);
  for (const auto& [id, score] : exact) {
    (void)score;
    truth.insert(id);
  }
  size_t hits = 0;
  for (const auto& [id, score] : approx) {
    (void)score;
    hits += truth.count(id);
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

}  // namespace serve
}  // namespace pane
