#include "src/serve/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "src/common/random.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace serve {
namespace {

// Container stream-name suffixes (AppendToContainer / FromContainer).
constexpr char kIvfMetaSuffix[] = "ivf.meta";
constexpr char kIvfCentroidsSuffix[] = "ivf.centroids";
constexpr char kIvfMembersSuffix[] = "ivf.members";
constexpr char kIvfMemberIdsSuffix[] = "ivf.member_ids";
constexpr char kIvfOffsetsSuffix[] = "ivf.offsets";
constexpr uint32_t kIvfMetaVersion = 1;
constexpr int64_t kIvfMetaBytes = 4 + 4 + 3 * 8;

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

float FloatDot(const float* x, const float* y, int64_t n) {
  float s = 0.0f;
  for (int64_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double SquaredL2(const float* x, const float* y, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
    s += d * d;
  }
  return s;
}

/// Nearest centroid by L2; ties go to the lowest cluster id, so the
/// assignment is deterministic whether it runs serially or in parallel.
int64_t NearestCentroid(const FloatMatrix& centroids, const float* row) {
  int64_t best = 0;
  double best_dist = SquaredL2(centroids.Row(0), row, centroids.cols);
  for (int64_t c = 1; c < centroids.rows; ++c) {
    const double dist = SquaredL2(centroids.Row(c), row, centroids.cols);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

}  // namespace

Result<IvfIndex> IvfIndex::Build(ConstMatrixView candidates,
                                 const IvfOptions& options) {
  return Build(ToFloatMatrix(candidates, /*l2_normalize=*/false), options);
}

Result<IvfIndex> IvfIndex::Build(const FloatMatrix& candidates,
                                 const IvfOptions& options) {
  const int64_t n = candidates.rows;
  const int64_t dim = candidates.cols;
  if (n == 0 || dim == 0) {
    return Status::InvalidArgument("IvfIndex needs a non-empty candidate set");
  }
  int64_t num_clusters = options.num_clusters;
  if (num_clusters <= 0) {
    num_clusters = static_cast<int64_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  }
  num_clusters = std::min(num_clusters, n);

  IvfIndex index;
  index.centroids_.Resize(num_clusters, dim);
  // Seed centroids from distinct candidate rows.
  Rng rng(options.seed);
  const std::vector<int64_t> seeds =
      SampleWithoutReplacement(n, num_clusters, &rng);
  for (int64_t c = 0; c < num_clusters; ++c) {
    std::memcpy(index.centroids_.MutableRow(c), candidates.Row(seeds[c]),
                static_cast<size_t>(dim) * sizeof(float));
  }

  std::vector<int32_t> assignment(static_cast<size_t>(n), 0);
  std::vector<double> sums;  // accumulate means in double
  std::vector<int64_t> counts;
  for (int iter = 0; iter < std::max(1, options.kmeans_iters); ++iter) {
    const auto assign = [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        assignment[static_cast<size_t>(i)] = static_cast<int32_t>(
            NearestCentroid(index.centroids_, candidates.Row(i)));
      }
    };
    if (options.pool != nullptr && options.pool->num_threads() > 1) {
      ParallelFor(options.pool, 0, n, assign);
    } else {
      assign(0, n);
    }
    sums.assign(static_cast<size_t>(num_clusters * dim), 0.0);
    counts.assign(static_cast<size_t>(num_clusters), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = assignment[static_cast<size_t>(i)];
      const float* row = candidates.Row(i);
      double* sum = sums.data() + c * dim;
      for (int64_t j = 0; j < dim; ++j) sum[j] += row[j];
      ++counts[static_cast<size_t>(c)];
    }
    for (int64_t c = 0; c < num_clusters; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old centroid
      const double inv = 1.0 / static_cast<double>(counts[static_cast<size_t>(c)]);
      const double* sum = sums.data() + c * dim;
      float* centroid = index.centroids_.MutableRow(c);
      for (int64_t j = 0; j < dim; ++j) {
        centroid[j] = static_cast<float>(sum[j] * inv);
      }
    }
  }

  // Inverted lists: bucket-count, prefix-sum, then a stable fill in
  // ascending candidate order (ids ascend within each list).
  index.list_offsets_.assign(static_cast<size_t>(num_clusters + 1), 0);
  for (int64_t i = 0; i < n; ++i) {
    ++index.list_offsets_[static_cast<size_t>(assignment[static_cast<size_t>(i)]) + 1];
  }
  for (int64_t c = 0; c < num_clusters; ++c) {
    index.list_offsets_[static_cast<size_t>(c) + 1] +=
        index.list_offsets_[static_cast<size_t>(c)];
  }
  index.member_ids_.assign(static_cast<size_t>(n), 0);
  index.members_.Resize(n, dim);
  std::vector<int64_t> cursor(index.list_offsets_.begin(),
                              index.list_offsets_.end() - 1);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = assignment[static_cast<size_t>(i)];
    const int64_t slot = cursor[static_cast<size_t>(c)]++;
    index.member_ids_[static_cast<size_t>(slot)] = static_cast<int32_t>(i);
    std::memcpy(index.members_.MutableRow(slot), candidates.Row(i),
                static_cast<size_t>(dim) * sizeof(float));
  }
  return index;
}

Status IvfIndex::AppendToContainer(const std::string& prefix,
                                   std::string* meta_buf,
                                   store::ContainerWriter* writer) const {
  if (empty()) {
    return Status::InvalidArgument("cannot serialize an empty IvfIndex");
  }
  meta_buf->clear();
  AppendPod<uint32_t>(meta_buf, kIvfMetaVersion);
  AppendPod<uint32_t>(meta_buf, 0);  // reserved
  AppendPod<int64_t>(meta_buf, num_clusters());
  AppendPod<int64_t>(meta_buf, dim());
  AppendPod<int64_t>(meta_buf, num_candidates());
  PANE_RETURN_NOT_OK(writer->AddStream(prefix + kIvfMetaSuffix,
                                       store::PageType::kMeta,
                                       meta_buf->data(),
                                       static_cast<int64_t>(meta_buf->size())));
  PANE_RETURN_NOT_OK(writer->AddStream(
      prefix + kIvfCentroidsSuffix, store::PageType::kIvfList,
      centroids_.data.data(),
      static_cast<int64_t>(centroids_.data.size() * sizeof(float))));
  PANE_RETURN_NOT_OK(writer->AddStream(
      prefix + kIvfMembersSuffix, store::PageType::kIvfList,
      members_.data.data(),
      static_cast<int64_t>(members_.data.size() * sizeof(float))));
  PANE_RETURN_NOT_OK(writer->AddStream(
      prefix + kIvfMemberIdsSuffix, store::PageType::kIvfList,
      member_ids_.data(),
      static_cast<int64_t>(member_ids_.size() * sizeof(int32_t))));
  return writer->AddStream(
      prefix + kIvfOffsetsSuffix, store::PageType::kIvfList,
      list_offsets_.data(),
      static_cast<int64_t>(list_offsets_.size() * sizeof(int64_t)));
}

Result<IvfIndex> IvfIndex::FromContainer(const store::Container& container,
                                         const std::string& prefix) {
  const std::string meta_name = prefix + kIvfMetaSuffix;
  if (!container.Contains(meta_name)) {
    return Status::NotFound("container " + container.path() +
                            " holds no '" + prefix + "' IVF index");
  }
  PANE_ASSIGN_OR_RETURN(store::Container::StreamView meta,
                        container.Read(meta_name));
  if (meta.bytes != kIvfMetaBytes) {
    return Status::IOError("stream '" + meta_name + "' in " +
                           container.path() + " holds " +
                           std::to_string(meta.bytes) + " bytes, expected " +
                           std::to_string(kIvfMetaBytes));
  }
  uint32_t version = 0;
  std::memcpy(&version, meta.data, sizeof(version));
  if (version != kIvfMetaVersion) {
    return Status::InvalidArgument("unsupported IVF index version " +
                                   std::to_string(version) + " in " +
                                   container.path());
  }
  int64_t shape[3] = {0, 0, 0};  // clusters, dim, candidates
  std::memcpy(shape, meta.data + 8, sizeof(shape));
  const int64_t clusters = shape[0], dim = shape[1], n = shape[2];
  if (clusters <= 0 || dim <= 0 || n <= 0 || clusters > n) {
    return Status::IOError("implausible IVF shape in " + container.path());
  }

  PANE_ASSIGN_OR_RETURN(auto centroids,
                        container.ReadArray<float>(prefix + kIvfCentroidsSuffix));
  PANE_ASSIGN_OR_RETURN(auto members,
                        container.ReadArray<float>(prefix + kIvfMembersSuffix));
  PANE_ASSIGN_OR_RETURN(
      auto ids, container.ReadArray<int32_t>(prefix + kIvfMemberIdsSuffix));
  PANE_ASSIGN_OR_RETURN(
      auto offsets, container.ReadArray<int64_t>(prefix + kIvfOffsetsSuffix));
  if (centroids.count != clusters * dim || members.count != n * dim ||
      ids.count != n || offsets.count != clusters + 1) {
    return Status::IOError("IVF stream lengths disagree with '" + meta_name +
                           "' in " + container.path());
  }
  if (offsets.data[0] != 0 || offsets.data[clusters] != n) {
    return Status::IOError("IVF list offsets do not span the member set in " +
                           container.path());
  }
  for (int64_t c = 0; c < clusters; ++c) {
    if (offsets.data[c] > offsets.data[c + 1]) {
      return Status::IOError("IVF list offsets not non-decreasing in " +
                             container.path());
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    if (ids.data[i] < 0 || ids.data[i] >= n) {
      return Status::IOError("IVF member id out of range in " +
                             container.path());
    }
  }

  IvfIndex index;
  index.centroids_.Resize(clusters, dim);
  std::memcpy(index.centroids_.data.data(), centroids.data,
              static_cast<size_t>(centroids.count) * sizeof(float));
  index.members_.Resize(n, dim);
  std::memcpy(index.members_.data.data(), members.data,
              static_cast<size_t>(members.count) * sizeof(float));
  index.member_ids_.assign(ids.data, ids.data + ids.count);
  index.list_offsets_.assign(offsets.data, offsets.data + offsets.count);
  return index;
}

Status IvfIndex::Save(const std::string& path) const {
  store::ContainerWriter writer;
  std::string meta_buf;
  PANE_RETURN_NOT_OK(AppendToContainer("", &meta_buf, &writer));
  return writer.WriteTo(path);
}

Result<IvfIndex> IvfIndex::Load(const std::string& path) {
  PANE_ASSIGN_OR_RETURN(store::Container container,
                        store::Container::Open(path));
  auto index = FromContainer(container, "");
  if (!index.ok() && index.status().IsNotFound()) {
    return Status::InvalidArgument("container " + path +
                                   " holds no IVF index");
  }
  return index;
}

Ranking IvfIndex::Search(const double* query, int64_t k, int64_t nprobe,
                         const std::vector<int64_t>& excluded,
                         int64_t skip_id, int64_t id_base,
                         int64_t* scanned) const {
  const int64_t dim = centroids_.cols;
  std::vector<float> q(static_cast<size_t>(dim));
  for (int64_t j = 0; j < dim; ++j) q[static_cast<size_t>(j)] = static_cast<float>(query[j]);

  // Probe order: centroid inner-product score, deterministic tie-break.
  Ranking probes;
  probes.reserve(static_cast<size_t>(centroids_.rows));
  for (int64_t c = 0; c < centroids_.rows; ++c) {
    probes.emplace_back(
        c, static_cast<double>(FloatDot(q.data(), centroids_.Row(c), dim)));
  }
  probes = SelectTopK(std::move(probes), std::min(nprobe, centroids_.rows));

  TopKHeap heap(k);
  for (const auto& [cluster, centroid_score] : probes) {
    (void)centroid_score;
    const int64_t begin = list_offsets_[static_cast<size_t>(cluster)];
    const int64_t end = list_offsets_[static_cast<size_t>(cluster) + 1];
    if (scanned != nullptr) *scanned += end - begin;
    for (int64_t slot = begin; slot < end; ++slot) {
      const int64_t id = id_base + member_ids_[static_cast<size_t>(slot)];
      if (id == skip_id) continue;
      if (!excluded.empty() &&
          std::binary_search(excluded.begin(), excluded.end(), id)) {
        continue;
      }
      heap.Offer(id, static_cast<double>(
                         FloatDot(q.data(), members_.Row(slot), dim)));
    }
  }
  return heap.Take();
}

double RecallAtK(const Ranking& exact, const Ranking& approx) {
  if (exact.empty()) return 1.0;
  std::unordered_set<int64_t> truth;
  truth.reserve(exact.size() * 2);
  for (const auto& [id, score] : exact) {
    (void)score;
    truth.insert(id);
  }
  size_t hits = 0;
  for (const auto& [id, score] : approx) {
    (void)score;
    hits += truth.count(id);
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

}  // namespace serve
}  // namespace pane
