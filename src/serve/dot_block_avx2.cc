// The AVX2 compilation of the shared dot-block kernel (see
// dot_block_impl.h). This translation unit — and only this one — is built
// with -mavx2 -ffp-contract=off on x86-64 (see CMakeLists.txt):
// 4-lane vectors across the query dimension, but NO fused multiply-add,
// so every (query, candidate) pair still rounds exactly like
// vector_ops::Dot and the serving engine's bitwise-equality contract
// holds. GetDotBlock() only returns this variant when the running CPU
// reports AVX2.
#if defined(__x86_64__)

#include "src/serve/dot_block.h"
#include "src/serve/dot_block_impl.h"

namespace pane {
namespace serve {
namespace detail {

void DotBlockAvx2(const double* qt, int64_t h, int64_t ld,
                  const double* cand, double* out, int64_t out_stride,
                  bool add) {
  DotBlockDriver(qt, h, ld, cand, out, out_stride, add);
}

}  // namespace detail
}  // namespace serve
}  // namespace pane

#endif  // defined(__x86_64__)
