#include "src/serve/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/timer.h"

namespace pane {
namespace serve {
namespace {

/// Reads drained per EPOLLIN wakeup before yielding back to the loop, so
/// one flooding connection cannot starve the rest (level-triggered epoll
/// re-reports the fd immediately if bytes remain).
constexpr int kMaxReadsPerWakeup = 8;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void OwnedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status ShardConnection::Connect(const std::string& address,
                                int64_t timeout_ms) {
  Close();
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("shard address must be host:port, got " +
                                   address);
  }
  const std::string host = address.substr(0, colon);
  int port = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    const char c = address[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in shard address " + address);
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("bad port in shard address " + address);
    }
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("shard host must be a numeric IPv4 "
                                   "address or localhost, got " + host);
  }

  // Non-blocking connect so the handshake honors timeout_ms, then back to
  // blocking: per-call deadlines are enforced with poll() in SendAll /
  // RecvSome, not with O_NONBLOCK bookkeeping.
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      0));
  if (!fd.valid()) return Errno("socket");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    pollfd pfd = {fd.get(), POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::max<int64_t>(1, timeout_ms)));
    if (ready <= 0) {
      return Status::IOError("connect to " + address + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::IOError("connect to " + address + ": " +
                             std::strerror(err != 0 ? err : errno));
    }
  }
  const int flags = ::fcntl(fd.get(), F_GETFL);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
    return Errno("fcntl");
  }
  fd_ = std::move(fd);
  return Status::OK();
}

int64_t ShardConnection::NowMs() { return MonotonicMillis(); }

namespace {

/// Shared deadline gate: polls fd for `events` until ready or deadline.
Status AwaitReady(int fd, short events, int64_t deadline_ms,
                  const char* what) {
  while (true) {
    const int64_t budget = deadline_ms - ShardConnection::NowMs();
    if (budget <= 0) {
      return Status::IOError(std::string(what) + " deadline exceeded");
    }
    pollfd pfd = {fd, events, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(budget));
    if (ready > 0) return Status::OK();
    if (ready == 0) {
      return Status::IOError(std::string(what) + " deadline exceeded");
    }
    if (errno != EINTR) return Errno("poll");
  }
}

}  // namespace

Status ShardConnection::SendAll(std::string_view bytes, int64_t deadline_ms) {
  if (!connected()) return Status::IOError("shard connection is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    PANE_RETURN_NOT_OK(AwaitReady(fd_.get(), POLLOUT, deadline_ms, "send"));
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;
    }
    Close();
    return Errno("send");
  }
  return Status::OK();
}

Status ShardConnection::RecvSome(std::string* buffer, int64_t deadline_ms) {
  if (!connected()) return Status::IOError("shard connection is closed");
  char chunk[16 << 10];
  while (true) {
    PANE_RETURN_NOT_OK(AwaitReady(fd_.get(), POLLIN, deadline_ms, "recv"));
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) {
      Close();
      return Status::IOError("shard closed the connection mid-reply");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    Close();
    return Errno("recv");
  }
}

EpollTransport::EpollTransport(HandlerFactory factory,
                               TransportOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  PANE_CHECK(factory_ != nullptr);
  PANE_CHECK(options_.max_connections > 0);
  PANE_CHECK(options_.read_chunk_bytes > 0);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* reg = options_.metrics;
    accepted_total_ = reg->GetCounter("pane_transport_accepted_total");
    rejected_total_ = reg->GetCounter("pane_transport_rejected_total");
    timeouts_total_ = reg->GetCounter("pane_transport_timeouts_total");
    read_bytes_total_ = reg->GetCounter("pane_transport_read_bytes_total");
    write_bytes_total_ = reg->GetCounter("pane_transport_write_bytes_total");
    active_gauge_ = reg->GetGauge("pane_transport_connections_active");
    read_us_ = reg->GetHistogram("pane_transport_read_us");
    write_us_ = reg->GetHistogram("pane_transport_write_us");
    lifetime_ms_ = reg->GetHistogram("pane_transport_conn_lifetime_ms");
  }
}

EpollTransport::~EpollTransport() {
  Shutdown();
  connections_.clear();  // OwnedFd closes every socket
}

int64_t EpollTransport::NowMs() { return MonotonicMillis(); }

Result<int> EpollTransport::Listen(int port) {
  PANE_CHECK(!listen_fd_.valid()) << "Listen() called twice";
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 128) != 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }

  OwnedFd epoll_fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd.valid()) return Errno("epoll_create1");
  OwnedFd wake_fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd.valid()) return Errno("eventfd");

  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = fd.get();
  if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, fd.get(), &event) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  event.data.fd = wake_fd.get();
  if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, wake_fd.get(), &event) !=
      0) {
    return Errno("epoll_ctl(eventfd)");
  }

  // Commit all three fds only after every step succeeded; any earlier
  // return unwinds the OwnedFds without leaking a descriptor.
  listen_fd_ = std::move(fd);
  epoll_fd_ = std::move(epoll_fd);
  wake_fd_ = std::move(wake_fd);
  return static_cast<int>(ntohs(addr.sin_port));
}

void EpollTransport::Run() {
  if (!listening()) {
    PANE_LOG(WARNING) << "EpollTransport::Run() without a successful "
                         "Listen(); returning";
    return;
  }
  std::vector<epoll_event> events(64);
  while (!shutdown_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (options_.idle_timeout_ms > 0) {
      // Wake at least twice per idle window so a reap is never late by
      // more than half the timeout.
      timeout_ms = static_cast<int>(
          std::max<int64_t>(10, std::min<int64_t>(
                                    options_.idle_timeout_ms / 2, 500)));
    }
    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      PANE_LOG(ERROR) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<size_t>(i)].data.fd;
      const uint32_t mask = events[static_cast<size_t>(i)].events;
      if (fd == wake_fd_.get()) {
        uint64_t token = 0;
        while (::read(wake_fd_.get(), &token, sizeof(token)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_.get()) {
        AcceptReady();
        continue;
      }
      // An earlier event in this batch may have closed the connection;
      // re-resolve instead of trusting a stale pointer.
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        HandleReadable(conn);
        if (connections_.find(fd) == connections_.end()) continue;
      }
      if ((mask & EPOLLOUT) != 0) HandleWritable(conn);
    }
    if (options_.idle_timeout_ms > 0) SweepIdle(NowMs());
  }
  // Drain on the way out: the loop owns every connection, so closing here
  // is race-free.
  std::vector<int> open;
  open.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open.push_back(fd);
  for (const int fd : open) CloseConnection(fd, /*timed_out=*/false);
}

void EpollTransport::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  if (wake_fd_.valid()) {
    const uint64_t token = 1;
    // Best-effort: a full eventfd counter still wakes the loop.
    [[maybe_unused]] const ssize_t ignored =
        ::write(wake_fd_.get(), &token, sizeof(token));
  }
}

TransportStats EpollTransport::stats() const {
  MutexLock lock(&stats_mutex_);
  return stats_;
}

void EpollTransport::AcceptReady() {
  while (true) {
    const int raw =
        ::accept4(listen_fd_.get(), nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    OwnedFd fd(raw);
    if (static_cast<int64_t>(connections_.size()) >=
        options_.max_connections) {
      // The 503 path: one best-effort refusal payload, then close. The
      // socket never joins the epoll set, so a refused flood costs one
      // accept + one send each.
      if (!options_.refusal.empty()) {
        [[maybe_unused]] const ssize_t ignored =
            ::send(fd.get(), options_.refusal.data(),
                   options_.refusal.size(), MSG_NOSIGNAL);
      }
      if (rejected_total_ != nullptr) rejected_total_->Add();
      MutexLock lock(&stats_mutex_);
      ++stats_.rejected;
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(fd);
    conn->handler = factory_();
    conn->created_ms = NowMs();
    conn->last_active_ms = conn->created_ms;
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.fd = conn->fd.get();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd.get(),
                    &event) != 0) {
      PANE_LOG(ERROR) << "epoll_ctl(conn): " << std::strerror(errno);
      continue;  // conn's OwnedFd closes the socket
    }
    const int key = conn->fd.get();
    connections_.emplace(key, std::move(conn));
    if (accepted_total_ != nullptr) {
      accepted_total_->Add();
      active_gauge_->Set(static_cast<int64_t>(connections_.size()));
    }
    MutexLock lock(&stats_mutex_);
    ++stats_.accepted;
    stats_.active = static_cast<int64_t>(connections_.size());
  }
}

void EpollTransport::HandleReadable(Connection* conn) {
  std::string chunk(static_cast<size_t>(options_.read_chunk_bytes), '\0');
  bool eof = false;
  bool fatal = false;
  bool got_bytes = false;
  uint64_t bytes_read = 0;
  const int64_t read_start_us = read_us_ != nullptr ? MonotonicMicros() : 0;
  for (int reads = 0; reads < kMaxReadsPerWakeup; ++reads) {
    const ssize_t n = ::read(conn->fd.get(), chunk.data(), chunk.size());
    if (n > 0) {
      got_bytes = true;
      bytes_read += static_cast<uint64_t>(n);
      if (conn->draining) continue;  // discard: the session already quit
      conn->input.append(chunk.data(), static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
    } else if (errno == EINTR) {
      continue;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      fatal = true;
    }
    break;
  }
  if (read_us_ != nullptr && got_bytes) {
    read_us_->Record(MonotonicMicros() - read_start_us);
    read_bytes_total_->Add(bytes_read);
  }
  if (fatal) {
    CloseConnection(conn->fd.get(), /*timed_out=*/false);
    return;
  }
  if (got_bytes || eof) conn->last_active_ms = NowMs();
  if (!conn->draining && !conn->input.empty()) {
    if (conn->handler->OnData(&conn->input, &conn->output) ==
        ConnectionHandler::Action::kClose) {
      conn->draining = true;
    }
  }
  if (eof) {
    if (!conn->draining) {
      conn->handler->OnEof(&conn->input, &conn->output);
    }
    conn->draining = true;
  }
  UpdateConnection(conn);
}

void EpollTransport::HandleWritable(Connection* conn) {
  conn->last_active_ms = NowMs();
  UpdateConnection(conn);
}

bool EpollTransport::FlushOutput(Connection* conn) {
  if (conn->sent >= conn->output.size()) {
    conn->output.clear();
    conn->sent = 0;
    return true;
  }
  const size_t sent_before = conn->sent;
  const int64_t write_start_us =
      write_us_ != nullptr ? MonotonicMicros() : 0;
  bool ok = true;
  while (conn->sent < conn->output.size()) {
    const ssize_t n =
        ::send(conn->fd.get(), conn->output.data() + conn->sent,
               conn->output.size() - conn->sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->sent += static_cast<size_t>(n);
      conn->last_active_ms = NowMs();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    ok = false;  // peer gone mid-response
    break;
  }
  if (write_us_ != nullptr && conn->sent > sent_before) {
    write_us_->Record(MonotonicMicros() - write_start_us);
    write_bytes_total_->Add(conn->sent - sent_before);
  }
  if (ok && conn->sent >= conn->output.size()) {
    conn->output.clear();
    conn->sent = 0;
  }
  return ok;
}

bool EpollTransport::UpdateConnection(Connection* conn) {
  const int fd = conn->fd.get();
  if (!FlushOutput(conn)) {
    CloseConnection(fd, /*timed_out=*/false);
    return false;
  }
  if (conn->draining && conn->sent >= conn->output.size()) {
    CloseConnection(fd, /*timed_out=*/false);
    return false;
  }
  const bool wants_write = conn->sent < conn->output.size();
  if (wants_write != conn->wants_write) {
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN | (wants_write ? EPOLLOUT : 0u);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &event) != 0) {
      CloseConnection(fd, /*timed_out=*/false);
      return false;
    }
    conn->wants_write = wants_write;
  }
  return true;
}

void EpollTransport::CloseConnection(int fd, bool timed_out) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  if (lifetime_ms_ != nullptr) {
    lifetime_ms_->Record(NowMs() - it->second->created_ms);
  }
  connections_.erase(it);  // OwnedFd closes the socket
  if (timeouts_total_ != nullptr) {
    if (timed_out) timeouts_total_->Add();
    active_gauge_->Set(static_cast<int64_t>(connections_.size()));
  }
  MutexLock lock(&stats_mutex_);
  if (timed_out) ++stats_.timeouts;
  stats_.active = static_cast<int64_t>(connections_.size());
}

void EpollTransport::SweepIdle(int64_t now_ms) {
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (now_ms - conn->last_active_ms >= options_.idle_timeout_ms) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) CloseConnection(fd, /*timed_out=*/true);
}

}  // namespace serve
}  // namespace pane
