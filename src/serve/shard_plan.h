// The shard plan: how one embedding artifact's candidate space is cut into
// contiguous row ranges, and the protocol text that lets a router learn a
// shard's ranges at startup (the `plan` verb).
//
// A plan slices both candidate matrices in lockstep — shard i holds Y rows
// [attr_begin, attr_end) and Z rows [node_begin, node_end) — while the
// query-side factors (Xf, Xb) are replicated in full, so any shard can form
// the query vector for any node id. Shard engines scan their local slices
// but offer *global* candidate ids to the selection heap, which is what
// makes the router's MergeTopK output bitwise-identical to a single
// unsharded scan: the (score desc, index asc) order is a strict total
// order over global ids, so the top-k set and its order are unique.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/store/shard_pages.h"

namespace pane {
namespace serve {

/// A shard's identity and held ranges — the store-layer meta doubles as the
/// serving-layer spec (it carries exactly the fields a shard engine and the
/// router's merge need).
using ShardSpec = store::ShardMeta;

/// The full plan a router validates its backends against: every shard's
/// ranges, which must tile [0, n) and [0, d) contiguously in shard order.
struct ShardPlan {
  int64_t num_nodes = 0;
  int64_t num_attributes = 0;
  std::vector<ShardSpec> shards;
};

/// Cuts [0, n) and [0, d) into `num_shards` contiguous ranges with the same
/// near-even split ParallelFor uses (the first n % s ranges get one extra
/// row), so shard load is balanced to within one row.
ShardPlan MakeShardPlan(int64_t num_nodes, int64_t num_attributes,
                        int num_shards);

/// Validates that `specs` (in vector order) form exactly the plan
/// MakeShardPlan would produce positions for: shard i at index i, all
/// agreeing on the global shapes, node ranges tiling [0, n) and attribute
/// ranges tiling [0, d). On success fills *plan.
Status ValidateShardSpecs(const std::vector<ShardSpec>& specs,
                          ShardPlan* plan);

/// Splits an embedding artifact (legacy or container) into `num_shards`
/// shard containers "<out_prefix>.<i>". The full Z = Xb (Y^T Y) is derived
/// once with the same kernels the unsharded engine uses and row-sliced, so
/// every shard's link scores are bitwise the unsharded engine's. Appends
/// the written paths to *out_paths when non-null.
Status SplitEmbeddingArtifact(const std::string& input_path,
                              const std::string& out_prefix, int num_shards,
                              std::vector<std::string>* out_paths);

/// "plan ok shard=<i>/<count> nodes=<begin>:<end>/<n>
///  attrs=<begin>:<end>/<d> dim=<h> attr_scoring=<0|1> link_scoring=<0|1>"
/// — the response a shard server gives to the `plan` verb, and what the
/// router parses at startup.
std::string FormatPlanResponse(const ShardSpec& spec);

/// Parses a FormatPlanResponse payload; anything else (including an err
/// response) is an InvalidArgument.
Result<ShardSpec> ParsePlanResponse(std::string_view payload);

}  // namespace serve
}  // namespace pane
