// The serving stack's transport layer: a non-blocking, level-triggered
// epoll event loop owning every socket and every per-connection buffer.
// This is the only translation unit in the repository allowed to issue raw
// socket / epoll syscalls (enforced by tools/lint.sh); everything above it
// sees connections as two byte buffers and a handler callback.
//
// Responsibilities, and nothing else:
//   - accept loopback TCP connections (up to TransportOptions::
//     max_connections; beyond the cap a connection gets a best-effort
//     refusal payload and an immediate close — the 503 of this protocol),
//   - read available bytes into the connection's input buffer and hand
//     them to its ConnectionHandler (the session layer),
//   - flush the handler's output buffer, registering for EPOLLOUT only
//     while bytes are actually pending,
//   - reap connections idle longer than idle_timeout_ms,
//   - wake up and drain cleanly when Shutdown() is called from any thread
//     (an eventfd is part of the epoll set precisely for this).
//
// Threading model: Run() executes the entire loop — accepts, reads,
// handler callbacks (and therefore engine batches), writes — on the
// calling thread. Parallelism comes from the engine's own ThreadPool
// inside a batch, not from per-connection threads; that is what lets the
// transport hold thousands of mostly-idle connections at a fixed cost of
// two buffers each. Shutdown() and stats() are the only members callable
// from other threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/obs/metrics.h"

namespace pane {
namespace serve {

/// Move-only owner of a file descriptor: the fd is closed exactly once, on
/// destruction or reset, never leaked on an error path, and never usable
/// after a moved-from state (get() returns -1). Replaces the bare
/// `int listen_fd_ = -1` whose ListenTcp/AcceptLoop/Shutdown ordering was
/// only documented, not enforced.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { reset(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// What the transport asks of each connection's protocol layer. Handlers
/// are created per connection and only ever called from the loop thread.
class ConnectionHandler {
 public:
  enum class Action : int8_t {
    kKeepOpen,  ///< keep reading
    kClose,     ///< flush pending output, then close
  };

  virtual ~ConnectionHandler() = default;

  /// New bytes were appended to *input (which may still hold an earlier
  /// partial message). Consume what is complete — erasing consumed bytes
  /// from the front — and append any wire-format response bytes to
  /// *output.
  virtual Action OnData(std::string* input, std::string* output) = 0;

  /// The peer finished sending (read returned 0). Handle any trailing
  /// partial message in *input; the connection closes once *output
  /// drains.
  virtual void OnEof(std::string* input, std::string* output) = 0;
};

/// Blocking outbound client connection — the router's side of a shard hop.
/// Lives here because transport.cc is the only translation unit allowed to
/// issue raw socket syscalls (connect / poll / send / recv included).
/// Every call takes an absolute deadline in NowMs() time, so one request's
/// budget spans connect, send, and however many RecvSome calls the
/// response needs. Move-only; a failed call leaves the connection closed
/// so the owner can reconnect.
class ShardConnection {
 public:
  ShardConnection() = default;
  ShardConnection(ShardConnection&&) = default;
  ShardConnection& operator=(ShardConnection&&) = default;
  ShardConnection(const ShardConnection&) = delete;
  ShardConnection& operator=(const ShardConnection&) = delete;

  /// Connects to "host:port" (numeric IPv4 host, e.g. "127.0.0.1:7077"),
  /// waiting at most `timeout_ms`. The socket stays blocking after the
  /// non-blocking connect handshake; per-call deadlines come from
  /// readiness waits on the fd.
  Status Connect(const std::string& address, int64_t timeout_ms);

  bool connected() const { return fd_.valid(); }
  void Close() { fd_.reset(); }

  /// Writes all of `bytes` before `deadline_ms` (absolute, NowMs clock).
  Status SendAll(std::string_view bytes, int64_t deadline_ms);

  /// Appends at least one received byte to *buffer before `deadline_ms`;
  /// EOF from the peer is an error (a shard never half-closes mid-reply).
  Status RecvSome(std::string* buffer, int64_t deadline_ms);

  /// The monotonic clock the deadlines are measured in.
  static int64_t NowMs();

 private:
  OwnedFd fd_;
};

struct TransportOptions {
  /// Connections at or above the cap are refused: `refusal` is written
  /// best-effort and the socket closed.
  int64_t max_connections = 256;
  /// Connections with no read/write activity for this long are reaped by
  /// the idle sweep; 0 disables the sweep entirely.
  int64_t idle_timeout_ms = 0;
  /// Payload written to a refused connection before the close.
  std::string refusal;
  /// Bytes per read() call in the drain loop.
  int64_t read_chunk_bytes = 64 << 10;
  /// Optional registry for accept/read/write and connection-lifetime
  /// metrics (pane_transport_*). Null disables instrumentation entirely;
  /// the registry must outlive the transport.
  obs::MetricsRegistry* metrics = nullptr;
};

struct TransportStats {
  uint64_t accepted = 0;  ///< connections admitted
  uint64_t rejected = 0;  ///< refused over max_connections
  uint64_t timeouts = 0;  ///< reaped by the idle sweep
  int64_t active = 0;     ///< currently open
};

class EpollTransport {
 public:
  using HandlerFactory = std::function<std::unique_ptr<ConnectionHandler>()>;

  EpollTransport(HandlerFactory factory, TransportOptions options);
  ~EpollTransport();

  EpollTransport(const EpollTransport&) = delete;
  EpollTransport& operator=(const EpollTransport&) = delete;

  /// Binds a non-blocking loopback listening socket (`port` 0 picks an
  /// ephemeral port), creates the epoll set and the shutdown eventfd, and
  /// returns the bound port.
  Result<int> Listen(int port);

  bool listening() const { return listen_fd_.valid(); }

  /// Runs the event loop on the calling thread until Shutdown(). Returns
  /// immediately (with a warning) if Listen() has not succeeded — calling
  /// out of order is a no-op, not a crash. All connections are closed on
  /// the way out.
  void Run();

  /// Thread-safe: flips the shutdown flag and pokes the eventfd so a
  /// blocked epoll_wait wakes. Safe to call at any time, including before
  /// Listen() or after Run() returned.
  void Shutdown();

  /// One locked snapshot of the accept/reject/timeout counters.
  TransportStats stats() const PANE_EXCLUDES(stats_mutex_);

 private:
  struct Connection {
    OwnedFd fd;
    std::unique_ptr<ConnectionHandler> handler;
    std::string input;
    std::string output;
    size_t sent = 0;  ///< prefix of `output` already written
    int64_t created_ms = 0;  ///< accept time, for the lifetime histogram
    int64_t last_active_ms = 0;
    bool draining = false;  ///< close as soon as `output` drains
    bool wants_write = false;  ///< EPOLLOUT currently registered
  };

  // All private state below is touched only by the loop thread (plus
  // Listen(), which must precede Run()); shutdown_ and stats_ are the two
  // cross-thread members.
  void AcceptReady();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Writes output[sent..]; returns false on a fatal socket error.
  bool FlushOutput(Connection* conn);
  /// Reconciles EPOLLOUT interest and the draining flag; closes the
  /// connection when it is drained or broken. Returns true if the
  /// connection survived.
  bool UpdateConnection(Connection* conn);
  void CloseConnection(int fd, bool timed_out);
  void SweepIdle(int64_t now_ms);
  static int64_t NowMs();

  HandlerFactory factory_;
  TransportOptions options_;

  OwnedFd listen_fd_;
  OwnedFd epoll_fd_;
  OwnedFd wake_fd_;  ///< eventfd in the epoll set; Shutdown() writes it
  std::atomic<bool> shutdown_{false};
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  mutable Mutex stats_mutex_;
  TransportStats stats_ PANE_GUARDED_BY(stats_mutex_);

  // Metric handles resolved once at construction; all null when
  // options_.metrics is null. Counter/Gauge/Histogram are themselves
  // thread-safe, though only the loop thread records here.
  obs::Counter* accepted_total_ = nullptr;
  obs::Counter* rejected_total_ = nullptr;
  obs::Counter* timeouts_total_ = nullptr;
  obs::Counter* read_bytes_total_ = nullptr;
  obs::Counter* write_bytes_total_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Histogram* read_us_ = nullptr;
  obs::Histogram* write_us_ = nullptr;
  obs::Histogram* lifetime_ms_ = nullptr;
};

}  // namespace serve
}  // namespace pane
