#include "src/serve/query_engine.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/matrix/gemm.h"
#include "src/matrix/vector_ops.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/dot_block.h"
#include "src/serve/embedding_store.h"

namespace pane {
namespace serve {
namespace {

constexpr int64_t kDefaultQueryBlock = 64;
constexpr int64_t kDefaultCandidateTile = 1024;
constexpr int64_t kMinCandidateTile = 64;

/// Copies query rows [begin, begin + b) of `factor` into the transposed
/// panel layout the dot-block kernel consumes.
/// Fills a width-`width` transposed panel with the b query rows; columns
/// [b, width) are the zero padding the fast fixed-width kernels need.
void GatherTransposed(ConstMatrixView factor,
                      const std::vector<TopKQuery>& queries, int64_t begin,
                      int64_t b, int64_t width, double* qt) {
  if (b < width) {
    std::fill(qt, qt + factor.cols() * width, 0.0);
  }
  for (int64_t q = 0; q < b; ++q) {
    const double* row = factor.Row(queries[static_cast<size_t>(begin + q)].node);
    for (int64_t t = 0; t < factor.cols(); ++t) qt[t * width + q] = row[t];
  }
}

struct BlockShape {
  int64_t query_block = kDefaultQueryBlock;
  int64_t candidate_tile = kDefaultCandidateTile;
};

/// Applies explicit overrides, then shrinks the candidate tile and the
/// query block (in that order) until every worker's scratch — two
/// transposed panels plus the query-block x candidate-tile score buffer —
/// fits the budget.
BlockShape DeriveBlockShape(const QueryEngineOptions& options, int64_t h) {
  BlockShape shape;
  if (options.query_block > 0) shape.query_block = options.query_block;
  if (options.candidate_tile > 0) shape.candidate_tile = options.candidate_tile;
  if (options.memory_budget_mb > 0) {
    const int64_t workers =
        options.pool != nullptr ? options.pool->num_threads() : 1;
    const int64_t budget =
        (options.memory_budget_mb << 20) / std::max<int64_t>(1, workers);
    const auto scratch_bytes = [h](const BlockShape& s) {
      return (s.query_block * (2 * h + s.candidate_tile + 8)) *
             static_cast<int64_t>(sizeof(double));
    };
    while (scratch_bytes(shape) > budget &&
           shape.candidate_tile > kMinCandidateTile) {
      shape.candidate_tile /= 2;
    }
    while (scratch_bytes(shape) > budget && shape.query_block > 1) {
      shape.query_block /= 2;
    }
  }
  shape.query_block = std::max<int64_t>(1, shape.query_block);
  shape.candidate_tile = std::max<int64_t>(kMinCandidateTile,
                                           shape.candidate_tile);
  return shape;
}

/// Per-query selection state shared by the two top-k scans: the bounded
/// heap plus the cached worst-kept pair used as a scan threshold
/// (-infinity until the heap fills, so everything is offered).
struct SelectState {
  TopKHeap heap;
  std::vector<int64_t> excluded;  // sorted ids to skip (incl. self for links)
  size_t excl_pos = 0;
  double thr_score = 0.0;
  int64_t thr_index = 0;

  explicit SelectState(int64_t k) : heap(k) {
    thr_score = -std::numeric_limits<double>::infinity();
    thr_index = std::numeric_limits<int64_t>::max();
  }
};

/// Scans scores of candidates [c0, c0 + len) for one query (`row[j]` is
/// candidate c0 + j), skipping excluded ids via segment bounds so the hot
/// loop is one compare per candidate. The threshold mirrors the heap's
/// accept rule exactly, so filtering never drops an acceptable candidate.
void ScanTile(const double* row, int64_t c0, int64_t len, SelectState* st) {
  double thr_score = st->thr_score;
  int64_t thr_index = st->thr_index;
  const std::vector<int64_t>& ex = st->excluded;
  size_t pos = st->excl_pos;
  int64_t j = 0;
  while (j < len) {
    while (pos < ex.size() && ex[pos] < c0 + j) ++pos;
    int64_t seg_end = len;
    bool skip_one = false;
    if (pos < ex.size() && ex[pos] < c0 + len) {
      seg_end = ex[pos] - c0;
      skip_one = true;
    }
    for (; j < seg_end; ++j) {
      const double s = row[j];
      if (s > thr_score || (s == thr_score && c0 + j < thr_index)) {
        st->heap.Offer(c0 + j, s);
        if (st->heap.AtCapacity()) {
          thr_score = st->heap.Worst().second;
          thr_index = st->heap.Worst().first;
        }
      }
    }
    if (skip_one) {
      ++j;
      ++pos;
    }
  }
  st->thr_score = thr_score;
  st->thr_index = thr_index;
  st->excl_pos = pos;
}

/// Sorted insert of the query node into its exclusion list (the link
/// scan's always-skip-self rule, folded into the segment walk).
void InsertSelf(std::vector<int64_t>* excluded, int64_t node) {
  const auto it = std::lower_bound(excluded->begin(), excluded->end(), node);
  if (it == excluded->end() || *it != node) excluded->insert(it, node);
}

}  // namespace

std::vector<int64_t> ExcludedIds(const CsrMatrix& matrix, int64_t row) {
  const CsrMatrix::RowView view = matrix.Row(row);
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(view.length));
  for (int64_t p = 0; p < view.length; ++p) {
    if (view.vals[p] != 0.0) ids.push_back(view.cols[p]);
  }
  return ids;  // CSR columns are sorted, so the list is ascending
}

Result<QueryEngine> QueryEngine::Create(ConstMatrixView xf,
                                        ConstMatrixView xb, ConstMatrixView y,
                                        ConstMatrixView z,
                                        const QueryEngineOptions& options) {
  if (xf.rows() == 0 || xf.cols() == 0) {
    return Status::InvalidArgument("QueryEngine requires a forward factor");
  }
  const int64_t h = xf.cols();
  if (xb.rows() > 0 && (xb.rows() != xf.rows() || xb.cols() != h)) {
    return Status::InvalidArgument("QueryEngine xb shape mismatch");
  }
  if (y.rows() > 0 && y.cols() != h) {
    return Status::InvalidArgument("QueryEngine y shape mismatch");
  }
  if (z.rows() > 0 && (z.rows() != xf.rows() || z.cols() != h)) {
    return Status::InvalidArgument("QueryEngine z shape mismatch");
  }
  QueryEngine engine;
  engine.xf_ = xf;
  engine.xb_ = xb;
  engine.y_ = y;
  engine.z_ = z;
  engine.pool_ = options.pool;
  const BlockShape shape = DeriveBlockShape(options, h);
  engine.query_block_ = shape.query_block;
  engine.candidate_tile_ = shape.candidate_tile;
  if (z.rows() == 0 && options.precompute_link_gram && xb.rows() > 0 &&
      y.rows() > 0) {
    // Same two kernels EdgeScorer runs, so p(u, w) matches it bitwise.
    DenseMatrix gram;
    GemmTransA(y, y, &gram);
    Gemm(xb, gram, &engine.z_owned_);
    engine.z_ = engine.z_owned_.View();
  }
  engine.num_attributes_ = engine.y_.rows();
  engine.supports_attributes_ = engine.xb_.rows() > 0 && engine.y_.rows() > 0;
  engine.supports_links_ = engine.z_.rows() > 0;
  if (options.metrics != nullptr) engine.ResolveMetrics(options.metrics);
  return engine;
}

void QueryEngine::ResolveMetrics(obs::MetricsRegistry* registry) {
  tiles_total_ = registry->GetCounter("pane_engine_tiles_scanned_total");
  ivf_scanned_total_ =
      registry->GetCounter("pane_engine_ivf_candidates_scanned_total");
  ivf_pruned_total_ =
      registry->GetCounter("pane_engine_ivf_candidates_pruned_total");
  tiles_gauge_ = registry->GetGauge("pane_engine_tiles_last_range");
  pruned_gauge_ = registry->GetGauge("pane_engine_ivf_pruned_last_range");
}

void QueryEngine::AccumulateRange(EngineCallStats* call_stats,
                                  int64_t scan_ns, int64_t select_ns,
                                  int64_t tiles, int64_t ivf_scanned,
                                  int64_t ivf_pruned) const {
  if (call_stats != nullptr) {
    call_stats->scan_ns.fetch_add(scan_ns, std::memory_order_relaxed);
    call_stats->select_ns.fetch_add(select_ns, std::memory_order_relaxed);
    call_stats->tiles.fetch_add(tiles, std::memory_order_relaxed);
    call_stats->ivf_scanned.fetch_add(ivf_scanned,
                                      std::memory_order_relaxed);
    call_stats->ivf_pruned.fetch_add(ivf_pruned, std::memory_order_relaxed);
  }
  if (tiles_total_ != nullptr && tiles > 0) {
    tiles_total_->Add(static_cast<uint64_t>(tiles));
    tiles_gauge_->Set(tiles);
  }
  if (ivf_scanned_total_ != nullptr && ivf_scanned > 0) {
    ivf_scanned_total_->Add(static_cast<uint64_t>(ivf_scanned));
  }
  if (ivf_pruned_total_ != nullptr && ivf_pruned > 0) {
    ivf_pruned_total_->Add(static_cast<uint64_t>(ivf_pruned));
    pruned_gauge_->Set(ivf_pruned);
  }
}

Result<QueryEngine> QueryEngine::CreateSharded(
    ConstMatrixView xf, ConstMatrixView xb, ConstMatrixView y,
    ConstMatrixView z, const store::ShardMeta& shard,
    const QueryEngineOptions& options) {
  if (xf.rows() != shard.num_nodes || xf.cols() != shard.dim ||
      xb.rows() != shard.num_nodes || xb.cols() != shard.dim) {
    return Status::InvalidArgument(
        "sharded engine needs the full xf/xb factors (" +
        std::to_string(shard.num_nodes) + " x " + std::to_string(shard.dim) +
        ")");
  }
  if (y.rows() != shard.attr_end - shard.attr_begin ||
      (y.rows() > 0 && y.cols() != shard.dim)) {
    return Status::InvalidArgument(
        "sharded engine y slice disagrees with the shard's attribute range");
  }
  if (z.rows() != shard.node_end - shard.node_begin ||
      (z.rows() > 0 && z.cols() != shard.dim)) {
    return Status::InvalidArgument(
        "sharded engine z slice disagrees with the shard's node range");
  }
  QueryEngine engine;
  engine.xf_ = xf;
  engine.xb_ = xb;
  engine.y_ = y;
  engine.z_ = z;
  engine.pool_ = options.pool;
  const BlockShape shape = DeriveBlockShape(options, shard.dim);
  engine.query_block_ = shape.query_block;
  engine.candidate_tile_ = shape.candidate_tile;
  engine.attr_base_ = shard.attr_begin;
  engine.link_base_ = shard.node_begin;
  engine.num_attributes_ = shard.num_attributes;
  engine.supports_attributes_ = shard.has_attributes;
  engine.supports_links_ = shard.has_links;
  engine.sharded_ = true;
  engine.shard_ = shard;
  if (options.metrics != nullptr) engine.ResolveMetrics(options.metrics);
  return engine;
}

Result<QueryEngine> QueryEngine::Create(const EmbeddingStore& store,
                                        const QueryEngineOptions& options) {
  if (store.sharded()) {
    return CreateSharded(store.xf(), store.xb(), store.y(), store.z(),
                         store.shard(), options);
  }
  if (!store.has_attribute_factors()) {
    return Status::InvalidArgument(
        "serving engine requires the xf/xb/y factor blocks (artifact "
        "method '" +
        store.method() + "' lacks them)");
  }
  return Create(store.xf(), store.xb(), store.y(), ConstMatrixView(),
                options);
}

void QueryEngine::ProcessAttributeRange(const std::vector<TopKQuery>& queries,
                                        const AttributedGraph* exclude,
                                        int64_t begin, int64_t end,
                                        std::vector<Ranking>* results,
                                        EngineCallStats* call_stats) const {
  const int64_t h = xf_.cols();
  const int64_t d = y_.rows();
  // Stage clocks are read per tile only when the caller asked for the
  // breakdown; a tile is ~query_block x candidate_tile x h flops, so two
  // clock reads against it are noise.
  const bool timed = call_stats != nullptr;
  int64_t scan_ns = 0, select_ns = 0, tiles = 0;
  const int64_t max_b = std::min(query_block_, end - begin);
  const int64_t max_w = PadDotBlockWidth(max_b);
  const int64_t tile = candidate_tile_;
  const DotBlockFn dot_block = GetDotBlock();
  std::vector<double> qtf(static_cast<size_t>(h * max_w));
  std::vector<double> qtb(static_cast<size_t>(h * max_w));
  std::vector<double> buf(static_cast<size_t>(max_w * tile));
  std::vector<SelectState> states;

  for (int64_t block = begin; block < end; block += max_b) {
    const int64_t b = std::min(max_b, end - block);
    const int64_t w = PadDotBlockWidth(b);
    GatherTransposed(xf_, queries, block, b, w, qtf.data());
    GatherTransposed(xb_, queries, block, b, w, qtb.data());
    states.clear();
    for (int64_t q = 0; q < b; ++q) {
      const TopKQuery& query = queries[static_cast<size_t>(block + q)];
      states.emplace_back(query.k);
      if (exclude != nullptr) {
        states.back().excluded = ExcludedIds(exclude->attributes(), query.node);
      }
    }
    for (int64_t c0 = 0; c0 < d; c0 += tile) {
      const int64_t len = std::min(tile, d - c0);
      const int64_t scan_start = timed ? MonotonicNanos() : 0;
      for (int64_t c = c0; c < c0 + len; ++c) {
        // Score = Dot(xf, y) + Dot(xb, y), summed in that order (Eq. 21).
        dot_block(qtf.data(), h, w, y_.Row(c), buf.data() + (c - c0), tile,
                  /*add=*/false);
        dot_block(qtb.data(), h, w, y_.Row(c), buf.data() + (c - c0), tile,
                  /*add=*/true);
      }
      const int64_t select_start = timed ? MonotonicNanos() : 0;
      for (int64_t q = 0; q < b; ++q) {
        // Offer global candidate ids (attr_base_ shifts the local slice),
        // so exclusion lists and tie-breaks work in global id space.
        ScanTile(buf.data() + q * tile, attr_base_ + c0, len,
                 &states[static_cast<size_t>(q)]);
      }
      if (timed) {
        scan_ns += select_start - scan_start;
        select_ns += MonotonicNanos() - select_start;
      }
      ++tiles;
    }
    for (int64_t q = 0; q < b; ++q) {
      (*results)[static_cast<size_t>(block + q)] =
          states[static_cast<size_t>(q)].heap.Take();
    }
  }
  AccumulateRange(call_stats, scan_ns, select_ns, tiles, 0, 0);
}

void QueryEngine::ProcessTargetRange(const std::vector<TopKQuery>& queries,
                                     const AttributedGraph* exclude,
                                     int64_t begin, int64_t end,
                                     std::vector<Ranking>* results,
                                     EngineCallStats* call_stats) const {
  const int64_t h = xf_.cols();
  const int64_t n = z_.rows();
  const bool timed = call_stats != nullptr;
  int64_t scan_ns = 0, select_ns = 0, tiles = 0;
  const int64_t max_b = std::min(query_block_, end - begin);
  const int64_t max_w = PadDotBlockWidth(max_b);
  const int64_t tile = candidate_tile_;
  const DotBlockFn dot_block = GetDotBlock();
  std::vector<double> qtf(static_cast<size_t>(h * max_w));
  std::vector<double> buf(static_cast<size_t>(max_w * tile));
  std::vector<SelectState> states;

  for (int64_t block = begin; block < end; block += max_b) {
    const int64_t b = std::min(max_b, end - block);
    const int64_t w = PadDotBlockWidth(b);
    GatherTransposed(xf_, queries, block, b, w, qtf.data());
    states.clear();
    for (int64_t q = 0; q < b; ++q) {
      const TopKQuery& query = queries[static_cast<size_t>(block + q)];
      states.emplace_back(query.k);
      if (exclude != nullptr) {
        states.back().excluded = ExcludedIds(exclude->adjacency(), query.node);
      }
      InsertSelf(&states.back().excluded, query.node);
    }
    for (int64_t c0 = 0; c0 < n; c0 += tile) {
      const int64_t len = std::min(tile, n - c0);
      const int64_t scan_start = timed ? MonotonicNanos() : 0;
      for (int64_t c = c0; c < c0 + len; ++c) {
        dot_block(qtf.data(), h, w, z_.Row(c), buf.data() + (c - c0), tile,
                  /*add=*/false);
      }
      const int64_t select_start = timed ? MonotonicNanos() : 0;
      for (int64_t q = 0; q < b; ++q) {
        ScanTile(buf.data() + q * tile, link_base_ + c0, len,
                 &states[static_cast<size_t>(q)]);
      }
      if (timed) {
        scan_ns += select_start - scan_start;
        select_ns += MonotonicNanos() - select_start;
      }
      ++tiles;
    }
    for (int64_t q = 0; q < b; ++q) {
      (*results)[static_cast<size_t>(block + q)] =
          states[static_cast<size_t>(q)].heap.Take();
    }
  }
  AccumulateRange(call_stats, scan_ns, select_ns, tiles, 0, 0);
}

namespace {

/// Contiguous-range dispatch: queries are independent, so any partition
/// yields identical per-query results.
///
/// Concurrency contract of the engine (checked by the TSan tier rather
/// than lock annotations — there is no lock to annotate): the factor views
/// and IVF indexes are immutable once Create / BuildPrunedIndex /
/// LoadPrunedIndex return, every worker owns private scratch, and each
/// worker writes only the result slots of its own [begin, end) range. The
/// RunBlocks barrier in ParallelFor publishes those slots to the caller.
/// The only mutating members (BuildPrunedIndex / LoadPrunedIndex) must not
/// run concurrently with queries — PaneServer builds its index before
/// accepting traffic.
void RunRanges(ThreadPool* pool, int64_t count,
               const std::function<void(int64_t, int64_t)>& fn) {
  if (count == 0) return;
  if (pool != nullptr && pool->num_threads() > 1 && count > 1) {
    ParallelFor(pool, 0, count, fn);
  } else {
    fn(0, count);
  }
}

}  // namespace

std::vector<Ranking> QueryEngine::TopKAttributes(
    const std::vector<TopKQuery>& queries, const AttributedGraph* exclude,
    EngineCallStats* call_stats) const {
  PANE_CHECK(supports_attributes())
      << "attribute queries need the xb and y factor blocks";
  for (const TopKQuery& q : queries) {
    PANE_CHECK(q.node >= 0 && q.node < num_nodes());
    PANE_CHECK(q.k > 0);
  }
  std::vector<Ranking> results(queries.size());
  RunRanges(pool_, static_cast<int64_t>(queries.size()),
            [&](int64_t begin, int64_t end) {
              ProcessAttributeRange(queries, exclude, begin, end, &results,
                                    call_stats);
            });
  return results;
}

std::vector<Ranking> QueryEngine::TopKTargets(
    const std::vector<TopKQuery>& queries, const AttributedGraph* exclude,
    EngineCallStats* call_stats) const {
  PANE_CHECK(supports_links())
      << "link queries need z (supply it or let Create derive it from "
         "xb and y)";
  for (const TopKQuery& q : queries) {
    PANE_CHECK(q.node >= 0 && q.node < num_nodes());
    PANE_CHECK(q.k > 0);
  }
  std::vector<Ranking> results(queries.size());
  RunRanges(pool_, static_cast<int64_t>(queries.size()),
            [&](int64_t begin, int64_t end) {
              ProcessTargetRange(queries, exclude, begin, end, &results,
                                 call_stats);
            });
  return results;
}

std::vector<double> QueryEngine::AttributeScores(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) const {
  PANE_CHECK(supports_attributes());
  const int64_t h = xf_.cols();
  std::vector<double> scores(pairs.size());
  RunRanges(pool_, static_cast<int64_t>(pairs.size()),
            [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const auto& [v, r] = pairs[static_cast<size_t>(i)];
                PANE_CHECK(v >= 0 && v < num_nodes());
                PANE_CHECK(r >= 0 && r < num_attributes());
                PANE_CHECK(OwnsAttribute(r))
                    << "attribute " << r << " is not held by this shard";
                const double* yr = y_.Row(r - attr_base_);
                scores[static_cast<size_t>(i)] =
                    Dot(xf_.Row(v), yr, h) + Dot(xb_.Row(v), yr, h);
              }
            });
  return scores;
}

std::vector<double> QueryEngine::LinkScores(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) const {
  PANE_CHECK(supports_links());
  const int64_t h = xf_.cols();
  std::vector<double> scores(pairs.size());
  RunRanges(pool_, static_cast<int64_t>(pairs.size()),
            [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const auto& [u, w] = pairs[static_cast<size_t>(i)];
                PANE_CHECK(u >= 0 && u < num_nodes());
                PANE_CHECK(w >= 0 && w < num_nodes());
                PANE_CHECK(OwnsTarget(w))
                    << "target " << w << " is not held by this shard";
                scores[static_cast<size_t>(i)] =
                    Dot(xf_.Row(u), z_.Row(w - link_base_), h);
              }
            });
  return scores;
}

Status QueryEngine::BuildPrunedIndex(const IvfOptions& options) {
  if (!supports_attributes() && !supports_links()) {
    return Status::InvalidArgument(
        "nothing to index: engine has neither attribute nor link scoring");
  }
  // Index only the local candidate slices. A shard whose slice for one
  // query family is empty simply keeps that index empty — the pruned calls
  // answer it with empty rankings, and the router's merge is unaffected.
  if (supports_attributes() && y_.rows() > 0) {
    PANE_ASSIGN_OR_RETURN(attr_index_, IvfIndex::Build(y_, options));
  }
  if (supports_links() && z_.rows() > 0) {
    PANE_ASSIGN_OR_RETURN(link_index_, IvfIndex::Build(z_, options));
  }
  return Status::OK();
}

Status QueryEngine::SavePrunedIndex(const std::string& path) const {
  if (!has_pruned_index()) {
    return Status::InvalidArgument(
        "no pruned index built; call BuildPrunedIndex before SavePrunedIndex");
  }
  store::ContainerWriter writer;
  std::string attr_meta, link_meta;  // alive until WriteTo returns
  if (!attr_index_.empty()) {
    PANE_RETURN_NOT_OK(attr_index_.AppendToContainer("attr.", &attr_meta,
                                                     &writer));
  }
  if (!link_index_.empty()) {
    PANE_RETURN_NOT_OK(link_index_.AppendToContainer("link.", &link_meta,
                                                     &writer));
  }
  return writer.WriteTo(path);
}

Status QueryEngine::LoadPrunedIndex(const std::string& path) {
  PANE_ASSIGN_OR_RETURN(store::Container container,
                        store::Container::Open(path));
  // Validate each stored index against this engine's candidate set before
  // touching attr_index_ / link_index_, so a mismatch leaves the engine
  // unchanged.
  IvfIndex attr_loaded, link_loaded;
  bool have_attr = false, have_link = false;
  {
    auto loaded = IvfIndex::FromContainer(container, "attr.");
    if (loaded.ok()) {
      if (!supports_attributes()) {
        return Status::InvalidArgument(
            path + " holds an attribute index but this engine has no "
                   "attribute scoring");
      }
      if (loaded->num_candidates() != y_.rows() ||
          loaded->dim() != y_.cols()) {
        return Status::InvalidArgument(
            path + " attribute index was built for a different embedding "
                   "(candidate count or dimension mismatch)");
      }
      attr_loaded = loaded.MoveValueUnsafe();
      have_attr = true;
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();
    }
  }
  {
    auto loaded = IvfIndex::FromContainer(container, "link.");
    if (loaded.ok()) {
      if (!supports_links()) {
        return Status::InvalidArgument(
            path + " holds a link index but this engine has no link scoring");
      }
      if (loaded->num_candidates() != z_.rows() ||
          loaded->dim() != z_.cols()) {
        return Status::InvalidArgument(
            path + " link index was built for a different embedding "
                   "(candidate count or dimension mismatch)");
      }
      link_loaded = loaded.MoveValueUnsafe();
      have_link = true;
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();
    }
  }
  if (!have_attr && !have_link) {
    return Status::InvalidArgument("container " + path +
                                   " holds no pruned index");
  }
  if (have_attr) attr_index_ = std::move(attr_loaded);
  if (have_link) link_index_ = std::move(link_loaded);
  return Status::OK();
}

std::vector<Ranking> QueryEngine::TopKAttributesPruned(
    const std::vector<TopKQuery>& queries, int64_t nprobe,
    const AttributedGraph* exclude, EngineCallStats* call_stats) const {
  PANE_CHECK(!attr_index_.empty() || (sharded_ && y_.rows() == 0))
      << "call BuildPrunedIndex before pruned attribute queries";
  const int64_t h = xf_.cols();
  std::vector<Ranking> results(queries.size());
  // A shard holding no attribute rows contributes nothing to any merge.
  if (attr_index_.empty()) {
    for (const TopKQuery& q : queries) {
      PANE_CHECK(q.node >= 0 && q.node < num_nodes());
      PANE_CHECK(q.k > 0);
    }
    return results;
  }
  const bool count = call_stats != nullptr || ivf_scanned_total_ != nullptr;
  RunRanges(pool_, static_cast<int64_t>(queries.size()),
            [&](int64_t begin, int64_t end) {
              std::vector<double> qv(static_cast<size_t>(h));
              int64_t scanned = 0;
              const int64_t start_ns =
                  call_stats != nullptr ? MonotonicNanos() : 0;
              for (int64_t i = begin; i < end; ++i) {
                const TopKQuery& query = queries[static_cast<size_t>(i)];
                PANE_CHECK(query.node >= 0 && query.node < num_nodes());
                PANE_CHECK(query.k > 0);
                const double* f = xf_.Row(query.node);
                const double* bk = xb_.Row(query.node);
                for (int64_t t = 0; t < h; ++t) {
                  qv[static_cast<size_t>(t)] = f[t] + bk[t];
                }
                const std::vector<int64_t> ex =
                    exclude != nullptr
                        ? ExcludedIds(exclude->attributes(), query.node)
                        : std::vector<int64_t>();
                results[static_cast<size_t>(i)] = attr_index_.Search(
                    qv.data(), query.k, nprobe, ex, /*skip_id=*/-1,
                    /*id_base=*/attr_base_, count ? &scanned : nullptr);
              }
              const int64_t scan_ns =
                  call_stats != nullptr ? MonotonicNanos() - start_ns : 0;
              const int64_t pruned =
                  count ? (end - begin) * attr_index_.num_candidates() -
                              scanned
                        : 0;
              AccumulateRange(call_stats, scan_ns, 0, 0, scanned, pruned);
            });
  return results;
}

std::vector<Ranking> QueryEngine::TopKTargetsPruned(
    const std::vector<TopKQuery>& queries, int64_t nprobe,
    const AttributedGraph* exclude, EngineCallStats* call_stats) const {
  PANE_CHECK(!link_index_.empty() || (sharded_ && z_.rows() == 0))
      << "call BuildPrunedIndex before pruned link queries";
  std::vector<Ranking> results(queries.size());
  if (link_index_.empty()) {
    for (const TopKQuery& q : queries) {
      PANE_CHECK(q.node >= 0 && q.node < num_nodes());
      PANE_CHECK(q.k > 0);
    }
    return results;
  }
  const bool count = call_stats != nullptr || ivf_scanned_total_ != nullptr;
  RunRanges(pool_, static_cast<int64_t>(queries.size()),
            [&](int64_t begin, int64_t end) {
              int64_t scanned = 0;
              const int64_t start_ns =
                  call_stats != nullptr ? MonotonicNanos() : 0;
              for (int64_t i = begin; i < end; ++i) {
                const TopKQuery& query = queries[static_cast<size_t>(i)];
                PANE_CHECK(query.node >= 0 && query.node < num_nodes());
                PANE_CHECK(query.k > 0);
                const std::vector<int64_t> ex =
                    exclude != nullptr
                        ? ExcludedIds(exclude->adjacency(), query.node)
                        : std::vector<int64_t>();
                results[static_cast<size_t>(i)] =
                    link_index_.Search(xf_.Row(query.node), query.k, nprobe,
                                       ex, /*skip_id=*/query.node,
                                       /*id_base=*/link_base_,
                                       count ? &scanned : nullptr);
              }
              const int64_t scan_ns =
                  call_stats != nullptr ? MonotonicNanos() - start_ns : 0;
              const int64_t pruned =
                  count ? (end - begin) * link_index_.num_candidates() -
                              scanned
                        : 0;
              AccumulateRange(call_stats, scan_ns, 0, 0, scanned, pruned);
            });
  return results;
}

}  // namespace serve
}  // namespace pane
