#include "src/serve/server.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/serve/router.h"
#include "src/serve/session.h"
#include "src/serve/shard_plan.h"
#include "src/serve/transport.h"

namespace pane {
namespace serve {
namespace {

/// Bytes pulled from the stream per ServeStream pump.
constexpr std::streamsize kStreamChunk = 64 << 10;

}  // namespace

size_t PaneServer::RequestHash::operator()(const Request& r) const {
  size_t h = static_cast<size_t>(r.type);
  const auto mix = [&h](uint64_t v) {
    h ^= static_cast<size_t>(v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  mix(static_cast<uint64_t>(r.a));
  mix(static_cast<uint64_t>(r.b));
  mix(static_cast<uint64_t>(r.k));
  return h;
}

PaneServer::PaneServer(const QueryEngine* engine, const ServerOptions& options)
    : engine_(engine), options_(options) {
  PANE_CHECK(engine_ != nullptr);
  if (options_.pruned) {
    // A shard whose local candidate slice is empty legitimately has no
    // index — it answers pruned queries with empty rankings.
    PANE_CHECK(engine_->has_pruned_index() || engine_->sharded())
        << "pruned serving mode needs BuildPrunedIndex on the engine";
  }
  Init();
}

PaneServer::PaneServer(Router* router, const ServerOptions& options)
    : router_(router), options_(options) {
  PANE_CHECK(router_ != nullptr);
  Init();
}

void PaneServer::Init() {
  PANE_CHECK(options_.batch_size > 0);
  if (options_.metrics_enabled) {
    if (options_.metrics != nullptr) {
      metrics_ = options_.metrics;
    } else {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
      metrics_ = owned_metrics_.get();
    }
    for (int s = 0; s < obs::kNumStages; ++s) {
      stage_us_[s] = metrics_->GetHistogram(
          std::string("pane_stage_") +
          obs::StageName(static_cast<obs::Stage>(s)) + "_us");
    }
    batch_us_ = metrics_->GetHistogram("pane_server_batch_us");
  }
  TransportOptions transport_options;
  transport_options.max_connections = options_.max_connections;
  transport_options.idle_timeout_ms = options_.idle_timeout_ms;
  transport_options.refusal = "err server busy\n";
  transport_options.metrics = metrics_;
  transport_ = std::make_unique<EpollTransport>(
      [this]() -> std::unique_ptr<ConnectionHandler> {
        return std::make_unique<ServeSession>(this, options_.protocol);
      },
      transport_options);
}

PaneServer::~PaneServer() { Shutdown(); }

bool PaneServer::CacheLookup(const Request& key, std::string* response) {
  if (options_.cache_capacity <= 0) return false;
  MutexLock lock(&cache_mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  *response = it->second->second;
  return true;
}

void PaneServer::CacheInsert(const Request& key, const std::string& response) {
  if (options_.cache_capacity <= 0) return;
  MutexLock lock(&cache_mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = response;
    return;
  }
  lru_.emplace_front(key, response);
  cache_[key] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void PaneServer::Count(uint64_t Counters::*field, uint64_t delta) {
  MutexLock lock(&stats_mutex_);
  counters_.*field += delta;
}

void PaneServer::RecordFrames(uint64_t delta) {
  Count(&Counters::frames, delta);
}

void PaneServer::RecordStageTime(obs::Stage stage, int64_t us) {
  if (metrics_ == nullptr) return;
  stage_us_[static_cast<int>(stage)]->Record(us);
}

std::string PaneServer::StatsResponse() const {
  const Counters snapshot = counters();  // one instant, one lock hold
  std::string out = "stats ok";
  const auto field = [&out](const char* name, uint64_t value) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("requests", snapshot.requests);
  field("batches", snapshot.batches);
  field("dedup_hits", snapshot.dedup_hits);
  field("cache_hits", snapshot.cache_hits);
  field("errors", snapshot.errors);
  field("timeouts", snapshot.timeouts);
  field("rejected", snapshot.rejected);
  field("frames", snapshot.frames);
  if (router_ != nullptr) {
    out += " mode=router shards=" + std::to_string(router_->num_shards());
    out += router_->StatsSuffix();
    return out;
  }
  out += options_.pruned ? " mode=pruned nprobe=" + std::to_string(options_.nprobe)
                         : std::string(" mode=exact");
  return out;
}

std::string PaneServer::MetricsResponse() const {
  // The registry first (stage/transport/engine/router series), then the
  // served-request counters as their own families, then the explicit
  // terminator clients scan for — a multi-line payload needs one.
  std::string out;
  if (metrics_ != nullptr) out = metrics_->RenderPrometheus();
  const Counters snapshot = counters();
  const auto counter = [&out](const char* name, uint64_t value) {
    out += "# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  counter("pane_server_requests_total", snapshot.requests);
  counter("pane_server_batches_total", snapshot.batches);
  counter("pane_server_dedup_hits_total", snapshot.dedup_hits);
  counter("pane_server_cache_hits_total", snapshot.cache_hits);
  counter("pane_server_errors_total", snapshot.errors);
  counter("pane_server_timeouts_total", snapshot.timeouts);
  counter("pane_server_rejected_total", snapshot.rejected);
  counter("pane_server_frames_total", snapshot.frames);
  out += "# EOF";
  return out;
}

std::string PaneServer::PlanResponse() const {
  if (router_ == nullptr && engine_->sharded()) {
    return FormatPlanResponse(engine_->shard());
  }
  // An unsharded server (or a router fronting a whole fleet) is plan
  // position 0/1 owning the full candidate space.
  ShardSpec spec;
  spec.shard_index = 0;
  spec.shard_count = 1;
  if (router_ != nullptr) {
    spec.num_nodes = router_->num_nodes();
    spec.num_attributes = router_->num_attributes();
    spec.dim = router_->dim();
    spec.has_attributes = router_->supports_attributes();
    spec.has_links = router_->supports_links();
  } else {
    spec.num_nodes = engine_->num_nodes();
    spec.num_attributes = engine_->num_attributes();
    spec.dim = engine_->dim();
    spec.has_attributes = engine_->supports_attributes();
    spec.has_links = engine_->supports_links();
  }
  spec.node_end = spec.num_nodes;
  spec.attr_end = spec.num_attributes;
  return FormatPlanResponse(spec);
}

void PaneServer::ExecuteBatch(std::vector<BatchEntry>* batch,
                              std::vector<std::string>* responses,
                              bool* quit, obs::RequestTrace* trace) {
  responses->clear();
  if (batch->empty()) return;
  const size_t count = batch->size();
  responses->resize(count);
  // Timing runs when the batch can land anywhere observable: the stage
  // histograms or a slow-query line. A disabled subsystem pays no clock
  // reads at all.
  const bool timing = metrics_ != nullptr || options_.slow_query_us > 0;
  obs::RequestTrace local_trace;
  obs::RequestTrace* t =
      trace != nullptr ? trace : (timing ? &local_trace : nullptr);
  EngineCallStats call_stats;
  EngineCallStats* engine_stats = timing ? &call_stats : nullptr;
  int64_t pair_scan_ns = 0;
  const int64_t batch_start_us = timing ? MonotonicMicros() : 0;
  // Key -> index of the entry that owns the engine work for it.
  std::unordered_map<Request, size_t, RequestHash> first_seen;
  std::vector<size_t> duplicates;  // entries answered by an earlier twin
  std::vector<TopKQuery> attr_queries, link_queries;
  std::vector<size_t> attr_owner, link_owner;
  std::vector<std::pair<int64_t, int64_t>> attr_pairs, link_pairs;
  std::vector<size_t> attr_pair_owner, link_pair_owner;
  bool ran_engine = false;

  const bool routed = router_ != nullptr;
  const int64_t n = routed ? router_->num_nodes() : engine_->num_nodes();
  const int64_t d =
      routed ? router_->num_attributes() : engine_->num_attributes();
  const bool has_attr_scoring =
      routed ? router_->supports_attributes() : engine_->supports_attributes();
  const bool has_link_scoring =
      routed ? router_->supports_links() : engine_->supports_links();
  for (size_t i = 0; i < count; ++i) {
    BatchEntry& entry = (*batch)[i];
    if (entry.parse_error) {
      (*responses)[i] = FormatError(entry.error);
      Count(&Counters::errors);
      continue;
    }
    const Request& r = entry.request;
    Count(&Counters::requests);
    if (r.type == Request::Type::kQuit) {
      (*responses)[i] = "bye";
      *quit = true;
      continue;
    }
    if (r.type == Request::Type::kPlan) {
      (*responses)[i] = PlanResponse();
      continue;
    }
    if (r.type == Request::Type::kStats ||
        r.type == Request::Type::kMetrics) {
      continue;  // formatted at emit time, after this batch's engine work
    }
    // Range validation up front: the engine PANE_CHECKs its inputs, and a
    // served request must never abort the process.
    const bool attr_like = r.type == Request::Type::kTopKAttributes ||
                           r.type == Request::Type::kAttributePair;
    if (r.a < 0 || r.a >= n) {
      (*responses)[i] = FormatError("node out of range");
      Count(&Counters::errors);
      continue;
    }
    if ((r.type == Request::Type::kAttributePair && (r.b < 0 || r.b >= d)) ||
        (r.type == Request::Type::kLinkPair && (r.b < 0 || r.b >= n))) {
      (*responses)[i] = FormatError("id out of range");
      Count(&Counters::errors);
      continue;
    }
    if (attr_like && !has_attr_scoring) {
      (*responses)[i] = FormatError("attribute scoring unavailable");
      Count(&Counters::errors);
      continue;
    }
    if (!attr_like && !has_link_scoring) {
      (*responses)[i] = FormatError("link scoring unavailable");
      Count(&Counters::errors);
      continue;
    }
    // A shard server reached directly (not via its router) must refuse
    // pairs whose candidate row lives elsewhere — the engine PANE_CHECKs
    // ownership, and a served request must never abort the process.
    if (!routed && engine_->sharded() &&
        ((r.type == Request::Type::kAttributePair &&
          !engine_->OwnsAttribute(r.b)) ||
         (r.type == Request::Type::kLinkPair && !engine_->OwnsTarget(r.b)))) {
      (*responses)[i] = FormatError("id not on this shard");
      Count(&Counters::errors);
      continue;
    }
    std::string cached;
    if (CacheLookup(r, &cached)) {
      (*responses)[i] = std::move(cached);
      Count(&Counters::cache_hits);
      continue;
    }
    const auto [it, inserted] = first_seen.emplace(r, i);
    if (!inserted) {
      duplicates.push_back(i);
      Count(&Counters::dedup_hits);
      continue;
    }
    switch (r.type) {
      case Request::Type::kTopKAttributes:
        attr_queries.push_back({r.a, r.k});
        attr_owner.push_back(i);
        break;
      case Request::Type::kTopKTargets:
        link_queries.push_back({r.a, r.k});
        link_owner.push_back(i);
        break;
      case Request::Type::kAttributePair:
        attr_pairs.emplace_back(r.a, r.b);
        attr_pair_owner.push_back(i);
        break;
      case Request::Type::kLinkPair:
        link_pairs.emplace_back(r.a, r.b);
        link_pair_owner.push_back(i);
        break;
      default:
        break;
    }
  }

  // Shared cache step: degradation payloads (`err shard unavailable`)
  // count as errors and must not outlive the outage in the cache.
  const auto cache_response = [this, batch, responses](size_t i) {
    const std::string& payload = (*responses)[i];
    if (payload.compare(0, 4, "err ") == 0) {
      Count(&Counters::errors);
      return;
    }
    CacheInsert((*batch)[i].request, payload);
  };

  if (routed) {
    const auto gather = [batch](const std::vector<size_t>& owners) {
      std::vector<Request> gathered;
      gathered.reserve(owners.size());
      for (const size_t i : owners) gathered.push_back((*batch)[i].request);
      return gathered;
    };
    const auto assign = [responses, &cache_response](
                            const std::vector<size_t>& owners,
                            std::vector<std::string> payloads) {
      for (size_t j = 0; j < owners.size(); ++j) {
        (*responses)[owners[j]] = std::move(payloads[j]);
        cache_response(owners[j]);
      }
    };
    if (!attr_owner.empty()) {
      assign(attr_owner, router_->TopKAttributes(gather(attr_owner), t));
      ran_engine = true;
    }
    if (!link_owner.empty()) {
      assign(link_owner, router_->TopKTargets(gather(link_owner), t));
      ran_engine = true;
    }
    if (!attr_pair_owner.empty()) {
      assign(attr_pair_owner,
             router_->AttributeScores(gather(attr_pair_owner), t));
      ran_engine = true;
    }
    if (!link_pair_owner.empty()) {
      assign(link_pair_owner,
             router_->LinkScores(gather(link_pair_owner), t));
      ran_engine = true;
    }
  } else {
    if (!attr_queries.empty()) {
      const std::vector<Ranking> results =
          options_.pruned
              ? engine_->TopKAttributesPruned(attr_queries, options_.nprobe,
                                              options_.exclude, engine_stats)
              : engine_->TopKAttributes(attr_queries, options_.exclude,
                                        engine_stats);
      for (size_t j = 0; j < results.size(); ++j) {
        const size_t i = attr_owner[j];
        (*responses)[i] = FormatRanking((*batch)[i].request, results[j]);
        cache_response(i);
      }
      ran_engine = true;
    }
    if (!link_queries.empty()) {
      const std::vector<Ranking> results =
          options_.pruned
              ? engine_->TopKTargetsPruned(link_queries, options_.nprobe,
                                           options_.exclude, engine_stats)
              : engine_->TopKTargets(link_queries, options_.exclude,
                                     engine_stats);
      for (size_t j = 0; j < results.size(); ++j) {
        const size_t i = link_owner[j];
        (*responses)[i] = FormatRanking((*batch)[i].request, results[j]);
        cache_response(i);
      }
      ran_engine = true;
    }
    if (!attr_pairs.empty()) {
      // Pair scoring has no tile/select split — its wall time counts as
      // scan, the stage it is.
      const int64_t pair_start_ns = timing ? MonotonicNanos() : 0;
      const std::vector<double> scores = engine_->AttributeScores(attr_pairs);
      if (timing) pair_scan_ns += MonotonicNanos() - pair_start_ns;
      for (size_t j = 0; j < scores.size(); ++j) {
        const size_t i = attr_pair_owner[j];
        (*responses)[i] = FormatScore((*batch)[i].request, scores[j]);
        cache_response(i);
      }
      ran_engine = true;
    }
    if (!link_pairs.empty()) {
      const int64_t pair_start_ns = timing ? MonotonicNanos() : 0;
      const std::vector<double> scores = engine_->LinkScores(link_pairs);
      if (timing) pair_scan_ns += MonotonicNanos() - pair_start_ns;
      for (size_t j = 0; j < scores.size(); ++j) {
        const size_t i = link_pair_owner[j];
        (*responses)[i] = FormatScore((*batch)[i].request, scores[j]);
        cache_response(i);
      }
      ran_engine = true;
    }
    if (t != nullptr && ran_engine) {
      t->Add(obs::Stage::kScan,
             (call_stats.scan_ns.load(std::memory_order_relaxed) +
              pair_scan_ns) /
                 1000);
      t->Add(obs::Stage::kSelect,
             call_stats.select_ns.load(std::memory_order_relaxed) / 1000);
    }
  }
  if (ran_engine) Count(&Counters::batches);

  if (metrics_ != nullptr) {
    // Decode / batch-wait come stamped on an external (session) trace; an
    // internal hop (LocalShard) never records them, so the front server's
    // numbers stay undiluted. Scan/select are engine-mode stages,
    // fan-out/merge router-mode ones — recording only the stages this
    // server actually runs keeps every histogram zero-free by design.
    if (trace != nullptr) {
      stage_us_[static_cast<int>(obs::Stage::kDecode)]->Record(
          trace->us(obs::Stage::kDecode));
      stage_us_[static_cast<int>(obs::Stage::kBatchWait)]->Record(
          trace->us(obs::Stage::kBatchWait));
    }
    if (ran_engine && t != nullptr) {
      if (router_ != nullptr) {
        stage_us_[static_cast<int>(obs::Stage::kFanout)]->Record(
            t->us(obs::Stage::kFanout));
        stage_us_[static_cast<int>(obs::Stage::kMerge)]->Record(
            t->us(obs::Stage::kMerge));
      } else {
        stage_us_[static_cast<int>(obs::Stage::kScan)]->Record(
            t->us(obs::Stage::kScan));
        stage_us_[static_cast<int>(obs::Stage::kSelect)]->Record(
            t->us(obs::Stage::kSelect));
      }
    }
    batch_us_->Record(MonotonicMicros() - batch_start_us);
  }
  // One structured line per offending engine batch (encode happens later
  // in the session, outside this window).
  if (options_.slow_query_us > 0 && ran_engine && t != nullptr &&
      t->total_us() >= options_.slow_query_us) {
    std::string first;
    for (const BatchEntry& entry : *batch) {
      if (!entry.parse_error) {
        first = FormatRequest(entry.request);
        break;
      }
    }
    PANE_LOG(WARNING) << "slow_query total_us=" << t->total_us()
                      << " requests=" << count << ' '
                      << t->FormatBreakdown() << " first=\"" << first << '"';
  }

  for (const size_t i : duplicates) {
    const auto it = first_seen.find((*batch)[i].request);
    PANE_CHECK(it != first_seen.end());
    (*responses)[i] = (*responses)[it->second];
  }
  // Stats / metrics entries format last so they see this batch's own
  // counter bumps, the same instant the old stream loop printed them at.
  for (size_t i = 0; i < count; ++i) {
    if ((*batch)[i].parse_error) continue;
    if ((*batch)[i].request.type == Request::Type::kStats) {
      (*responses)[i] = StatsResponse();
    } else if ((*batch)[i].request.type == Request::Type::kMetrics) {
      (*responses)[i] = MetricsResponse();
    }
  }
  batch->clear();
}

void PaneServer::ServeStream(std::istream& in, std::ostream& out) {
  ServeSession session(this, options_.protocol);
  std::string input;
  std::string output;
  std::string chunk;
  const auto emit = [&out, &output]() {
    if (output.empty()) return;
    out.write(output.data(), static_cast<std::streamsize>(output.size()));
    out.flush();
    output.clear();
  };
  while (true) {
    // peek() blocks until at least one byte (or EOF) is available; the
    // inner loop then drains whatever else the streambuf already holds so
    // a burst of requests becomes one pump — and one engine batch.
    if (in.peek() == std::char_traits<char>::eof()) break;
    do {
      const std::streamsize want =
          std::min(std::max<std::streamsize>(in.rdbuf()->in_avail(), 1),
                   kStreamChunk);
      chunk.resize(static_cast<size_t>(want));
      in.read(chunk.data(), want);
      const std::streamsize got = in.gcount();
      if (got <= 0) break;
      input.append(chunk.data(), static_cast<size_t>(got));
    } while (in.good() && in.rdbuf()->in_avail() > 0);
    const ConnectionHandler::Action action = session.OnData(&input, &output);
    emit();
    if (action == ConnectionHandler::Action::kClose) return;
  }
  session.OnEof(&input, &output);
  emit();
}

Result<int> PaneServer::ListenTcp(int port) { return transport_->Listen(port); }

void PaneServer::AcceptLoop() { transport_->Run(); }

void PaneServer::Shutdown() { transport_->Shutdown(); }

PaneServer::Counters PaneServer::counters() const {
  Counters snapshot;
  {
    MutexLock lock(&stats_mutex_);
    snapshot = counters_;
  }
  const TransportStats transport = transport_->stats();
  snapshot.timeouts = transport.timeouts;
  snapshot.rejected = transport.rejected;
  return snapshot;
}

}  // namespace serve
}  // namespace pane
