#include "src/serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>

#include "src/common/logging.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace serve {
namespace {

bool IsBlank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

/// Minimal read/write streambuf over a connected socket, so the TCP path
/// reuses ServeStream verbatim.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    ssize_t got;
    do {
      got = read(fd_, in_, sizeof(in_));
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return traits_type::eof();
    setg(in_, in_, in_ + got);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type ch) override {
    if (FlushOut() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return FlushOut(); }

 private:
  int FlushOut() {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t sent = write(fd_, p, static_cast<size_t>(pptr() - p));
      if (sent <= 0) return -1;
      p += sent;
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

size_t PaneServer::RequestHash::operator()(const Request& r) const {
  size_t h = static_cast<size_t>(r.type);
  const auto mix = [&h](uint64_t v) {
    h ^= static_cast<size_t>(v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  mix(static_cast<uint64_t>(r.a));
  mix(static_cast<uint64_t>(r.b));
  mix(static_cast<uint64_t>(r.k));
  return h;
}

PaneServer::PaneServer(const QueryEngine* engine, const ServerOptions& options)
    : engine_(engine), options_(options) {
  PANE_CHECK(engine_ != nullptr);
  PANE_CHECK(options_.batch_size > 0);
  if (options_.pruned) {
    PANE_CHECK(engine_->has_pruned_index())
        << "pruned serving mode needs BuildPrunedIndex on the engine";
  }
}

PaneServer::~PaneServer() {
  Shutdown();
  conn_pool_.reset();  // joins in-flight connection handlers
  if (listen_fd_ >= 0) close(listen_fd_);
}

bool PaneServer::CacheLookup(const Request& key, std::string* response) {
  if (options_.cache_capacity <= 0) return false;
  MutexLock lock(&cache_mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  *response = it->second->second;
  return true;
}

void PaneServer::CacheInsert(const Request& key, const std::string& response) {
  if (options_.cache_capacity <= 0) return;
  MutexLock lock(&cache_mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = response;
    return;
  }
  lru_.emplace_front(key, response);
  cache_[key] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > options_.cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void PaneServer::Count(uint64_t Counters::*field, uint64_t delta) {
  MutexLock lock(&stats_mutex_);
  counters_.*field += delta;
}

std::string PaneServer::StatsResponse() const {
  const Counters snapshot = counters();  // one instant, one lock hold
  std::string out = "stats ok";
  const auto field = [&out](const char* name, uint64_t value) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  field("requests", snapshot.requests);
  field("batches", snapshot.batches);
  field("dedup_hits", snapshot.dedup_hits);
  field("cache_hits", snapshot.cache_hits);
  field("errors", snapshot.errors);
  out += options_.pruned ? " mode=pruned nprobe=" + std::to_string(options_.nprobe)
                         : std::string(" mode=exact");
  return out;
}

void PaneServer::ExecuteBatch(std::vector<Entry>* batch, std::ostream& out,
                              bool* quit) {
  if (batch->empty()) return;
  const size_t count = batch->size();
  std::vector<std::string> responses(count);
  // Key -> index of the entry that owns the engine work for it.
  std::unordered_map<Request, size_t, RequestHash> first_seen;
  std::vector<size_t> duplicates;  // entries answered by an earlier twin
  std::vector<TopKQuery> attr_queries, link_queries;
  std::vector<size_t> attr_owner, link_owner;
  std::vector<std::pair<int64_t, int64_t>> attr_pairs, link_pairs;
  std::vector<size_t> attr_pair_owner, link_pair_owner;
  bool ran_engine = false;

  const int64_t n = engine_->num_nodes();
  const int64_t d = engine_->num_attributes();
  for (size_t i = 0; i < count; ++i) {
    Entry& entry = (*batch)[i];
    if (entry.parse_error) {
      responses[i] = FormatError(entry.error);
      Count(&Counters::errors);
      continue;
    }
    const Request& r = entry.request;
    Count(&Counters::requests);
    if (r.type == Request::Type::kQuit) {
      responses[i] = "bye";
      *quit = true;
      continue;
    }
    if (r.type == Request::Type::kStats) {
      continue;  // formatted at emit time, after this batch's engine work
    }
    // Range validation up front: the engine PANE_CHECKs its inputs, and a
    // served request must never abort the process.
    const bool attr_like = r.type == Request::Type::kTopKAttributes ||
                           r.type == Request::Type::kAttributePair;
    if (r.a < 0 || r.a >= n) {
      responses[i] = FormatError("node out of range");
      Count(&Counters::errors);
      continue;
    }
    if ((r.type == Request::Type::kAttributePair && (r.b < 0 || r.b >= d)) ||
        (r.type == Request::Type::kLinkPair && (r.b < 0 || r.b >= n))) {
      responses[i] = FormatError("id out of range");
      Count(&Counters::errors);
      continue;
    }
    if (attr_like && !engine_->supports_attributes()) {
      responses[i] = FormatError("attribute scoring unavailable");
      Count(&Counters::errors);
      continue;
    }
    if (!attr_like && !engine_->supports_links()) {
      responses[i] = FormatError("link scoring unavailable");
      Count(&Counters::errors);
      continue;
    }
    std::string cached;
    if (CacheLookup(r, &cached)) {
      responses[i] = std::move(cached);
      Count(&Counters::cache_hits);
      continue;
    }
    const auto [it, inserted] = first_seen.emplace(r, i);
    if (!inserted) {
      duplicates.push_back(i);
      Count(&Counters::dedup_hits);
      continue;
    }
    switch (r.type) {
      case Request::Type::kTopKAttributes:
        attr_queries.push_back({r.a, r.k});
        attr_owner.push_back(i);
        break;
      case Request::Type::kTopKTargets:
        link_queries.push_back({r.a, r.k});
        link_owner.push_back(i);
        break;
      case Request::Type::kAttributePair:
        attr_pairs.emplace_back(r.a, r.b);
        attr_pair_owner.push_back(i);
        break;
      case Request::Type::kLinkPair:
        link_pairs.emplace_back(r.a, r.b);
        link_pair_owner.push_back(i);
        break;
      default:
        break;
    }
  }

  if (!attr_queries.empty()) {
    const std::vector<Ranking> results =
        options_.pruned
            ? engine_->TopKAttributesPruned(attr_queries, options_.nprobe,
                                            options_.exclude)
            : engine_->TopKAttributes(attr_queries, options_.exclude);
    for (size_t j = 0; j < results.size(); ++j) {
      const size_t i = attr_owner[j];
      responses[i] = FormatRanking((*batch)[i].request, results[j]);
      CacheInsert((*batch)[i].request, responses[i]);
    }
    ran_engine = true;
  }
  if (!link_queries.empty()) {
    const std::vector<Ranking> results =
        options_.pruned
            ? engine_->TopKTargetsPruned(link_queries, options_.nprobe,
                                         options_.exclude)
            : engine_->TopKTargets(link_queries, options_.exclude);
    for (size_t j = 0; j < results.size(); ++j) {
      const size_t i = link_owner[j];
      responses[i] = FormatRanking((*batch)[i].request, results[j]);
      CacheInsert((*batch)[i].request, responses[i]);
    }
    ran_engine = true;
  }
  if (!attr_pairs.empty()) {
    const std::vector<double> scores = engine_->AttributeScores(attr_pairs);
    for (size_t j = 0; j < scores.size(); ++j) {
      const size_t i = attr_pair_owner[j];
      responses[i] = FormatScore((*batch)[i].request, scores[j]);
      CacheInsert((*batch)[i].request, responses[i]);
    }
    ran_engine = true;
  }
  if (!link_pairs.empty()) {
    const std::vector<double> scores = engine_->LinkScores(link_pairs);
    for (size_t j = 0; j < scores.size(); ++j) {
      const size_t i = link_pair_owner[j];
      responses[i] = FormatScore((*batch)[i].request, scores[j]);
      CacheInsert((*batch)[i].request, responses[i]);
    }
    ran_engine = true;
  }
  if (ran_engine) Count(&Counters::batches);

  for (const size_t i : duplicates) {
    const auto it = first_seen.find((*batch)[i].request);
    PANE_CHECK(it != first_seen.end());
    responses[i] = responses[it->second];
  }
  for (size_t i = 0; i < count; ++i) {
    if ((*batch)[i].parse_error) {
      out << responses[i] << '\n';
      continue;
    }
    if ((*batch)[i].request.type == Request::Type::kStats) {
      out << StatsResponse() << '\n';
      continue;
    }
    out << responses[i] << '\n';
  }
  out.flush();
  batch->clear();
}

void PaneServer::ServeStream(std::istream& in, std::ostream& out) {
  std::vector<Entry> batch;
  batch.reserve(static_cast<size_t>(options_.batch_size));
  std::string line;
  bool quit = false;
  while (!quit && std::getline(in, line)) {
    if (IsBlank(line)) {  // explicit flush marker
      ExecuteBatch(&batch, out, &quit);
      continue;
    }
    Entry entry;
    const auto parsed = ParseRequestLine(line);
    if (parsed.ok()) {
      entry.request = *parsed;
    } else {
      entry.parse_error = true;
      entry.error = parsed.status().message();
    }
    const bool is_quit =
        !entry.parse_error && entry.request.type == Request::Type::kQuit;
    batch.push_back(std::move(entry));
    // Flush when the batch is full, on quit, or when the input has no more
    // buffered bytes (keeps latency low without a timer; under load the
    // stream stays ahead and batches fill up).
    if (static_cast<int64_t>(batch.size()) >= options_.batch_size ||
        is_quit || in.rdbuf()->in_avail() <= 0) {
      ExecuteBatch(&batch, out, &quit);
    }
  }
  ExecuteBatch(&batch, out, &quit);
}

Result<int> PaneServer::ListenTcp(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, 64) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  listen_fd_ = fd;
  conn_pool_ = std::make_unique<ThreadPool>(
      std::max(1, options_.connection_threads));
  return static_cast<int>(ntohs(addr.sin_port));
}

void PaneServer::AcceptLoop() {
  PANE_CHECK(listen_fd_ >= 0) << "ListenTcp first";
  while (!shutdown_.load()) {
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() on the listening socket lands here
    }
    conn_pool_->Submit([this, conn] { HandleConnection(conn); });
  }
}

void PaneServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // Wakes a blocked accept (Linux returns EINVAL after shutdown()).
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void PaneServer::HandleConnection(int fd) {
  FdStreambuf buf(fd);
  std::istream in(&buf);
  std::ostream out(&buf);
  ServeStream(in, out);
  out.flush();
  close(fd);
}

PaneServer::Counters PaneServer::counters() const {
  MutexLock lock(&stats_mutex_);
  return counters_;
}

}  // namespace serve
}  // namespace pane
