// Length-prefixed binary framing for the serving protocol — the wire
// format that makes shard-to-router hops cheap: a receiver learns each
// message boundary from an 8-byte header instead of scanning for
// newlines, and a frame can carry any payload bytes.
//
// Frame layout (little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//   0       1     magic 0xAB  (non-ASCII: never the first byte of a
//                 line-protocol request, so the codec is sniffable)
//   1       2     "PF"
//   3       1     version, currently 0x01
//   4       4     payload length L, u32 LE, 1 <= L <= kMaxFramePayload
//   8       L     payload (one line_protocol request / response, no '\n')
//
// Decoding is BoundedReader-style defensive: every field is validated
// against the bytes actually buffered before anything is trusted, a
// hostile length field is rejected before any allocation sized by it, and
// a partial header or payload simply waits for more bytes. Garbage magic,
// an unknown version, a zero length, and an oversized length are
// unrecoverable framing errors — the session answers once with an err
// payload and closes, because after a framing error the stream offset is
// meaningless.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/serve/protocol.h"

namespace pane {
namespace serve {

/// First byte of every frame; DetectProtocol keys off it.
inline constexpr unsigned char kFrameMagic = 0xAB;
inline constexpr unsigned char kFrameTag0 = 'P';
inline constexpr unsigned char kFrameTag1 = 'F';
inline constexpr unsigned char kFrameVersion = 0x01;
inline constexpr size_t kFrameHeaderSize = 8;
/// Upper bound on one payload (requests are tens of bytes; responses grow
/// with k). Anything larger is treated as a corrupt / hostile length.
inline constexpr size_t kMaxFramePayload = size_t{16} << 20;

class FrameCodec final : public ProtocolCodec {
 public:
  /// `max_payload` bounds inbound frame lengths (default: the protocol-wide
  /// kMaxFramePayload). The router lowers it per hop via --max-frame-mb;
  /// outbound Encode always enforces the protocol-wide bound.
  explicit FrameCodec(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload == 0 ? kMaxFramePayload : max_payload) {}

  const char* name() const override { return "frame"; }
  Decoded Decode(std::string_view buffer, size_t* pos,
                 std::string_view* payload, std::string* error) override;
  void Encode(std::string_view payload, std::string* out) override;
  bool DecodeFinal(std::string_view remainder, std::string_view* payload,
                   std::string* error) override;

 private:
  size_t max_payload_;
};

/// Appends one framed payload to *out (the static form of
/// FrameCodec::Encode, for clients and tools). Payloads are clamped to
/// [1, kMaxFramePayload] by PANE_CHECK — the server never produces an
/// empty or multi-frame response payload.
void AppendFrame(std::string_view payload, std::string* out);

}  // namespace serve
}  // namespace pane
