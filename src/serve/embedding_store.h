// Immutable, memory-mapped view of a NodeEmbedding artifact — the serving
// subsystem's storage layer. Where NodeEmbedding::Load copies the artifact
// into private heap memory, an EmbeddingStore maps the file read-only
// (PROT_READ, MAP_SHARED): the doubles are backed by the page cache, every
// server process mapping the same artifact shares one physical copy, and
// opening costs O(header) regardless of the embedding's size. The file
// descriptor is closed at open time, so the store keeps working after the
// path is unlinked or rotated from under it.
//
// Version-2 artifacts (what NodeEmbedding::Save writes) have 8-byte-aligned
// matrix payloads, so the factor views point straight into the mapping.
// Version-1 artifacts are unaligned; their matrices are copied out of the
// mapping into owned storage once at open (zero_copy() reports which path
// was taken).
//
// For bandwidth-bound scoring (the pruned IVF scan), the store can
// additionally materialize single-precision copies of the factor blocks,
// optionally L2-normalized per row (cosine scoring for inner-product
// artifacts). Exact-mode scoring never touches these: it reads the mapped
// doubles so served results stay bitwise identical to the offline path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/api/embedding_format.h"
#include "src/common/mmap_file.h"
#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"
#include "src/store/container.h"
#include "src/store/shard_pages.h"

namespace pane {
namespace serve {

/// \brief Row-major single-precision matrix (the store's bandwidth-bound
/// scoring copies; also the IVF index's candidate/centroid storage).
struct FloatMatrix {
  std::vector<float> data;
  int64_t rows = 0;
  int64_t cols = 0;

  bool empty() const { return rows * cols == 0; }
  const float* Row(int64_t i) const { return data.data() + i * cols; }
  float* MutableRow(int64_t i) { return data.data() + i * cols; }
  void Resize(int64_t r, int64_t c) {
    rows = r;
    cols = c;
    data.assign(static_cast<size_t>(r * c), 0.0f);
  }
};

struct EmbeddingStoreOptions {
  /// Build single-precision copies of xf / xb / y (and features when no
  /// factor blocks are present) at open.
  bool float_copies = false;
  /// L2-normalize each row of the float copies (unit vectors; inner product
  /// becomes cosine). Zero rows are left zero.
  bool l2_normalize_floats = false;
  /// For container artifacts: CRC32C-verify each matrix stream's pages at
  /// open. Verification touches (faults) every page of every stream; turn it
  /// off when the store should serve a subset of the blocks — e.g. Y only —
  /// without ever faulting Xf / Xb.
  bool verify_checksums = true;
};

class EmbeddingStore {
 public:
  EmbeddingStore() = default;
  EmbeddingStore(const EmbeddingStore&) = delete;
  EmbeddingStore& operator=(const EmbeddingStore&) = delete;
  EmbeddingStore(EmbeddingStore&&) = default;
  EmbeddingStore& operator=(EmbeddingStore&&) = default;

  /// Maps and parses a NodeEmbedding artifact — the legacy layout (version
  /// 1 or 2) or a store:: container written by NodeEmbedding::SaveContainer,
  /// dispatched on the leading magic. Every shape / length field is
  /// validated against the mapped size, so a corrupt artifact yields a
  /// Status, never an OOM or an out-of-bounds read. Container payloads are
  /// page-aligned, so the container path is always zero-copy; its checksum
  /// policy is options.verify_checksums.
  static Result<EmbeddingStore> Open(const std::string& path,
                                     const EmbeddingStoreOptions& options =
                                         EmbeddingStoreOptions());

  const std::string& method() const { return method_; }
  LinkConvention link_convention() const { return link_convention_; }
  AttributeConvention attribute_convention() const {
    return attribute_convention_;
  }

  /// Factor views (empty views when the artifact lacks the block). For a
  /// version-2 artifact these point into the shared mapping.
  ConstMatrixView features() const { return features_; }
  ConstMatrixView xf() const { return xf_; }
  ConstMatrixView xb() const { return xb_; }
  ConstMatrixView y() const { return y_; }
  /// Pre-derived link-candidate rows (shard containers only; the unsharded
  /// open path leaves this empty and the engine derives Z itself).
  ConstMatrixView z() const { return z_; }

  /// True when the artifact is one shard of a split embedding (a shard.*
  /// container written by pane_shardctl). A sharded store has no features
  /// block: it holds the full xf/xb plus the y/z slices of its ranges.
  bool sharded() const { return shard_ != nullptr; }
  /// The shard's plan position and held ranges; only valid when sharded().
  const store::ShardMeta& shard() const { return *shard_; }

  int64_t num_nodes() const {
    return sharded() ? shard_->num_nodes : features_.rows();
  }
  int64_t dim() const {
    return sharded() ? shard_->dim : features_.cols();
  }
  /// Global attribute count: for a shard this is the plan's d, not the
  /// local slice height (y().rows()).
  int64_t num_attributes() const {
    return sharded() ? shard_->num_attributes : y_.rows();
  }
  bool has_node_factors() const {
    return xf_.rows() > 0 && xb_.rows() > 0;
  }
  bool has_attribute_factors() const {
    return has_node_factors() && y_.rows() > 0;
  }

  /// True when the factor views point into the mapping (version-2 or
  /// container artifact); false when they were copied out (version 1).
  bool zero_copy() const { return zero_copy_; }
  int64_t mapped_bytes() const {
    if (container_ != nullptr) {
      return container_->num_pages() *
             static_cast<int64_t>(container_->page_size());
    }
    return map_.size();
  }

  /// True when the artifact was opened from a store:: container.
  bool container_backed() const { return container_ != nullptr; }

  /// Single-precision copies (empty unless float_copies was requested).
  const FloatMatrix& features_f32() const { return features_f32_; }
  const FloatMatrix& xf_f32() const { return xf_f32_; }
  const FloatMatrix& xb_f32() const { return xb_f32_; }
  const FloatMatrix& y_f32() const { return y_f32_; }

 private:
  Status FinishOpen(const std::string& path,
                    const EmbeddingStoreOptions& options);

  MappedFile map_;
  // Set instead of map_ when the artifact is a store:: container (the
  // container holds its own mapping; views point into it).
  std::unique_ptr<store::Container> container_;
  // Owned fallback storage for unaligned (version-1) artifacts.
  DenseMatrix owned_features_, owned_xf_, owned_xb_, owned_y_;
  ConstMatrixView features_, xf_, xb_, y_, z_;
  // Set when the container holds a shard artifact (shard.* streams).
  std::unique_ptr<store::ShardMeta> shard_;
  std::string method_;
  LinkConvention link_convention_ = LinkConvention::kInnerProduct;
  AttributeConvention attribute_convention_ = AttributeConvention::kCentroid;
  bool zero_copy_ = false;
  FloatMatrix features_f32_, xf_f32_, xb_f32_, y_f32_;
};

/// \brief Single-precision copy of `m`, optionally L2-normalizing each row
/// (norms computed in double). Exposed for tests and the IVF builder.
FloatMatrix ToFloatMatrix(ConstMatrixView m, bool l2_normalize);

}  // namespace serve
}  // namespace pane
