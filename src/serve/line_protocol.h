// The pane_server wire format: one request per line, one response line per
// request, answered in request order (batching never reorders output).
// Shared by the server, the scripted CI client, and the offline pane_topk
// reference tool, so their outputs diff cleanly.
//
// Requests:
//   attr <node> <k>     top-k attribute recommendation (Eq. 21)
//   link <node> <k>     top-k link recommendation (Eq. 22)
//   pattr <node> <attr> one attribute pair score
//   pair <src> <dst>    one directed link pair score
//   stats               server counters (never cached / deduplicated)
//   metrics             Prometheus text exposition, terminated by "# EOF"
//                       (never cached / deduplicated)
//   plan                shard identity / held ranges (router handshake)
//   quit                close the connection after responding "bye"
//
// Responses:
//   attr <node> ok <idx>:<score> <idx>:<score> ...
//   link <node> ok ...
//   pattr <node> <attr> ok <score>
//   pair <src> <dst> ok <score>
//   plan ok shard=<i>/<N> nodes=<b>:<e>/<n> attrs=<b>:<e>/<d> dim=<h> ...
//   err <message>
//
// Scores are printed with %.17g, enough digits to round-trip a double, so
// two bitwise-equal scoring paths produce byte-equal responses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/topk.h"
#include "src/serve/protocol.h"

namespace pane {
namespace serve {

struct Request {
  enum class Type : int8_t {
    kTopKAttributes,
    kTopKTargets,
    kAttributePair,
    kLinkPair,
    kStats,
    kMetrics,
    kPlan,
    kQuit,
  };
  Type type = Type::kStats;
  int64_t a = 0;  // node (top-k) or first pair id
  int64_t b = 0;  // second pair id
  int64_t k = 0;  // top-k size

  /// Batch deduplication / cache identity.
  bool operator==(const Request& other) const {
    return type == other.type && a == other.a && b == other.b &&
           k == other.k;
  }
};

/// Parses one request line (leading / trailing whitespace tolerated; empty
/// lines are the caller's batching signal and must not reach this).
Result<Request> ParseRequestLine(std::string_view line);

/// "<idx>:<score>" with %.17g scores.
std::string FormatRanking(const Request& request, const Ranking& ranking);
std::string FormatScore(const Request& request, double score);
std::string FormatError(const std::string& message);

/// The canonical request line for `request` — what the router sends on a
/// shard hop. ParseRequestLine(FormatRequest(r)) == r for every type.
std::string FormatRequest(const Request& request);

/// Parses a top-k response line ("attr <node> ok <idx>:<score> ..." or the
/// "link" form) back into its ranking — the router's merge input. Scores
/// parse with strtod, which round-trips the %.17g formatting exactly, so a
/// parse → merge → reformat cycle is byte-stable. An "err ..." payload or
/// any malformed line is an error Status, never a partial ranking.
Status ParseRankingResponse(std::string_view line, Request::Type expected,
                            int64_t expected_node, Ranking* ranking);

/// The newline-delimited wire format as a ProtocolCodec: one payload per
/// '\n'-terminated line (the '\n' is framing, not payload — responses get
/// one appended by Encode), an all-whitespace line decodes to kFlush (the
/// explicit batch marker ServeStream always honored), and a trailing
/// unterminated line at end of input is a final message, exactly like the
/// std::getline loop this replaces.
class LineCodec final : public ProtocolCodec {
 public:
  const char* name() const override { return "line"; }
  Decoded Decode(std::string_view buffer, size_t* pos,
                 std::string_view* payload, std::string* error) override;
  void Encode(std::string_view payload, std::string* out) override;
  bool DecodeFinal(std::string_view remainder, std::string_view* payload,
                   std::string* error) override;
};

}  // namespace serve
}  // namespace pane
