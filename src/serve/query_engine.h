// Batched execution of PANE's two prediction queries (attribute
// recommendation, Eq. 21; link recommendation, Eq. 22) plus pair scoring —
// the serving subsystem's compute layer.
//
// Exact mode scores query blocks against candidate tiles with a blocked
// dot-product kernel that reproduces vector_ops::Dot's accumulation
// pattern per (query, candidate) pair exactly (four stride-4 partial sums
// combined as (s0+s1)+(s2+s3), then the ascending tail) while vectorizing
// across the queries of a block — so a served batch returns bitwise the
// same scores as the offline per-query helpers in src/tasks/ranking.h
// (which are themselves thin wrappers over this engine), independent of
// batch size, block width, or thread count. Selection is a per-query
// bounded heap under the deterministic ranking order of src/common/topk.h
// instead of a sort over all candidates.
//
// Pruned mode routes the same queries through per-candidate-set IVF
// indexes (src/serve/ivf_index.h) for sublinear approximate retrieval
// with `nprobe` as the measured-recall knob.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/topk.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/obs/metrics.h"
#include "src/serve/ivf_index.h"
#include "src/store/shard_pages.h"

namespace pane {

class ThreadPool;

namespace serve {

class EmbeddingStore;

struct QueryEngineOptions {
  /// Parallelizes batches across queries (each query stays sequential, so
  /// results are identical at any thread count). Null => serial.
  ThreadPool* pool = nullptr;
  /// Caps the per-worker scoring scratch (transposed query panels + the
  /// query-block x candidate-tile score buffer + heaps): the candidate
  /// tile, then the query-block width, are reduced until workers x
  /// per-worker scratch fits the budget. 0 = unbounded (default shapes).
  int64_t memory_budget_mb = 0;
  /// Explicit query-block width override (tests); 0 = derive from the
  /// budget.
  int64_t query_block = 0;
  /// Explicit candidate-tile override (tests); 0 = derive from the budget.
  int64_t candidate_tile = 0;
  /// Precompute Z = Xb (Y^T Y) at Create when no `z` view is supplied
  /// (required for link queries; skip for attribute-only engines).
  bool precompute_link_gram = true;
  /// Optional registry for the engine's work metrics (pane_engine_*:
  /// tiles-scanned and IVF candidates scanned / pruned). Null disables
  /// them; the registry must outlive the engine. Recording goes through
  /// handles resolved at Create, so the engine itself stays immutable
  /// during queries (the TSan contract in query_engine.cc).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-call scoring breakdown, filled by the top-k entry points when the
/// caller passes one: nanoseconds spent in tile dot-products (scan) and
/// per-tile heap selection (select), plus tile / IVF-candidate counts.
/// Atomic because range workers accumulate concurrently (once per range,
/// not per tile).
struct EngineCallStats {
  std::atomic<int64_t> scan_ns{0};
  std::atomic<int64_t> select_ns{0};
  std::atomic<int64_t> tiles{0};
  std::atomic<int64_t> ivf_scanned{0};
  std::atomic<int64_t> ivf_pruned{0};
};

/// \brief One top-k request: the query node and how many results to keep.
struct TopKQuery {
  int64_t node = 0;
  int64_t k = 0;
};

class QueryEngine {
 public:
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;
  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;

  /// Builds an engine over factor views (xf / xb: n x h, y: d x h, z: n x
  /// h or empty). The viewed storage must outlive the engine. When `z` is
  /// empty and xb / y are present and precompute_link_gram is set, Z is
  /// derived here with the same kernels EdgeScorer uses, so link scores
  /// match it bitwise; when `z` is supplied (e.g. EdgeScorer::z()) it is
  /// used as-is.
  static Result<QueryEngine> Create(ConstMatrixView xf, ConstMatrixView xb,
                                    ConstMatrixView y, ConstMatrixView z,
                                    const QueryEngineOptions& options);

  /// Engine over a mapped artifact (factor blocks required; the store must
  /// outlive the engine). A sharded store dispatches to CreateSharded with
  /// the store's slices and shard meta.
  static Result<QueryEngine> Create(const EmbeddingStore& store,
                                    const QueryEngineOptions& options);

  /// Engine over one shard of a split embedding: the full query-side
  /// factors (xf / xb: n x h) plus the local candidate slices (y: rows
  /// [attr_begin, attr_end); z: rows [node_begin, node_end), either may be
  /// empty). The engine scans only its slices but accepts and returns
  /// *global* ids everywhere — queries, exclusion lists, pair ids, and
  /// top-k results — so the router merges per-shard answers without any
  /// id translation, and tie-breaks resolve in global-index order. `z`
  /// must be pre-derived from the full matrices (SplitEmbeddingArtifact /
  /// BuildLocalShards do this), never per shard, so link scores stay
  /// bitwise the unsharded engine's.
  static Result<QueryEngine> CreateSharded(ConstMatrixView xf,
                                           ConstMatrixView xb,
                                           ConstMatrixView y,
                                           ConstMatrixView z,
                                           const store::ShardMeta& shard,
                                           const QueryEngineOptions& options);

  // ---- Exact mode -------------------------------------------------------

  /// Batched Eq. 21 top-k attributes. `exclude` skips attributes already
  /// associated with the query node in that graph. Results per query are
  /// identical to the offline TopKAttributes helper. A non-null
  /// `call_stats` receives the scan/select timing split for this call
  /// (timing is only taken when requested, so the default path pays no
  /// clock reads).
  std::vector<Ranking> TopKAttributes(
      const std::vector<TopKQuery>& queries,
      const AttributedGraph* exclude = nullptr,
      EngineCallStats* call_stats = nullptr) const;

  /// Batched Eq. 22 top-k link targets. The query node itself is always
  /// skipped; `exclude` also skips its existing out-neighbors.
  std::vector<Ranking> TopKTargets(
      const std::vector<TopKQuery>& queries,
      const AttributedGraph* exclude = nullptr,
      EngineCallStats* call_stats = nullptr) const;

  /// Batched pair scores: p(v, r) of Eq. 21 for (node, attribute) pairs.
  std::vector<double> AttributeScores(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) const;

  /// Batched pair scores: p(u, w) of Eq. 22 for (source, target) pairs.
  std::vector<double> LinkScores(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) const;

  // ---- Pruned (IVF) mode ------------------------------------------------

  /// Builds the cluster-pruned indexes (attributes over Y rows; links over
  /// Z rows when link scoring is available).
  Status BuildPrunedIndex(const IvfOptions& options);
  bool has_pruned_index() const {
    return !attr_index_.empty() || !link_index_.empty();
  }
  const IvfIndex& attr_index() const { return attr_index_; }
  const IvfIndex& link_index() const { return link_index_; }

  /// Writes the built pruned indexes as one checksummed container file
  /// ("attr." / "link." prefixed ivf.* streams) — crash-safe via temp +
  /// fsync + rename. Requires BuildPrunedIndex to have run.
  Status SavePrunedIndex(const std::string& path) const;

  /// Loads indexes written by SavePrunedIndex, replacing any built ones.
  /// Each index present in the file is validated against the engine's
  /// candidate set (candidate count and dimension) before adoption, so an
  /// index built for a different embedding is an InvalidArgument, not wrong
  /// answers.
  Status LoadPrunedIndex(const std::string& path);

  /// Approximate top-k through the IVF indexes; same exclusion / self-skip
  /// semantics as the exact calls, scores computed in single precision.
  /// The pruned path has no tile/select split, so `call_stats` gets the
  /// whole probe under scan_ns plus the scanned/pruned candidate counts.
  std::vector<Ranking> TopKAttributesPruned(
      const std::vector<TopKQuery>& queries, int64_t nprobe,
      const AttributedGraph* exclude = nullptr,
      EngineCallStats* call_stats = nullptr) const;
  std::vector<Ranking> TopKTargetsPruned(
      const std::vector<TopKQuery>& queries, int64_t nprobe,
      const AttributedGraph* exclude = nullptr,
      EngineCallStats* call_stats = nullptr) const;

  // ---- Introspection ----------------------------------------------------

  /// Global node count (xf is replicated in full on every shard).
  int64_t num_nodes() const { return xf_.rows(); }
  /// Factor dimensionality h.
  int64_t dim() const { return xf_.cols(); }
  /// Global attribute count — for a shard this is the plan's d, not the
  /// local slice height.
  int64_t num_attributes() const { return num_attributes_; }
  bool supports_attributes() const { return supports_attributes_; }
  bool supports_links() const { return supports_links_; }

  bool sharded() const { return sharded_; }
  /// Only meaningful when sharded() (an unsharded engine owns everything).
  const store::ShardMeta& shard() const { return shard_; }
  /// Whether this engine holds the candidate row for a global id — pair
  /// requests must be routed to the owner.
  bool OwnsAttribute(int64_t attribute) const {
    return !sharded_ || (attribute >= shard_.attr_begin &&
                         attribute < shard_.attr_end);
  }
  bool OwnsTarget(int64_t node) const {
    return !sharded_ ||
           (node >= shard_.node_begin && node < shard_.node_end);
  }

  /// The realized blocking (after the budget cap).
  int64_t query_block() const { return query_block_; }
  int64_t candidate_tile() const { return candidate_tile_; }

 private:
  QueryEngine() = default;

  void ResolveMetrics(obs::MetricsRegistry* registry);

  void ProcessAttributeRange(const std::vector<TopKQuery>& queries,
                             const AttributedGraph* exclude, int64_t begin,
                             int64_t end, std::vector<Ranking>* results,
                             EngineCallStats* call_stats) const;
  void ProcessTargetRange(const std::vector<TopKQuery>& queries,
                          const AttributedGraph* exclude, int64_t begin,
                          int64_t end, std::vector<Ranking>* results,
                          EngineCallStats* call_stats) const;
  /// Folds one range's counters into the registry handles (if any) and the
  /// caller's EngineCallStats (if any).
  void AccumulateRange(EngineCallStats* call_stats, int64_t scan_ns,
                       int64_t select_ns, int64_t tiles, int64_t ivf_scanned,
                       int64_t ivf_pruned) const;

  ConstMatrixView xf_, xb_, y_, z_;
  DenseMatrix z_owned_;  // backs z_ when derived at Create
  ThreadPool* pool_ = nullptr;
  int64_t query_block_ = 0;
  int64_t candidate_tile_ = 0;
  // Global id of local candidate row 0 (y_ / z_ respectively); 0 unsharded.
  int64_t attr_base_ = 0;
  int64_t link_base_ = 0;
  int64_t num_attributes_ = 0;  // global d
  // Capability is a *global* property: a shard whose local slice is empty
  // still "supports" the query family and answers with an empty ranking.
  bool supports_attributes_ = false;
  bool supports_links_ = false;
  bool sharded_ = false;
  store::ShardMeta shard_;
  IvfIndex attr_index_, link_index_;
  // Registry handles (null without a registry). The pointed-to metrics are
  // thread-safe, so recording from const query paths keeps the engine's
  // immutability contract.
  obs::Counter* tiles_total_ = nullptr;
  obs::Counter* ivf_scanned_total_ = nullptr;
  obs::Counter* ivf_pruned_total_ = nullptr;
  obs::Gauge* tiles_gauge_ = nullptr;
  obs::Gauge* pruned_gauge_ = nullptr;
};

/// \brief Sorted ids to skip for one query: the non-zero columns of
/// `row` (the same entries CsrMatrix::At reports non-zero). Exposed for
/// the pruned path and tests.
std::vector<int64_t> ExcludedIds(const CsrMatrix& matrix, int64_t row);

}  // namespace serve
}  // namespace pane
