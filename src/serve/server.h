// The pane_server core: reads line-protocol requests from a stream or TCP
// connection, executes them in batches on a QueryEngine, and answers in
// request order. Batching is what turns the engine's blocked kernels on:
// consecutive buffered requests (up to batch_size, or until the input
// drains or a blank line forces a flush) become one engine batch.
// Identical requests inside a batch are deduplicated, and a small LRU
// cache short-circuits repeats across batches — an immutable store means
// a cached response never goes stale.
//
// One PaneServer may serve a stdin/stdout session and any number of TCP
// connections concurrently: the engine is read-only, and the cache and
// counters are the only shared mutable state.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/serve/line_protocol.h"
#include "src/serve/query_engine.h"

namespace pane {

class ThreadPool;

namespace serve {

struct ServerOptions {
  /// Max requests executed as one engine batch.
  int64_t batch_size = 64;
  /// LRU result-cache entries (0 disables caching).
  int64_t cache_capacity = 1024;
  /// Answer top-k requests through the pruned IVF indexes (the engine must
  /// have BuildPrunedIndex'd) instead of the exact scan.
  bool pruned = false;
  int64_t nprobe = 8;
  /// Recommendation mode: skip attributes / out-neighbors the query node
  /// already has in this graph (must outlive the server).
  const AttributedGraph* exclude = nullptr;
  /// Worker threads for TCP connection handling (the engine's own pool is
  /// configured separately via QueryEngineOptions).
  int connection_threads = 4;
};

class PaneServer {
 public:
  /// The engine (and anything its views borrow) must outlive the server.
  PaneServer(const QueryEngine* engine, const ServerOptions& options);
  ~PaneServer();

  PaneServer(const PaneServer&) = delete;
  PaneServer& operator=(const PaneServer&) = delete;

  /// Serves one request stream until EOF or `quit`, flushing `out` after
  /// every batch. Thread-safe: may run concurrently with TCP connections.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Binds a loopback listening socket (`port` 0 picks an ephemeral port)
  /// and returns the bound port.
  Result<int> ListenTcp(int port);

  /// Accepts connections until Shutdown(), handing each to the connection
  /// pool. Blocks the calling thread.
  void AcceptLoop();

  /// Wakes AcceptLoop and refuses new connections; in-flight connections
  /// finish on the pool.
  void Shutdown();

  struct Counters {
    uint64_t requests = 0;    ///< well-formed requests handled
    uint64_t batches = 0;     ///< engine batches flushed
    uint64_t dedup_hits = 0;  ///< duplicates folded inside a batch
    uint64_t cache_hits = 0;  ///< answered from the LRU cache
    uint64_t errors = 0;      ///< malformed / out-of-range requests
  };
  /// One consistent snapshot taken under the stats capability — the fields
  /// of the returned struct all belong to the same instant, unlike the
  /// field-by-field atomic reads this replaced.
  Counters counters() const PANE_EXCLUDES(stats_mutex_);

 private:
  struct Entry {
    Request request;
    bool parse_error = false;
    std::string error;
  };

  struct RequestHash {
    size_t operator()(const Request& r) const;
  };

  void ExecuteBatch(std::vector<Entry>* batch, std::ostream& out,
                    bool* quit);
  bool CacheLookup(const Request& key, std::string* response)
      PANE_EXCLUDES(cache_mutex_);
  void CacheInsert(const Request& key, const std::string& response)
      PANE_EXCLUDES(cache_mutex_);
  /// Bumps one counter field by `delta` under the stats capability.
  void Count(uint64_t Counters::*field, uint64_t delta = 1)
      PANE_EXCLUDES(stats_mutex_);
  std::string StatsResponse() const PANE_EXCLUDES(stats_mutex_);
  void HandleConnection(int fd);

  const QueryEngine* engine_;
  ServerOptions options_;

  /// Guards the LRU result cache (the list order is part of the state, so
  /// even lookups mutate under the lock).
  mutable Mutex cache_mutex_;
  std::list<std::pair<Request, std::string>> lru_
      PANE_GUARDED_BY(cache_mutex_);  // most recent at front
  std::unordered_map<Request,
                     std::list<std::pair<Request, std::string>>::iterator,
                     RequestHash>
      cache_ PANE_GUARDED_BY(cache_mutex_);

  /// Guards the served-request counters; a separate capability from the
  /// cache so a stats snapshot never contends with cache traffic.
  mutable Mutex stats_mutex_;
  Counters counters_ PANE_GUARDED_BY(stats_mutex_);

  int listen_fd_ = -1;  // written by ListenTcp before any thread reads it
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<ThreadPool> conn_pool_;
};

}  // namespace serve
}  // namespace pane
