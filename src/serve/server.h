// The pane_server batching core. After the transport/session/codec split
// this class no longer touches sockets or wire bytes: it executes batches
// of parsed requests on a QueryEngine and composes the layers below it —
// an EpollTransport for TCP, a ServeSession per connection (and per
// ServeStream call), and a ProtocolCodec chosen per connection.
//
// Batching is what turns the engine's blocked kernels on: consecutive
// buffered requests (up to batch_size, or until the input drains or the
// codec signals an explicit flush) become one engine batch. Identical
// requests inside a batch are deduplicated, and a small LRU cache
// short-circuits repeats across batches — an immutable store means a
// cached response never goes stale.
//
// Threading: the TCP path runs every session on the single transport loop
// thread; parallelism comes from the engine's internal pool inside a
// batch. ServeStream may additionally run on any number of caller
// threads: the engine is read-only, and the cache and counters (each
// under its own capability) are the only shared mutable state.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/line_protocol.h"
#include "src/serve/protocol.h"
#include "src/serve/query_engine.h"

namespace pane {
namespace serve {

class EpollTransport;
class Router;

struct ServerOptions {
  /// Max requests executed as one engine batch.
  int64_t batch_size = 64;
  /// LRU result-cache entries (0 disables caching).
  int64_t cache_capacity = 1024;
  /// Answer top-k requests through the pruned IVF indexes (the engine must
  /// have BuildPrunedIndex'd) instead of the exact scan.
  bool pruned = false;
  int64_t nprobe = 8;
  /// Recommendation mode: skip attributes / out-neighbors the query node
  /// already has in this graph (must outlive the server).
  const AttributedGraph* exclude = nullptr;
  /// Wire format: kAuto sniffs per connection from the first byte; kLine /
  /// kFrame pin the codec for every connection and stream.
  Protocol protocol = Protocol::kAuto;
  /// Connections beyond this cap are refused with `err server busy` and
  /// an immediate close (the transport's 503).
  int64_t max_connections = 256;
  /// TCP connections idle this long are reaped; 0 disables the sweep.
  int64_t idle_timeout_ms = 0;
  /// Upper bound on one inbound frame payload; 0 = the protocol default
  /// (kMaxFramePayload). The --max-frame-mb flag feeds this.
  int64_t max_frame_bytes = 0;
  /// Registry for the per-stage histograms, the transport metrics, and the
  /// `metrics` verb. Null (with metrics_enabled) makes the server own a
  /// private registry; a shared one (pane_server wires the same registry
  /// into engine, router, and server) must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// False disables the metrics subsystem entirely — no registry, no stage
  /// timing, no clock reads (the bench A/B switch). The `metrics` verb then
  /// answers an empty exposition.
  bool metrics_enabled = true;
  /// Batches whose traced stage total (decode through merge; encode happens
  /// after the batch returns) reaches this many microseconds log one
  /// structured `slow_query` line. 0 disables.
  int64_t slow_query_us = 0;
};

class PaneServer {
 public:
  /// The engine (and anything its views borrow) must outlive the server.
  PaneServer(const QueryEngine* engine, const ServerOptions& options);
  /// Router mode: batches execute through scatter-gather over the router's
  /// shard fleet instead of a local engine (same protocol, byte-identical
  /// responses). The router must outlive the server.
  PaneServer(Router* router, const ServerOptions& options);
  ~PaneServer();

  PaneServer(const PaneServer&) = delete;
  PaneServer& operator=(const PaneServer&) = delete;

  /// Serves one request stream until EOF or `quit`, flushing `out` after
  /// every pump. Thread-safe: may run concurrently with the TCP loop and
  /// with other ServeStream calls.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Binds a loopback listening socket (`port` 0 picks an ephemeral port)
  /// and returns the bound port.
  Result<int> ListenTcp(int port);

  /// Runs the transport event loop — accepts, reads, batches, writes — on
  /// the calling thread until Shutdown(). A safe no-op (not a crash) if
  /// ListenTcp has not succeeded.
  void AcceptLoop();

  /// Thread-safe: wakes the event loop, which closes every connection and
  /// returns from AcceptLoop. Safe in any order relative to ListenTcp.
  void Shutdown();

  struct Counters {
    uint64_t requests = 0;    ///< well-formed requests handled
    uint64_t batches = 0;     ///< engine batches flushed
    uint64_t dedup_hits = 0;  ///< duplicates folded inside a batch
    uint64_t cache_hits = 0;  ///< answered from the LRU cache
    uint64_t errors = 0;      ///< malformed / out-of-range / framing errors
    uint64_t timeouts = 0;    ///< connections reaped by the idle sweep
    uint64_t rejected = 0;    ///< connections refused over max_connections
    uint64_t frames = 0;      ///< binary frames decoded
  };
  /// One consistent snapshot: the request/batch/cache fields are read in
  /// one stats_mutex_ hold, then the transport's accept-side counters
  /// (timeouts, rejected) are merged in.
  Counters counters() const PANE_EXCLUDES(stats_mutex_);

  /// One decoded request, parsed by the session layer; a parse or framing
  /// failure travels as an entry too, so errors stay in request order.
  struct BatchEntry {
    Request request;
    bool parse_error = false;
    std::string error;
  };

  /// Executes one batch in request order: validates ranges, consults the
  /// LRU cache, folds duplicates, runs the engine's blocked kernels on
  /// the rest, and fills *responses with one payload (no wire framing)
  /// per entry. Sets *quit on a kQuit entry. Clears *batch.
  ///
  /// A non-null `trace` carries the session's decode / batch-wait times in
  /// and leaves with the engine-side stages (scan, select, fan-out, merge)
  /// stamped; only externally-traced batches record the decode and
  /// batch-wait histograms, so an internal hop (LocalShard) sharing the
  /// registry never dilutes them with zeros.
  void ExecuteBatch(std::vector<BatchEntry>* batch,
                    std::vector<std::string>* responses, bool* quit,
                    obs::RequestTrace* trace = nullptr)
      PANE_EXCLUDES(stats_mutex_, cache_mutex_);

  /// Counts decoded binary frames (called by frame-codec sessions).
  void RecordFrames(uint64_t delta = 1) PANE_EXCLUDES(stats_mutex_);

  /// Records one stage sample into the per-stage histogram (no-op when the
  /// metrics subsystem is disabled). The session layer uses this for the
  /// stages that live outside ExecuteBatch (encode).
  void RecordStageTime(obs::Stage stage, int64_t us);

  /// The registry backing this server's metrics — the options' pointer,
  /// the server-owned one, or null when metrics_enabled is false. Sessions
  /// branch on this to skip timing entirely.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  const ServerOptions& options() const { return options_; }

 private:
  struct RequestHash {
    size_t operator()(const Request& r) const;
  };

  bool CacheLookup(const Request& key, std::string* response)
      PANE_EXCLUDES(cache_mutex_);
  void CacheInsert(const Request& key, const std::string& response)
      PANE_EXCLUDES(cache_mutex_);
  /// Bumps one counter field by `delta` under the stats capability.
  void Count(uint64_t Counters::*field, uint64_t delta = 1)
      PANE_EXCLUDES(stats_mutex_);
  std::string StatsResponse() const PANE_EXCLUDES(stats_mutex_);
  /// The `metrics` verb payload: the registry's Prometheus exposition plus
  /// the served-request counters, terminated by "# EOF".
  std::string MetricsResponse() const PANE_EXCLUDES(stats_mutex_);

  /// Shared constructor tail (transport wiring + metrics handles).
  void Init();
  /// The response to the `plan` verb for this server's candidate space.
  std::string PlanResponse() const;

  // Exactly one of engine_ / router_ is set; all batch execution branches
  // on router_.
  const QueryEngine* engine_ = nullptr;
  Router* router_ = nullptr;
  ServerOptions options_;

  /// Guards the LRU result cache (the list order is part of the state, so
  /// even lookups mutate under the lock).
  mutable Mutex cache_mutex_;
  std::list<std::pair<Request, std::string>> lru_
      PANE_GUARDED_BY(cache_mutex_);  // most recent at front
  std::unordered_map<Request,
                     std::list<std::pair<Request, std::string>>::iterator,
                     RequestHash>
      cache_ PANE_GUARDED_BY(cache_mutex_);

  /// Guards the served-request counters; a separate capability from the
  /// cache so a stats snapshot never contends with cache traffic.
  mutable Mutex stats_mutex_;
  Counters counters_ PANE_GUARDED_BY(stats_mutex_);

  /// Backs metrics_ when the options supply no registry (and metrics are
  /// enabled); metrics_ is the single pointer every record path checks.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Per-stage histograms (pane_stage_<name>_us), indexed by obs::Stage,
  /// plus the whole-batch one; handles resolved once in Init, null when
  /// metrics are disabled.
  obs::Histogram* stage_us_[obs::kNumStages] = {};
  obs::Histogram* batch_us_ = nullptr;

  /// Created in the constructor and never reassigned, so every thread that
  /// can observe the server sees the same transport — there is no
  /// ListenTcp-before-Shutdown ordering to get wrong anymore.
  std::unique_ptr<EpollTransport> transport_;
};

}  // namespace serve
}  // namespace pane
