#include "src/serve/protocol.h"

#include "src/serve/frame_protocol.h"
#include "src/serve/line_protocol.h"

namespace pane {
namespace serve {

bool ParseProtocolName(std::string_view name, Protocol* out) {
  if (name == "auto") {
    *out = Protocol::kAuto;
  } else if (name == "line") {
    *out = Protocol::kLine;
  } else if (name == "frame") {
    *out = Protocol::kFrame;
  } else {
    return false;
  }
  return true;
}

const char* ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAuto:
      return "auto";
    case Protocol::kLine:
      return "line";
    case Protocol::kFrame:
      return "frame";
  }
  return "auto";
}

std::unique_ptr<ProtocolCodec> MakeCodec(Protocol requested,
                                         unsigned char first,
                                         size_t max_frame_payload) {
  if (requested == Protocol::kAuto) {
    requested = first == kFrameMagic ? Protocol::kFrame : Protocol::kLine;
  }
  if (requested == Protocol::kFrame) {
    return std::make_unique<FrameCodec>(max_frame_payload);
  }
  return std::make_unique<LineCodec>();
}

}  // namespace serve
}  // namespace pane
