#include "src/serve/line_protocol.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/string_util.h"

namespace pane {
namespace serve {
namespace {

/// Strict non-negative integer parse (the protocol's ids and counts).
bool ParseId(std::string_view token, int64_t* out) {
  if (token.empty() || token.size() > 18) return false;
  int64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

void AppendScore(std::string* out, double score) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", score);
  out->append(buf);
}

}  // namespace

Result<Request> ParseRequestLine(std::string_view line) {
  const std::vector<std::string_view> tokens = SplitWhitespace(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  Request request;
  const std::string_view verb = tokens[0];
  if (verb == "stats" || verb == "quit" || verb == "plan" ||
      verb == "metrics") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument(std::string(verb) +
                                     " takes no arguments");
    }
    request.type = verb == "stats"     ? Request::Type::kStats
                   : verb == "plan"    ? Request::Type::kPlan
                   : verb == "metrics" ? Request::Type::kMetrics
                                       : Request::Type::kQuit;
    return request;
  }
  if (tokens.size() != 3) {
    return Status::InvalidArgument(
        "expected '<verb> <id> <id>', got: " + std::string(line));
  }
  int64_t first = 0, second = 0;
  if (!ParseId(tokens[1], &first) || !ParseId(tokens[2], &second)) {
    return Status::InvalidArgument("non-numeric id in: " + std::string(line));
  }
  if (verb == "attr" || verb == "link") {
    request.type = verb == "attr" ? Request::Type::kTopKAttributes
                                  : Request::Type::kTopKTargets;
    request.a = first;
    request.k = second;
    if (request.k <= 0) {
      return Status::InvalidArgument("k must be positive in: " +
                                     std::string(line));
    }
    return request;
  }
  if (verb == "pattr" || verb == "pair") {
    request.type = verb == "pattr" ? Request::Type::kAttributePair
                                   : Request::Type::kLinkPair;
    request.a = first;
    request.b = second;
    return request;
  }
  return Status::InvalidArgument("unknown verb: " + std::string(verb));
}

std::string FormatRanking(const Request& request, const Ranking& ranking) {
  std::string out =
      request.type == Request::Type::kTopKAttributes ? "attr " : "link ";
  out += std::to_string(request.a);
  out += " ok";
  for (const auto& [index, score] : ranking) {
    out += ' ';
    out += std::to_string(index);
    out += ':';
    AppendScore(&out, score);
  }
  return out;
}

std::string FormatScore(const Request& request, double score) {
  std::string out =
      request.type == Request::Type::kAttributePair ? "pattr " : "pair ";
  out += std::to_string(request.a);
  out += ' ';
  out += std::to_string(request.b);
  out += " ok ";
  AppendScore(&out, score);
  return out;
}

std::string FormatError(const std::string& message) {
  return "err " + message;
}

std::string FormatRequest(const Request& request) {
  switch (request.type) {
    case Request::Type::kTopKAttributes:
      return "attr " + std::to_string(request.a) + ' ' +
             std::to_string(request.k);
    case Request::Type::kTopKTargets:
      return "link " + std::to_string(request.a) + ' ' +
             std::to_string(request.k);
    case Request::Type::kAttributePair:
      return "pattr " + std::to_string(request.a) + ' ' +
             std::to_string(request.b);
    case Request::Type::kLinkPair:
      return "pair " + std::to_string(request.a) + ' ' +
             std::to_string(request.b);
    case Request::Type::kStats:
      return "stats";
    case Request::Type::kMetrics:
      return "metrics";
    case Request::Type::kPlan:
      return "plan";
    case Request::Type::kQuit:
      return "quit";
  }
  return "stats";
}

Status ParseRankingResponse(std::string_view line, Request::Type expected,
                            int64_t expected_node, Ranking* ranking) {
  const std::vector<std::string_view> tokens = SplitWhitespace(line);
  if (tokens.size() >= 1 && tokens[0] == "err") {
    return Status::IOError("shard answered: " + std::string(line));
  }
  const std::string_view verb =
      expected == Request::Type::kTopKAttributes ? "attr" : "link";
  if (tokens.size() < 3 || tokens[0] != verb || tokens[2] != "ok") {
    return Status::InvalidArgument("malformed top-k response: " +
                                   std::string(line));
  }
  int64_t node = 0;
  if (!ParseId(tokens[1], &node) || node != expected_node) {
    return Status::InvalidArgument("top-k response for the wrong query: " +
                                   std::string(line));
  }
  ranking->clear();
  ranking->reserve(tokens.size() - 3);
  for (size_t i = 3; i < tokens.size(); ++i) {
    const std::string_view entry = tokens[i];
    const size_t colon = entry.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      return Status::InvalidArgument("malformed ranking entry: " +
                                     std::string(entry));
    }
    int64_t index = 0;
    if (!ParseId(entry.substr(0, colon), &index)) {
      return Status::InvalidArgument("non-numeric ranking index: " +
                                     std::string(entry));
    }
    // The score substring needs NUL termination for strtod; entries are
    // short, so a stack copy beats materializing the whole line.
    char buf[48];
    const std::string_view score_text = entry.substr(colon + 1);
    if (score_text.size() >= sizeof(buf)) {
      return Status::InvalidArgument("implausible score length in: " +
                                     std::string(entry));
    }
    std::memcpy(buf, score_text.data(), score_text.size());
    buf[score_text.size()] = '\0';
    char* end = nullptr;
    const double score = std::strtod(buf, &end);
    if (end != buf + score_text.size()) {
      return Status::InvalidArgument("non-numeric score: " +
                                     std::string(entry));
    }
    ranking->emplace_back(index, score);
  }
  return Status::OK();
}

ProtocolCodec::Decoded LineCodec::Decode(std::string_view buffer, size_t* pos,
                                         std::string_view* payload,
                                         std::string* error) {
  (void)error;  // text lines have no framing errors, only parse errors
  const size_t newline = buffer.find('\n', *pos);
  if (newline == std::string_view::npos) return Decoded::kNeedMore;
  const std::string_view line = buffer.substr(*pos, newline - *pos);
  *pos = newline + 1;
  const bool blank = line.find_first_not_of(" \t\r\v\f") ==
                     std::string_view::npos;
  if (blank) return Decoded::kFlush;
  *payload = line;
  return Decoded::kMessage;
}

void LineCodec::Encode(std::string_view payload, std::string* out) {
  out->append(payload.data(), payload.size());
  out->push_back('\n');
}

bool LineCodec::DecodeFinal(std::string_view remainder,
                            std::string_view* payload, std::string* error) {
  (void)error;
  if (remainder.find_first_not_of(" \t\r\v\f") == std::string_view::npos) {
    return false;  // trailing whitespace, nothing to answer
  }
  *payload = remainder;
  return true;
}

}  // namespace serve
}  // namespace pane
