#include "src/serve/frame_protocol.h"

#include "src/common/logging.h"

namespace pane {
namespace serve {
namespace {

uint32_t ReadU32Le(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

ProtocolCodec::Decoded FrameCodec::Decode(std::string_view buffer, size_t* pos,
                                          std::string_view* payload,
                                          std::string* error) {
  const std::string_view rest = buffer.substr(*pos);
  if (rest.empty()) return Decoded::kNeedMore;
  const auto* bytes = reinterpret_cast<const unsigned char*>(rest.data());
  // Validate the header prefix byte by byte, so garbage is rejected from
  // the first wrong byte even when the rest of the header has not arrived.
  if (bytes[0] != kFrameMagic) {
    *error = "bad frame magic";
    return Decoded::kError;
  }
  if (rest.size() >= 2 && bytes[1] != kFrameTag0) {
    *error = "bad frame magic";
    return Decoded::kError;
  }
  if (rest.size() >= 3 && bytes[2] != kFrameTag1) {
    *error = "bad frame magic";
    return Decoded::kError;
  }
  if (rest.size() >= 4 && bytes[3] != kFrameVersion) {
    *error = "unsupported frame version " + std::to_string(bytes[3]);
    return Decoded::kError;
  }
  if (rest.size() < kFrameHeaderSize) return Decoded::kNeedMore;
  const uint32_t length = ReadU32Le(bytes + 4);
  // The length field is hostile input until proven otherwise: bound it
  // before comparing against (let alone allocating) anything.
  if (length == 0) {
    *error = "zero-length frame";
    return Decoded::kError;
  }
  if (static_cast<size_t>(length) > max_payload_) {
    *error = "oversized frame length " + std::to_string(length);
    return Decoded::kError;
  }
  if (rest.size() < kFrameHeaderSize + length) return Decoded::kNeedMore;
  *payload = rest.substr(kFrameHeaderSize, length);
  *pos += kFrameHeaderSize + length;
  return Decoded::kMessage;
}

void FrameCodec::Encode(std::string_view payload, std::string* out) {
  AppendFrame(payload, out);
}

bool FrameCodec::DecodeFinal(std::string_view remainder,
                             std::string_view* payload, std::string* error) {
  (void)remainder;
  (void)payload;
  // A nonempty remainder that Decode could not consume is a frame cut off
  // mid-header or mid-payload; unlike a line, it cannot be a message.
  *error = "truncated frame at end of input";
  return false;
}

void AppendFrame(std::string_view payload, std::string* out) {
  PANE_CHECK(!payload.empty() && payload.size() <= kMaxFramePayload)
      << "frame payload must be 1.." << kMaxFramePayload << " bytes, got "
      << payload.size();
  const auto length = static_cast<uint32_t>(payload.size());
  const char header[kFrameHeaderSize] = {
      static_cast<char>(kFrameMagic),
      static_cast<char>(kFrameTag0),
      static_cast<char>(kFrameTag1),
      static_cast<char>(kFrameVersion),
      static_cast<char>(length & 0xFF),
      static_cast<char>((length >> 8) & 0xFF),
      static_cast<char>((length >> 16) & 0xFF),
      static_cast<char>((length >> 24) & 0xFF),
  };
  out->append(header, kFrameHeaderSize);
  out->append(payload.data(), payload.size());
}

}  // namespace serve
}  // namespace pane
