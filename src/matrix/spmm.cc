#include "src/matrix/spmm.h"

#include "src/common/logging.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Computes rows [row_begin, row_end) of out = A * X.
void SpMMRows(const CsrMatrix& a, const DenseMatrix& x, DenseMatrix* out,
              int64_t row_begin, int64_t row_end) {
  const int64_t k = x.cols();
  for (int64_t i = row_begin; i < row_end; ++i) {
    double* out_row = out->Row(i);
    std::fill(out_row, out_row + k, 0.0);
    const CsrMatrix::RowView row = a.Row(i);
    for (int64_t p = 0; p < row.length; ++p) {
      const double v = row.vals[p];
      const double* x_row = x.Row(row.cols[p]);
      for (int64_t j = 0; j < k; ++j) out_row[j] += v * x_row[j];
    }
  }
}

// Computes rows [row_begin, row_end) of out = alpha * A * X + beta * Y.
void SpMMAddScaledRows(const CsrMatrix& a, const DenseMatrix& x, double alpha,
                       const DenseMatrix& y, double beta, DenseMatrix* out,
                       int64_t row_begin, int64_t row_end) {
  const int64_t k = x.cols();
  for (int64_t i = row_begin; i < row_end; ++i) {
    double* out_row = out->Row(i);
    const double* y_row = y.Row(i);
    for (int64_t j = 0; j < k; ++j) out_row[j] = beta * y_row[j];
    const CsrMatrix::RowView row = a.Row(i);
    for (int64_t p = 0; p < row.length; ++p) {
      const double v = alpha * row.vals[p];
      const double* x_row = x.Row(row.cols[p]);
      for (int64_t j = 0; j < k; ++j) out_row[j] += v * x_row[j];
    }
  }
}

// Computes rows [row_begin, row_end) of next = scale * (A * X) and
// slab[:, slab_col .. slab_col + k) += acc_scale * next.
void SpMMPanelStepRows(const CsrMatrix& a, const DenseMatrix& x, double scale,
                       DenseMatrix* next, double acc_scale, double* slab,
                       int64_t slab_cols, int64_t slab_col, int64_t row_begin,
                       int64_t row_end) {
  const int64_t k = x.cols();
  for (int64_t i = row_begin; i < row_end; ++i) {
    double* next_row = next->Row(i);
    std::fill(next_row, next_row + k, 0.0);
    const CsrMatrix::RowView row = a.Row(i);
    for (int64_t p = 0; p < row.length; ++p) {
      const double v = scale * row.vals[p];
      const double* x_row = x.Row(row.cols[p]);
      for (int64_t j = 0; j < k; ++j) next_row[j] += v * x_row[j];
    }
    double* slab_row = slab + i * slab_cols + slab_col;
    for (int64_t j = 0; j < k; ++j) slab_row[j] += acc_scale * next_row[j];
  }
}

}  // namespace

void SpMM(const CsrMatrix& a, const DenseMatrix& x, DenseMatrix* out,
          ThreadPool* pool) {
  PANE_CHECK(a.cols() == x.rows())
      << "SpMM shape mismatch: " << a.cols() << " vs " << x.rows();
  PANE_CHECK(out != &x) << "SpMM cannot run in place";
  out->Resize(a.rows(), x.cols());
  if (pool == nullptr || pool->num_threads() == 1) {
    SpMMRows(a, x, out, 0, a.rows());
    return;
  }
  ParallelFor(pool, 0, a.rows(), [&](int64_t begin, int64_t end) {
    SpMMRows(a, x, out, begin, end);
  });
}

void SpMMAddScaled(const CsrMatrix& a, const DenseMatrix& x, double alpha,
                   const DenseMatrix& y, double beta, DenseMatrix* out,
                   ThreadPool* pool) {
  PANE_CHECK(a.cols() == x.rows());
  PANE_CHECK(y.rows() == a.rows() && y.cols() == x.cols());
  PANE_CHECK(out != &x && out != &y) << "SpMMAddScaled cannot run in place";
  out->Resize(a.rows(), x.cols());
  if (pool == nullptr || pool->num_threads() == 1) {
    SpMMAddScaledRows(a, x, alpha, y, beta, out, 0, a.rows());
    return;
  }
  ParallelFor(pool, 0, a.rows(), [&](int64_t begin, int64_t end) {
    SpMMAddScaledRows(a, x, alpha, y, beta, out, begin, end);
  });
}

void SpMMPanelStep(const CsrMatrix& a, const DenseMatrix& x, double scale,
                   DenseMatrix* next, double acc_scale, double* slab,
                   int64_t slab_cols, int64_t slab_col, ThreadPool* pool) {
  PANE_CHECK(a.cols() == x.rows())
      << "SpMMPanelStep shape mismatch: " << a.cols() << " vs " << x.rows();
  PANE_CHECK(next != &x && slab != next->data() && slab != x.data())
      << "SpMMPanelStep cannot run in place";
  PANE_CHECK(slab_col >= 0 && slab_col + x.cols() <= slab_cols)
      << "SpMMPanelStep slab panel out of bounds";
  next->Resize(a.rows(), x.cols());
  if (pool == nullptr || pool->num_threads() == 1) {
    SpMMPanelStepRows(a, x, scale, next, acc_scale, slab, slab_cols, slab_col,
                      0, a.rows());
    return;
  }
  ParallelFor(pool, 0, a.rows(), [&](int64_t begin, int64_t end) {
    SpMMPanelStepRows(a, x, scale, next, acc_scale, slab, slab_cols, slab_col,
                      begin, end);
  });
}

namespace {

// Computes rows [row_begin, row_end) of y = A * x.
void SpMVRows(const CsrMatrix& a, const std::vector<double>& x,
              std::vector<double>* y, int64_t row_begin, int64_t row_end) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const CsrMatrix::RowView row = a.Row(i);
    double s = 0.0;
    for (int64_t p = 0; p < row.length; ++p) {
      s += row.vals[p] * x[static_cast<size_t>(row.cols[p])];
    }
    (*y)[static_cast<size_t>(i)] = s;
  }
}

}  // namespace

void SpMV(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>* y, ThreadPool* pool) {
  PANE_CHECK(static_cast<int64_t>(x.size()) == a.cols());
  PANE_CHECK(y != &x) << "SpMV cannot run in place";
  y->assign(static_cast<size_t>(a.rows()), 0.0);
  if (pool == nullptr || pool->num_threads() == 1) {
    SpMVRows(a, x, y, 0, a.rows());
    return;
  }
  ParallelFor(pool, 0, a.rows(), [&](int64_t begin, int64_t end) {
    SpMVRows(a, x, y, begin, end);
  });
}

}  // namespace pane
