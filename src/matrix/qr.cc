#include "src/matrix/qr.h"

#include <cmath>
#include <vector>

#include "src/common/random.h"
#include "src/matrix/vector_ops.h"

namespace pane {
namespace {

constexpr double kRankTolerance = 1e-12;

// Columns live contiguously in a column-major scratch buffer so the MGS
// inner products run at unit stride.
struct ColMajor {
  int64_t rows;
  int64_t cols;
  std::vector<double> data;

  explicit ColMajor(const DenseMatrix& a)
      : rows(a.rows()), cols(a.cols()),
        data(static_cast<size_t>(rows * cols)) {
    for (int64_t i = 0; i < rows; ++i) {
      const double* row = a.Row(i);
      for (int64_t j = 0; j < cols; ++j) {
        data[static_cast<size_t>(j * rows + i)] = row[j];
      }
    }
  }

  double* Col(int64_t j) { return data.data() + j * rows; }
  const double* Col(int64_t j) const { return data.data() + j * rows; }

  DenseMatrix ToRowMajor() const {
    DenseMatrix out(rows, cols);
    for (int64_t j = 0; j < cols; ++j) {
      const double* col = Col(j);
      for (int64_t i = 0; i < rows; ++i) out(i, j) = col[i];
    }
    return out;
  }
};

}  // namespace

Status ThinQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r, Rng* rng) {
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  if (n < c) {
    return Status::InvalidArgument("ThinQr requires rows >= cols");
  }
  if (c == 0) {
    q->Resize(n, 0);
    if (r != nullptr) r->Resize(0, 0);
    return Status::OK();
  }

  ColMajor work(a);
  if (r != nullptr) r->Resize(c, c);
  Rng fallback_rng(0x9d2c5680u);
  Rng* rand = rng != nullptr ? rng : &fallback_rng;

  for (int64_t j = 0; j < c; ++j) {
    double* v = work.Col(j);
    const double orig_norm = Norm2(v, n);
    // Two MGS passes against the already-formed basis.
    for (int pass = 0; pass < 2; ++pass) {
      for (int64_t i = 0; i < j; ++i) {
        const double* qi = work.Col(i);
        const double rij = Dot(qi, v, n);
        Axpy(-rij, qi, v, n);
        if (r != nullptr) (*r)(i, j) += rij;
      }
    }
    double norm = Norm2(v, n);
    if (norm > kRankTolerance * std::max(1.0, orig_norm)) {
      Scal(1.0 / norm, v, n);
      if (r != nullptr) (*r)(j, j) = norm;
      continue;
    }
    // Rank-deficient column: substitute a random direction orthogonal to the
    // basis so Q keeps full column rank (R gets a zero diagonal entry).
    if (r != nullptr) (*r)(j, j) = 0.0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      for (int64_t i = 0; i < n; ++i) v[i] = rand->Gaussian();
      for (int pass = 0; pass < 2; ++pass) {
        for (int64_t i = 0; i < j; ++i) {
          const double* qi = work.Col(i);
          Axpy(-Dot(qi, v, n), qi, v, n);
        }
      }
      norm = Norm2(v, n);
      if (norm > 1e-6) {
        Scal(1.0 / norm, v, n);
        break;
      }
    }
    if (norm <= 1e-6) {
      return Status::NumericError("ThinQr could not complete a basis column");
    }
  }

  *q = work.ToRowMajor();
  return Status::OK();
}

Status OrthonormalizeColumns(DenseMatrix* q, Rng* rng) {
  DenseMatrix out;
  PANE_RETURN_NOT_OK(ThinQr(*q, &out, /*r=*/nullptr, rng));
  *q = std::move(out);
  return Status::OK();
}

}  // namespace pane
