#include "src/matrix/csr_matrix.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pane {

Result<CsrMatrix> CsrMatrix::FromTriplets(int64_t rows, int64_t cols,
                                          const std::vector<Triplet>& triplets) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::OutOfRange(
          StrFormat("triplet (%lld, %lld) outside %lld x %lld",
                    static_cast<long long>(t.row), static_cast<long long>(t.col),
                    static_cast<long long>(rows), static_cast<long long>(cols)));
    }
  }

  // Counting sort by row, then sort each row's entries by column and merge
  // duplicates. Two passes, O(nnz log(row_nnz)) total.
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.indptr_.assign(static_cast<size_t>(rows) + 1, 0);
  for (const Triplet& t : triplets) {
    ++m.indptr_[static_cast<size_t>(t.row) + 1];
  }
  for (size_t i = 1; i < m.indptr_.size(); ++i) {
    m.indptr_[i] += m.indptr_[i - 1];
  }
  std::vector<int32_t> cols_tmp(triplets.size());
  std::vector<double> vals_tmp(triplets.size());
  std::vector<int64_t> cursor(m.indptr_.begin(), m.indptr_.end() - 1);
  for (const Triplet& t : triplets) {
    const int64_t pos = cursor[static_cast<size_t>(t.row)]++;
    cols_tmp[static_cast<size_t>(pos)] = static_cast<int32_t>(t.col);
    vals_tmp[static_cast<size_t>(pos)] = t.value;
  }

  m.indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::vector<int64_t> new_indptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<std::pair<int32_t, double>> row_buf;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t begin = m.indptr_[static_cast<size_t>(r)];
    const int64_t end = m.indptr_[static_cast<size_t>(r) + 1];
    row_buf.clear();
    for (int64_t p = begin; p < end; ++p) {
      row_buf.emplace_back(cols_tmp[static_cast<size_t>(p)],
                           vals_tmp[static_cast<size_t>(p)]);
    }
    std::sort(row_buf.begin(), row_buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t p = 0; p < row_buf.size(); ++p) {
      if (!m.indices_.empty() &&
          static_cast<int64_t>(m.indices_.size()) > new_indptr[static_cast<size_t>(r)] &&
          m.indices_.back() == row_buf[p].first) {
        m.values_.back() += row_buf[p].second;  // merge duplicate
      } else {
        m.indices_.push_back(row_buf[p].first);
        m.values_.push_back(row_buf[p].second);
      }
    }
    new_indptr[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(m.indices_.size());
  }
  m.indptr_ = std::move(new_indptr);
  return m;
}

Result<CsrMatrix> CsrMatrix::FromCsrArrays(int64_t rows, int64_t cols,
                                           std::vector<int64_t> indptr,
                                           std::vector<int32_t> indices,
                                           std::vector<double> values) {
  if (static_cast<int64_t>(indptr.size()) != rows + 1) {
    return Status::InvalidArgument("indptr size must be rows + 1");
  }
  if (indices.size() != values.size()) {
    return Status::InvalidArgument("indices/values size mismatch");
  }
  if (indptr.front() != 0 ||
      indptr.back() != static_cast<int64_t>(indices.size())) {
    return Status::InvalidArgument("indptr endpoints malformed");
  }
  for (size_t i = 1; i < indptr.size(); ++i) {
    if (indptr[i] < indptr[i - 1]) {
      return Status::InvalidArgument("indptr must be non-decreasing");
    }
  }
  for (int32_t c : indices) {
    if (c < 0 || c >= cols) return Status::OutOfRange("column index");
  }
  // Rows must hold strictly increasing columns: At() / ColSlice() binary
  // search inside rows, and duplicates would silently change semantics.
  for (size_t r = 0; r + 1 < indptr.size(); ++r) {
    for (int64_t p = indptr[r] + 1; p < indptr[r + 1]; ++p) {
      if (indices[static_cast<size_t>(p)] <=
          indices[static_cast<size_t>(p) - 1]) {
        return Status::InvalidArgument(
            "column indices must be strictly increasing within each row");
      }
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.indptr_ = std::move(indptr);
  m.indices_ = std::move(indices);
  m.values_ = std::move(values);
  return m;
}

double CsrMatrix::At(int64_t i, int64_t j) const {
  PANE_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  const RowView row = Row(i);
  const int32_t* found =
      std::lower_bound(row.cols, row.cols + row.length, static_cast<int32_t>(j));
  if (found != row.cols + row.length && *found == static_cast<int32_t>(j)) {
    return row.vals[found - row.cols];
  }
  return 0.0;
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> sums(static_cast<size_t>(rows_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const RowView row = Row(i);
    double s = 0.0;
    for (int64_t p = 0; p < row.length; ++p) s += row.vals[p];
    sums[static_cast<size_t>(i)] = s;
  }
  return sums;
}

std::vector<double> CsrMatrix::ColSums() const {
  std::vector<double> sums(static_cast<size_t>(cols_), 0.0);
  for (size_t p = 0; p < indices_.size(); ++p) {
    sums[static_cast<size_t>(indices_[p])] += values_[p];
  }
  return sums;
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.indptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  t.indices_.resize(indices_.size());
  t.values_.resize(values_.size());
  for (int32_t c : indices_) ++t.indptr_[static_cast<size_t>(c) + 1];
  for (size_t i = 1; i < t.indptr_.size(); ++i) t.indptr_[i] += t.indptr_[i - 1];
  std::vector<int64_t> cursor(t.indptr_.begin(), t.indptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    const RowView row = Row(r);
    for (int64_t p = 0; p < row.length; ++p) {
      const int64_t pos = cursor[static_cast<size_t>(row.cols[p])]++;
      t.indices_[static_cast<size_t>(pos)] = static_cast<int32_t>(r);
      t.values_[static_cast<size_t>(pos)] = row.vals[p];
    }
  }
  // Rows of the transpose are emitted in increasing source-row order, so the
  // column indices within each row are already sorted.
  return t;
}

CsrMatrix CsrMatrix::RowNormalized() const {
  CsrMatrix out = *this;
  for (int64_t i = 0; i < rows_; ++i) {
    const int64_t begin = indptr_[static_cast<size_t>(i)];
    const int64_t end = indptr_[static_cast<size_t>(i) + 1];
    double s = 0.0;
    for (int64_t p = begin; p < end; ++p) s += values_[static_cast<size_t>(p)];
    if (s != 0.0) {
      const double inv = 1.0 / s;
      for (int64_t p = begin; p < end; ++p) {
        out.values_[static_cast<size_t>(p)] *= inv;
      }
    }
  }
  return out;
}

CsrMatrix CsrMatrix::ColNormalized() const {
  CsrMatrix out = *this;
  const std::vector<double> sums = ColSums();
  for (size_t p = 0; p < out.values_.size(); ++p) {
    const double s = sums[static_cast<size_t>(out.indices_[p])];
    if (s != 0.0) out.values_[p] /= s;
  }
  return out;
}

CsrMatrix CsrMatrix::ColSlice(int64_t col_begin, int64_t col_end) const {
  PANE_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= cols_);
  CsrMatrix out;
  out.rows_ = rows_;
  out.cols_ = col_end - col_begin;
  out.indptr_.assign(static_cast<size_t>(rows_) + 1, 0);
  for (int64_t r = 0; r < rows_; ++r) {
    const RowView row = Row(r);
    // Row columns are sorted: locate the [col_begin, col_end) window.
    const int32_t* lo = std::lower_bound(row.cols, row.cols + row.length,
                                         static_cast<int32_t>(col_begin));
    const int32_t* hi = std::lower_bound(lo, row.cols + row.length,
                                         static_cast<int32_t>(col_end));
    for (const int32_t* p = lo; p < hi; ++p) {
      out.indices_.push_back(static_cast<int32_t>(*p - col_begin));
      out.values_.push_back(row.vals[p - row.cols]);
    }
    out.indptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(out.indices_.size());
  }
  return out;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    const RowView row = Row(r);
    for (int64_t p = 0; p < row.length; ++p) {
      out(r, row.cols[p]) = row.vals[p];
    }
  }
  return out;
}

void CsrMatrix::ScaleValues(double s) {
  for (double& v : values_) v *= s;
}

std::string CsrMatrix::ToString(int max_rows) const {
  std::string out = StrFormat(
      "CsrMatrix %lld x %lld, nnz=%lld\n", static_cast<long long>(rows_),
      static_cast<long long>(cols_), static_cast<long long>(nnz()));
  const int64_t r = std::min<int64_t>(rows_, max_rows);
  for (int64_t i = 0; i < r; ++i) {
    const RowView row = Row(i);
    out += StrFormat("  row %lld:", static_cast<long long>(i));
    for (int64_t p = 0; p < row.length && p < 12; ++p) {
      out += StrFormat(" (%d, %.3f)", row.cols[p], row.vals[p]);
    }
    if (row.length > 12) out += " ...";
    out += "\n";
  }
  if (r < rows_) out += "  ...\n";
  return out;
}

}  // namespace pane
