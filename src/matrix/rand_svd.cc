#include "src/matrix/rand_svd.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/matrix/gemm.h"
#include "src/matrix/qr.h"
#include "src/matrix/svd.h"

namespace pane {

Status RandSvd(ConstMatrixView a, int k, const RandSvdOptions& options,
               DenseMatrix* u, std::vector<double>* sigma, DenseMatrix* v) {
  const int64_t n = a.rows();
  const int64_t d = a.cols();
  if (k <= 0) return Status::InvalidArgument("RandSvd requires k > 0");
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("RandSvd on an empty matrix");
  }

  const int64_t max_rank = std::min(n, d);
  const int64_t r =
      std::min<int64_t>(static_cast<int64_t>(k) + options.oversample, max_rank);
  Rng rng(options.seed);

  // Sketch: Y = A * Omega, Omega Gaussian d x r.
  DenseMatrix omega(d, r);
  omega.FillGaussian(&rng);
  DenseMatrix y;
  Gemm(a, omega, &y, options.pool);
  DenseMatrix q;
  PANE_RETURN_NOT_OK(ThinQr(y, &q, /*r=*/nullptr, &rng));

  // Subspace (power) iteration with QR re-orthonormalization each half-step.
  DenseMatrix z, qz;
  for (int iter = 0; iter < options.power_iters; ++iter) {
    GemmTransA(a, q, &z, options.pool);  // z = A^T q, d x r
    PANE_RETURN_NOT_OK(ThinQr(z, &qz, nullptr, &rng));
    Gemm(a, qz, &y, options.pool);  // y = A qz, n x r
    PANE_RETURN_NOT_OK(ThinQr(y, &q, nullptr, &rng));
  }

  // Project: B = Q^T A (r x d); its exact SVD gives the truncated factors.
  DenseMatrix b;
  GemmTransA(q, a, &b, options.pool);
  const DenseMatrix bt = b.Transposed();  // d x r, tall for JacobiSvd
  DenseMatrix w;                          // d x r: right singular vectors of A
  std::vector<double> sig;                // r singular values
  DenseMatrix zz;                         // r x r: B^T = W Sig ZZ^T
  PANE_RETURN_NOT_OK(JacobiSvd(bt, &w, &sig, &zz));

  // A ~= Q B = Q (ZZ Sig W^T), so left factors are Q * ZZ.
  DenseMatrix u_full;
  Gemm(q, zz, &u_full, options.pool);  // n x r

  const int64_t kept = std::min<int64_t>(k, r);
  u->Resize(n, k);
  v->Resize(d, k);
  sigma->assign(static_cast<size_t>(k), 0.0);
  for (int64_t j = 0; j < kept; ++j) {
    (*sigma)[static_cast<size_t>(j)] = sig[static_cast<size_t>(j)];
    for (int64_t i = 0; i < n; ++i) (*u)(i, j) = u_full(i, j);
    for (int64_t i = 0; i < d; ++i) (*v)(i, j) = w(i, j);
  }
  if (kept < k) {
    // Rank exhausted before k: complete with orthonormal random directions
    // when the ambient dimension allows, otherwise leave zero columns.
    for (int64_t j = kept; j < k; ++j) {
      if (k <= n) {
        for (int64_t i = 0; i < n; ++i) (*u)(i, j) = rng.Gaussian();
      }
      if (k <= d) {
        for (int64_t i = 0; i < d; ++i) (*v)(i, j) = rng.Gaussian();
      }
    }
    if (k <= n) PANE_RETURN_NOT_OK(OrthonormalizeColumns(u, &rng));
    if (k <= d) PANE_RETURN_NOT_OK(OrthonormalizeColumns(v, &rng));
  }
  return Status::OK();
}

Status RandSvd(const DenseMatrix& a, int k, const RandSvdOptions& options,
               DenseMatrix* u, std::vector<double>* sigma, DenseMatrix* v) {
  return RandSvd(a.View(), k, options, u, sigma, v);
}

}  // namespace pane

