// Compressed sparse row matrix. Holds the graph adjacency / random-walk
// matrix P (n x n, m non-zeros) and the node-attribute matrix R (n x d,
// |E_R| non-zeros) — the two sparse inputs of PANE. Column indices are
// 32-bit (n, d < 2^31), row offsets 64-bit (m may exceed 2^31).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

/// \brief One (row, col, value) entry used to assemble a CsrMatrix.
struct Triplet {
  int64_t row = 0;
  int64_t col = 0;
  double value = 0.0;
};

/// \brief Immutable-after-build CSR sparse matrix of doubles.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assembles from unordered triplets; duplicate (row, col) entries are
  /// summed. Out-of-range indices yield InvalidArgument.
  static Result<CsrMatrix> FromTriplets(int64_t rows, int64_t cols,
                                        const std::vector<Triplet>& triplets);

  /// Builds directly from CSR arrays (must be well-formed: indptr
  /// non-decreasing, indices within [0, cols)).
  static Result<CsrMatrix> FromCsrArrays(int64_t rows, int64_t cols,
                                         std::vector<int64_t> indptr,
                                         std::vector<int32_t> indices,
                                         std::vector<double> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(indices_.size()); }

  const std::vector<int64_t>& indptr() const { return indptr_; }
  const std::vector<int32_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  /// \brief Zero-copy view of one row's non-zeros.
  struct RowView {
    int64_t length = 0;
    const int32_t* cols = nullptr;
    const double* vals = nullptr;
  };
  RowView Row(int64_t i) const {
    const int64_t begin = indptr_[static_cast<size_t>(i)];
    const int64_t end = indptr_[static_cast<size_t>(i) + 1];
    return RowView{end - begin, indices_.data() + begin,
                   values_.data() + begin};
  }

  int64_t RowNnz(int64_t i) const {
    return indptr_[static_cast<size_t>(i) + 1] - indptr_[static_cast<size_t>(i)];
  }

  /// Element lookup via binary search within the row; O(log nnz(row)).
  double At(int64_t i, int64_t j) const;

  /// Per-row sums of values.
  std::vector<double> RowSums() const;

  /// Per-column sums of values.
  std::vector<double> ColSums() const;

  /// Transpose (CSC of this matrix re-expressed as CSR).
  CsrMatrix Transposed() const;

  /// Row-stochastic copy: each row divided by its sum (Equation 1, Rr; also
  /// the random-walk matrix P = D^-1 A). Zero rows are left all-zero.
  CsrMatrix RowNormalized() const;

  /// Column-normalized copy: each column divided by its sum (Equation 1, Rc).
  /// Zero columns are left all-zero.
  CsrMatrix ColNormalized() const;

  /// Copy containing only columns [col_begin, col_end), reindexed to start
  /// at 0 (the Rr[:, Ri] blocks of Algorithm 6).
  CsrMatrix ColSlice(int64_t col_begin, int64_t col_end) const;

  /// Densifies (small matrices / tests only).
  DenseMatrix ToDense() const;

  /// Scales all values in place.
  void ScaleValues(double s);

  std::string ToString(int max_rows = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> indptr_;   // size rows_ + 1
  std::vector<int32_t> indices_;  // size nnz, sorted within each row
  std::vector<double> values_;    // size nnz
};

}  // namespace pane
