// Deterministic SVD / symmetric eigendecomposition via Jacobi rotations.
// These handle the small "core" factorizations that the randomized SVD
// (rand_svd.h) reduces to, plus exact reference decompositions in tests.
#pragma once

#include <vector>

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

/// \brief Thin SVD of a tall (rows >= cols) matrix: a = U diag(sigma) V^T.
///
/// One-sided Jacobi: rotates column pairs of `a` until mutually orthogonal.
/// Singular values are returned in non-increasing order; U is rows x cols
/// with orthonormal columns, V is cols x cols orthogonal. Accuracy is at
/// machine-precision level; cost O(rows * cols^2 * sweeps), which is fine
/// for the cols <= a few hundred regime PANE needs.
Status JacobiSvd(const DenseMatrix& a, DenseMatrix* u,
                 std::vector<double>* sigma, DenseMatrix* v);

/// \brief Eigendecomposition of a symmetric matrix: s = V diag(lambda) V^T.
///
/// Classic two-sided Jacobi. Eigenvalues are returned in non-increasing
/// order with matching eigenvector columns.
Status JacobiEigenSymmetric(const DenseMatrix& s, DenseMatrix* v,
                            std::vector<double>* lambda);

/// \brief (Pseudo-)inverse of a symmetric PSD matrix with Tikhonov ridge:
/// inv = V diag(1 / (lambda + ridge)) V^T. Eigenvalues below `ridge` are
/// regularized rather than exploded, so this is safe for the normal-equation
/// solves in the ALS baselines (TADW).
Status InvertSymmetricPsd(const DenseMatrix& s, double ridge,
                          DenseMatrix* inverse);

}  // namespace pane
