#include "src/matrix/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/random.h"
#include "src/matrix/gemm.h"
#include "src/matrix/vector_ops.h"

namespace pane {
namespace {

constexpr int kMaxSweeps = 60;
constexpr double kOrthTolerance = 1e-14;

}  // namespace

Status JacobiSvd(const DenseMatrix& a, DenseMatrix* u,
                 std::vector<double>* sigma, DenseMatrix* v) {
  const int64_t n = a.rows();
  const int64_t c = a.cols();
  if (n < c) {
    return Status::InvalidArgument("JacobiSvd requires rows >= cols");
  }
  if (c == 0) {
    u->Resize(n, 0);
    sigma->clear();
    v->Resize(0, 0);
    return Status::OK();
  }

  // Column-major working copy of A; rotations act on contiguous columns.
  std::vector<double> w(static_cast<size_t>(n * c));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      w[static_cast<size_t>(j * n + i)] = a(i, j);
    }
  }
  // V accumulates the right rotations, also column-major.
  std::vector<double> vw(static_cast<size_t>(c * c), 0.0);
  for (int64_t j = 0; j < c; ++j) vw[static_cast<size_t>(j * c + j)] = 1.0;

  auto col = [&](int64_t j) { return w.data() + j * n; };
  auto vcol = [&](int64_t j) { return vw.data() + j * c; };

  bool converged = false;
  for (int sweep = 0; sweep < kMaxSweeps && !converged; ++sweep) {
    converged = true;
    for (int64_t p = 0; p < c - 1; ++p) {
      for (int64_t q = p + 1; q < c; ++q) {
        double* wp = col(p);
        double* wq = col(q);
        const double app = SquaredNorm(wp, n);
        const double aqq = SquaredNorm(wq, n);
        const double apq = Dot(wp, wq, n);
        if (app == 0.0 || aqq == 0.0) continue;
        if (std::fabs(apq) <= kOrthTolerance * std::sqrt(app * aqq)) continue;
        converged = false;
        // Rotation angle zeroing the (p, q) Gram entry.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (int64_t i = 0; i < n; ++i) {
          const double xp = wp[i];
          const double xq = wq[i];
          wp[i] = cs * xp - sn * xq;
          wq[i] = sn * xp + cs * xq;
        }
        double* vp = vcol(p);
        double* vq = vcol(q);
        for (int64_t i = 0; i < c; ++i) {
          const double xp = vp[i];
          const double xq = vq[i];
          vp[i] = cs * xp - sn * xq;
          vq[i] = sn * xp + cs * xq;
        }
      }
    }
  }

  // Extract singular values and sort non-increasing.
  std::vector<double> norms(static_cast<size_t>(c));
  for (int64_t j = 0; j < c; ++j) norms[static_cast<size_t>(j)] = Norm2(col(j), n);
  std::vector<int64_t> order(static_cast<size_t>(c));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return norms[static_cast<size_t>(x)] > norms[static_cast<size_t>(y)];
  });

  sigma->resize(static_cast<size_t>(c));
  u->Resize(n, c);
  v->Resize(c, c);
  Rng fill_rng(0x5bd1e995u);
  for (int64_t jj = 0; jj < c; ++jj) {
    const int64_t j = order[static_cast<size_t>(jj)];
    const double s = norms[static_cast<size_t>(j)];
    (*sigma)[static_cast<size_t>(jj)] = s;
    const double* wj = col(j);
    const double* vj = vcol(j);
    if (s > 0.0) {
      const double inv = 1.0 / s;
      for (int64_t i = 0; i < n; ++i) (*u)(i, jj) = wj[i] * inv;
    } else {
      // Null singular direction: complete U with a random unit vector made
      // orthogonal to the previously emitted columns so U stays orthonormal.
      std::vector<double> tmp(static_cast<size_t>(n));
      for (int attempt = 0; attempt < 8; ++attempt) {
        for (int64_t i = 0; i < n; ++i) tmp[static_cast<size_t>(i)] = fill_rng.Gaussian();
        for (int64_t prev = 0; prev < jj; ++prev) {
          double dot = 0.0;
          for (int64_t i = 0; i < n; ++i) dot += tmp[static_cast<size_t>(i)] * (*u)(i, prev);
          for (int64_t i = 0; i < n; ++i) tmp[static_cast<size_t>(i)] -= dot * (*u)(i, prev);
        }
        const double norm = Norm2(tmp.data(), n);
        if (norm > 1e-6) {
          for (int64_t i = 0; i < n; ++i) (*u)(i, jj) = tmp[static_cast<size_t>(i)] / norm;
          break;
        }
      }
    }
    for (int64_t i = 0; i < c; ++i) (*v)(i, jj) = vj[i];
  }
  return Status::OK();
}

Status JacobiEigenSymmetric(const DenseMatrix& s, DenseMatrix* v,
                            std::vector<double>* lambda) {
  const int64_t n = s.rows();
  if (s.cols() != n) {
    return Status::InvalidArgument("JacobiEigenSymmetric requires square input");
  }
  DenseMatrix a = s;  // working copy, symmetric
  *v = DenseMatrix::Identity(n);

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (std::sqrt(off) <= 1e-13 * std::max(1.0, a.FrobeniusNorm())) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double tau = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (int64_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = cs * aip - sn * aiq;
          a(i, q) = sn * aip + cs * aiq;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double api = a(p, i);
          const double aqi = a(q, i);
          a(p, i) = cs * api - sn * aqi;
          a(q, i) = sn * api + cs * aqi;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double vip = (*v)(i, p);
          const double viq = (*v)(i, q);
          (*v)(i, p) = cs * vip - sn * viq;
          (*v)(i, q) = sn * vip + cs * viq;
        }
      }
    }
  }

  lambda->resize(static_cast<size_t>(n));
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) diag[static_cast<size_t>(i)] = a(i, i);
  std::stable_sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return diag[static_cast<size_t>(x)] > diag[static_cast<size_t>(y)];
  });
  DenseMatrix sorted_v(n, n);
  for (int64_t jj = 0; jj < n; ++jj) {
    const int64_t j = order[static_cast<size_t>(jj)];
    (*lambda)[static_cast<size_t>(jj)] = diag[static_cast<size_t>(j)];
    for (int64_t i = 0; i < n; ++i) sorted_v(i, jj) = (*v)(i, j);
  }
  *v = std::move(sorted_v);
  return Status::OK();
}

Status InvertSymmetricPsd(const DenseMatrix& s, double ridge,
                          DenseMatrix* inverse) {
  if (ridge <= 0.0) {
    return Status::InvalidArgument("ridge must be positive");
  }
  DenseMatrix v;
  std::vector<double> lambda;
  PANE_RETURN_NOT_OK(JacobiEigenSymmetric(s, &v, &lambda));
  const int64_t n = s.rows();
  // inverse = V diag(1/(lambda + ridge)) V^T
  DenseMatrix scaled = v;  // columns scaled by 1/(lambda_j + ridge)
  for (int64_t j = 0; j < n; ++j) {
    const double denom = std::max(lambda[static_cast<size_t>(j)], 0.0) + ridge;
    const double inv = 1.0 / denom;
    for (int64_t i = 0; i < n; ++i) scaled(i, j) *= inv;
  }
  GemmTransB(scaled, v, inverse);
  return Status::OK();
}

}  // namespace pane
