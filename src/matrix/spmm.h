// Sparse-times-dense kernels. The APMI iteration (Algorithm 2, lines 4-5)
// is Pf <- (1-a) * P * Pf + a * Pf0, i.e. repeated CSR x dense multiplies;
// these kernels are where PANE spends its O(md log(1/eps)) affinity phase.
#pragma once

#include "src/matrix/csr_matrix.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

class ThreadPool;

/// out = A * X. out is resized to (A.rows, X.cols). If pool is non-null the
/// multiply is row-parallel across the pool's workers.
void SpMM(const CsrMatrix& a, const DenseMatrix& x, DenseMatrix* out,
          ThreadPool* pool = nullptr);

/// out = alpha * (A * X) + beta * Y; shapes: A (r x c), X (c x k),
/// Y (r x k). This fused form implements one APMI iteration in a single
/// pass (beta * Y adds the restart term).
void SpMMAddScaled(const CsrMatrix& a, const DenseMatrix& x, double alpha,
                   const DenseMatrix& y, double beta, DenseMatrix* out,
                   ThreadPool* pool = nullptr);

/// Fused panel iteration of the streamed affinity engine: in one pass over
/// each output row,
///   next           = scale * (A * x)                       and
///   slab[:, slab_col .. slab_col + x.cols())  += acc_scale * next.
/// `next` is a panel-width scratch matrix (resized to A.rows x x.cols);
/// the slab is addressed as a raw row-major base pointer with `slab_cols`
/// columns so the engine can accumulate into either FactorSlab backing
/// (RAM or memory-mapped spill) through one kernel — this is what lets the
/// engine keep only O(n x panel_width) scratch instead of a third dense
/// accumulator per panel. Per-element arithmetic is identical to
/// SpMMAddScaled(beta=0) followed by slab.Axpy(acc_scale, next) restricted
/// to the panel columns, so results are bitwise equal to the unfused path.
/// Row-parallel across `pool` when non-null.
void SpMMPanelStep(const CsrMatrix& a, const DenseMatrix& x, double scale,
                   DenseMatrix* next, double acc_scale, double* slab,
                   int64_t slab_cols, int64_t slab_col,
                   ThreadPool* pool = nullptr);

/// y = A * x for a dense vector x (length A.cols); y resized to A.rows.
/// Row-parallel across the pool's workers when pool is non-null, matching
/// the SpMM partitioning.
void SpMV(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>* y, ThreadPool* pool = nullptr);

}  // namespace pane
