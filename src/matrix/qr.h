// Thin QR factorization of tall-skinny matrices (n x r with r << n), the
// re-orthonormalization step inside the randomized SVD power iteration.
#pragma once

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

class Rng;

/// \brief Computes a thin QR of `a` (rows >= cols required): a = Q R with
/// Q orthonormal columns (same shape as a) and R upper-triangular r x r.
///
/// Uses modified Gram-Schmidt with a second re-orthogonalization pass
/// ("twice is enough"), which matches Householder accuracy for the
/// conditioning seen in randomized sketches. Rank-deficient columns are
/// replaced by random directions re-orthogonalized against the basis, so Q
/// always has full column rank; the corresponding R entries are zero.
///
/// `r` may be nullptr when only Q is needed.
Status ThinQr(const DenseMatrix& a, DenseMatrix* q, DenseMatrix* r,
              Rng* rng = nullptr);

/// In-place variant: orthonormalizes the columns of `q` (rows >= cols).
Status OrthonormalizeColumns(DenseMatrix* q, Rng* rng = nullptr);

}  // namespace pane
