// FactorSlab: the row-major n x d factor store behind every big matrix in
// the PANE pipeline — the affinity outputs F' / B' and the CCD residuals
// Sf / Sb. A slab has one of three interchangeable backings:
//
//   kInRam   a DenseMatrix, the historical in-memory shape;
//   kMmap    a memory-mapped spill file (MAP_SHARED on an unlinked-on-
//            destruction temp file), so factors larger than RAM still run;
//   kPooled  the same spill mapping, but with residency managed by a shared
//            store::BufferPool — pages stay resident until pool-wide budget
//            pressure evicts them (clock policy, pool-page granularity)
//            instead of being dropped whole-panel at every release.
//
// All backings expose the same flat row-major address space, so every
// kernel runs one code path regardless of where the bytes live — which is
// what makes spilled and in-RAM runs bitwise identical. The RowBlock API
// (AcquireRows / ReleaseRows) adds residency management on top: releasing a
// block of a spilled slab drops (kMmap) or offers for eviction (kPooled)
// its pages; dirty pages are scheduled for write-back to the spill file and
// survive in the page cache, so re-acquisition is lossless. For the in-RAM
// backing every release is a no-op, so callers sprinkle releases
// unconditionally.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"
#include "src/store/buffer_pool.h"

namespace pane {

class FactorSlab {
 public:
  enum class Backing {
    kInRam,   ///< DenseMatrix storage
    kMmap,    ///< memory-mapped spill file, self-managed residency
    kPooled,  ///< memory-mapped spill file, BufferPool-managed residency
  };

  /// Empty in-RAM slab (0 x 0).
  FactorSlab() = default;

  /// Wraps an existing DenseMatrix as an in-RAM slab (implicit on purpose:
  /// it is the bridge from legacy AffinityMatrices call sites).
  FactorSlab(DenseMatrix dense);  // NOLINT(runtime/explicit)

  /// Deep copy, preserving the backing except that a kPooled source copies
  /// into a self-managed kMmap slab (the copy has no claim on the source's
  /// pool). Aborts on spill I/O failure — copies are a test / bench
  /// convenience, not a production path; production code moves.
  FactorSlab(const FactorSlab& other);
  FactorSlab& operator=(const FactorSlab& other);

  FactorSlab(FactorSlab&& other) noexcept;
  FactorSlab& operator=(FactorSlab&& other) noexcept;

  /// Replaces contents with `dense`, switching to the in-RAM backing (any
  /// previous spill file is removed).
  FactorSlab& operator=(DenseMatrix dense);

  /// Unmaps and unlinks the spill file when spilled.
  ~FactorSlab();

  /// \brief Creates a zero-filled rows x cols slab. For kMmap / kPooled,
  /// the spill file is created in `spill_dir` (empty => the system temp
  /// directory); on any failure nothing is left behind on disk. kPooled
  /// additionally requires `pool`, which must outlive the slab.
  static Result<FactorSlab> Create(int64_t rows, int64_t cols,
                                   Backing backing,
                                   const std::string& spill_dir = "",
                                   store::BufferPool* pool = nullptr);

  /// \brief Creates a slab holding a copy of `dense` under the requested
  /// backing.
  static Result<FactorSlab> FromDense(const DenseMatrix& dense,
                                      Backing backing,
                                      const std::string& spill_dir = "",
                                      store::BufferPool* pool = nullptr);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size_bytes() const {
    return rows_ * cols_ * static_cast<int64_t>(sizeof(double));
  }
  bool empty() const { return rows_ * cols_ == 0; }
  Backing backing() const { return backing_; }
  bool spilled() const { return backing_ != Backing::kInRam; }
  /// Path of the spill file ("" for in-RAM slabs).
  const std::string& spill_path() const { return spill_path_; }

  double* Row(int64_t i) { return base_ + i * cols_; }
  const double* Row(int64_t i) const { return base_ + i * cols_; }
  double* data() { return base_; }
  const double* data() const { return base_; }

  /// Read-only view of the whole slab / a contiguous row range; feeds the
  /// view-based GEMM and RandSVD kernels without copying under either
  /// backing.
  ConstMatrixView View() const {
    return ConstMatrixView(base_, rows_, cols_);
  }
  ConstMatrixView ViewRows(int64_t row_begin, int64_t row_end) const;

  /// \brief Zero-copy mutable view of rows [row_begin, row_end).
  struct RowBlock {
    double* data = nullptr;
    int64_t row_begin = 0;
    int64_t row_end = 0;
    int64_t cols = 0;

    int64_t rows() const { return row_end - row_begin; }
    /// Row pointer by absolute slab row index.
    double* Row(int64_t i) { return data + (i - row_begin) * cols; }
    const double* Row(int64_t i) const {
      return data + (i - row_begin) * cols;
    }
  };

  /// For a kPooled slab this also pins the block's pages against eviction
  /// until the matching release.
  RowBlock AcquireRows(int64_t row_begin, int64_t row_end);

  /// \brief Returns a block to the slab. In-RAM: no-op. kMmap: if `dirty`,
  /// schedules asynchronous write-back of the block's pages to the spill
  /// file, then drops the fully-contained pages from this process's resident
  /// set (inward page rounding, so concurrent neighbors on boundary pages
  /// are never touched). kPooled: unpins the pages and hands them to the
  /// pool, which evicts only under budget pressure. Content is preserved in
  /// every case — the page cache keeps the authoritative copy until
  /// write-back completes.
  Status ReleaseRows(const RowBlock& block, bool dirty);
  Status ReleaseRowRange(int64_t row_begin, int64_t row_end,
                         bool dirty) const;

  /// \brief Drops every resident (kPooled: resident unpinned) page of a
  /// spilled slab (no-op in RAM). Called at phase boundaries so one phase's
  /// sweep does not stay resident through the next.
  Status DropResidency() const;

  /// Reshapes (zero-filled). In-RAM slabs only — spilled slabs are created
  /// at final shape.
  void Resize(int64_t rows, int64_t cols);

  /// Materializes the slab as a DenseMatrix (copies under either backing).
  Result<DenseMatrix> ToDense() const;

  /// Moves the storage out of an in-RAM slab (checks the backing), leaving
  /// this slab empty. The zero-copy exit onto legacy DenseMatrix surfaces.
  DenseMatrix TakeDense();

  /// sqrt(sum of squares), accumulated in row-major element order (matches
  /// DenseMatrix::FrobeniusNorm bitwise).
  double FrobeniusNorm() const;

  double MaxAbsDiff(const DenseMatrix& other) const;
  double MaxAbsDiff(const FactorSlab& other) const;

 private:
  Status InitMmap(int64_t rows, int64_t cols, const std::string& spill_dir);
  void Destroy();

  Backing backing_ = Backing::kInRam;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  DenseMatrix dense_;       // kInRam storage
  double* base_ = nullptr;  // dense_.data() or the mapping base
  void* map_ = nullptr;     // spill mapping (nullptr when empty / in-RAM)
  int64_t map_bytes_ = 0;
  std::string spill_path_;  // "" when in-RAM
  store::BufferPool* pool_ = nullptr;  // kPooled only; not owned
  store::BufferPool::RegionId region_ = -1;
};

/// \brief How the pipeline chooses a slab backing. kAuto spills exactly when
/// a memory budget is set and the resident slab total would exceed it;
/// kInRam / kMmap force one backing (benches, tests).
enum class SlabPolicy { kAuto, kInRam, kMmap };

FactorSlab::Backing ResolveSlabBacking(SlabPolicy policy,
                                       int64_t memory_budget_mb,
                                       int64_t resident_slab_bytes);

/// \brief Which spill flavor the pipeline uses once ResolveSlabBacking says
/// "spill": kPooled (the default) shares a BufferPool across all spilled
/// slabs; kFlat is the original self-managed whole-panel-release path.
enum class SpillMode { kPooled, kFlat };

/// \brief The spilled Backing for a chosen mode: kPooled only when a pool
/// exists, otherwise kMmap.
inline FactorSlab::Backing SpillBackingFor(SpillMode mode,
                                           store::BufferPool* pool) {
  return (mode == SpillMode::kPooled && pool != nullptr)
             ? FactorSlab::Backing::kPooled
             : FactorSlab::Backing::kMmap;
}

/// \brief The streaming passes' release policy, in one place: residency
/// failures are advisory (the data is intact, only the RSS bound slips), so
/// they log a warning instead of aborting the computation. No-ops for
/// in-RAM slabs, like the underlying calls.
void ReleaseRowsOrWarn(const FactorSlab& slab, int64_t row_begin,
                       int64_t row_end, bool dirty);
void DropResidencyOrWarn(const FactorSlab& slab);

}  // namespace pane
