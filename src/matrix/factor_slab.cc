#include "src/matrix/factor_slab.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace pane {
namespace {

int64_t PageSize() {
  static const int64_t page = static_cast<int64_t>(sysconf(_SC_PAGESIZE));
  return page;
}

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

FactorSlab::FactorSlab(DenseMatrix dense)
    : backing_(Backing::kInRam),
      rows_(dense.rows()),
      cols_(dense.cols()),
      dense_(std::move(dense)),
      base_(dense_.data()) {}

FactorSlab::FactorSlab(const FactorSlab& other) { *this = other; }

FactorSlab& FactorSlab::operator=(const FactorSlab& other) {
  if (this == &other) return *this;
  Destroy();
  if (other.backing_ == Backing::kInRam) {
    dense_ = other.dense_;
    backing_ = Backing::kInRam;
    rows_ = other.rows_;
    cols_ = other.cols_;
    base_ = dense_.data();
  } else {
    // Deep copy into a fresh spill file next to the source's. A kPooled
    // source degrades to a self-managed kMmap copy: the copy has no claim
    // on the source's pool budget.
    const std::string dir =
        std::filesystem::path(other.spill_path_).parent_path().string();
    auto copy = Create(other.rows_, other.cols_, Backing::kMmap, dir);
    PANE_CHECK(copy.ok()) << "FactorSlab copy: " << copy.status();
    *this = copy.MoveValueUnsafe();
    if (!empty()) {
      std::copy(other.base_, other.base_ + rows_ * cols_, base_);
    }
  }
  return *this;
}

FactorSlab::FactorSlab(FactorSlab&& other) noexcept { *this = std::move(other); }

FactorSlab& FactorSlab::operator=(FactorSlab&& other) noexcept {
  if (this == &other) return *this;
  Destroy();
  backing_ = other.backing_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  dense_ = std::move(other.dense_);
  // A moved std::vector keeps its heap buffer, so the in-RAM base pointer
  // stays valid; the mapping base is backing-owned and transfers as-is.
  base_ = backing_ == Backing::kInRam ? dense_.data() : other.base_;
  map_ = other.map_;
  map_bytes_ = other.map_bytes_;
  spill_path_ = std::move(other.spill_path_);
  pool_ = other.pool_;
  region_ = other.region_;
  other.backing_ = Backing::kInRam;
  other.rows_ = 0;
  other.cols_ = 0;
  other.base_ = nullptr;
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  other.spill_path_.clear();
  other.pool_ = nullptr;
  other.region_ = -1;
  return *this;
}

FactorSlab& FactorSlab::operator=(DenseMatrix dense) {
  Destroy();
  backing_ = Backing::kInRam;
  rows_ = dense.rows();
  cols_ = dense.cols();
  dense_ = std::move(dense);
  base_ = dense_.data();
  return *this;
}

FactorSlab::~FactorSlab() { Destroy(); }

void FactorSlab::Destroy() {
  if (pool_ != nullptr && region_ >= 0) {
    pool_->Unregister(region_);
  }
  pool_ = nullptr;
  region_ = -1;
  if (map_ != nullptr) {
    munmap(map_, static_cast<size_t>(map_bytes_));
    map_ = nullptr;
    map_bytes_ = 0;
  }
  if (!spill_path_.empty()) {
    unlink(spill_path_.c_str());
    spill_path_.clear();
  }
  dense_ = DenseMatrix();
  base_ = nullptr;
  rows_ = 0;
  cols_ = 0;
  backing_ = Backing::kInRam;
}

Status FactorSlab::InitMmap(int64_t rows, int64_t cols,
                            const std::string& spill_dir) {
  backing_ = Backing::kMmap;
  rows_ = rows;
  cols_ = cols;
  const int64_t bytes = rows * cols * static_cast<int64_t>(sizeof(double));
  if (bytes == 0) return Status::OK();  // empty: no file, no mapping

  std::string dir = spill_dir;
  if (dir.empty()) {
    std::error_code ec;
    dir = std::filesystem::temp_directory_path(ec).string();
    if (ec) dir = "/tmp";
  }
  std::string tmpl = dir + "/pane_slab_XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  const int fd = mkstemp(path.data());
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot create spill file in", dir));
  }
  spill_path_.assign(path.data());
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const Status st =
        Status::IOError(ErrnoMessage("cannot size spill file", spill_path_));
    close(fd);
    unlink(spill_path_.c_str());
    spill_path_.clear();
    return st;
  }
  void* map = mmap(nullptr, static_cast<size_t>(bytes),
                   PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);  // the mapping keeps the file contents alive
  if (map == MAP_FAILED) {
    const Status st =
        Status::IOError(ErrnoMessage("cannot map spill file", spill_path_));
    unlink(spill_path_.c_str());
    spill_path_.clear();
    return st;
  }
  map_ = map;
  map_bytes_ = bytes;
  base_ = static_cast<double*>(map);
  return Status::OK();
}

Result<FactorSlab> FactorSlab::Create(int64_t rows, int64_t cols,
                                      Backing backing,
                                      const std::string& spill_dir,
                                      store::BufferPool* pool) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("FactorSlab shape must be non-negative");
  }
  FactorSlab slab;
  if (backing == Backing::kInRam) {
    slab = FactorSlab(DenseMatrix(rows, cols));
    return slab;
  }
  if (backing == Backing::kPooled && pool == nullptr) {
    return Status::InvalidArgument(
        "a pooled FactorSlab needs a BufferPool");
  }
  PANE_RETURN_NOT_OK(slab.InitMmap(rows, cols, spill_dir));
  if (backing == Backing::kPooled) {
    slab.backing_ = Backing::kPooled;
    if (slab.map_ != nullptr) {
      PANE_ASSIGN_OR_RETURN(slab.region_,
                            pool->Register(slab.map_, slab.map_bytes_));
      slab.pool_ = pool;
    }
  }
  return slab;
}

Result<FactorSlab> FactorSlab::FromDense(const DenseMatrix& dense,
                                         Backing backing,
                                         const std::string& spill_dir,
                                         store::BufferPool* pool) {
  if (backing == Backing::kInRam) return FactorSlab(dense);
  PANE_ASSIGN_OR_RETURN(
      FactorSlab slab,
      Create(dense.rows(), dense.cols(), backing, spill_dir, pool));
  if (!slab.empty()) {
    std::copy(dense.data(), dense.data() + dense.size(), slab.base_);
  }
  return slab;
}

ConstMatrixView FactorSlab::ViewRows(int64_t row_begin,
                                     int64_t row_end) const {
  PANE_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= rows_)
      << "FactorSlab row view out of bounds";
  return ConstMatrixView(base_ + row_begin * cols_, row_end - row_begin,
                         cols_);
}

FactorSlab::RowBlock FactorSlab::AcquireRows(int64_t row_begin,
                                             int64_t row_end) {
  PANE_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= rows_)
      << "FactorSlab row block out of bounds";
  RowBlock block;
  block.data = base_ + row_begin * cols_;
  block.row_begin = row_begin;
  block.row_end = row_end;
  block.cols = cols_;
  if (backing_ == Backing::kPooled && pool_ != nullptr && map_ != nullptr) {
    const Status pinned = pool_->Pin(
        region_, row_begin * cols_ * static_cast<int64_t>(sizeof(double)),
        row_end * cols_ * static_cast<int64_t>(sizeof(double)));
    if (!pinned.ok()) {
      // Advisory like every residency call: the flat mapping stays correct
      // without the pin, only the eviction protection is lost.
      PANE_LOG(WARNING) << "slab pin failed: " << pinned;
    }
  }
  return block;
}

Status FactorSlab::ReleaseRows(const RowBlock& block, bool dirty) {
  return ReleaseRowRange(block.row_begin, block.row_end, dirty);
}

Status FactorSlab::ReleaseRowRange(int64_t row_begin, int64_t row_end,
                                   bool dirty) const {
  if (backing_ == Backing::kInRam || map_ == nullptr ||
      row_begin >= row_end) {
    return Status::OK();
  }
  if (backing_ == Backing::kPooled) {
    // Unpin and let the pool decide: pages stay resident until budget
    // pressure actually evicts them (with write-back first when dirty).
    return pool_->Unpin(
        region_, row_begin * cols_ * static_cast<int64_t>(sizeof(double)),
        row_end * cols_ * static_cast<int64_t>(sizeof(double)), dirty);
  }
  const int64_t page = PageSize();
  const int64_t byte_begin =
      row_begin * cols_ * static_cast<int64_t>(sizeof(double));
  const int64_t byte_end =
      row_end * cols_ * static_cast<int64_t>(sizeof(double));
  char* map_base = static_cast<char*>(map_);
  if (dirty) {
    // Schedule write-back of the touched pages (outward rounding: msync
    // needs a page-aligned start, and flushing a neighbor's bytes early is
    // harmless).
    const int64_t sync_begin = (byte_begin / page) * page;
    const int64_t sync_end = std::min(
        map_bytes_, ((byte_end + page - 1) / page) * page);
    if (msync(map_base + sync_begin,
              static_cast<size_t>(sync_end - sync_begin), MS_ASYNC) != 0) {
      return Status::IOError(ErrnoMessage("msync failed on", spill_path_));
    }
  }
  // Drop only pages fully inside the range: boundary pages may be under a
  // concurrent neighbor's pen. (Dropping never loses data for a shared file
  // mapping — it just unmaps this process's view — but inward rounding
  // avoids refault churn at block seams.)
  const int64_t drop_begin = ((byte_begin + page - 1) / page) * page;
  const int64_t drop_end = (byte_end / page) * page;
  if (drop_begin >= drop_end) return Status::OK();
  if (madvise(map_base + drop_begin,
              static_cast<size_t>(drop_end - drop_begin),
              MADV_DONTNEED) != 0) {
    return Status::IOError(ErrnoMessage("madvise failed on", spill_path_));
  }
  return Status::OK();
}

Status FactorSlab::DropResidency() const {
  if (backing_ == Backing::kInRam || map_ == nullptr) return Status::OK();
  if (backing_ == Backing::kPooled) return pool_->EvictRegion(region_);
  if (msync(map_, static_cast<size_t>(map_bytes_), MS_ASYNC) != 0) {
    return Status::IOError(ErrnoMessage("msync failed on", spill_path_));
  }
  if (madvise(map_, static_cast<size_t>(map_bytes_), MADV_DONTNEED) != 0) {
    return Status::IOError(ErrnoMessage("madvise failed on", spill_path_));
  }
  return Status::OK();
}

void FactorSlab::Resize(int64_t rows, int64_t cols) {
  PANE_CHECK(backing_ == Backing::kInRam)
      << "FactorSlab::Resize is in-RAM only; spilled slabs are created at "
         "final shape";
  dense_.Resize(rows, cols);
  rows_ = rows;
  cols_ = cols;
  base_ = dense_.data();
}

Result<DenseMatrix> FactorSlab::ToDense() const {
  DenseMatrix out(rows_, cols_);
  if (!empty()) std::copy(base_, base_ + rows_ * cols_, out.data());
  return out;
}

DenseMatrix FactorSlab::TakeDense() {
  PANE_CHECK(backing_ == Backing::kInRam)
      << "FactorSlab::TakeDense requires the in-RAM backing";
  DenseMatrix out = std::move(dense_);
  dense_ = DenseMatrix();
  rows_ = 0;
  cols_ = 0;
  base_ = nullptr;
  return out;
}

double FactorSlab::FrobeniusNorm() const {
  double sum = 0.0;
  const double* end = base_ + rows_ * cols_;
  for (const double* p = base_; p != end; ++p) sum += *p * *p;
  return std::sqrt(sum);
}

double FactorSlab::MaxAbsDiff(const DenseMatrix& other) const {
  PANE_CHECK(rows_ == other.rows() && cols_ == other.cols())
      << "MaxAbsDiff shape mismatch";
  double max_diff = 0.0;
  const int64_t total = rows_ * cols_;
  const double* o = other.data();
  for (int64_t i = 0; i < total; ++i) {
    max_diff = std::max(max_diff, std::abs(base_[i] - o[i]));
  }
  return max_diff;
}

double FactorSlab::MaxAbsDiff(const FactorSlab& other) const {
  PANE_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "MaxAbsDiff shape mismatch";
  double max_diff = 0.0;
  const int64_t total = rows_ * cols_;
  for (int64_t i = 0; i < total; ++i) {
    max_diff = std::max(max_diff, std::abs(base_[i] - other.base_[i]));
  }
  return max_diff;
}

void ReleaseRowsOrWarn(const FactorSlab& slab, int64_t row_begin,
                       int64_t row_end, bool dirty) {
  if (!slab.spilled()) return;
  const Status released = slab.ReleaseRowRange(row_begin, row_end, dirty);
  if (!released.ok()) {
    PANE_LOG(WARNING) << "slab release failed: " << released;
  }
}

void DropResidencyOrWarn(const FactorSlab& slab) {
  if (!slab.spilled()) return;
  const Status dropped = slab.DropResidency();
  if (!dropped.ok()) {
    PANE_LOG(WARNING) << "slab residency drop failed: " << dropped;
  }
}

FactorSlab::Backing ResolveSlabBacking(SlabPolicy policy,
                                       int64_t memory_budget_mb,
                                       int64_t resident_slab_bytes) {
  switch (policy) {
    case SlabPolicy::kInRam:
      return FactorSlab::Backing::kInRam;
    case SlabPolicy::kMmap:
      return FactorSlab::Backing::kMmap;
    case SlabPolicy::kAuto:
      break;
  }
  if (memory_budget_mb <= 0) return FactorSlab::Backing::kInRam;
  return resident_slab_bytes > (memory_budget_mb << 20)
             ? FactorSlab::Backing::kMmap
             : FactorSlab::Backing::kInRam;
}

}  // namespace pane
