// Row-major dense matrix of doubles. This is the workhorse container for the
// affinity matrices F', B' (n x d), the embedding blocks Xf, Xb (n x k/2),
// Y (d x k/2), and the residuals Sf, Sb (n x d) — i.e. everything the paper's
// O(nd)-memory analysis (Section 3.3) accounts for.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace pane {

class Rng;

/// \brief Non-owning read-only view of contiguous row-major data. The
/// bridge between DenseMatrix-shaped kernels (GEMM, RandSVD) and storage
/// that is not a DenseMatrix — notably FactorSlab row ranges, whether
/// RAM-resident or memory-mapped. Plain pointer + shape; the viewed storage
/// must outlive the view.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, int64_t rows, int64_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  const double* Row(int64_t i) const { return data_ + i * cols_; }
  const double* data() const { return data_; }

 private:
  const double* data_ = nullptr;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
};

/// \brief Contiguous row-major matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Allocates rows x cols, zero-initialized.
  DenseMatrix(int64_t rows, int64_t cols);

  /// Builds from a nested initializer list: DenseMatrix({{1,2},{3,4}}).
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double& operator()(int64_t i, int64_t j) { return data_[i * cols_ + j]; }
  double operator()(int64_t i, int64_t j) const { return data_[i * cols_ + j]; }

  /// Pointer to the start of row i (contiguous, cols() elements).
  double* Row(int64_t i) { return data_.data() + i * cols_; }
  const double* Row(int64_t i) const { return data_.data() + i * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Read-only view of the whole matrix (see ConstMatrixView).
  ConstMatrixView View() const {
    return ConstMatrixView(data_.data(), rows_, cols_);
  }

  /// Reshapes to rows x cols, discarding contents (zero-filled).
  void Resize(int64_t rows, int64_t cols);

  void Fill(double value);
  void SetZero() { Fill(0.0); }

  /// Fills with i.i.d. N(0, 1) entries (randomized SVD test matrices,
  /// random-initialization baselines).
  void FillGaussian(Rng* rng, double mean = 0.0, double stddev = 1.0);

  /// Fills with i.i.d. U[lo, hi) entries.
  void FillUniform(Rng* rng, double lo, double hi);

  /// Returns the transpose as a new matrix.
  DenseMatrix Transposed() const;

  /// Returns rows [row_begin, row_end) as a new (row_end-row_begin) x cols
  /// matrix (the F'[Vi] blocks of Algorithm 7).
  DenseMatrix RowBlock(int64_t row_begin, int64_t row_end) const;

  /// Returns columns [col_begin, col_end) as a new matrix (the Rr[:, Ri]
  /// blocks of Algorithm 6).
  DenseMatrix ColBlock(int64_t col_begin, int64_t col_end) const;

  /// Copies `block` into this matrix starting at (row_begin, col_begin).
  void SetBlock(int64_t row_begin, int64_t col_begin,
                const DenseMatrix& block);

  /// In-place scale: this *= s.
  void Scale(double s);

  /// In-place add: this += other (shapes must match).
  void Add(const DenseMatrix& other);

  /// In-place subtract: this -= other (shapes must match).
  void Sub(const DenseMatrix& other);

  /// In-place axpy: this += s * other (shapes must match).
  void Axpy(double s, const DenseMatrix& other);

  /// sqrt(sum of squared entries).
  double FrobeniusNorm() const;

  /// Sum of all entries.
  double Sum() const;

  /// max_ij |this - other| (shape-checked).
  double MaxAbsDiff(const DenseMatrix& other) const;

  /// Per-column sums, length cols().
  std::vector<double> ColumnSums() const;

  /// Per-row sums, length rows().
  std::vector<double> RowSums() const;

  /// Multi-line human-readable rendering (small matrices; tests/examples).
  std::string ToString(int max_rows = 10, int max_cols = 12) const;

  bool SameShape(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Identity matrix of order n.
  static DenseMatrix Identity(int64_t n);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pane
