#include "src/matrix/gemm.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/matrix/vector_ops.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Rows [begin, end) of C = A * B, i-k-j order (unit-stride inner loop).
// Templated over the operand types (DenseMatrix or ConstMatrixView) so the
// slab-streaming entry points share this exact kernel — one arithmetic
// path, bitwise-identical results whichever container the bytes live in.
template <typename MatA, typename MatB>
void GemmRows(const MatA& a, const MatB& b, DenseMatrix* c,
              int64_t begin, int64_t end) {
  const int64_t inner = a.cols();
  const int64_t k = b.cols();
  for (int64_t i = begin; i < end; ++i) {
    double* c_row = c->Row(i);
    std::fill(c_row, c_row + k, 0.0);
    const double* a_row = a.Row(i);
    for (int64_t p = 0; p < inner; ++p) {
      const double v = a_row[p];
      if (v == 0.0) continue;
      const double* b_row = b.Row(p);
      for (int64_t j = 0; j < k; ++j) c_row[j] += v * b_row[j];
    }
  }
}

// Rows [begin, end) of C = A * B^T via row-row dot products.
void GemmTransBRows(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                    int64_t begin, int64_t end) {
  const int64_t inner = a.cols();
  const int64_t k = b.rows();
  for (int64_t i = begin; i < end; ++i) {
    double* c_row = c->Row(i);
    const double* a_row = a.Row(i);
    for (int64_t j = 0; j < k; ++j) {
      c_row[j] = Dot(a_row, b.Row(j), inner);
    }
  }
}

void GemmTransBAddScaledRows(const DenseMatrix& a, const DenseMatrix& b,
                             double alpha, const DenseMatrix& c0, double beta,
                             DenseMatrix* c, int64_t begin, int64_t end) {
  const int64_t inner = a.cols();
  const int64_t k = b.rows();
  for (int64_t i = begin; i < end; ++i) {
    double* c_row = c->Row(i);
    const double* a_row = a.Row(i);
    const double* c0_row = c0.Row(i);
    for (int64_t j = 0; j < k; ++j) {
      c_row[j] = alpha * Dot(a_row, b.Row(j), inner) + beta * c0_row[j];
    }
  }
}

// Columns [col_begin, col_end) of C = A^T * B without materializing A^T:
// each row i of A contributes a_row[j] * b_row[:] to C row j, so for every
// output element the additions arrive in ascending i — the same order the
// transpose-then-GemmRows form produces (at row j, inner index p = i
// ascending), with the same skip-zero guard. C must be pre-zeroed.
template <typename MatA, typename MatB>
void GemmTransAStreamCols(const MatA& a, const MatB& b, DenseMatrix* c,
                          int64_t col_begin, int64_t col_end) {
  const int64_t n = a.rows();
  const int64_t k = b.cols();
  for (int64_t i = 0; i < n; ++i) {
    const double* a_row = a.Row(i);
    const double* b_row = b.Row(i);
    for (int64_t j = col_begin; j < col_end; ++j) {
      const double v = a_row[j];
      if (v == 0.0) continue;
      double* c_row = c->Row(j);
      for (int64_t l = 0; l < k; ++l) c_row[l] += v * b_row[l];
    }
  }
}

// Shared resize + serial-vs-row-parallel dispatch for every Gemm operand
// combination, so a tuning change (e.g. the single-row cutover) cannot
// diverge between the DenseMatrix and view entry points.
template <typename MatA, typename MatB>
void GemmDispatch(const MatA& a, const MatB& b, DenseMatrix* c,
                  ThreadPool* pool) {
  PANE_CHECK(a.cols() == b.rows()) << "Gemm shape mismatch";
  c->Resize(a.rows(), b.cols());
  if (pool == nullptr || pool->num_threads() == 1 || a.rows() == 1) {
    GemmRows(a, b, c, 0, a.rows());
    return;
  }
  ParallelFor(pool, 0, a.rows(), [&](int64_t begin, int64_t end) {
    GemmRows(a, b, c, begin, end);
  });
}

}  // namespace

void Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
          ThreadPool* pool) {
  PANE_CHECK(c != &a && c != &b) << "Gemm cannot run in place";
  GemmDispatch(a, b, c, pool);
}

void Gemm(ConstMatrixView a, const DenseMatrix& b, DenseMatrix* c,
          ThreadPool* pool) {
  GemmDispatch(a, b, c, pool);
}

void Gemm(const DenseMatrix& a, ConstMatrixView b, DenseMatrix* c,
          ThreadPool* pool) {
  GemmDispatch(a, b, c, pool);
}

void GemmTransA(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool) {
  PANE_CHECK(a.rows() == b.rows()) << "GemmTransA shape mismatch";
  // A^T is small x large in our call sites (A is tall-skinny); an explicit
  // transpose keeps the kernel at unit stride and costs O(A) extra memory,
  // negligible next to the n x d matrices around it.
  const DenseMatrix at = a.Transposed();
  Gemm(at, b, c, pool);
}

namespace {

// Shared driver for the streaming (no A^T materialization) forms.
template <typename MatA, typename MatB>
void GemmTransAStreamDispatch(const MatA& a, const MatB& b, DenseMatrix* c,
                              ThreadPool* pool) {
  PANE_CHECK(a.rows() == b.rows()) << "GemmTransA shape mismatch";
  c->Resize(a.cols(), b.cols());  // zero-filled by Resize
  if (pool == nullptr || pool->num_threads() == 1 || a.cols() == 1) {
    GemmTransAStreamCols(a, b, c, 0, a.cols());
    return;
  }
  // Output columns of A (= rows of C) are partitioned across workers; every
  // worker streams all rows of A but writes a disjoint C row range.
  ParallelFor(pool, 0, a.cols(), [&](int64_t begin, int64_t end) {
    GemmTransAStreamCols(a, b, c, begin, end);
  });
}

}  // namespace

void GemmTransA(ConstMatrixView a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool) {
  GemmTransAStreamDispatch(a, b, c, pool);
}

void GemmTransA(ConstMatrixView a, ConstMatrixView b, DenseMatrix* c,
                ThreadPool* pool) {
  GemmTransAStreamDispatch(a, b, c, pool);
}

void GemmTransA(const DenseMatrix& a, ConstMatrixView b, DenseMatrix* c,
                ThreadPool* pool) {
  PANE_CHECK(a.rows() == b.rows()) << "GemmTransA shape mismatch";
  const DenseMatrix at = a.Transposed();
  Gemm(at, b, c, pool);
}

void GemmTransB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool) {
  PANE_CHECK(a.cols() == b.cols()) << "GemmTransB shape mismatch";
  PANE_CHECK(c != &a && c != &b) << "GemmTransB cannot run in place";
  c->Resize(a.rows(), b.rows());
  if (pool == nullptr || pool->num_threads() == 1 || a.rows() == 1) {
    GemmTransBRows(a, b, c, 0, a.rows());
    return;
  }
  ParallelFor(pool, 0, a.rows(), [&](int64_t begin, int64_t end) {
    GemmTransBRows(a, b, c, begin, end);
  });
}

void GemmTransBAddScaled(const DenseMatrix& a, const DenseMatrix& b,
                         double alpha, const DenseMatrix& c0, double beta,
                         DenseMatrix* c, ThreadPool* pool) {
  PANE_CHECK(a.cols() == b.cols());
  PANE_CHECK(c0.rows() == a.rows() && c0.cols() == b.rows());
  PANE_CHECK(c != &a && c != &b && c != &c0);
  c->Resize(a.rows(), b.rows());
  if (pool == nullptr || pool->num_threads() == 1 || a.rows() == 1) {
    GemmTransBAddScaledRows(a, b, alpha, c0, beta, c, 0, a.rows());
    return;
  }
  ParallelFor(pool, 0, a.rows(), [&](int64_t begin, int64_t end) {
    GemmTransBAddScaledRows(a, b, alpha, c0, beta, c, begin, end);
  });
}

}  // namespace pane
