// Randomized truncated SVD (the RandSVD of Algorithm 3 / 7, citing
// Musco & Musco [30]). We implement randomized subspace (simultaneous power)
// iteration with Gaussian sketching and oversampling: for matrices whose
// spectrum decays — which the log-scaled affinity matrices F', B' do — its
// accuracy matches the block-Krylov variant at the iteration counts PANE
// uses, while needing one n x (k+p) panel instead of a q-times-wider one.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

class ThreadPool;

struct RandSvdOptions {
  /// Extra sketch columns beyond the k requested (accuracy buffer).
  int oversample = 8;
  /// Power-iteration count (the paper passes its t here).
  int power_iters = 6;
  /// Sketch seed; fixed default keeps runs reproducible.
  uint64_t seed = 0x7a9e5eedULL;
  /// Optional pool for the GEMMs inside the iteration.
  ThreadPool* pool = nullptr;
};

/// \brief Rank-k randomized SVD: a ~= U diag(sigma) V^T.
///
/// U is (a.rows x k) with orthonormal columns, sigma has k non-increasing
/// entries, V is (a.cols x k) with orthonormal columns. If k exceeds
/// min(rows, cols), the surplus columns of U and V are filled with random
/// orthonormal directions and sigma entries are 0 — so downstream consumers
/// (GreedyInit) can rely on U, V always having exactly k orthonormal
/// columns regardless of input rank.
///
/// The view form is the primary entry point: `a` is only ever streamed
/// row-wise (A Omega, A^T Q), so it accepts a FactorSlab view — including a
/// memory-mapped spill slab — without materializing A or A^T. The
/// DenseMatrix overload delegates to it, so both forms share one arithmetic
/// path and produce bitwise-identical factors.
Status RandSvd(ConstMatrixView a, int k, const RandSvdOptions& options,
               DenseMatrix* u, std::vector<double>* sigma, DenseMatrix* v);

Status RandSvd(const DenseMatrix& a, int k, const RandSvdOptions& options,
               DenseMatrix* u, std::vector<double>* sigma, DenseMatrix* v);

}  // namespace pane
