// Randomized SVD over a CSR matrix (sketching via SpMM instead of GEMM).
// Used by the baselines that factorize the adjacency / random-walk matrix
// directly (NRP, TADW, BANE), where densifying the n x n input is exactly
// the scalability failure the paper attributes to prior methods.
#pragma once

#include <vector>

#include "src/common/status.h"
#include "src/matrix/csr_matrix.h"
#include "src/matrix/rand_svd.h"

namespace pane {

/// \brief Rank-k randomized SVD of sparse `a`: a ~= U diag(sigma) V^T.
/// \param a_transposed A^T prebuilt by the caller (A^T Q products).
/// Semantics of the outputs match RandSvd().
Status RandSvdSparse(const CsrMatrix& a, const CsrMatrix& a_transposed, int k,
                     const RandSvdOptions& options, DenseMatrix* u,
                     std::vector<double>* sigma, DenseMatrix* v);

}  // namespace pane
