// Raw-pointer BLAS-1 kernels used on the hot paths of the CCD solver
// (Equations 13-20) and the Jacobi/QR routines. Kept free of bounds checks;
// callers own shape correctness.
#pragma once

#include <cstdint>

namespace pane {

/// sum_i x[i] * y[i]
double Dot(const double* x, const double* y, int64_t n);

/// y += a * x
void Axpy(double a, const double* x, double* y, int64_t n);

/// x *= a
void Scal(double a, double* x, int64_t n);

/// sqrt(sum x_i^2)
double Norm2(const double* x, int64_t n);

/// sum x_i^2
double SquaredNorm(const double* x, int64_t n);

/// dst = src (memcpy semantics)
void Copy(const double* src, double* dst, int64_t n);

/// Normalizes x to unit L2 norm; returns the original norm. A zero vector is
/// left unchanged and 0 is returned.
double NormalizeL2(double* x, int64_t n);

}  // namespace pane
