#include "src/matrix/rand_svd_sparse.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/matrix/gemm.h"
#include "src/matrix/qr.h"
#include "src/matrix/spmm.h"
#include "src/matrix/svd.h"

namespace pane {

Status RandSvdSparse(const CsrMatrix& a, const CsrMatrix& a_transposed, int k,
                     const RandSvdOptions& options, DenseMatrix* u,
                     std::vector<double>* sigma, DenseMatrix* v) {
  const int64_t n = a.rows();
  const int64_t d = a.cols();
  if (k <= 0) return Status::InvalidArgument("RandSvdSparse requires k > 0");
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("RandSvdSparse on an empty matrix");
  }
  if (a_transposed.rows() != d || a_transposed.cols() != n) {
    return Status::InvalidArgument("a_transposed shape mismatch");
  }

  const int64_t max_rank = std::min(n, d);
  const int64_t r =
      std::min<int64_t>(static_cast<int64_t>(k) + options.oversample, max_rank);
  Rng rng(options.seed);

  DenseMatrix omega(d, r);
  omega.FillGaussian(&rng);
  DenseMatrix y;
  SpMM(a, omega, &y, options.pool);
  DenseMatrix q;
  PANE_RETURN_NOT_OK(ThinQr(y, &q, nullptr, &rng));

  DenseMatrix z, qz;
  for (int iter = 0; iter < options.power_iters; ++iter) {
    SpMM(a_transposed, q, &z, options.pool);
    PANE_RETURN_NOT_OK(ThinQr(z, &qz, nullptr, &rng));
    SpMM(a, qz, &y, options.pool);
    PANE_RETURN_NOT_OK(ThinQr(y, &q, nullptr, &rng));
  }

  // B^T = A^T Q (d x r); its thin SVD gives the small core directly.
  DenseMatrix bt;
  SpMM(a_transposed, q, &bt, options.pool);
  DenseMatrix w;
  std::vector<double> sig;
  DenseMatrix zz;
  PANE_RETURN_NOT_OK(JacobiSvd(bt, &w, &sig, &zz));

  DenseMatrix u_full;
  Gemm(q, zz, &u_full, options.pool);

  const int64_t kept = std::min<int64_t>(k, r);
  u->Resize(n, k);
  v->Resize(d, k);
  sigma->assign(static_cast<size_t>(k), 0.0);
  for (int64_t j = 0; j < kept; ++j) {
    (*sigma)[static_cast<size_t>(j)] = sig[static_cast<size_t>(j)];
    for (int64_t i = 0; i < n; ++i) (*u)(i, j) = u_full(i, j);
    for (int64_t i = 0; i < d; ++i) (*v)(i, j) = w(i, j);
  }
  if (kept < k) {
    for (int64_t j = kept; j < k; ++j) {
      if (k <= n) {
        for (int64_t i = 0; i < n; ++i) (*u)(i, j) = rng.Gaussian();
      }
      if (k <= d) {
        for (int64_t i = 0; i < d; ++i) (*v)(i, j) = rng.Gaussian();
      }
    }
    if (k <= n) PANE_RETURN_NOT_OK(OrthonormalizeColumns(u, &rng));
    if (k <= d) PANE_RETURN_NOT_OK(OrthonormalizeColumns(v, &rng));
  }
  return Status::OK();
}

}  // namespace pane
