#include "src/matrix/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/string_util.h"

namespace pane {

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0) {
  PANE_CHECK(rows >= 0 && cols >= 0);
}

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int64_t>(rows.size());
  cols_ = rows_ > 0 ? static_cast<int64_t>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_ * cols_));
  for (const auto& r : rows) {
    PANE_CHECK(static_cast<int64_t>(r.size()) == cols_)
        << "ragged initializer list";
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

void DenseMatrix::Resize(int64_t rows, int64_t cols) {
  PANE_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows * cols), 0.0);
}

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void DenseMatrix::FillGaussian(Rng* rng, double mean, double stddev) {
  for (double& x : data_) x = rng->Gaussian(mean, stddev);
}

void DenseMatrix::FillUniform(Rng* rng, double lo, double hi) {
  for (double& x : data_) x = rng->UniformDouble(lo, hi);
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  constexpr int64_t kBlock = 64;  // cache-blocked transpose
  for (int64_t ib = 0; ib < rows_; ib += kBlock) {
    const int64_t imax = std::min(ib + kBlock, rows_);
    for (int64_t jb = 0; jb < cols_; jb += kBlock) {
      const int64_t jmax = std::min(jb + kBlock, cols_);
      for (int64_t i = ib; i < imax; ++i) {
        for (int64_t j = jb; j < jmax; ++j) {
          out(j, i) = (*this)(i, j);
        }
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::RowBlock(int64_t row_begin, int64_t row_end) const {
  PANE_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= rows_);
  DenseMatrix out(row_end - row_begin, cols_);
  std::copy(Row(row_begin), Row(row_begin) + (row_end - row_begin) * cols_,
            out.data());
  return out;
}

DenseMatrix DenseMatrix::ColBlock(int64_t col_begin, int64_t col_end) const {
  PANE_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= cols_);
  DenseMatrix out(rows_, col_end - col_begin);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* src = Row(i) + col_begin;
    std::copy(src, src + (col_end - col_begin), out.Row(i));
  }
  return out;
}

void DenseMatrix::SetBlock(int64_t row_begin, int64_t col_begin,
                           const DenseMatrix& block) {
  PANE_CHECK(row_begin + block.rows() <= rows_ &&
             col_begin + block.cols() <= cols_)
      << "block out of bounds";
  for (int64_t i = 0; i < block.rows(); ++i) {
    std::copy(block.Row(i), block.Row(i) + block.cols(),
              Row(row_begin + i) + col_begin);
  }
}

void DenseMatrix::Scale(double s) {
  for (double& x : data_) x *= s;
}

void DenseMatrix::Add(const DenseMatrix& other) {
  PANE_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::Sub(const DenseMatrix& other) {
  PANE_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void DenseMatrix::Axpy(double s, const DenseMatrix& other) {
  PANE_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double DenseMatrix::Sum() const {
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  PANE_CHECK(SameShape(other));
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

std::vector<double> DenseMatrix::ColumnSums() const {
  std::vector<double> sums(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = 0; j < cols_; ++j) sums[static_cast<size_t>(j)] += row[j];
  }
  return sums;
}

std::vector<double> DenseMatrix::RowSums() const {
  std::vector<double> sums(static_cast<size_t>(rows_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    double s = 0.0;
    for (int64_t j = 0; j < cols_; ++j) s += row[j];
    sums[static_cast<size_t>(i)] = s;
  }
  return sums;
}

std::string DenseMatrix::ToString(int max_rows, int max_cols) const {
  std::string out =
      StrFormat("DenseMatrix %lld x %lld\n", static_cast<long long>(rows_),
                static_cast<long long>(cols_));
  const int64_t r = std::min<int64_t>(rows_, max_rows);
  const int64_t c = std::min<int64_t>(cols_, max_cols);
  for (int64_t i = 0; i < r; ++i) {
    out += "  [";
    for (int64_t j = 0; j < c; ++j) {
      out += StrFormat("%9.4f", (*this)(i, j));
      if (j + 1 < c) out += " ";
    }
    if (c < cols_) out += " ...";
    out += "]\n";
  }
  if (r < rows_) out += "  ...\n";
  return out;
}

DenseMatrix DenseMatrix::Identity(int64_t n) {
  DenseMatrix out(n, n);
  for (int64_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

}  // namespace pane
