// Dense matrix-multiply kernels used by randomized SVD (Q^T A, A Omega),
// greedy initialization (Xf = U Sigma, Xb = B' Y), and residual formation
// (Sf = Xf Y^T - F'). Cache-aware loop orders, optionally row-parallel.
#pragma once

#include "src/matrix/dense_matrix.h"

namespace pane {

class ThreadPool;

/// C = A * B. C resized to (A.rows, B.cols).
void Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
          ThreadPool* pool = nullptr);

/// C = A^T * B. C resized to (A.cols, B.cols).
void GemmTransA(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool = nullptr);

/// C = A * B^T. C resized to (A.rows, B.rows).
void GemmTransB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool = nullptr);

/// C = alpha * A * B^T + beta * C0, with C0 given (C resized; used for
/// residuals Sf = Xf Y^T - F' in one pass: alpha=1, beta=-1, c0=F').
void GemmTransBAddScaled(const DenseMatrix& a, const DenseMatrix& b,
                         double alpha, const DenseMatrix& c0, double beta,
                         DenseMatrix* c, ThreadPool* pool = nullptr);

}  // namespace pane
