// Dense matrix-multiply kernels used by randomized SVD (Q^T A, A Omega),
// greedy initialization (Xf = U Sigma, Xb = B' Y), and residual formation
// (Sf = Xf Y^T - F'). Cache-aware loop orders, optionally row-parallel.
#pragma once

#include "src/matrix/dense_matrix.h"

namespace pane {

class ThreadPool;

/// C = A * B. C resized to (A.rows, B.cols).
void Gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
          ThreadPool* pool = nullptr);

/// View-A variant: streams rows of `a` (e.g. a FactorSlab row range)
/// through the same kernel — per-element arithmetic identical to the
/// DenseMatrix form.
void Gemm(ConstMatrixView a, const DenseMatrix& b, DenseMatrix* c,
          ThreadPool* pool = nullptr);

/// View-B variant (B = Q^T A with A a slab view).
void Gemm(const DenseMatrix& a, ConstMatrixView b, DenseMatrix* c,
          ThreadPool* pool = nullptr);

/// C = A^T * B. C resized to (A.cols, B.cols).
void GemmTransA(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool = nullptr);

/// View-A variant of C = A^T * B that streams rows of `a` instead of
/// materializing the d x n transpose — the accumulation order per output
/// element (ascending row index of A) matches the transpose-then-multiply
/// form bitwise, so RandSVD produces identical factors through either.
void GemmTransA(ConstMatrixView a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool = nullptr);

/// View-B variant of C = A^T * B (A is small and still transposed).
void GemmTransA(const DenseMatrix& a, ConstMatrixView b, DenseMatrix* c,
                ThreadPool* pool = nullptr);

/// Both-views variant of C = A^T * B (e.g. Y^T Y over an mmap-backed
/// artifact view); streams rows of A like the view-A form, same
/// accumulation order.
void GemmTransA(ConstMatrixView a, ConstMatrixView b, DenseMatrix* c,
                ThreadPool* pool = nullptr);

/// C = A * B^T. C resized to (A.rows, B.rows).
void GemmTransB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* c,
                ThreadPool* pool = nullptr);

/// C = alpha * A * B^T + beta * C0, with C0 given (C resized; used for
/// residuals Sf = Xf Y^T - F' in one pass: alpha=1, beta=-1, c0=F').
void GemmTransBAddScaled(const DenseMatrix& a, const DenseMatrix& b,
                         double alpha, const DenseMatrix& c0, double beta,
                         DenseMatrix* c, ThreadPool* pool = nullptr);

}  // namespace pane
