#include "src/matrix/vector_ops.h"

#include <cmath>
#include <cstring>

namespace pane {

double Dot(const double* x, const double* y, int64_t n) {
  // 4-way unrolled accumulation; with -O3 -march=native this vectorizes.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void Axpy(double a, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void Scal(double a, double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= a;
}

double SquaredNorm(const double* x, int64_t n) { return Dot(x, x, n); }

double Norm2(const double* x, int64_t n) { return std::sqrt(SquaredNorm(x, n)); }

void Copy(const double* src, double* dst, int64_t n) {
  std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(double));
}

double NormalizeL2(double* x, int64_t n) {
  const double norm = Norm2(x, n);
  if (norm > 0.0) Scal(1.0 / norm, x, n);
  return norm;
}

}  // namespace pane
