// BANE [47] (Yang et al., ICDM 2018): binarized attributed network
// embedding. Builds a Weisfeiler-Lehman-style smoothed topology+attribute
// proximity M = P_hat^s R (attributes diffused s hops over the normalized
// adjacency with self-loops), then learns a binary code matrix
// B in {-1, +1}^(n x k) and a real dictionary Z in R^(d x k) minimizing
// ||M - B Z^T||_F^2, by alternating a ridge solve for Z with a sign update
// for B (the discrete analogue of BANE's CCD). Link-prediction uses Hamming
// similarity over B — the convention the paper evaluates BANE under.
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

struct BaneOptions {
  int k = 128;
  int smoothing_hops = 2;  ///< WL diffusion depth s
  int iterations = 15;     ///< alternating sign/ridge rounds
  double ridge = 0.1;
  uint64_t seed = 11;
};

struct BaneEmbedding {
  /// n x k matrix with entries in {-1, +1}.
  DenseMatrix codes;
};

Result<BaneEmbedding> TrainBane(const AttributedGraph& graph,
                                const BaneOptions& options);

}  // namespace pane
