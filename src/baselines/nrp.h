// NRP [49] (Yang et al., PVLDB 2020): homogeneous network embedding via
// reweighted approximate personalized PageRank. The strongest non-attributed
// competitor in the paper's link-prediction table (Table 5) and the only
// baseline that also scales to the billion-edge datasets.
//
// Pipeline (faithful to the published algorithm's structure):
//   1. Low-rank sparse factorization of the random-walk matrix P ~= U V^T
//      (randomized SVD over the CSR adjacency).
//   2. Push the left factor through the PPR series:
//      Xf0 = alpha * sum_{l=1..t} (1-alpha)^l P^(l-1) U, Xb0 = V, so
//      Xf0 Xb0^T approximates the (self-loop-free) PPR matrix.
//   3. Degree reweighting: per-node non-negative scales w_f(u), w_b(v),
//      fitted by alternating closed-form updates so that row / column sums
//      of the reconstructed proximity match out- / in-degrees.
//
// NRP ignores attributes entirely; its role in the reproduction is the
// "pure topology" quality band.
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

struct NrpOptions {
  int k = 128;           ///< total budget; Xf and Xb get k/2 each
  double alpha = 0.15;   ///< PPR teleport probability
  int ppr_iterations = 10;
  int reweight_rounds = 10;
  double reweight_ridge = 1.0;
  uint64_t seed = 99;
};

struct NrpEmbedding {
  DenseMatrix xf;  // n x k/2, forward (source) embeddings
  DenseMatrix xb;  // n x k/2, backward (target) embeddings

  /// Directed-edge score Xf[u] . Xb[v] (the NRP link-prediction score).
  double Score(int64_t u, int64_t v) const;
};

/// \brief Trains NRP on the graph topology (attributes unused).
Result<NrpEmbedding> TrainNrp(const AttributedGraph& graph,
                              const NrpOptions& options);

}  // namespace pane
