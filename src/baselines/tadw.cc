#include "src/baselines/tadw.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/matrix/gemm.h"
#include "src/matrix/rand_svd_sparse.h"
#include "src/matrix/spmm.h"
#include "src/matrix/svd.h"

namespace pane {

Result<TadwEmbedding> TrainTadw(const AttributedGraph& graph,
                                const TadwOptions& options) {
  if (options.k < 2 || options.k % 2 != 0) {
    return Status::InvalidArgument("TADW k must be even and >= 2");
  }
  if (options.als_iterations < 1) {
    return Status::InvalidArgument("TADW needs at least one ALS iteration");
  }
  const int64_t n = graph.num_nodes();
  if (n > options.max_nodes) {
    return Status::InvalidArgument(StrFormat(
        "TADW materializes an n x n proximity matrix; n=%lld exceeds the "
        "%lld-node guard (this is the scalability wall Table 5 reports)",
        static_cast<long long>(n), static_cast<long long>(options.max_nodes)));
  }
  const int h = options.k / 2;
  Rng rng(options.seed);

  // M = (P + P^2) / 2, densified.
  const CsrMatrix p = graph.RandomWalkMatrix();
  DenseMatrix m = p.ToDense();
  {
    DenseMatrix p2;
    SpMM(p, m, &p2);
    m.Add(p2);
    m.Scale(0.5);
  }

  // Reduced text features T (text_dim x n): top singular directions of R.
  DenseMatrix t;
  {
    const int text_dim = static_cast<int>(
        std::min<int64_t>(options.text_dim,
                          std::min(n, graph.num_attributes())));
    const CsrMatrix& r = graph.attributes();
    const CsrMatrix rt = r.Transposed();
    RandSvdOptions svd_options;
    svd_options.power_iters = 4;
    svd_options.seed = options.seed;
    DenseMatrix ur, vr;
    std::vector<double> sigma;
    PANE_RETURN_NOT_OK(
        RandSvdSparse(r, rt, text_dim, svd_options, &ur, &sigma, &vr));
    for (int64_t i = 0; i < n; ++i) {
      double* row = ur.Row(i);
      for (int j = 0; j < text_dim; ++j) row[j] *= sigma[static_cast<size_t>(j)];
    }
    t = ur.Transposed();  // text_dim x n
  }

  // Alternating ridge regression on ||M - W^T H T||^2 + ridge (||W||^2 +
  // ||H||^2). Both subproblems are linear least squares with closed forms.
  DenseMatrix w(h, n);
  w.FillGaussian(&rng, 0.0, 0.1);
  DenseMatrix ht(h, t.rows());
  ht.FillGaussian(&rng, 0.0, 0.1);

  DenseMatrix z;        // H T, h x n
  DenseMatrix wt;       // W^T, n x h
  for (int iter = 0; iter < options.als_iterations; ++iter) {
    // W step: W^T = M Z^T (Z Z^T + ridge I)^-1.
    Gemm(ht, t, &z);
    DenseMatrix gram, gram_inv;
    GemmTransB(z, z, &gram);
    PANE_RETURN_NOT_OK(InvertSymmetricPsd(gram, options.ridge, &gram_inv));
    DenseMatrix mzt;
    GemmTransB(m, z, &mzt);  // n x h
    Gemm(mzt, gram_inv, &wt);
    w = wt.Transposed();

    // H step: H = (W W^T + ridge I)^-1 (W M T^T) (T T^T + ridge I)^-1.
    DenseMatrix wgram, wgram_inv;
    GemmTransB(w, w, &wgram);
    PANE_RETURN_NOT_OK(InvertSymmetricPsd(wgram, options.ridge, &wgram_inv));
    DenseMatrix wm;
    Gemm(w, m, &wm);  // h x n
    DenseMatrix wmtt;
    GemmTransB(wm, t, &wmtt);  // h x text_dim
    DenseMatrix tgram, tgram_inv;
    GemmTransB(t, t, &tgram);
    PANE_RETURN_NOT_OK(InvertSymmetricPsd(tgram, options.ridge, &tgram_inv));
    DenseMatrix left;
    Gemm(wgram_inv, wmtt, &left);
    Gemm(left, tgram_inv, &ht);
  }

  // Final features: [W^T ; (H T)^T] rows.
  Gemm(ht, t, &z);
  const DenseMatrix zt = z.Transposed();  // n x h
  TadwEmbedding embedding;
  embedding.features.Resize(n, 2 * static_cast<int64_t>(h));
  embedding.features.SetBlock(0, 0, wt);
  embedding.features.SetBlock(0, h, zt);
  return embedding;
}

}  // namespace pane
