// Neighbor-vote attribute inference, the stand-in for BLA [45] in Table 4.
// BLA is a (non-embedding) bidirectional link/attribute inference method;
// its role in the paper is a pure-inference baseline scored on held-out
// attribute entries. This implementation propagates the observed normalized
// attribute matrix over the symmetrized adjacency for a few hops with decay:
//   S = sum_{h=1..hops} decay^h * A_hat^h * Rr,
// and scores pair (v, r) by S[v, r] (plus the node's own observed entries).
#pragma once

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

struct BlaLikeOptions {
  int hops = 2;
  double decay = 0.5;
  /// Weight of the node's own (training) attribute row in the score.
  double self_weight = 1.0;
};

struct BlaLikeModel {
  /// n x d dense score matrix.
  DenseMatrix scores;

  double Score(int64_t v, int64_t r) const { return scores(v, r); }
};

/// \brief Builds the propagation scores from the *training* graph.
Result<BlaLikeModel> TrainBlaLike(const AttributedGraph& graph,
                                  const BlaLikeOptions& options);

}  // namespace pane
