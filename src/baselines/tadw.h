// TADW [44] (Yang et al., IJCAI 2015): text-associated DeepWalk. Factorizes
// the second-order proximity M = (P + P^2) / 2 as M ~= W^T H T, where T is a
// reduced text-feature matrix (SVD of the attribute matrix), by alternating
// ridge-regression updates of W and H. The embedding of node v is the
// concatenation [W[:, v] ; (H T)[:, v]].
//
// Like the original, this densifies an n x n proximity matrix — the paper's
// prototypical "fails beyond small graphs" baseline — so TrainTadw refuses
// graphs beyond a node cap instead of exhausting memory (exactly the
// behaviour Table 5 / Figure 3 report as "did not finish").
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

struct TadwOptions {
  int k = 128;              ///< final embedding dim (two k/2 halves)
  int text_dim = 64;        ///< reduced attribute dimension (paper: 200)
  int als_iterations = 10;  ///< alternating minimization rounds
  double ridge = 0.2;       ///< Tikhonov weight (paper's lambda)
  int64_t max_nodes = 20000;  ///< densification guard
  uint64_t seed = 3;
};

struct TadwEmbedding {
  /// n x k node features: [W^T, (H T)^T].
  DenseMatrix features;
};

Result<TadwEmbedding> TrainTadw(const AttributedGraph& graph,
                                const TadwOptions& options);

}  // namespace pane
