#include "src/baselines/bane.h"

#include <vector>

#include "src/common/random.h"
#include "src/matrix/gemm.h"
#include "src/matrix/spmm.h"
#include "src/matrix/svd.h"

namespace pane {
namespace {

// P_hat = (D + I)^-1 (A + I): row-normalized adjacency with self-loops, the
// standard WL / GCN smoothing operator.
CsrMatrix SmoothingOperator(const AttributedGraph& graph) {
  const int64_t n = graph.num_nodes();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(graph.num_edges() + n));
  for (int64_t u = 0; u < n; ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      triplets.push_back(Triplet{u, row.cols[p], 1.0});
    }
    triplets.push_back(Triplet{u, u, 1.0});
  }
  return CsrMatrix::FromTriplets(n, n, triplets).ValueOrDie().RowNormalized();
}

}  // namespace

Result<BaneEmbedding> TrainBane(const AttributedGraph& graph,
                                const BaneOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("BANE k must be >= 1");
  if (options.smoothing_hops < 0) {
    return Status::InvalidArgument("smoothing_hops must be >= 0");
  }
  const int64_t n = graph.num_nodes();
  const int64_t d = graph.num_attributes();
  const int k = options.k;
  Rng rng(options.seed);

  // M = P_hat^s * Rr: attributes diffused over the smoothed topology.
  const CsrMatrix p_hat = SmoothingOperator(graph);
  DenseMatrix m = graph.attributes().RowNormalized().ToDense();
  DenseMatrix next;
  for (int s = 0; s < options.smoothing_hops; ++s) {
    SpMM(p_hat, m, &next);
    std::swap(m, next);
  }

  // Alternating minimization of ||M - B Z^T||^2:
  //   Z step: ridge regression  Z = M^T B (B^T B + ridge I)^-1;
  //   B step: sign update       B = sign(M Z)   (0 -> +1).
  BaneEmbedding embedding;
  embedding.codes.Resize(n, k);
  for (int64_t i = 0; i < n; ++i) {
    double* row = embedding.codes.Row(i);
    for (int j = 0; j < k; ++j) row[j] = rng.Bernoulli(0.5) ? 1.0 : -1.0;
  }

  DenseMatrix z(d, k);
  for (int iter = 0; iter < options.iterations; ++iter) {
    DenseMatrix gram, gram_inv;
    GemmTransA(embedding.codes, embedding.codes, &gram);  // k x k
    PANE_RETURN_NOT_OK(InvertSymmetricPsd(gram, options.ridge, &gram_inv));
    DenseMatrix mtb;
    GemmTransA(m, embedding.codes, &mtb);  // d x k
    Gemm(mtb, gram_inv, &z);

    DenseMatrix mz;
    Gemm(m, z, &mz);  // n x k
    for (int64_t i = 0; i < n; ++i) {
      double* row = embedding.codes.Row(i);
      const double* mz_row = mz.Row(i);
      for (int j = 0; j < k; ++j) row[j] = mz_row[j] >= 0.0 ? 1.0 : -1.0;
    }
  }
  return embedding;
}

}  // namespace pane
