#include "src/baselines/lqanr.h"

#include <cmath>
#include <vector>

#include "src/matrix/gemm.h"
#include "src/matrix/rand_svd.h"
#include "src/matrix/spmm.h"
#include "src/matrix/svd.h"

namespace pane {
namespace {

CsrMatrix SmoothingOperator(const AttributedGraph& graph) {
  const int64_t n = graph.num_nodes();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(graph.num_edges() + n));
  for (int64_t u = 0; u < n; ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      triplets.push_back(Triplet{u, row.cols[p], 1.0});
    }
    triplets.push_back(Triplet{u, u, 1.0});
  }
  return CsrMatrix::FromTriplets(n, n, triplets).ValueOrDie().RowNormalized();
}

// Quantizes in place to step * {-grid .. grid}; returns mean |error|.
double Quantize(DenseMatrix* x, double step, int64_t grid) {
  double err = 0.0;
  for (int64_t i = 0; i < x->rows(); ++i) {
    double* row = x->Row(i);
    for (int64_t j = 0; j < x->cols(); ++j) {
      double q = std::round(row[j] / step);
      q = std::max<double>(-static_cast<double>(grid),
                           std::min<double>(static_cast<double>(grid), q));
      const double v = q * step;
      err += std::fabs(v - row[j]);
      row[j] = v;
    }
  }
  return err / static_cast<double>(x->size());
}

}  // namespace

Result<LqanrEmbedding> TrainLqanr(const AttributedGraph& graph,
                                  const LqanrOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("LQANR k must be >= 1");
  if (options.bit_width < 1 || options.bit_width > 8) {
    return Status::InvalidArgument("bit_width must be in [1, 8]");
  }
  const int64_t n = graph.num_nodes();
  const int64_t grid = int64_t{1} << options.bit_width;

  // Smoothed proximity M = P_hat^s Rr, then rank-k factorization for the
  // real-valued starting point.
  const CsrMatrix p_hat = SmoothingOperator(graph);
  DenseMatrix m = graph.attributes().RowNormalized().ToDense();
  DenseMatrix next;
  for (int s = 0; s < options.smoothing_hops; ++s) {
    SpMM(p_hat, m, &next);
    std::swap(m, next);
  }

  RandSvdOptions svd_options;
  svd_options.power_iters = 4;
  svd_options.seed = options.seed;
  DenseMatrix u, v;
  std::vector<double> sigma;
  const int rank = static_cast<int>(
      std::min<int64_t>(options.k, std::min(n, graph.num_attributes())));
  PANE_RETURN_NOT_OK(RandSvd(m, rank, svd_options, &u, &sigma, &v));
  DenseMatrix x(n, options.k);
  for (int64_t i = 0; i < n; ++i) {
    double* row = x.Row(i);
    for (int j = 0; j < rank; ++j) {
      row[j] = u(i, j) * sigma[static_cast<size_t>(j)];
    }
  }

  // Pick the step from the value spread, then alternate: quantize X, re-fit
  // the real X against M through the dictionary V, re-quantize. Each round
  // pulls the continuous solution toward representable points.
  double max_abs = 0.0;
  for (int64_t i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (int64_t j = 0; j < x.cols(); ++j) {
      max_abs = std::max(max_abs, std::fabs(row[j]));
    }
  }
  LqanrEmbedding embedding;
  embedding.step = max_abs > 0.0 ? max_abs / static_cast<double>(grid) : 1.0;

  DenseMatrix dictionary = v;  // d x rank
  for (int iter = 0; iter < options.refine_iterations; ++iter) {
    Quantize(&x, embedding.step, grid);
    // Re-fit dictionary: ridge solve of min_V ||M - X[:, :rank] V^T||^2.
    DenseMatrix x_head = x.ColBlock(0, rank);
    DenseMatrix gram, gram_inv;
    GemmTransA(x_head, x_head, &gram);
    PANE_RETURN_NOT_OK(InvertSymmetricPsd(gram, 1e-3, &gram_inv));
    DenseMatrix mtx;
    GemmTransA(m, x_head, &mtx);  // d x rank
    Gemm(mtx, gram_inv, &dictionary);
    // Re-fit X: min_X ||M - X V^T||^2 (V columns near-orthogonal).
    DenseMatrix vgram, vgram_inv;
    GemmTransA(dictionary, dictionary, &vgram);
    PANE_RETURN_NOT_OK(InvertSymmetricPsd(vgram, 1e-3, &vgram_inv));
    DenseMatrix mv;
    Gemm(m, dictionary, &mv);  // n x rank
    DenseMatrix x_new;
    Gemm(mv, vgram_inv, &x_new);
    for (int64_t i = 0; i < n; ++i) {
      double* row = x.Row(i);
      const double* src = x_new.Row(i);
      for (int j = 0; j < rank; ++j) row[j] = src[j];
    }
  }
  Quantize(&x, embedding.step, grid);
  embedding.features = std::move(x);
  return embedding;
}

}  // namespace pane
