#include "src/baselines/nrp.h"

#include <algorithm>
#include <cmath>

#include "src/matrix/rand_svd_sparse.h"
#include "src/matrix/spmm.h"
#include "src/matrix/vector_ops.h"

namespace pane {

double NrpEmbedding::Score(int64_t u, int64_t v) const {
  return Dot(xf.Row(u), xb.Row(v), xf.cols());
}

Result<NrpEmbedding> TrainNrp(const AttributedGraph& graph,
                              const NrpOptions& options) {
  if (options.k < 2 || options.k % 2 != 0) {
    return Status::InvalidArgument("NRP k must be even and >= 2");
  }
  const int h = options.k / 2;
  const int64_t n = graph.num_nodes();
  const CsrMatrix p = graph.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();

  // Step 1: P ~= U diag(sigma) V^T.
  RandSvdOptions svd_options;
  svd_options.power_iters = 4;
  svd_options.seed = options.seed;
  DenseMatrix u_factor, v_factor;
  std::vector<double> sigma;
  PANE_RETURN_NOT_OK(
      RandSvdSparse(p, pt, h, svd_options, &u_factor, &sigma, &v_factor));
  // Fold singular values into the left factor: P ~= (U Sigma) V^T.
  for (int64_t i = 0; i < n; ++i) {
    double* row = u_factor.Row(i);
    for (int j = 0; j < h; ++j) row[j] *= sigma[static_cast<size_t>(j)];
  }

  // Step 2: PPR series (skipping the l = 0 self-loop term):
  //   Pi ~= alpha * sum_{l>=1} (1-alpha)^l P^l
  //      ~= [alpha * sum_{l>=1} (1-alpha)^l P^(l-1) (U Sigma)] V^T.
  NrpEmbedding embedding;
  {
    DenseMatrix term = u_factor;  // (1-alpha)^l P^(l-1) (U Sigma), l = 1
    term.Scale(1.0 - options.alpha);
    embedding.xf.Resize(n, h);
    embedding.xf.Axpy(options.alpha, term);
    DenseMatrix next;
    for (int l = 2; l <= options.ppr_iterations; ++l) {
      SpMMAddScaled(p, term, 1.0 - options.alpha, term, 0.0, &next);
      std::swap(term, next);
      embedding.xf.Axpy(options.alpha, term);
    }
  }
  embedding.xb = v_factor;

  // Step 3: degree reweighting. With row sums
  //   s_b = sum_v w_b(v) Xb[v],  c_u = Xf[u] . s_b,
  // minimizing (w_f(u) c_u - dout(u))^2 + ridge * w_f(u)^2 gives
  //   w_f(u) = max(0, dout(u) c_u / (c_u^2 + ridge)), and symmetrically for
  // w_b with in-degrees. Alternate a few rounds, then bake the scales in.
  const std::vector<int64_t> out_deg = graph.OutDegrees();
  const std::vector<int64_t> in_deg = graph.InDegrees();
  std::vector<double> wf(static_cast<size_t>(n), 1.0);
  std::vector<double> wb(static_cast<size_t>(n), 1.0);
  std::vector<double> sum_b(static_cast<size_t>(h));
  std::vector<double> sum_f(static_cast<size_t>(h));
  for (int round = 0; round < options.reweight_rounds; ++round) {
    std::fill(sum_b.begin(), sum_b.end(), 0.0);
    for (int64_t v = 0; v < n; ++v) {
      Axpy(wb[static_cast<size_t>(v)], embedding.xb.Row(v), sum_b.data(), h);
    }
    for (int64_t u = 0; u < n; ++u) {
      const double c = Dot(embedding.xf.Row(u), sum_b.data(), h);
      wf[static_cast<size_t>(u)] = std::max(
          0.0, static_cast<double>(out_deg[static_cast<size_t>(u)]) * c /
                   (c * c + options.reweight_ridge));
    }
    std::fill(sum_f.begin(), sum_f.end(), 0.0);
    for (int64_t u = 0; u < n; ++u) {
      Axpy(wf[static_cast<size_t>(u)], embedding.xf.Row(u), sum_f.data(), h);
    }
    for (int64_t v = 0; v < n; ++v) {
      const double c = Dot(embedding.xb.Row(v), sum_f.data(), h);
      wb[static_cast<size_t>(v)] = std::max(
          0.0, static_cast<double>(in_deg[static_cast<size_t>(v)]) * c /
                   (c * c + options.reweight_ridge));
    }
  }
  for (int64_t u = 0; u < n; ++u) {
    // sqrt keeps the reconstructed proximity scale while avoiding zeroing
    // rows whose fitted weight collapsed.
    const double sf = std::sqrt(std::max(wf[static_cast<size_t>(u)], 1e-6));
    const double sb = std::sqrt(std::max(wb[static_cast<size_t>(u)], 1e-6));
    Scal(sf, embedding.xf.Row(u), h);
    Scal(sb, embedding.xb.Row(u), h);
  }
  return embedding;
}

}  // namespace pane
