#include "src/baselines/bla_like.h"

#include <vector>

#include "src/matrix/spmm.h"

namespace pane {

Result<BlaLikeModel> TrainBlaLike(const AttributedGraph& graph,
                                  const BlaLikeOptions& options) {
  if (options.hops < 1) return Status::InvalidArgument("hops must be >= 1");
  if (options.decay <= 0.0 || options.decay > 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1]");
  }
  const int64_t n = graph.num_nodes();

  // Symmetrized row-normalized adjacency: votes flow along both edge
  // directions (BLA treats links as evidence regardless of orientation).
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(2 * graph.num_edges()));
  for (int64_t u = 0; u < n; ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      triplets.push_back(Triplet{u, row.cols[p], 1.0});
      triplets.push_back(Triplet{row.cols[p], u, 1.0});
    }
  }
  PANE_ASSIGN_OR_RETURN(CsrMatrix sym, CsrMatrix::FromTriplets(n, n, triplets));
  const CsrMatrix a_hat = sym.RowNormalized();

  const DenseMatrix rr = graph.attributes().RowNormalized().ToDense();
  BlaLikeModel model;
  model.scores.Resize(n, graph.num_attributes());
  model.scores.Axpy(options.self_weight, rr);

  DenseMatrix term = rr;
  DenseMatrix next;
  double weight = 1.0;
  for (int h = 1; h <= options.hops; ++h) {
    SpMM(a_hat, term, &next);
    std::swap(term, next);
    weight *= options.decay;
    model.scores.Axpy(weight, term);
  }
  return model;
}

}  // namespace pane
