// LQANR [46] (Yang et al., IJCAI 2019): low-bit quantized attributed
// network representation. Learns node features from a smoothed
// topology+attribute proximity (same WL diffusion family as BANE) and
// quantizes each embedding entry to the integer grid
// {-2^b, ..., -1, 0, 1, ..., 2^b} scaled by a learned per-matrix step —
// the space/accuracy trade-off knob between full-precision factorization
// and BANE's 1-bit codes.
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

struct LqanrOptions {
  int k = 128;
  int bit_width = 3;       ///< b: entries in {-2^b .. 2^b}
  int smoothing_hops = 2;
  int refine_iterations = 5;  ///< quantize / re-fit rounds
  uint64_t seed = 13;
};

struct LqanrEmbedding {
  /// n x k features: quantized integer grid times the learned step size.
  DenseMatrix features;
  double step = 0.0;  ///< quantization step actually used
};

Result<LqanrEmbedding> TrainLqanr(const AttributedGraph& graph,
                                  const LqanrOptions& options);

}  // namespace pane
