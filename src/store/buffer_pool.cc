#include "src/store/buffer_pool.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>

#include "src/common/sync.h"

namespace pane {
namespace store {
namespace {

int64_t SystemPageBytes() {
  static const int64_t bytes = sysconf(_SC_PAGESIZE);
  return bytes > 0 ? bytes : 4096;
}

int64_t RoundUpTo(int64_t value, int64_t multiple) {
  return ((value + multiple - 1) / multiple) * multiple;
}

}  // namespace

BufferPool::BufferPool(Options options)
    : budget_bytes_(options.budget_bytes),
      page_bytes_(RoundUpTo(std::max<int64_t>(options.page_bytes, 1),
                            SystemPageBytes())) {}

BufferPool::~BufferPool() = default;

Result<BufferPool::RegionId> BufferPool::Register(void* base, int64_t bytes) {
  if (base == nullptr || bytes <= 0) {
    return Status::InvalidArgument("buffer pool region must be non-empty");
  }
  if (reinterpret_cast<uintptr_t>(base) %
          static_cast<uintptr_t>(SystemPageBytes()) !=
      0) {
    return Status::InvalidArgument(
        "buffer pool region base is not page-aligned");
  }
  MutexLock lock(&mutex_);
  Region region;
  region.base = static_cast<char*>(base);
  region.bytes = bytes;
  region.num_pages = (bytes + page_bytes_ - 1) / page_bytes_;
  region.live = true;
  region.pins.assign(static_cast<size_t>(region.num_pages), 0);
  region.resident.assign(static_cast<size_t>(region.num_pages), 0);
  region.dirty.assign(static_cast<size_t>(region.num_pages), 0);
  region.referenced.assign(static_cast<size_t>(region.num_pages), 0);
  stats_.registered_bytes += bytes;
  // Reuse a dead slot if one exists so region ids stay small.
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (!regions_[i].live) {
      regions_[i] = std::move(region);
      return static_cast<RegionId>(i);
    }
  }
  regions_.push_back(std::move(region));
  return static_cast<RegionId>(regions_.size() - 1);
}

void BufferPool::Unregister(RegionId region_id) {
  MutexLock lock(&mutex_);
  if (region_id < 0 || region_id >= static_cast<RegionId>(regions_.size())) {
    return;
  }
  Region& region = regions_[static_cast<size_t>(region_id)];
  if (!region.live) return;
  for (int64_t p = 0; p < region.num_pages; ++p) {
    if (region.resident[static_cast<size_t>(p)]) {
      const int64_t begin = p * page_bytes_;
      stats_.resident_bytes -=
          std::min(page_bytes_, region.bytes - begin);
    }
  }
  stats_.registered_bytes -= region.bytes;
  region = Region{};  // live = false; slot reusable
}

Status BufferPool::CheckRange(const Region& region, int64_t begin,
                              int64_t end) const {
  if (!region.live) {
    return Status::InvalidArgument("buffer pool region is not registered");
  }
  if (begin < 0 || end < begin || end > region.bytes) {
    return Status::OutOfRange(
        "buffer pool range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") outside region of " +
        std::to_string(region.bytes) + " bytes");
  }
  return Status::OK();
}

Status BufferPool::Pin(RegionId region_id, int64_t begin, int64_t end) {
  MutexLock lock(&mutex_);
  if (region_id < 0 || region_id >= static_cast<RegionId>(regions_.size())) {
    return Status::InvalidArgument("unknown buffer pool region");
  }
  Region& region = regions_[static_cast<size_t>(region_id)];
  PANE_RETURN_NOT_OK(CheckRange(region, begin, end));
  if (begin == end) return Status::OK();
  const int64_t first = begin / page_bytes_;
  const int64_t last = (end - 1) / page_bytes_;
  for (int64_t p = first; p <= last; ++p) {
    const size_t i = static_cast<size_t>(p);
    region.pins[i] += 1;
    region.referenced[i] = 1;
    if (!region.resident[i]) {
      region.resident[i] = 1;
      const int64_t page_begin = p * page_bytes_;
      stats_.resident_bytes +=
          std::min(page_bytes_, region.bytes - page_begin);
    }
  }
  stats_.resident_peak_bytes =
      std::max(stats_.resident_peak_bytes, stats_.resident_bytes);
  EvictUntilWithinBudgetLocked();
  return Status::OK();
}

Status BufferPool::Unpin(RegionId region_id, int64_t begin, int64_t end,
                         bool dirty) {
  MutexLock lock(&mutex_);
  if (region_id < 0 || region_id >= static_cast<RegionId>(regions_.size())) {
    return Status::InvalidArgument("unknown buffer pool region");
  }
  Region& region = regions_[static_cast<size_t>(region_id)];
  PANE_RETURN_NOT_OK(CheckRange(region, begin, end));
  if (begin == end) return Status::OK();
  const int64_t first = begin / page_bytes_;
  const int64_t last = (end - 1) / page_bytes_;
  for (int64_t p = first; p <= last; ++p) {
    const size_t i = static_cast<size_t>(p);
    // Floor at zero: pipeline kernels release row ranges they populated
    // through flat pointers without a matching Pin.
    region.pins[i] = std::max(region.pins[i] - 1, 0);
    if (dirty) region.dirty[i] = 1;
    region.referenced[i] = 1;
    if (!region.resident[i]) {
      // A release after flat-pointer writes is the first time the ledger
      // hears about these pages; account them now.
      region.resident[i] = 1;
      const int64_t page_begin = p * page_bytes_;
      stats_.resident_bytes +=
          std::min(page_bytes_, region.bytes - page_begin);
    }
  }
  stats_.resident_peak_bytes =
      std::max(stats_.resident_peak_bytes, stats_.resident_bytes);
  EvictUntilWithinBudgetLocked();
  return Status::OK();
}

int64_t BufferPool::EvictPageLocked(Region& region, int64_t page) {
  const size_t i = static_cast<size_t>(page);
  const int64_t page_begin = page * page_bytes_;
  const int64_t len = std::min(page_bytes_, region.bytes - page_begin);
  char* addr = region.base + page_begin;
  if (region.dirty[i]) {
    // MS_ASYNC queues the dirty pages for the kernel's writeback path; the
    // backing file is a scratch spill, so durability is not the point —
    // releasing the PTEs without losing the data is.
    msync(addr, static_cast<size_t>(len), MS_ASYNC);
    stats_.writeback_pages += 1;
    region.dirty[i] = 0;
  }
  madvise(addr, static_cast<size_t>(len), MADV_DONTNEED);
  region.resident[i] = 0;
  region.referenced[i] = 0;
  stats_.resident_bytes -= len;
  stats_.evicted_pages += 1;
  return len;
}

void BufferPool::EvictUntilWithinBudgetLocked() {
  if (budget_bytes_ <= 0) return;
  if (regions_.empty()) return;
  // Clock sweep: a full pass that evicts nothing and clears no reference
  // bits means everything left is pinned — stop rather than spin.
  int64_t sweep_budget = 0;
  for (const Region& r : regions_) sweep_budget += r.live ? r.num_pages : 0;
  sweep_budget *= 2;  // each page may be visited twice (ref clear, then evict)
  while (stats_.resident_bytes > budget_bytes_ && sweep_budget > 0) {
    if (clock_region_ >= static_cast<int64_t>(regions_.size())) {
      clock_region_ = 0;
      clock_page_ = 0;
    }
    Region& region = regions_[static_cast<size_t>(clock_region_)];
    if (!region.live || clock_page_ >= region.num_pages) {
      ++clock_region_;
      clock_page_ = 0;
      continue;
    }
    const size_t i = static_cast<size_t>(clock_page_);
    if (region.resident[i] && region.pins[i] == 0) {
      if (region.referenced[i]) {
        region.referenced[i] = 0;  // second chance
      } else {
        EvictPageLocked(region, clock_page_);
      }
    }
    ++clock_page_;
    --sweep_budget;
  }
}

Status BufferPool::EvictRegion(RegionId region_id) {
  MutexLock lock(&mutex_);
  if (region_id < 0 || region_id >= static_cast<RegionId>(regions_.size())) {
    return Status::InvalidArgument("unknown buffer pool region");
  }
  Region& region = regions_[static_cast<size_t>(region_id)];
  if (!region.live) {
    return Status::InvalidArgument("buffer pool region is not registered");
  }
  for (int64_t p = 0; p < region.num_pages; ++p) {
    const size_t i = static_cast<size_t>(p);
    if (region.resident[i] && region.pins[i] == 0) {
      EvictPageLocked(region, p);
    }
  }
  return Status::OK();
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

}  // namespace store
}  // namespace pane
