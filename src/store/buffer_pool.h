// Pinning buffer pool over memory-mapped spill files.
//
// This is deliberately NOT a classic frame pool that stages pages into its
// own buffers: PANE's pipeline kernels address spilled factor slabs through
// raw flat pointers (FactorSlab::Row / data()), so any design that moves
// bytes out of the mapping would turn a stray flat access into silent
// garbage. Instead the pool is a residency ledger over registered MAP_SHARED
// mappings. "Eviction" is msync(MS_ASYNC) (if dirty) followed by
// MADV_DONTNEED — which only drops this process's page-table entries; the
// page cache remains the source of truth, so a later access through any
// pointer simply refaults the correct bytes. Correctness is therefore
// unconditional; the pool only decides *when* memory is given back.
//
// Compared to the flat spill path (whole-panel MADV_DONTNEED in
// ReleaseRowRange), the pool keeps pages resident until budget pressure
// actually demands otherwise, evicts at pool-page granularity with a clock
// (second-chance) policy, and floors pin counts at zero so kernels that
// release rows they never explicitly acquired keep working unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"

namespace pane {
namespace store {

class BufferPool {
 public:
  using RegionId = int64_t;

  struct Options {
    /// Target ceiling on resident bytes across all registered regions.
    /// <= 0 means unbounded (the pool only tracks, never evicts on Pin).
    int64_t budget_bytes = 0;
    /// Eviction granule; rounded up to a multiple of the system page size.
    int64_t page_bytes = 256 * 1024;
  };

  struct Stats {
    int64_t evicted_pages = 0;    ///< pool pages dropped via MADV_DONTNEED
    int64_t writeback_pages = 0;  ///< dirty pool pages flushed before drop
    int64_t resident_bytes = 0;   ///< current ledger estimate
    int64_t resident_peak_bytes = 0;
    int64_t registered_bytes = 0;
  };

  explicit BufferPool(Options options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers a MAP_SHARED mapping (`base` must be an mmap result, i.e.
  /// system-page aligned). The pool never unmaps it — the owner does.
  Result<RegionId> Register(void* base, int64_t bytes) PANE_EXCLUDES(mutex_);

  /// Forgets the region (dropping its resident accounting). Must be called
  /// before the owner munmaps.
  void Unregister(RegionId region) PANE_EXCLUDES(mutex_);

  /// Marks byte range [begin, end) resident and pinned; pinned pages are
  /// skipped by eviction. May evict unpinned pages elsewhere to honor the
  /// budget. Faulting is left to the caller's actual accesses.
  Status Pin(RegionId region, int64_t begin, int64_t end)
      PANE_EXCLUDES(mutex_);

  /// Drops one pin from each page of the range (floored at zero, so
  /// releasing rows that were never acquired is a valid no-op pin-wise),
  /// marks the range resident and — if `dirty` — in need of write-back
  /// before any future drop. Triggers eviction if over budget.
  Status Unpin(RegionId region, int64_t begin, int64_t end, bool dirty)
      PANE_EXCLUDES(mutex_);

  /// Immediately drops every unpinned page of the region (write-back first
  /// where dirty), regardless of budget. FactorSlab::DropResidency maps
  /// here.
  Status EvictRegion(RegionId region) PANE_EXCLUDES(mutex_);

  Stats stats() const PANE_EXCLUDES(mutex_);
  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t page_bytes() const { return page_bytes_; }

 private:
  struct Region {
    char* base = nullptr;
    int64_t bytes = 0;
    int64_t num_pages = 0;
    bool live = false;
    std::vector<int32_t> pins;     // per pool page
    std::vector<uint8_t> resident;
    std::vector<uint8_t> dirty;
    std::vector<uint8_t> referenced;  // clock second-chance bit
  };

  /// Clock sweep until resident_bytes_ <= budget or nothing evictable.
  void EvictUntilWithinBudgetLocked() PANE_REQUIRES(mutex_);
  /// Write back (if dirty) and drop one page. Returns bytes released.
  int64_t EvictPageLocked(Region& region, int64_t page) PANE_REQUIRES(mutex_);
  Status CheckRange(const Region& region, int64_t begin, int64_t end) const;

  const int64_t budget_bytes_;
  const int64_t page_bytes_;

  /// One capability guards the whole ledger: the region table (per-page pin
  /// counts, residency/dirty/reference bitmaps), the clock hand, and the
  /// stats. Eviction syscalls (msync / madvise) run under it too — the pool
  /// is a slow-path residency controller, never on the kernels' access path.
  mutable Mutex mutex_;
  std::vector<Region> regions_ PANE_GUARDED_BY(mutex_);
  int64_t clock_region_ PANE_GUARDED_BY(mutex_) = 0;
  int64_t clock_page_ PANE_GUARDED_BY(mutex_) = 0;
  Stats stats_ PANE_GUARDED_BY(mutex_);
};

}  // namespace store
}  // namespace pane
