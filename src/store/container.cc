#include "src/store/container.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "src/common/atomic_file.h"
#include "src/store/crc32c.h"

namespace pane {
namespace store {
namespace {

std::string HexCrc(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

bool IsValidDataPageType(uint8_t type) {
  return type >= static_cast<uint8_t>(PageType::kMeta) &&
         type <= static_cast<uint8_t>(PageType::kIvfList);
}

Status ValidatePageSize(uint32_t page_size, const std::string& context) {
  if (page_size < kMinPageSize || page_size > kMaxPageSize ||
      (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(
        context + ": page size " + std::to_string(page_size) +
        " is not a power of two in [" + std::to_string(kMinPageSize) + ", " +
        std::to_string(kMaxPageSize) + "]");
  }
  return Status::OK();
}

int64_t PagesFor(int64_t bytes, uint32_t page_size) {
  return (bytes + page_size - 1) / page_size;
}

/// CRC32C of a page whose on-disk image is `payload` followed by zero
/// padding to `page_size`. Extends the payload checksum through a shared
/// zero buffer instead of materializing the padded page.
uint32_t PageCrc(const char* payload, int64_t payload_bytes,
                 uint32_t page_size, const std::vector<char>& zeros) {
  uint32_t crc = Crc32c(payload, static_cast<size_t>(payload_bytes));
  const int64_t pad = static_cast<int64_t>(page_size) - payload_bytes;
  if (pad > 0) crc = Crc32c(zeros.data(), static_cast<size_t>(pad), crc);
  return crc;
}

}  // namespace

Status ContainerWriter::AddStream(const std::string& name, PageType type,
                                  const void* data, int64_t bytes) {
  if (name.empty() || name.size() > kMaxStreamNameLength) {
    return Status::InvalidArgument(
        "container stream name '" + name + "' must be 1.." +
        std::to_string(kMaxStreamNameLength) + " characters");
  }
  if (!IsValidDataPageType(static_cast<uint8_t>(type))) {
    return Status::InvalidArgument("container stream '" + name +
                                   "' has non-data page type " +
                                   std::to_string(static_cast<int>(type)));
  }
  if (bytes < 0) {
    return Status::InvalidArgument("container stream '" + name +
                                   "' has negative size");
  }
  if (bytes > 0 && data == nullptr) {
    return Status::InvalidArgument("container stream '" + name +
                                   "' is non-empty but has no data pointer");
  }
  for (const PendingStream& s : streams_) {
    if (s.name == name) {
      return Status::AlreadyExists("container stream '" + name +
                                   "' added twice");
    }
  }
  streams_.push_back(
      PendingStream{name, type, static_cast<const char*>(data), bytes});
  return Status::OK();
}

Status ContainerWriter::WriteTo(const std::string& path) const {
  PANE_RETURN_NOT_OK(ValidatePageSize(page_size_, "ContainerWriter"));
  if (stream_count() > MaxStreamsForPageSize(page_size_)) {
    return Status::InvalidArgument(
        "container holds " + std::to_string(stream_count()) +
        " streams; a superblock page of " + std::to_string(page_size_) +
        " bytes fits at most " +
        std::to_string(MaxStreamsForPageSize(page_size_)));
  }

  // Layout: [superblock][page table][stream 0 pages][stream 1 pages]...
  const int64_t entries_per_table_page = TableEntriesPerPage(page_size_);
  int64_t data_pages = 0;
  for (const PendingStream& s : streams_) {
    data_pages += PagesFor(s.bytes, page_size_);
  }
  const int64_t table_pages =
      (data_pages + entries_per_table_page - 1) / entries_per_table_page;
  const int64_t data_first = 1 + table_pages;
  const int64_t num_pages = data_first + data_pages;

  std::vector<StreamEntry> directory(streams_.size());
  std::vector<PageTableEntry> table(static_cast<size_t>(data_pages));
  const std::vector<char> zeros(page_size_, 0);

  int64_t next_page = data_first;
  for (size_t i = 0; i < streams_.size(); ++i) {
    const PendingStream& s = streams_[i];
    StreamEntry& entry = directory[i];
    std::memset(entry.name, 0, sizeof(entry.name));
    std::memcpy(entry.name, s.name.data(), s.name.size());
    entry.first_page = static_cast<uint64_t>(s.bytes > 0 ? next_page : 0);
    entry.page_count = static_cast<uint64_t>(PagesFor(s.bytes, page_size_));
    entry.payload_bytes = static_cast<uint64_t>(s.bytes);
    entry.type = static_cast<uint8_t>(s.type);
    for (int64_t p = 0; p < static_cast<int64_t>(entry.page_count); ++p) {
      const int64_t offset = p * page_size_;
      const int64_t payload =
          std::min<int64_t>(page_size_, s.bytes - offset);
      PageTableEntry& te = table[static_cast<size_t>(next_page - data_first)];
      te.crc = PageCrc(s.data + offset, payload, page_size_, zeros);
      te.type = static_cast<uint8_t>(s.type);
      ++next_page;
    }
  }

  PANE_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path));

  // Superblock page: header + stream directory, checksummed with the crc
  // field zeroed.
  std::vector<char> page(page_size_, 0);
  SuperblockHeader sb;
  sb.page_size = page_size_;
  sb.num_pages = static_cast<uint64_t>(num_pages);
  sb.page_table_first = 1;
  sb.page_table_pages = static_cast<uint64_t>(table_pages);
  sb.stream_count = static_cast<uint32_t>(streams_.size());
  sb.crc = 0;
  std::memcpy(page.data(), &sb, sizeof(sb));
  std::memcpy(page.data() + sizeof(sb), directory.data(),
              directory.size() * sizeof(StreamEntry));
  sb.crc = Crc32c(page.data(), page_size_);
  std::memcpy(page.data(), &sb, sizeof(sb));
  PANE_RETURN_NOT_OK(file.Append(page.data(), page_size_));

  // Page-table pages.
  for (int64_t tp = 0; tp < table_pages; ++tp) {
    std::fill(page.begin(), page.end(), 0);
    const int64_t first_entry = tp * entries_per_table_page;
    const int64_t count = std::min<int64_t>(entries_per_table_page,
                                            data_pages - first_entry);
    PageTablePageHeader header;
    header.crc = 0;
    header.entry_count = static_cast<uint32_t>(count);
    std::memcpy(page.data(), &header, sizeof(header));
    std::memcpy(page.data() + sizeof(header),
                table.data() + first_entry,
                static_cast<size_t>(count) * sizeof(PageTableEntry));
    header.crc = Crc32c(page.data(), page_size_);
    std::memcpy(page.data(), &header, sizeof(header));
    PANE_RETURN_NOT_OK(file.Append(page.data(), page_size_));
  }

  // Data pages: complete pages straight from the caller's buffer, the
  // zero-padded tail page through the scratch buffer.
  for (const PendingStream& s : streams_) {
    const int64_t full_bytes = (s.bytes / page_size_) * page_size_;
    if (full_bytes > 0) {
      PANE_RETURN_NOT_OK(file.Append(s.data, full_bytes));
    }
    const int64_t tail = s.bytes - full_bytes;
    if (tail > 0) {
      std::fill(page.begin(), page.end(), 0);
      std::memcpy(page.data(), s.data + full_bytes,
                  static_cast<size_t>(tail));
      PANE_RETURN_NOT_OK(file.Append(page.data(), page_size_));
    }
  }

  if (file.appended() != num_pages * page_size_) {
    return Status::Internal("container writer laid out " +
                            std::to_string(num_pages * page_size_) +
                            " bytes but wrote " +
                            std::to_string(file.appended()));
  }
  return file.Commit();
}

bool Container::PathIsContainer(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char bytes[8];
  if (!in.read(bytes, sizeof(bytes))) return false;
  return HasContainerMagic(bytes);
}

Result<Container> Container::Open(const std::string& path) {
  Container c;
  c.path_ = path;
  PANE_ASSIGN_OR_RETURN(c.map_, MappedFile::OpenReadOnly(path));
  const int64_t file_size = c.map_.size();
  if (file_size < static_cast<int64_t>(sizeof(SuperblockHeader))) {
    return Status::IOError("not a PANE container (only " +
                           std::to_string(file_size) + " bytes): " + path);
  }
  std::memcpy(&c.superblock_, c.map_.data(), sizeof(SuperblockHeader));
  const SuperblockHeader& sb = c.superblock_;
  if (sb.magic != kContainerMagic) {
    return Status::InvalidArgument("not a PANE container: " + path);
  }
  if (sb.version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported container format version " + std::to_string(sb.version) +
        " in " + path + " (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }
  PANE_RETURN_NOT_OK(ValidatePageSize(sb.page_size, path));
  const int64_t page_size = sb.page_size;
  if (file_size < page_size) {
    return Status::IOError("container " + path + " truncated: " +
                           std::to_string(file_size) +
                           " bytes is less than one page");
  }

  // Superblock checksum first: any flipped bit in page 0 — including in the
  // geometry fields the remaining checks rely on — reports as corruption,
  // not as a misleading structural error.
  {
    std::vector<char> page(static_cast<size_t>(page_size));
    std::memcpy(page.data(), c.map_.data(), page.size());
    SuperblockHeader scrubbed = sb;
    scrubbed.crc = 0;
    std::memcpy(page.data(), &scrubbed, sizeof(scrubbed));
    const uint32_t actual = Crc32c(page.data(), page.size());
    if (actual != sb.crc) {
      return Status::IOError("container superblock checksum mismatch in " +
                             path + ": expected " + HexCrc(sb.crc) + ", got " +
                             HexCrc(actual));
    }
  }

  const int64_t num_pages = static_cast<int64_t>(sb.num_pages);
  if (num_pages < 1 || file_size % page_size != 0 ||
      file_size / page_size != num_pages) {
    return Status::IOError(
        "container " + path + " is " + std::to_string(file_size) +
        " bytes but its superblock declares " + std::to_string(num_pages) +
        " pages of " + std::to_string(page_size) + " bytes (truncated?)");
  }
  const int64_t table_pages = static_cast<int64_t>(sb.page_table_pages);
  if (sb.page_table_first != 1 || table_pages < 0 ||
      1 + table_pages > num_pages) {
    return Status::IOError("container " + path +
                           " has an out-of-range page table");
  }
  c.data_first_ = 1 + table_pages;
  const int64_t data_pages = num_pages - c.data_first_;
  const int64_t entries_per_table_page = TableEntriesPerPage(sb.page_size);
  if ((data_pages + entries_per_table_page - 1) / entries_per_table_page !=
      table_pages) {
    return Status::IOError("container " + path + " declares " +
                           std::to_string(table_pages) +
                           " page-table pages for " +
                           std::to_string(data_pages) + " data pages");
  }
  if (static_cast<int64_t>(sb.stream_count) >
      MaxStreamsForPageSize(sb.page_size)) {
    return Status::IOError("container " + path + " declares " +
                           std::to_string(sb.stream_count) +
                           " streams, more than the superblock can hold");
  }

  // Page table: verify each table page's embedded checksum, then collect the
  // per-data-page entries.
  c.table_.resize(static_cast<size_t>(data_pages));
  std::vector<char> page(static_cast<size_t>(page_size));
  for (int64_t tp = 0; tp < table_pages; ++tp) {
    const char* raw = c.map_.data() + (1 + tp) * page_size;
    std::memcpy(page.data(), raw, page.size());
    PageTablePageHeader header;
    std::memcpy(&header, page.data(), sizeof(header));
    PageTablePageHeader scrubbed = header;
    scrubbed.crc = 0;
    std::memcpy(page.data(), &scrubbed, sizeof(scrubbed));
    const uint32_t actual = Crc32c(page.data(), page.size());
    if (actual != header.crc) {
      return Status::IOError("container page-table page " +
                             std::to_string(1 + tp) +
                             " checksum mismatch in " + path + ": expected " +
                             HexCrc(header.crc) + ", got " + HexCrc(actual));
    }
    const int64_t first_entry = tp * entries_per_table_page;
    const int64_t expected = std::min<int64_t>(entries_per_table_page,
                                               data_pages - first_entry);
    if (static_cast<int64_t>(header.entry_count) != expected) {
      return Status::IOError("container page-table page " +
                             std::to_string(1 + tp) + " in " + path +
                             " holds " + std::to_string(header.entry_count) +
                             " entries, expected " + std::to_string(expected));
    }
    std::memcpy(c.table_.data() + first_entry, raw + sizeof(header),
                static_cast<size_t>(expected) * sizeof(PageTableEntry));
  }

  // Stream directory: names, types, extents, per-page type agreement, and
  // mutual non-overlap.
  c.streams_.resize(sb.stream_count);
  std::memcpy(c.streams_.data(), c.map_.data() + sizeof(SuperblockHeader),
              static_cast<size_t>(sb.stream_count) * sizeof(StreamEntry));
  std::vector<std::pair<int64_t, int64_t>> extents;
  for (uint32_t i = 0; i < sb.stream_count; ++i) {
    const StreamEntry& entry = c.streams_[i];
    const size_t name_len = strnlen(entry.name, sizeof(entry.name));
    if (name_len == 0 || name_len > kMaxStreamNameLength) {
      return Status::IOError("container " + path + " stream " +
                             std::to_string(i) + " has a malformed name");
    }
    const std::string name(entry.name, name_len);
    if (!IsValidDataPageType(entry.type)) {
      return Status::IOError("container " + path + " stream '" + name +
                             "' has invalid page type " +
                             std::to_string(entry.type));
    }
    for (uint32_t j = 0; j < i; ++j) {
      if (std::strncmp(c.streams_[j].name, entry.name,
                       sizeof(entry.name)) == 0) {
        return Status::IOError("container " + path +
                               " has duplicate stream '" + name + "'");
      }
    }
    const int64_t first = static_cast<int64_t>(entry.first_page);
    const int64_t count = static_cast<int64_t>(entry.page_count);
    const int64_t payload = static_cast<int64_t>(entry.payload_bytes);
    if (count == 0) {
      if (payload != 0) {
        return Status::IOError("container " + path + " stream '" + name +
                               "' has payload bytes but no pages");
      }
      continue;
    }
    if (count > data_pages || first < c.data_first_ ||
        first > num_pages - count) {
      return Status::IOError("container " + path + " stream '" + name +
                             "' extent is out of range");
    }
    if (payload > count * page_size || payload <= (count - 1) * page_size) {
      return Status::IOError("container " + path + " stream '" + name +
                             "' payload size does not match its page count");
    }
    for (int64_t p = first; p < first + count; ++p) {
      if (c.table_[static_cast<size_t>(p - c.data_first_)].type !=
          entry.type) {
        return Status::IOError(
            "container " + path + " stream '" + name + "' page " +
            std::to_string(p) + " has mismatched type in the page table");
      }
    }
    extents.emplace_back(first, count);
  }
  std::sort(extents.begin(), extents.end());
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].first < extents[i - 1].first + extents[i - 1].second) {
      return Status::IOError("container " + path +
                             " has overlapping stream extents");
    }
  }

  c.verified_.assign(c.streams_.size(), 0);
  c.verify_mutex_ = std::make_unique<SharedMutex>();
  return c;
}

const StreamEntry* Container::Find(const std::string& name) const {
  if (name.size() > kMaxStreamNameLength) return nullptr;
  for (const StreamEntry& entry : streams_) {
    if (std::strncmp(entry.name, name.c_str(), sizeof(entry.name)) == 0) {
      return &entry;
    }
  }
  return nullptr;
}

Status Container::VerifyPageRange(int64_t first_page, int64_t page_count,
                                  const std::string& what) const {
  const int64_t page_size = superblock_.page_size;
  for (int64_t p = first_page; p < first_page + page_count; ++p) {
    const PageTableEntry& te = table_[static_cast<size_t>(p - data_first_)];
    const uint32_t actual =
        Crc32c(map_.data() + p * page_size, static_cast<size_t>(page_size));
    if (actual != te.crc) {
      return Status::IOError(
          "container page " + std::to_string(p) + " (" +
          PageTypeToString(static_cast<PageType>(te.type)) + ", " + what +
          ") checksum mismatch in " + path_ + ": expected " + HexCrc(te.crc) +
          ", got " + HexCrc(actual));
    }
  }
  return Status::OK();
}

Status Container::VerifyStream(int64_t index) const {
  {
    // Fast path: after warm-up every Read() lands here, so concurrent
    // readers only share the lock instead of serializing on it.
    ReaderMutexLock lock(verify_mutex_.get());
    if (verified_[static_cast<size_t>(index)]) return Status::OK();
  }
  WriterMutexLock lock(verify_mutex_.get());
  if (verified_[static_cast<size_t>(index)]) return Status::OK();
  const StreamEntry& entry = streams_[static_cast<size_t>(index)];
  PANE_RETURN_NOT_OK(VerifyPageRange(
      static_cast<int64_t>(entry.first_page),
      static_cast<int64_t>(entry.page_count),
      "stream '" + std::string(entry.name,
                               strnlen(entry.name, sizeof(entry.name))) +
          "'"));
  verified_[static_cast<size_t>(index)] = 1;
  return Status::OK();
}

Result<Container::StreamView> Container::Read(const std::string& name) const {
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (std::strncmp(streams_[i].name, name.c_str(),
                     sizeof(streams_[i].name)) != 0) {
      continue;
    }
    PANE_RETURN_NOT_OK(VerifyStream(static_cast<int64_t>(i)));
    return ViewOf(streams_[i]);
  }
  return Status::NotFound("container " + path_ + " has no stream '" + name +
                          "'");
}

Result<Container::StreamView> Container::Peek(const std::string& name) const {
  const StreamEntry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("container " + path_ + " has no stream '" + name +
                            "'");
  }
  return ViewOf(*entry);
}

Container::StreamView Container::ViewOf(const StreamEntry& entry) const {
  StreamView view;
  view.type = static_cast<PageType>(entry.type);
  view.bytes = static_cast<int64_t>(entry.payload_bytes);
  view.data = entry.page_count == 0
                  ? nullptr
                  : map_.data() + static_cast<int64_t>(entry.first_page) *
                                      superblock_.page_size;
  return view;
}

Status Container::VerifyAll() const {
  WriterMutexLock lock(verify_mutex_.get());
  PANE_RETURN_NOT_OK(VerifyPageRange(
      data_first_, static_cast<int64_t>(table_.size()), "full verify"));
  std::fill(verified_.begin(), verified_.end(), 1);
  return Status::OK();
}

}  // namespace store
}  // namespace pane
