#include "src/store/crc32c.h"

#include <cstring>

namespace pane {
namespace store {
namespace {

constexpr uint32_t kPolynomial = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
      }
      t[0][i] = crc;
    }
    // Slice tables: t[k][b] advances byte b through k extra zero bytes.
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t bytes, uint32_t crc) {
  const Tables& tab = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment, so the main loop's loads are
  // aligned on every architecture.
  while (bytes > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFFu];
    --bytes;
  }
  while (bytes >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    chunk ^= crc;  // little-endian: low 4 bytes fold into the running crc
    crc = tab.t[7][chunk & 0xFFu] ^ tab.t[6][(chunk >> 8) & 0xFFu] ^
          tab.t[5][(chunk >> 16) & 0xFFu] ^ tab.t[4][(chunk >> 24) & 0xFFu] ^
          tab.t[3][(chunk >> 32) & 0xFFu] ^ tab.t[2][(chunk >> 40) & 0xFFu] ^
          tab.t[1][(chunk >> 48) & 0xFFu] ^ tab.t[0][(chunk >> 56) & 0xFFu];
    p += 8;
    bytes -= 8;
  }
  while (bytes > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFFu];
    --bytes;
  }
  return ~crc;
}

}  // namespace store
}  // namespace pane
