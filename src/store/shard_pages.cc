#include "src/store/shard_pages.h"

#include <cstring>

namespace pane {
namespace store {
namespace {

// shard.meta layout (little-endian):
//   u32 meta_version | u8 has_attributes | u8 has_links | u16 reserved |
//   i64 shard_index | i64 shard_count | i64 num_nodes | i64 num_attributes |
//   i64 dim | i64 node_begin | i64 node_end | i64 attr_begin | i64 attr_end |
//   u32 method_len | method bytes
constexpr size_t kMaxMethodLength = 256;
constexpr int64_t kFixedMetaBytes = 4 + 4 + 9 * 8 + 4;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadPod(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

Status CheckRange(const char* what, int64_t begin, int64_t end, int64_t limit,
                  const std::string& path) {
  if (begin < 0 || end < begin || end > limit) {
    return Status::IOError("container " + path + " shard meta has a bad " +
                           what + " range [" + std::to_string(begin) + ", " +
                           std::to_string(end) + ") over " +
                           std::to_string(limit));
  }
  return Status::OK();
}

/// Fetches one matrix stream whose expected shape is fully determined by
/// the meta (rows may be 0, meaning the stream must be absent).
Status ResolveSlice(const Container& container, const std::string& name,
                    int64_t rows, int64_t cols, bool verify_payloads,
                    MatrixExtent* out) {
  if (rows == 0) {
    if (container.Contains(name)) {
      return Status::IOError("container " + container.path() + " stream '" +
                             name + "' exists but its shard range is empty");
    }
    *out = MatrixExtent{};
    return Status::OK();
  }
  Result<Container::StreamView> view_result =
      verify_payloads ? container.Read(name) : container.Peek(name);
  PANE_ASSIGN_OR_RETURN(Container::StreamView view, std::move(view_result));
  const int64_t expected_bytes =
      rows * cols * static_cast<int64_t>(sizeof(double));
  if (view.bytes != expected_bytes) {
    return Status::IOError(
        "container " + container.path() + " stream '" + name + "' holds " +
        std::to_string(view.bytes) + " bytes but its shard range needs " +
        std::to_string(expected_bytes));
  }
  out->data = reinterpret_cast<const double*>(view.data);
  out->rows = rows;
  out->cols = cols;
  return Status::OK();
}

}  // namespace

Status AppendShardStreams(const ShardExtents& shard, std::string* meta_buf,
                          ContainerWriter* writer) {
  if (meta_buf == nullptr || writer == nullptr) {
    return Status::InvalidArgument(
        "AppendShardStreams needs a meta buffer and a writer");
  }
  const ShardMeta& m = shard.meta;
  if (!shard.xf.present() || !shard.xb.present()) {
    return Status::InvalidArgument(
        "shard container needs the full xf and xb factors");
  }
  if (m.method.empty() || m.method.size() > kMaxMethodLength) {
    return Status::InvalidArgument("shard method name must be 1.." +
                                   std::to_string(kMaxMethodLength) +
                                   " characters");
  }
  if (m.shard_count <= 0 || m.shard_index < 0 ||
      m.shard_index >= m.shard_count) {
    return Status::InvalidArgument("shard index " +
                                   std::to_string(m.shard_index) +
                                   " outside 0.." +
                                   std::to_string(m.shard_count - 1));
  }
  if (shard.y.rows != m.attr_end - m.attr_begin ||
      shard.z.rows != m.node_end - m.node_begin) {
    return Status::InvalidArgument(
        "shard slice shapes disagree with the declared ranges");
  }

  meta_buf->clear();
  meta_buf->reserve(static_cast<size_t>(kFixedMetaBytes) + m.method.size());
  AppendPod<uint32_t>(meta_buf, kShardMetaVersion);
  AppendPod<uint8_t>(meta_buf, m.has_attributes ? 1 : 0);
  AppendPod<uint8_t>(meta_buf, m.has_links ? 1 : 0);
  AppendPod<uint16_t>(meta_buf, 0);
  AppendPod<int64_t>(meta_buf, m.shard_index);
  AppendPod<int64_t>(meta_buf, m.shard_count);
  AppendPod<int64_t>(meta_buf, m.num_nodes);
  AppendPod<int64_t>(meta_buf, m.num_attributes);
  AppendPod<int64_t>(meta_buf, m.dim);
  AppendPod<int64_t>(meta_buf, m.node_begin);
  AppendPod<int64_t>(meta_buf, m.node_end);
  AppendPod<int64_t>(meta_buf, m.attr_begin);
  AppendPod<int64_t>(meta_buf, m.attr_end);
  AppendPod<uint32_t>(meta_buf, static_cast<uint32_t>(m.method.size()));
  meta_buf->append(m.method);

  PANE_RETURN_NOT_OK(writer->AddStream(kShardMetaStream, PageType::kMeta,
                                       meta_buf->data(),
                                       static_cast<int64_t>(meta_buf->size())));
  PANE_RETURN_NOT_OK(writer->AddStream(kShardXfStream, PageType::kFactorMatrix,
                                       shard.xf.data,
                                       shard.xf.payload_bytes()));
  PANE_RETURN_NOT_OK(writer->AddStream(kShardXbStream, PageType::kFactorMatrix,
                                       shard.xb.data,
                                       shard.xb.payload_bytes()));
  if (shard.y.present()) {
    PANE_RETURN_NOT_OK(writer->AddStream(kShardYStream,
                                         PageType::kFactorMatrix,
                                         shard.y.data,
                                         shard.y.payload_bytes()));
  }
  if (shard.z.present()) {
    PANE_RETURN_NOT_OK(writer->AddStream(kShardZStream,
                                         PageType::kFactorMatrix,
                                         shard.z.data,
                                         shard.z.payload_bytes()));
  }
  return Status::OK();
}

Result<ShardExtents> ReadShardStreams(const Container& container,
                                      bool verify_payloads) {
  PANE_ASSIGN_OR_RETURN(Container::StreamView meta,
                        container.Read(kShardMetaStream));
  const std::string& path = container.path();
  if (meta.bytes < kFixedMetaBytes) {
    return Status::IOError("container " + path +
                           " shard meta stream is truncated");
  }
  const char* p = meta.data;
  const uint32_t meta_version = ReadPod<uint32_t>(p);
  p += 4;
  if (meta_version != kShardMetaVersion) {
    return Status::IOError("container " + path +
                           " has unsupported shard meta version " +
                           std::to_string(meta_version));
  }
  ShardExtents out;
  ShardMeta& m = out.meta;
  m.has_attributes = ReadPod<uint8_t>(p) != 0;
  m.has_links = ReadPod<uint8_t>(p + 1) != 0;
  p += 4;
  int64_t fields[9];
  for (int i = 0; i < 9; ++i) {
    fields[i] = ReadPod<int64_t>(p);
    p += 8;
  }
  m.shard_index = fields[0];
  m.shard_count = fields[1];
  m.num_nodes = fields[2];
  m.num_attributes = fields[3];
  m.dim = fields[4];
  m.node_begin = fields[5];
  m.node_end = fields[6];
  m.attr_begin = fields[7];
  m.attr_end = fields[8];
  const uint32_t method_len = ReadPod<uint32_t>(p);
  p += 4;
  if (method_len == 0 || method_len > kMaxMethodLength ||
      static_cast<int64_t>(method_len) != meta.bytes - kFixedMetaBytes) {
    return Status::IOError("container " + path +
                           " shard meta has a malformed method name");
  }
  m.method.assign(p, method_len);

  if (m.shard_count <= 0 || m.shard_index < 0 ||
      m.shard_index >= m.shard_count) {
    return Status::IOError("container " + path + " shard meta places shard " +
                           std::to_string(m.shard_index) + " outside 0.." +
                           std::to_string(m.shard_count - 1));
  }
  if (m.num_nodes <= 0 || m.dim <= 0 || m.num_attributes < 0) {
    return Status::IOError("container " + path +
                           " shard meta has non-positive global shapes");
  }
  PANE_RETURN_NOT_OK(CheckRange("node", m.node_begin, m.node_end,
                                m.num_nodes, path));
  PANE_RETURN_NOT_OK(CheckRange("attribute", m.attr_begin, m.attr_end,
                                m.num_attributes, path));

  PANE_RETURN_NOT_OK(ResolveSlice(container, kShardXfStream, m.num_nodes,
                                  m.dim, verify_payloads, &out.xf));
  PANE_RETURN_NOT_OK(ResolveSlice(container, kShardXbStream, m.num_nodes,
                                  m.dim, verify_payloads, &out.xb));
  PANE_RETURN_NOT_OK(ResolveSlice(container, kShardYStream,
                                  m.attr_end - m.attr_begin, m.dim,
                                  verify_payloads, &out.y));
  PANE_RETURN_NOT_OK(ResolveSlice(container, kShardZStream,
                                  m.node_end - m.node_begin, m.dim,
                                  verify_payloads, &out.z));
  return out;
}

}  // namespace store
}  // namespace pane
