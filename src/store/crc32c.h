// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every page of the artifact container. Chosen over plain
// CRC32 for its better error-detection spectrum on 4-byte-aligned payloads
// (the same reason iSCSI, ext4 metadata, RocksDB and LevelDB use it).
// Software slice-by-8 implementation: one table lookup per byte lane, eight
// bytes per iteration, ~1-2 GB/s — fast enough that verifying a mapped
// artifact is bandwidth-bound on the page cache, not the checksum.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pane {
namespace store {

/// \brief CRC32C of `data`, seeded with `crc` (0 for a fresh checksum).
/// Extending: Crc32c(b, nb, Crc32c(a, na)) == Crc32c(concat(a,b)).
uint32_t Crc32c(const void* data, size_t bytes, uint32_t crc = 0);

}  // namespace store
}  // namespace pane
