// Single-file artifact container: named byte streams packed into the paged,
// checksummed layout described in src/store/page.h.
//
//   ContainerWriter w;                       // or w(page_size)
//   w.AddStream("emb.y", PageType::kFactorMatrix, y.data(), y_bytes);
//   w.WriteTo("model.pane");                 // crash-safe: temp+fsync+rename
//
//   PANE_ASSIGN_OR_RETURN(Container c, Container::Open("model.pane"));
//   PANE_ASSIGN_OR_RETURN(auto y, c.ReadArray<double>("emb.y"));
//
// Open() maps the file and verifies the superblock and page table
// immediately; data-page checksums are verified lazily, once per stream, on
// first Read — so a server that only touches Y never faults (or checksums)
// the Xf/Xb pages. Call VerifyAll() for eager whole-file verification.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mmap_file.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/store/page.h"

namespace pane {
namespace store {

/// \brief Collects named streams (by pointer — the caller keeps the bytes
/// alive until WriteTo returns) and writes them as one container file.
class ContainerWriter {
 public:
  explicit ContainerWriter(uint32_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  /// Registers `bytes` bytes at `data` as stream `name`. The name must be
  /// unique, non-empty and at most kMaxStreamNameLength characters; `type`
  /// must be one of the data-page types (kMeta .. kIvfList).
  Status AddStream(const std::string& name, PageType type, const void* data,
                   int64_t bytes);

  int64_t stream_count() const { return static_cast<int64_t>(streams_.size()); }

  /// Lays out, checksums and atomically writes the container. The writer
  /// stays reusable (e.g. to write the same artifact to a second path).
  Status WriteTo(const std::string& path) const;

 private:
  struct PendingStream {
    std::string name;
    PageType type;
    const char* data;
    int64_t bytes;
  };

  uint32_t page_size_;
  std::vector<PendingStream> streams_;
};

/// \brief Read side: a memory-mapped container with verified structure and
/// lazily verified data pages. Thread-safe for concurrent Read calls.
class Container {
 public:
  /// Zero-copy view of one stream's payload. `data` points into the mapping
  /// and is page-aligned; it stays valid for the Container's lifetime.
  struct StreamView {
    const char* data = nullptr;
    int64_t bytes = 0;
    PageType type = PageType::kFree;
  };

  template <typename T>
  struct ArrayView {
    const T* data = nullptr;
    int64_t count = 0;
    PageType type = PageType::kFree;
  };

  Container(Container&&) = default;
  Container& operator=(Container&&) = default;

  /// Maps `path` and validates superblock, page table and stream directory
  /// (including their checksums). Data pages are not read yet.
  static Result<Container> Open(const std::string& path);

  /// True iff `bytes8` (at least 8 bytes) starts with the container magic.
  static bool HasContainerMagic(const void* bytes8) {
    uint64_t magic;
    std::memcpy(&magic, bytes8, sizeof(magic));
    return magic == kContainerMagic;
  }

  /// True iff the file exists and starts with the container magic. Never
  /// errors — short or unreadable files are simply not containers.
  static bool PathIsContainer(const std::string& path);

  bool Contains(const std::string& name) const { return Find(name) != nullptr; }

  /// Directory entry for `name`, or nullptr.
  const StreamEntry* Find(const std::string& name) const;

  /// Checksums the stream's pages (first call only) and returns its payload.
  Result<StreamView> Read(const std::string& name) const;

  /// Like Read but skips checksum verification. For consumers that must not
  /// fault pages they are not going to serve (e.g. an EmbeddingStore opened
  /// with verify_checksums=false pointing views at streams it may never
  /// touch); everything else should use Read.
  Result<StreamView> Peek(const std::string& name) const;

  /// Read + element-type check: payload size must be a multiple of sizeof(T).
  /// Alignment is guaranteed by page alignment of stream payloads.
  template <typename T>
  Result<ArrayView<T>> ReadArray(const std::string& name) const {
    PANE_ASSIGN_OR_RETURN(StreamView view, Read(name));
    if (view.bytes % static_cast<int64_t>(sizeof(T)) != 0) {
      return Status::IOError("container stream '" + name + "' in " + path_ +
                             " holds " + std::to_string(view.bytes) +
                             " bytes, not a multiple of element size " +
                             std::to_string(sizeof(T)));
    }
    return ArrayView<T>{reinterpret_cast<const T*>(view.data),
                        view.bytes / static_cast<int64_t>(sizeof(T)),
                        view.type};
  }

  /// Eagerly verifies every data page (streams and free pages alike), so a
  /// flipped bit anywhere in the file is reported even if no consumer ever
  /// reads that stream.
  Status VerifyAll() const;

  const std::string& path() const { return path_; }
  uint32_t page_size() const { return superblock_.page_size; }
  int64_t num_pages() const {
    return static_cast<int64_t>(superblock_.num_pages);
  }
  const std::vector<StreamEntry>& streams() const { return streams_; }

 private:
  Container() = default;

  StreamView ViewOf(const StreamEntry& entry) const;
  /// Verifies the pages of stream `index` against the page table, memoized.
  Status VerifyStream(int64_t index) const;
  Status VerifyPageRange(int64_t first_page, int64_t page_count,
                         const std::string& what) const;

  std::string path_;
  MappedFile map_;
  SuperblockHeader superblock_;
  int64_t data_first_ = 0;  // page id of the first data page
  std::vector<StreamEntry> streams_;
  std::vector<PageTableEntry> table_;  // one per data page
  // Lazily verified stream flags, guarded by *verify_mutex_: Read() callers
  // take a reader lock to check the memo (the read-mostly steady state) and
  // upgrade to the writer lock only to run the checksum pass once. The lock
  // lives behind a unique_ptr because Container must stay movable.
  mutable std::vector<uint8_t> verified_;
  mutable std::unique_ptr<SharedMutex> verify_mutex_;
};

}  // namespace store
}  // namespace pane
