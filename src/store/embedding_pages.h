// The NodeEmbedding artifact expressed as container streams — the glue both
// the producer side (src/api/node_embedding.cc, SaveContainer/Load dispatch)
// and the serving side (src/serve/embedding_store.cc) speak. Lives in
// src/store so neither layer has to link the other; matrices therefore cross
// this boundary as raw double extents and conventions as raw int8 codes (the
// api layer owns the LinkConvention / AttributeConvention enums).
//
// Streams:
//   emb.meta      (kMeta)          meta version, conventions, matrix shapes,
//                                  presence mask, method name
//   emb.features  (kFactorMatrix)  n x d row-major doubles, always present
//   emb.xf        (kFactorMatrix)  forward node factors, optional
//   emb.xb        (kFactorMatrix)  backward node factors, optional
//   emb.y         (kFactorMatrix)  attribute factor, optional
//
// Each matrix is its own stream, so a reader pays the page faults (and the
// checksum pass) only for the blocks it actually serves.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/store/container.h"

namespace pane {
namespace store {

inline constexpr char kEmbMetaStream[] = "emb.meta";
inline constexpr char kEmbFeaturesStream[] = "emb.features";
inline constexpr char kEmbXfStream[] = "emb.xf";
inline constexpr char kEmbXbStream[] = "emb.xb";
inline constexpr char kEmbYStream[] = "emb.y";

inline constexpr uint32_t kEmbeddingMetaVersion = 1;

/// A matrix as it crosses the store boundary: a borrowed row-major double
/// extent. rows == cols == 0 (data == nullptr) means "absent".
struct MatrixExtent {
  const double* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;

  bool present() const { return rows > 0 && cols > 0; }
  int64_t payload_bytes() const {
    return rows * cols * static_cast<int64_t>(sizeof(double));
  }
};

/// The embedding artifact, decoded from (or headed into) a container.
struct EmbeddingExtents {
  std::string method;
  int8_t link_convention = 0;
  int8_t attribute_convention = 0;
  MatrixExtent features;
  MatrixExtent xf;
  MatrixExtent xb;
  MatrixExtent y;
};

/// Serializes the meta stream into `meta_buf` and registers all streams on
/// `writer`. The caller keeps `meta_buf` and every matrix extent alive until
/// ContainerWriter::WriteTo returns (the writer stores pointers, not
/// copies). `features` must be present; xf/xb/y streams are added only when
/// present.
Status AppendEmbeddingStreams(const EmbeddingExtents& embedding,
                              std::string* meta_buf, ContainerWriter* writer);

/// Decodes and validates the embedding streams of an opened container:
/// meta version, presence mask vs. actual streams, and shape-vs-payload
/// agreement for every matrix. With `verify_payloads` the matrix pages are
/// checksummed now (Container::Read); without it they are only located
/// (Container::Peek), leaving faults and verification to the consumer.
Result<EmbeddingExtents> ReadEmbeddingStreams(const Container& container,
                                              bool verify_payloads);

/// True iff the container holds an embedding artifact (has emb.meta).
inline bool HasEmbeddingStreams(const Container& container) {
  return container.Contains(kEmbMetaStream);
}

}  // namespace store
}  // namespace pane
