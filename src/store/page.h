// On-disk vocabulary of the PANE artifact container (little-endian
// throughout, like every other PANE format). A container is one file of
// fixed-size pages:
//
//   page 0                superblock: format version, page size, stream
//                         directory (name -> page extent), own CRC32C
//   pages 1..T            page table: one 8-byte entry (type + CRC32C) per
//                         data page, each table page carrying its own CRC
//   pages T+1..num_pages  data pages: raw stream payload, no inline header
//
// Data pages deliberately carry no inline header: a stream's payload is a
// contiguous, page-aligned (hence 8-byte-aligned) byte range, which is what
// lets a memory-mapped reader hand out zero-copy double/float views and
// fault only the streams a consumer actually touches (serve Y without
// faulting Xf). Their type and checksum live in the page table instead.
// Every byte of the file is covered by exactly one CRC32C: data pages by
// their table entry, table pages and the superblock by an embedded checksum
// computed with that field zeroed — so a single flipped bit anywhere is
// detected at read time.
//
// Writers never update a container in place: the whole file is produced
// through AtomicFile (temp + fsync + rename), so a crashed save leaves the
// previous artifact intact.
#pragma once

#include <cstdint>
#include <cstring>

namespace pane {
namespace store {

// "PANECTN1": distinct from the NodeEmbedding ("PANENEB1") and legacy graph
// ("PANEGR01") magics so every loader can dispatch on the first 8 bytes.
inline constexpr uint64_t kContainerMagic = 0x50414E4543544E31ULL;

inline constexpr uint32_t kFormatVersion = 1;

/// Page size bounds. The default balances checksum granularity (a flipped
/// bit localizes to 64 KiB) against page-table overhead (8 bytes per page,
/// ~0.012%).
inline constexpr uint32_t kDefaultPageSize = 64 * 1024;
inline constexpr uint32_t kMinPageSize = 4 * 1024;
inline constexpr uint32_t kMaxPageSize = 16 * 1024 * 1024;

/// Typed pages. kSuperblock / kPageTable structure the container itself;
/// the rest tag what a data page holds so tooling can attribute corruption
/// and partial loads can skip whole extents by type.
enum class PageType : uint8_t {
  kFree = 0,          ///< allocated but unused (zero-filled)
  kSuperblock = 1,
  kPageTable = 2,
  kMeta = 3,          ///< serialized artifact metadata (shapes, conventions)
  kGraphCsr = 4,      ///< graph CSR arrays (indptr / indices / values)
  kFactorMatrix = 5,  ///< row-major double factor payload (features/xf/xb/y)
  kIvfList = 6,       ///< IVF index payload (centroids, members, offsets)
};

inline const char* PageTypeToString(PageType t) {
  switch (t) {
    case PageType::kFree: return "free";
    case PageType::kSuperblock: return "superblock";
    case PageType::kPageTable: return "page-table";
    case PageType::kMeta: return "meta";
    case PageType::kGraphCsr: return "graph-csr";
    case PageType::kFactorMatrix: return "factor-matrix";
    case PageType::kIvfList: return "ivf-list";
  }
  return "unknown";
}

inline constexpr uint32_t kMaxStreamNameLength = 31;

/// One directory entry in the superblock: a named, typed, contiguous page
/// extent. 64 bytes, fixed.
struct StreamEntry {
  char name[kMaxStreamNameLength + 1];  // NUL-terminated, NUL-padded
  uint64_t first_page = 0;
  uint64_t page_count = 0;
  uint64_t payload_bytes = 0;  // <= page_count * page_size; tail zero-padded
  uint8_t type = 0;            // PageType of the extent's data pages
  uint8_t reserved[7] = {};
};
static_assert(sizeof(StreamEntry) == 64, "on-disk layout");

/// Fixed head of page 0; the StreamEntry array follows immediately, then
/// zero padding to page_size. `crc` is the CRC32C of the whole superblock
/// page computed with this field zeroed.
struct SuperblockHeader {
  uint64_t magic = kContainerMagic;
  uint32_t version = kFormatVersion;
  uint32_t page_size = kDefaultPageSize;
  uint64_t num_pages = 0;         // total, including page 0 and the table
  uint64_t page_table_first = 1;  // first page-table page
  uint64_t page_table_pages = 0;
  uint32_t stream_count = 0;
  uint32_t crc = 0;
};
static_assert(sizeof(SuperblockHeader) == 48, "on-disk layout");

/// One page-table entry per data page, in page order starting at the first
/// data page. 8 bytes.
struct PageTableEntry {
  uint32_t crc = 0;  // CRC32C of the full page (payload + zero padding)
  uint8_t type = 0;  // PageType
  uint8_t flags = 0;
  uint16_t reserved = 0;
};
static_assert(sizeof(PageTableEntry) == 8, "on-disk layout");

/// Fixed head of each page-table page; PageTableEntry records follow, then
/// zero padding. `crc` covers the whole table page with the field zeroed.
struct PageTablePageHeader {
  uint32_t crc = 0;
  uint32_t entry_count = 0;
};
static_assert(sizeof(PageTablePageHeader) == 8, "on-disk layout");

inline constexpr int64_t TableEntriesPerPage(uint32_t page_size) {
  return static_cast<int64_t>(
      (page_size - sizeof(PageTablePageHeader)) / sizeof(PageTableEntry));
}

inline constexpr int64_t MaxStreamsForPageSize(uint32_t page_size) {
  return static_cast<int64_t>(
      (page_size - sizeof(SuperblockHeader)) / sizeof(StreamEntry));
}

}  // namespace store
}  // namespace pane
