// A row shard of a NodeEmbedding artifact expressed as container streams —
// what pane_shardctl writes and the serving side's sharded EmbeddingStore
// path reads. A shard slices the two *candidate* matrices (Y rows for
// attribute queries, Z = Xb (Y^T Y) rows for link queries) into contiguous
// global ranges and replicates the *query-side* factors (Xf, Xb) in full,
// because queries arrive as node ids and every shard must be able to form
// any query vector. Z is derived once from the full matrices at split time
// and row-sliced — GemmRows fills each output row independently, so a
// shard's Z rows are bitwise the rows the unsharded engine would derive.
//
// Streams:
//   shard.meta (kMeta)          meta version, shard index/count, global
//                               shapes, held ranges, capability flags,
//                               method name
//   shard.xf   (kFactorMatrix)  full forward node factors, n x h
//   shard.xb   (kFactorMatrix)  full backward node factors, n x h
//   shard.y    (kFactorMatrix)  attribute-factor rows [attr_begin,
//                               attr_end), optional
//   shard.z    (kFactorMatrix)  link-candidate rows [node_begin,
//                               node_end), optional
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/store/container.h"
#include "src/store/embedding_pages.h"

namespace pane {
namespace store {

inline constexpr char kShardMetaStream[] = "shard.meta";
inline constexpr char kShardXfStream[] = "shard.xf";
inline constexpr char kShardXbStream[] = "shard.xb";
inline constexpr char kShardYStream[] = "shard.y";
inline constexpr char kShardZStream[] = "shard.z";

inline constexpr uint32_t kShardMetaVersion = 1;

/// One shard's identity inside a plan: which contiguous global candidate
/// ranges it holds, and the global shapes it was cut from. This struct is
/// also the serving layer's ShardSpec — a shard engine carries it to map
/// local candidate rows back to global ids.
struct ShardMeta {
  int64_t shard_index = 0;
  int64_t shard_count = 1;
  int64_t num_nodes = 0;       ///< global n (Xf / Xb / Z rows)
  int64_t num_attributes = 0;  ///< global d (Y rows)
  int64_t dim = 0;             ///< h, the factor width
  int64_t node_begin = 0;      ///< Z rows held: [node_begin, node_end)
  int64_t node_end = 0;
  int64_t attr_begin = 0;      ///< Y rows held: [attr_begin, attr_end)
  int64_t attr_end = 0;
  /// Global capability flags: whether the source artifact supported each
  /// query family. A shard whose local slice happens to be empty still
  /// reports the global capability, so its engine answers with an empty
  /// ranking instead of an error the merge cannot absorb.
  bool has_attributes = false;
  bool has_links = false;
  std::string method;
};

/// The shard artifact as it crosses the store boundary.
struct ShardExtents {
  ShardMeta meta;
  MatrixExtent xf;
  MatrixExtent xb;
  MatrixExtent y;  ///< [attr_begin, attr_end) rows; absent when empty
  MatrixExtent z;  ///< [node_begin, node_end) rows; absent when empty
};

/// Serializes the meta stream into `meta_buf` and registers all streams on
/// `writer`. The caller keeps `meta_buf` and every matrix extent alive
/// until ContainerWriter::WriteTo returns. xf / xb must be present.
Status AppendShardStreams(const ShardExtents& shard, std::string* meta_buf,
                          ContainerWriter* writer);

/// Decodes and validates the shard streams of an opened container: meta
/// version, range sanity (0 <= begin <= end <= global), shape-vs-payload
/// agreement for every matrix, and slice shapes matching the declared
/// ranges. With `verify_payloads` the matrix pages are checksummed now.
Result<ShardExtents> ReadShardStreams(const Container& container,
                                      bool verify_payloads);

/// True iff the container holds a shard artifact (has shard.meta).
inline bool HasShardStreams(const Container& container) {
  return container.Contains(kShardMetaStream);
}

}  // namespace store
}  // namespace pane
