#include "src/store/embedding_pages.h"

#include <cstring>

namespace pane {
namespace store {
namespace {

// emb.meta layout (little-endian):
//   u32 meta_version | i8 link | i8 attr | u8 mask | u8 reserved |
//   i64 shapes[8] (features, xf, xb, y as rows, cols pairs) |
//   u32 method_len | method bytes
constexpr uint8_t kMaskXf = 1u << 0;
constexpr uint8_t kMaskXb = 1u << 1;
constexpr uint8_t kMaskY = 1u << 2;
constexpr uint8_t kKnownMask = kMaskXf | kMaskXb | kMaskY;

// Mirrors embedding_format::kMaxMethodNameLength (the api layer's limit);
// kept literal here so the store stays independent of src/api headers.
constexpr size_t kMaxMethodLength = 256;

constexpr int64_t kFixedMetaBytes = 4 + 4 + 8 * 8 + 4;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadPod(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

Status CheckShape(const std::string& name, int64_t rows, int64_t cols,
                  const std::string& path) {
  if (rows < 0 || cols < 0 || (rows == 0) != (cols == 0)) {
    return Status::IOError("container " + path + " stream '" + name +
                           "' has malformed shape " + std::to_string(rows) +
                           " x " + std::to_string(cols));
  }
  return Status::OK();
}

/// Fetches a matrix stream and checks its payload against the meta shape.
/// `required` distinguishes features (must exist) from masked-off factors
/// (must NOT exist — a stray stream means the artifact is inconsistent).
Status ResolveMatrix(const Container& container, const std::string& name,
                     int64_t rows, int64_t cols, bool expected,
                     bool verify_payloads, MatrixExtent* out) {
  PANE_RETURN_NOT_OK(CheckShape(name, rows, cols, container.path()));
  if (!expected) {
    if (container.Contains(name)) {
      return Status::IOError("container " + container.path() + " stream '" +
                             name + "' exists but the meta mask says absent");
    }
    if (rows != 0 || cols != 0) {
      return Status::IOError("container " + container.path() +
                             " meta declares a shape for absent stream '" +
                             name + "'");
    }
    *out = MatrixExtent{};
    return Status::OK();
  }
  if (rows == 0) {
    return Status::IOError("container " + container.path() + " stream '" +
                           name + "' is present but has an empty shape");
  }
  Result<Container::StreamView> view_result =
      verify_payloads ? container.Read(name) : container.Peek(name);
  PANE_ASSIGN_OR_RETURN(Container::StreamView view, std::move(view_result));
  const int64_t expected_bytes =
      rows * cols * static_cast<int64_t>(sizeof(double));
  if (view.bytes != expected_bytes) {
    return Status::IOError(
        "container " + container.path() + " stream '" + name + "' holds " +
        std::to_string(view.bytes) + " bytes but its shape " +
        std::to_string(rows) + " x " + std::to_string(cols) + " needs " +
        std::to_string(expected_bytes));
  }
  out->data = reinterpret_cast<const double*>(view.data);
  out->rows = rows;
  out->cols = cols;
  return Status::OK();
}

}  // namespace

Status AppendEmbeddingStreams(const EmbeddingExtents& embedding,
                              std::string* meta_buf, ContainerWriter* writer) {
  if (meta_buf == nullptr || writer == nullptr) {
    return Status::InvalidArgument(
        "AppendEmbeddingStreams needs a meta buffer and a writer");
  }
  if (!embedding.features.present()) {
    return Status::InvalidArgument(
        "embedding container needs a non-empty features matrix");
  }
  if (embedding.method.empty() ||
      embedding.method.size() > kMaxMethodLength) {
    return Status::InvalidArgument("embedding method name must be 1.." +
                                   std::to_string(kMaxMethodLength) +
                                   " characters");
  }
  uint8_t mask = 0;
  if (embedding.xf.present()) mask |= kMaskXf;
  if (embedding.xb.present()) mask |= kMaskXb;
  if (embedding.y.present()) mask |= kMaskY;

  meta_buf->clear();
  meta_buf->reserve(static_cast<size_t>(kFixedMetaBytes) +
                    embedding.method.size());
  AppendPod<uint32_t>(meta_buf, kEmbeddingMetaVersion);
  AppendPod<int8_t>(meta_buf, embedding.link_convention);
  AppendPod<int8_t>(meta_buf, embedding.attribute_convention);
  AppendPod<uint8_t>(meta_buf, mask);
  AppendPod<uint8_t>(meta_buf, 0);
  const MatrixExtent* matrices[4] = {&embedding.features, &embedding.xf,
                                     &embedding.xb, &embedding.y};
  for (const MatrixExtent* m : matrices) {
    AppendPod<int64_t>(meta_buf, m->rows);
    AppendPod<int64_t>(meta_buf, m->cols);
  }
  AppendPod<uint32_t>(meta_buf,
                      static_cast<uint32_t>(embedding.method.size()));
  meta_buf->append(embedding.method);

  PANE_RETURN_NOT_OK(writer->AddStream(
      kEmbMetaStream, PageType::kMeta, meta_buf->data(),
      static_cast<int64_t>(meta_buf->size())));
  PANE_RETURN_NOT_OK(writer->AddStream(
      kEmbFeaturesStream, PageType::kFactorMatrix, embedding.features.data,
      embedding.features.payload_bytes()));
  if (embedding.xf.present()) {
    PANE_RETURN_NOT_OK(writer->AddStream(kEmbXfStream,
                                         PageType::kFactorMatrix,
                                         embedding.xf.data,
                                         embedding.xf.payload_bytes()));
  }
  if (embedding.xb.present()) {
    PANE_RETURN_NOT_OK(writer->AddStream(kEmbXbStream,
                                         PageType::kFactorMatrix,
                                         embedding.xb.data,
                                         embedding.xb.payload_bytes()));
  }
  if (embedding.y.present()) {
    PANE_RETURN_NOT_OK(writer->AddStream(kEmbYStream, PageType::kFactorMatrix,
                                         embedding.y.data,
                                         embedding.y.payload_bytes()));
  }
  return Status::OK();
}

Result<EmbeddingExtents> ReadEmbeddingStreams(const Container& container,
                                              bool verify_payloads) {
  PANE_ASSIGN_OR_RETURN(Container::StreamView meta,
                        container.Read(kEmbMetaStream));
  const std::string& path = container.path();
  if (meta.bytes < kFixedMetaBytes) {
    return Status::IOError("container " + path +
                           " embedding meta stream is truncated");
  }
  const char* p = meta.data;
  const uint32_t meta_version = ReadPod<uint32_t>(p);
  p += 4;
  if (meta_version != kEmbeddingMetaVersion) {
    return Status::IOError("container " + path +
                           " has unsupported embedding meta version " +
                           std::to_string(meta_version));
  }
  EmbeddingExtents out;
  out.link_convention = ReadPod<int8_t>(p);
  out.attribute_convention = ReadPod<int8_t>(p + 1);
  const uint8_t mask = ReadPod<uint8_t>(p + 2);
  p += 4;
  if ((mask & ~kKnownMask) != 0) {
    return Status::IOError("container " + path +
                           " embedding meta has unknown presence bits");
  }
  int64_t shapes[8];
  for (int i = 0; i < 8; ++i) {
    shapes[i] = ReadPod<int64_t>(p);
    p += 8;
  }
  const uint32_t method_len = ReadPod<uint32_t>(p);
  p += 4;
  if (method_len == 0 || method_len > kMaxMethodLength ||
      static_cast<int64_t>(method_len) != meta.bytes - kFixedMetaBytes) {
    return Status::IOError("container " + path +
                           " embedding meta has a malformed method name");
  }
  out.method.assign(p, method_len);

  PANE_RETURN_NOT_OK(ResolveMatrix(container, kEmbFeaturesStream, shapes[0],
                                   shapes[1], /*expected=*/true,
                                   verify_payloads, &out.features));
  PANE_RETURN_NOT_OK(ResolveMatrix(container, kEmbXfStream, shapes[2],
                                   shapes[3], (mask & kMaskXf) != 0,
                                   verify_payloads, &out.xf));
  PANE_RETURN_NOT_OK(ResolveMatrix(container, kEmbXbStream, shapes[4],
                                   shapes[5], (mask & kMaskXb) != 0,
                                   verify_payloads, &out.xb));
  PANE_RETURN_NOT_OK(ResolveMatrix(container, kEmbYStream, shapes[6],
                                   shapes[7], (mask & kMaskY) != 0,
                                   verify_payloads, &out.y));
  return out;
}

}  // namespace store
}  // namespace pane
