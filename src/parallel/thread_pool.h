// Fixed-size worker pool used by the parallel PANE algorithms (PAPMI,
// SMGreedyInit, PSVDCCD). The paper's parallel model is static block
// partitioning: node set V and attribute set R are split into nb equal
// subsets and each thread owns one subset (Algorithm 5, lines 1-2); the pool
// here provides exactly that execution shape via RunBlocks().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/common/sync.h"

namespace pane {

/// \brief A fixed set of worker threads consuming a FIFO task queue.
///
/// A pool of size 1 executes everything inline on the calling thread, so the
/// single-thread algorithm variants pay no synchronization cost and their
/// timings (Figures 3/4) are honest.
class ThreadPool {
 public:
  /// \param num_threads number of workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> fn) PANE_EXCLUDES(mutex_);

  /// Runs fn(0), ..., fn(num_blocks - 1) across the pool and blocks until
  /// all complete. This is the "parallel for Vi in V" primitive of
  /// Algorithms 6-8. Tasks may outnumber workers; they queue. The calling
  /// thread participates in the work instead of sleeping, so a barrier on
  /// an oversubscribed machine costs almost nothing.
  void RunBlocks(int num_blocks, const std::function<void(int)>& fn);

 private:
  void WorkerLoop() PANE_EXCLUDES(mutex_);

  int num_threads_;
  std::vector<std::thread> workers_;  // set in the constructor, then joined

  /// Guards the task queue and the shutdown flag; cv_ signals both "work
  /// arrived" and "shutting down". The RunBlocks barrier counter is NOT
  /// under this mutex — it is a shared atomic claim ticket whose results
  /// are published through the workers' task futures.
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ PANE_GUARDED_BY(mutex_);
  bool shutting_down_ PANE_GUARDED_BY(mutex_) = false;
};

/// \brief Half-open index range [begin, end).
struct Range {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// \brief Splits [0, n) into nb contiguous near-equal ranges (the V / R
/// partition of Algorithm 5). The first n % nb ranges get one extra element;
/// when n < nb the trailing ranges are empty.
std::vector<Range> PartitionRange(int64_t n, int nb);

/// \brief Static-partition parallel loop: splits [begin, end) into one chunk
/// per worker and runs fn(chunk_begin, chunk_end) on each. Blocks until done.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace pane
