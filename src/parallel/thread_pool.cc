#include "src/parallel/thread_pool.h"

#include "src/common/logging.h"

namespace pane {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ == 1) return;  // inline mode: no workers
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (num_threads_ == 1) {
    task();  // inline execution
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PANE_CHECK(!shutting_down_) << "Submit() after shutdown";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::RunBlocks(int num_blocks, const std::function<void(int)>& fn) {
  if (num_blocks <= 0) return;
  if (num_threads_ == 1 || num_blocks == 1) {
    for (int b = 0; b < num_blocks; ++b) fn(b);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    futures.push_back(Submit([&fn, b] { fn(b); }));
  }
  for (auto& f : futures) f.get();  // rethrows any worker exception
}

std::vector<Range> PartitionRange(int64_t n, int nb) {
  PANE_CHECK(nb >= 1);
  std::vector<Range> ranges(static_cast<size_t>(nb));
  const int64_t base = n / nb;
  const int64_t extra = n % nb;
  int64_t cursor = 0;
  for (int i = 0; i < nb; ++i) {
    const int64_t len = base + (i < extra ? 1 : 0);
    ranges[static_cast<size_t>(i)] = Range{cursor, cursor + len};
    cursor += len;
  }
  PANE_DCHECK(cursor == n);
  return ranges;
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int nb = pool != nullptr ? pool->num_threads() : 1;
  if (nb == 1 || n == 1) {
    fn(begin, end);
    return;
  }
  const std::vector<Range> chunks = PartitionRange(n, nb);
  pool->RunBlocks(nb, [&](int b) {
    const Range& r = chunks[static_cast<size_t>(b)];
    if (r.size() > 0) fn(begin + r.begin, begin + r.end);
  });
}

}  // namespace pane
