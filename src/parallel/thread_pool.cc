#include "src/parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/common/logging.h"

namespace pane {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ == 1) return;  // inline mode: no workers
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  cv_.SignalAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(&mutex_);
      // Explicit wait loop (not a predicate lambda) so the thread-safety
      // analysis sees the guarded reads under the scoped lock.
      while (!shutting_down_ && queue_.empty()) cv_.Wait(&mutex_);
      if (queue_.empty()) return;  // shutting down with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (num_threads_ == 1) {
    task();  // inline execution
    return future;
  }
  {
    MutexLock lock(&mutex_);
    PANE_CHECK(!shutting_down_) << "Submit() after shutdown";
    queue_.push_back(std::move(task));
  }
  cv_.Signal();
  return future;
}

void ThreadPool::RunBlocks(int num_blocks, const std::function<void(int)>& fn) {
  if (num_blocks <= 0) return;
  if (num_threads_ == 1 || num_blocks == 1) {
    for (int b = 0; b < num_blocks; ++b) fn(b);
    return;
  }
  // Work-conserving barrier: blocks are claimed from a shared counter and
  // the calling thread drains alongside the workers instead of sleeping on
  // futures. On machines with fewer cores than workers this removes almost
  // all handoff cost (the caller just runs every block itself).
  //
  // Visibility: the relaxed fetch_add is only a claim ticket — the RMW
  // atomicity alone guarantees each block index is handed out exactly once,
  // and no data rides on the counter. Everything fn(b) writes is published
  // to the caller by the release/acquire pair inside each helper's
  // promise/future (f.get() below), which is the actual barrier.
  auto next = std::make_shared<std::atomic<int>>(0);
  const auto drain = [next, num_blocks](const std::function<void(int)>& f) {
    int b;
    while ((b = next->fetch_add(1, std::memory_order_relaxed)) < num_blocks) {
      f(b);
    }
  };
  const int num_helpers = std::min(num_threads_, num_blocks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(num_helpers));
  for (int h = 0; h < num_helpers; ++h) {
    // Each helper owns a copy of fn so nothing dangles if the caller's
    // inline drain throws while helpers are still running.
    futures.push_back(Submit([drain, fn] { drain(fn); }));
  }
  std::exception_ptr caller_error;
  try {
    drain(fn);
  } catch (...) {
    caller_error = std::current_exception();
  }
  for (auto& f : futures) f.get();  // rethrows any worker exception
  if (caller_error) std::rethrow_exception(caller_error);
}

std::vector<Range> PartitionRange(int64_t n, int nb) {
  PANE_CHECK(nb >= 1);
  std::vector<Range> ranges(static_cast<size_t>(nb));
  const int64_t base = n / nb;
  const int64_t extra = n % nb;
  int64_t cursor = 0;
  for (int i = 0; i < nb; ++i) {
    const int64_t len = base + (i < extra ? 1 : 0);
    ranges[static_cast<size_t>(i)] = Range{cursor, cursor + len};
    cursor += len;
  }
  PANE_DCHECK(cursor == n);
  return ranges;
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int nb = pool != nullptr ? pool->num_threads() : 1;
  if (nb == 1 || n == 1) {
    fn(begin, end);
    return;
  }
  const std::vector<Range> chunks = PartitionRange(n, nb);
  pool->RunBlocks(nb, [&](int b) {
    const Range& r = chunks[static_cast<size_t>(b)];
    if (r.size() > 0) fn(begin + r.begin, begin + r.end);
  });
}

}  // namespace pane
