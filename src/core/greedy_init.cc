#include "src/core/greedy_init.h"

#include <cmath>

#include "src/common/random.h"
#include "src/matrix/gemm.h"
#include "src/matrix/rand_svd.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

Status ValidateK(const AffinityMatrices& affinity, int k) {
  if (k < 2 || k % 2 != 0) {
    return Status::InvalidArgument("space budget k must be even and >= 2");
  }
  if (affinity.forward.rows() != affinity.backward.rows() ||
      affinity.forward.cols() != affinity.backward.cols()) {
    return Status::InvalidArgument("F' and B' shapes differ");
  }
  return Status::OK();
}

}  // namespace

Result<EmbeddingState> GreedyInit(const AffinityMatrices& affinity, int k,
                                  int t, uint64_t seed) {
  PANE_RETURN_NOT_OK(ValidateK(affinity, k));
  const int h = k / 2;

  // Line 1: U, Sigma, V <- RandSVD(F', k/2, t).
  RandSvdOptions svd_options;
  svd_options.power_iters = t;
  svd_options.seed = seed;
  DenseMatrix u;
  std::vector<double> sigma;
  DenseMatrix v;
  PANE_RETURN_NOT_OK(RandSvd(affinity.forward, h, svd_options, &u, &sigma, &v));

  // Line 2: Y <- V, Xf <- U Sigma, Xb <- B' Y.
  EmbeddingState state;
  state.y = std::move(v);
  state.xf = std::move(u);
  for (int64_t i = 0; i < state.xf.rows(); ++i) {
    double* row = state.xf.Row(i);
    for (int j = 0; j < h; ++j) row[j] *= sigma[static_cast<size_t>(j)];
  }
  Gemm(affinity.backward, state.y, &state.xb);

  // Line 3: Sf <- Xf Y^T - F', Sb <- Xb Y^T - B'.
  GemmTransBAddScaled(state.xf, state.y, 1.0, affinity.forward, -1.0,
                      &state.sf);
  GemmTransBAddScaled(state.xb, state.y, 1.0, affinity.backward, -1.0,
                      &state.sb);
  return state;
}

Result<EmbeddingState> SmGreedyInit(const AffinityMatrices& affinity, int k,
                                    int t, ThreadPool* pool, uint64_t seed) {
  if (pool == nullptr || pool->num_threads() == 1) {
    return GreedyInit(affinity, k, t, seed);
  }
  PANE_RETURN_NOT_OK(ValidateK(affinity, k));
  const int h = k / 2;
  const int nb = pool->num_threads();
  const int64_t n = affinity.forward.rows();
  const int64_t d = affinity.forward.cols();
  const std::vector<Range> node_blocks = PartitionRange(n, nb);

  // Lines 1-3: per-block RandSVD of F'[Vi]; Ui = Phi Sigma.
  std::vector<DenseMatrix> u_blocks(static_cast<size_t>(nb));
  std::vector<DenseMatrix> v_blocks(static_cast<size_t>(nb));
  std::vector<Status> block_status(static_cast<size_t>(nb));
  pool->RunBlocks(nb, [&](int b) {
    const Range& blk = node_blocks[static_cast<size_t>(b)];
    if (blk.size() == 0) {
      u_blocks[static_cast<size_t>(b)].Resize(0, h);
      v_blocks[static_cast<size_t>(b)].Resize(d, h);
      return;
    }
    const DenseMatrix f_block =
        affinity.forward.RowBlock(blk.begin, blk.end);
    RandSvdOptions svd_options;
    svd_options.power_iters = t;
    svd_options.seed = seed + static_cast<uint64_t>(b) + 1;
    DenseMatrix phi, vi;
    std::vector<double> sg;
    block_status[static_cast<size_t>(b)] =
        RandSvd(f_block, h, svd_options, &phi, &sg, &vi);
    if (!block_status[static_cast<size_t>(b)].ok()) return;
    for (int64_t i = 0; i < phi.rows(); ++i) {
      double* row = phi.Row(i);
      for (int j = 0; j < h; ++j) row[j] *= sg[static_cast<size_t>(j)];
    }
    u_blocks[static_cast<size_t>(b)] = std::move(phi);
    v_blocks[static_cast<size_t>(b)] = std::move(vi);
  });
  for (const Status& s : block_status) PANE_RETURN_NOT_OK(s);

  // Line 4: V <- [V1 ... Vnb]^T, a (nb * k/2) x d stack of the per-block
  // right factors.
  DenseMatrix v_stack(static_cast<int64_t>(nb) * h, d);
  for (int b = 0; b < nb; ++b) {
    const DenseMatrix vt = v_blocks[static_cast<size_t>(b)].Transposed();
    v_stack.SetBlock(static_cast<int64_t>(b) * h, 0, vt);
  }

  // Lines 5-6: RandSVD of the stack; W = Phi Sigma, Y = right factor.
  EmbeddingState state;
  DenseMatrix w;
  {
    RandSvdOptions svd_options;
    svd_options.power_iters = t;
    svd_options.seed = seed;
    std::vector<double> sg;
    PANE_RETURN_NOT_OK(RandSvd(v_stack, h, svd_options, &w, &sg, &state.y));
    for (int64_t i = 0; i < w.rows(); ++i) {
      double* row = w.Row(i);
      for (int j = 0; j < h; ++j) row[j] *= sg[static_cast<size_t>(j)];
    }
  }

  // Lines 7-11: assemble per block: Xf[Vi] = Ui W[(i-1)k/2 : i k/2],
  // Xb[Vi] = B'[Vi] Y, residuals from the assembled rows.
  state.xf.Resize(n, h);
  state.xb.Resize(n, h);
  state.sf.Resize(n, d);
  state.sb.Resize(n, d);
  pool->RunBlocks(nb, [&](int b) {
    const Range& blk = node_blocks[static_cast<size_t>(b)];
    if (blk.size() == 0) return;
    const DenseMatrix w_block =
        w.RowBlock(static_cast<int64_t>(b) * h, static_cast<int64_t>(b + 1) * h);
    DenseMatrix xf_block;
    Gemm(u_blocks[static_cast<size_t>(b)], w_block, &xf_block);
    state.xf.SetBlock(blk.begin, 0, xf_block);

    const DenseMatrix b_block = affinity.backward.RowBlock(blk.begin, blk.end);
    DenseMatrix xb_block;
    Gemm(b_block, state.y, &xb_block);
    state.xb.SetBlock(blk.begin, 0, xb_block);

    const DenseMatrix f_block = affinity.forward.RowBlock(blk.begin, blk.end);
    DenseMatrix sf_block, sb_block;
    GemmTransBAddScaled(xf_block, state.y, 1.0, f_block, -1.0, &sf_block);
    GemmTransBAddScaled(xb_block, state.y, 1.0, b_block, -1.0, &sb_block);
    state.sf.SetBlock(blk.begin, 0, sf_block);
    state.sb.SetBlock(blk.begin, 0, sb_block);
  });
  return state;
}

Result<EmbeddingState> RandomInit(const AffinityMatrices& affinity, int k,
                                  uint64_t seed, ThreadPool* pool) {
  PANE_RETURN_NOT_OK(ValidateK(affinity, k));
  const int h = k / 2;
  const int64_t n = affinity.forward.rows();
  const int64_t d = affinity.forward.cols();
  Rng rng(seed);
  EmbeddingState state;
  state.xf.Resize(n, h);
  state.xb.Resize(n, h);
  state.y.Resize(d, h);
  const double scale = 1.0 / std::sqrt(static_cast<double>(h));
  state.xf.FillGaussian(&rng, 0.0, scale);
  state.xb.FillGaussian(&rng, 0.0, scale);
  state.y.FillGaussian(&rng, 0.0, scale);
  GemmTransBAddScaled(state.xf, state.y, 1.0, affinity.forward, -1.0,
                      &state.sf, pool);
  GemmTransBAddScaled(state.xb, state.y, 1.0, affinity.backward, -1.0,
                      &state.sb, pool);
  return state;
}

double Objective(const EmbeddingState& state) {
  const double sf_norm = state.sf.FrobeniusNorm();
  const double sb_norm = state.sb.FrobeniusNorm();
  return sf_norm * sf_norm + sb_norm * sb_norm;
}

}  // namespace pane
