#include "src/core/greedy_init.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/matrix/gemm.h"
#include "src/matrix/rand_svd.h"
#include "src/matrix/vector_ops.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Row granularity for release-as-you-go streaming over spilled slabs.
constexpr int64_t kStreamChunkRows = 4096;

Status ValidateInit(const AffinitySlabs& affinity, const InitOptions& options) {
  if (options.k < 2 || options.k % 2 != 0) {
    return Status::InvalidArgument("space budget k must be even and >= 2");
  }
  if (affinity.forward.rows() != affinity.backward.rows() ||
      affinity.forward.cols() != affinity.backward.cols()) {
    return Status::InvalidArgument("F' and B' shapes differ");
  }
  if (options.memory_budget_mb < 0) {
    return Status::InvalidArgument("memory_budget_mb must be >= 0");
  }
  return Status::OK();
}

// Rows [begin, end) of out = F * y, the i-k-j skip-zero kernel of GemmRows
// reading F from the slab — identical arithmetic whichever backing holds
// the bytes. Consumed slab rows are released as each chunk finishes.
void ProjectRows(const FactorSlab& f, const DenseMatrix& y, DenseMatrix* out,
                 int64_t begin, int64_t end) {
  const int64_t d = f.cols();
  const int64_t h = y.cols();
  for (int64_t chunk = begin; chunk < end; chunk += kStreamChunkRows) {
    const int64_t chunk_end = std::min(chunk + kStreamChunkRows, end);
    for (int64_t i = chunk; i < chunk_end; ++i) {
      double* out_row = out->Row(i);
      std::fill(out_row, out_row + h, 0.0);
      const double* f_row = f.Row(i);
      for (int64_t p = 0; p < d; ++p) {
        const double v = f_row[p];
        if (v == 0.0) continue;
        const double* y_row = y.Row(p);
        for (int64_t j = 0; j < h; ++j) out_row[j] += v * y_row[j];
      }
    }
    ReleaseRowsOrWarn(f, chunk, chunk_end, /*dirty=*/false);
  }
}

// Rows [begin, end) of s = x y^T - f, the GemmTransBAddScaledRows expression
// (alpha = 1, beta = -1) with the wide operands streamed through slabs.
void ResidualRows(const DenseMatrix& x, const DenseMatrix& y,
                  const FactorSlab& f, FactorSlab* s, int64_t begin,
                  int64_t end) {
  const int64_t h = x.cols();
  const int64_t d = f.cols();
  for (int64_t chunk = begin; chunk < end; chunk += kStreamChunkRows) {
    const int64_t chunk_end = std::min(chunk + kStreamChunkRows, end);
    for (int64_t i = chunk; i < chunk_end; ++i) {
      double* s_row = s->Row(i);
      const double* x_row = x.Row(i);
      const double* f_row = f.Row(i);
      for (int64_t j = 0; j < d; ++j) {
        s_row[j] = 1.0 * Dot(x_row, y.Row(j), h) + -1.0 * f_row[j];
      }
    }
    ReleaseRowsOrWarn(f, chunk, chunk_end, /*dirty=*/false);
    ReleaseRowsOrWarn(*s, chunk, chunk_end, /*dirty=*/true);
  }
}

Result<FactorSlab> CreateResidualSlab(int64_t rows, int64_t cols,
                                      const InitOptions& options) {
  return FactorSlab::Create(rows, cols, options.residual_backing,
                            options.spill_dir, options.buffer_pool);
}

AffinitySlabs WrapDense(const AffinityMatrices& affinity) {
  AffinitySlabs slabs;
  slabs.forward = FactorSlab(affinity.forward);
  slabs.backward = FactorSlab(affinity.backward);
  return slabs;
}

}  // namespace

Status BuildResidualSlab(const DenseMatrix& x, const DenseMatrix& y,
                         const FactorSlab& f, FactorSlab* s,
                         ThreadPool* pool) {
  if (s == nullptr) return Status::InvalidArgument("null residual slab");
  if (x.rows() != f.rows() || y.rows() != f.cols() ||
      x.cols() != y.cols() || s->rows() != f.rows() ||
      s->cols() != f.cols()) {
    return Status::InvalidArgument("residual shape mismatch");
  }
  if (pool == nullptr || pool->num_threads() == 1) {
    ResidualRows(x, y, f, s, 0, f.rows());
    return Status::OK();
  }
  ParallelFor(pool, 0, f.rows(), [&](int64_t begin, int64_t end) {
    ResidualRows(x, y, f, s, begin, end);
  });
  return Status::OK();
}

Result<EmbeddingState> GreedyInit(const AffinitySlabs& affinity,
                                  const InitOptions& options) {
  PANE_RETURN_NOT_OK(ValidateInit(affinity, options));
  const int h = options.k / 2;
  const int64_t n = affinity.forward.rows();
  const int64_t d = affinity.forward.cols();

  // Line 1: U, Sigma, V <- RandSVD(F', k/2, t), streamed from the slab.
  RandSvdOptions svd_options;
  svd_options.power_iters = options.t;
  svd_options.seed = options.seed;
  DenseMatrix u;
  std::vector<double> sigma;
  DenseMatrix v;
  PANE_RETURN_NOT_OK(
      RandSvd(affinity.forward.View(), h, svd_options, &u, &sigma, &v));

  // Line 2: Y <- V, Xf <- U Sigma, Xb <- B' Y.
  EmbeddingState state;
  state.y = std::move(v);
  state.xf = std::move(u);
  for (int64_t i = 0; i < state.xf.rows(); ++i) {
    double* row = state.xf.Row(i);
    for (int j = 0; j < h; ++j) row[j] *= sigma[static_cast<size_t>(j)];
  }
  state.xb.Resize(n, h);
  ProjectRows(affinity.backward, state.y, &state.xb, 0, n);

  // Line 3: Sf <- Xf Y^T - F', Sb <- Xb Y^T - B'.
  PANE_ASSIGN_OR_RETURN(state.sf, CreateResidualSlab(n, d, options));
  PANE_ASSIGN_OR_RETURN(state.sb, CreateResidualSlab(n, d, options));
  ResidualRows(state.xf, state.y, affinity.forward, &state.sf, 0, n);
  ResidualRows(state.xb, state.y, affinity.backward, &state.sb, 0, n);
  return state;
}

EngineAwareInit::EngineAwareInit(const AffinitySlabs* affinity,
                                 const InitOptions& options)
    : affinity_(affinity), options_(options) {
  setup_status_ = affinity_ == nullptr
                      ? Status::InvalidArgument("null affinity slabs")
                      : ValidateInit(*affinity_, options_);
  if (!setup_status_.ok()) return;
  h_ = options_.k / 2;
  nb_ = (options_.pool != nullptr && options_.pool->num_threads() > 1)
            ? options_.pool->num_threads()
            : 1;
  if (nb_ == 1) return;  // serial: Finish delegates to GreedyInit
  u_blocks_.resize(static_cast<size_t>(nb_));
  v_blocks_.resize(static_cast<size_t>(nb_));
  block_status_.resize(static_cast<size_t>(nb_));
  if (affinity_->forward.spilled() && options_.memory_budget_mb > 0) {
    // Residency cap: at most ceil(budget / block bytes) blocks of the
    // spilled F' may hold pages at once (floor of one block). Affects the
    // schedule only, never the arithmetic.
    const int64_t n = affinity_->forward.rows();
    const int64_t block_rows = (n + nb_ - 1) / nb_;
    const int64_t block_bytes = std::max<int64_t>(
        1, block_rows * affinity_->forward.cols() *
               static_cast<int64_t>(sizeof(double)));
    max_inflight_blocks_ = std::clamp<int64_t>(
        (options_.memory_budget_mb << 20) / block_bytes, 1, nb_);
  }
}

EngineAwareInit::~EngineAwareInit() {
  if (helper_.joinable()) helper_.join();
}

void EngineAwareInit::RunBlock(int b) {
  const int64_t n = affinity_->forward.rows();
  const int64_t d = affinity_->forward.cols();
  const std::vector<Range> node_blocks = PartitionRange(n, nb_);
  const Range& blk = node_blocks[static_cast<size_t>(b)];
  if (blk.size() == 0) {
    u_blocks_[static_cast<size_t>(b)].Resize(0, h_);
    v_blocks_[static_cast<size_t>(b)].Resize(d, h_);
    return;
  }
  // Lines 1-3 of Algorithm 7: RandSVD of F'[Vi]; Ui = Phi Sigma. The block
  // is a zero-copy row view of the slab under either backing.
  RandSvdOptions svd_options;
  svd_options.power_iters = options_.t;
  svd_options.seed = options_.seed + static_cast<uint64_t>(b) + 1;
  DenseMatrix phi, vi;
  std::vector<double> sg;
  block_status_[static_cast<size_t>(b)] =
      RandSvd(affinity_->forward.ViewRows(blk.begin, blk.end), h_,
              svd_options, &phi, &sg, &vi);
  if (!block_status_[static_cast<size_t>(b)].ok()) return;
  for (int64_t i = 0; i < phi.rows(); ++i) {
    double* row = phi.Row(i);
    for (int j = 0; j < h_; ++j) row[j] *= sg[static_cast<size_t>(j)];
  }
  u_blocks_[static_cast<size_t>(b)] = std::move(phi);
  v_blocks_[static_cast<size_t>(b)] = std::move(vi);
  ReleaseRowsOrWarn(affinity_->forward, blk.begin, blk.end, /*dirty=*/false);
}

void EngineAwareInit::ClaimLoop(bool overlapped) {
  for (;;) {
    const int b = next_block_.fetch_add(1, std::memory_order_relaxed);
    if (b >= nb_) return;
    // A block counts as overlapped only when the helper claims it before
    // Finish() starts draining — i.e. while the engine is still streaming
    // backward panels. Claims the helper wins after that are ordinary
    // drain-phase work and must not inflate the stat.
    const bool count_overlapped =
        overlapped && !draining_.load(std::memory_order_relaxed);
    if (max_inflight_blocks_ > 0) {
      MutexLock lock(&inflight_mutex_);
      while (inflight_blocks_ >= max_inflight_blocks_) {
        inflight_cv_.Wait(&inflight_mutex_);
      }
      ++inflight_blocks_;
    }
    RunBlock(b);
    if (max_inflight_blocks_ > 0) {
      {
        MutexLock lock(&inflight_mutex_);
        --inflight_blocks_;
      }
      inflight_cv_.Signal();
    }
    if (count_overlapped) overlapped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EngineAwareInit::OnForwardSlabComplete() {
  if (!setup_status_.ok() || nb_ == 1) return;
  if (helper_started_.exchange(true)) return;
  // One helper thread claims block SVDs while the engine's pool is still
  // streaming the backward panels — the overlap Algorithm 7 leaves on the
  // table when init waits for the whole affinity phase.
  helper_ = std::thread([this] { ClaimLoop(/*overlapped=*/true); });
}

Result<EmbeddingState> EngineAwareInit::Finish() {
  PANE_RETURN_NOT_OK(setup_status_);
  if (nb_ == 1) return GreedyInit(*affinity_, options_);

  const int64_t n = affinity_->forward.rows();
  const int64_t d = affinity_->forward.cols();
  const std::vector<Range> node_blocks = PartitionRange(n, nb_);

  // Drain whatever the helper has not claimed; the caller and the pool
  // workers pull from the same counter.
  draining_.store(true, std::memory_order_relaxed);
  options_.pool->RunBlocks(nb_, [this](int) { ClaimLoop(false); });
  if (helper_.joinable()) helper_.join();
  for (const Status& s : block_status_) PANE_RETURN_NOT_OK(s);

  // Line 4: V <- [V1 ... Vnb]^T, a (nb * k/2) x d stack of the per-block
  // right factors.
  DenseMatrix v_stack(static_cast<int64_t>(nb_) * h_, d);
  for (int b = 0; b < nb_; ++b) {
    const DenseMatrix vt = v_blocks_[static_cast<size_t>(b)].Transposed();
    v_stack.SetBlock(static_cast<int64_t>(b) * h_, 0, vt);
  }

  // Lines 5-6: RandSVD of the stack; W = Phi Sigma, Y = right factor.
  EmbeddingState state;
  DenseMatrix w;
  {
    RandSvdOptions svd_options;
    svd_options.power_iters = options_.t;
    svd_options.seed = options_.seed;
    std::vector<double> sg;
    PANE_RETURN_NOT_OK(RandSvd(v_stack, h_, svd_options, &w, &sg, &state.y));
    for (int64_t i = 0; i < w.rows(); ++i) {
      double* row = w.Row(i);
      for (int j = 0; j < h_; ++j) row[j] *= sg[static_cast<size_t>(j)];
    }
  }

  // Lines 7-11: assemble per block: Xf[Vi] = Ui W[(i-1)k/2 : i k/2],
  // Xb[Vi] = B'[Vi] Y, residual rows streamed straight into the slabs.
  state.xf.Resize(n, h_);
  state.xb.Resize(n, h_);
  PANE_ASSIGN_OR_RETURN(state.sf, CreateResidualSlab(n, d, options_));
  PANE_ASSIGN_OR_RETURN(state.sb, CreateResidualSlab(n, d, options_));
  options_.pool->RunBlocks(nb_, [&](int b) {
    const Range& blk = node_blocks[static_cast<size_t>(b)];
    if (blk.size() == 0) return;
    const DenseMatrix w_block = w.RowBlock(
        static_cast<int64_t>(b) * h_, static_cast<int64_t>(b + 1) * h_);
    DenseMatrix xf_block;
    Gemm(u_blocks_[static_cast<size_t>(b)], w_block, &xf_block);
    state.xf.SetBlock(blk.begin, 0, xf_block);
    ProjectRows(affinity_->backward, state.y, &state.xb, blk.begin, blk.end);
    ResidualRows(state.xf, state.y, affinity_->forward, &state.sf, blk.begin,
                 blk.end);
    ResidualRows(state.xb, state.y, affinity_->backward, &state.sb,
                 blk.begin, blk.end);
  });
  return state;
}

Result<EmbeddingState> SmGreedyInit(const AffinitySlabs& affinity,
                                    const InitOptions& options) {
  EngineAwareInit init(&affinity, options);
  return init.Finish();
}

Result<EmbeddingState> RandomInit(const AffinitySlabs& affinity,
                                  const InitOptions& options) {
  PANE_RETURN_NOT_OK(ValidateInit(affinity, options));
  const int h = options.k / 2;
  const int64_t n = affinity.forward.rows();
  const int64_t d = affinity.forward.cols();
  Rng rng(options.seed);
  EmbeddingState state;
  state.xf.Resize(n, h);
  state.xb.Resize(n, h);
  state.y.Resize(d, h);
  const double scale = 1.0 / std::sqrt(static_cast<double>(h));
  state.xf.FillGaussian(&rng, 0.0, scale);
  state.xb.FillGaussian(&rng, 0.0, scale);
  state.y.FillGaussian(&rng, 0.0, scale);
  PANE_ASSIGN_OR_RETURN(state.sf, CreateResidualSlab(n, d, options));
  PANE_ASSIGN_OR_RETURN(state.sb, CreateResidualSlab(n, d, options));
  PANE_RETURN_NOT_OK(BuildResidualSlab(state.xf, state.y, affinity.forward,
                                       &state.sf, options.pool));
  PANE_RETURN_NOT_OK(BuildResidualSlab(state.xb, state.y, affinity.backward,
                                       &state.sb, options.pool));
  return state;
}

double Objective(const EmbeddingState& state) {
  const double sf_norm = state.sf.FrobeniusNorm();
  const double sb_norm = state.sb.FrobeniusNorm();
  return sf_norm * sf_norm + sb_norm * sb_norm;
}

Result<EmbeddingState> GreedyInit(const AffinityMatrices& affinity, int k,
                                  int t, uint64_t seed) {
  InitOptions options;
  options.k = k;
  options.t = t;
  options.seed = seed;
  return GreedyInit(WrapDense(affinity), options);
}

Result<EmbeddingState> SmGreedyInit(const AffinityMatrices& affinity, int k,
                                    int t, ThreadPool* pool, uint64_t seed) {
  InitOptions options;
  options.k = k;
  options.t = t;
  options.seed = seed;
  options.pool = pool;
  return SmGreedyInit(WrapDense(affinity), options);
}

Result<EmbeddingState> RandomInit(const AffinityMatrices& affinity, int k,
                                  uint64_t seed, ThreadPool* pool) {
  InitOptions options;
  options.k = k;
  options.seed = seed;
  options.pool = pool;
  return RandomInit(WrapDense(affinity), options);
}

}  // namespace pane
