// Top-level PANE driver: Algorithm 1 (single thread) and Algorithm 5
// (parallel), assembling affinity approximation (APMI / PAPMI), greedy
// initialization (GreedyInit / engine-aware SMGreedyInit) and CCD
// refinement (SVDCCD / PSVDCCD) into one Train() call, under one memory
// budget: --memory-budget-mb sizes the affinity panel scratch and the CCD
// strips, and decides whether the pipeline's four n x d factors (F', B',
// Sf, Sb) live in RAM or in memory-mapped spill slabs.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/core/affinity_engine.h"
#include "src/core/ccd.h"
#include "src/core/embedding.h"
#include "src/graph/graph.h"
#include "src/matrix/factor_slab.h"

namespace pane {

struct PaneOptions {
  /// Space budget k: each node gets Xf, Xb of length k/2, each attribute a
  /// Y of length k/2. Must be even. Paper default: 128.
  int k = 128;
  /// Random-walk stopping probability. Paper default: 0.5.
  double alpha = 0.5;
  /// Error threshold; sets t = ceil(log(eps)/log(1-alpha) - 1). Paper
  /// default: 0.015.
  double epsilon = 0.015;
  /// nb of Algorithm 5. 1 => the single-thread Algorithm 1 code paths.
  int num_threads = 1;
  /// CCD sweeps; 0 => use the derived t (Algorithm 1 behaviour). The
  /// Figures 7-8 experiments sweep this explicitly.
  int ccd_iterations = 0;
  /// Single whole-pipeline memory budget in MiB (--memory-budget-mb). Sizes
  /// the affinity engine's panel scratch and CCD's phase-2 strips, and —
  /// under SlabPolicy::kAuto — spills the four n x d factor slabs to
  /// memory-mapped files whenever 4 n d doubles exceed the budget, so
  /// graphs whose factors exceed RAM still run. 0 => unbounded, all in RAM.
  /// Spilled and in-RAM runs produce bitwise-identical embeddings.
  int64_t memory_budget_mb = 0;
  /// DEPRECATED alias for memory_budget_mb (--affinity-memory-mb); honored
  /// only when memory_budget_mb is 0. Remove after one release.
  int64_t affinity_memory_mb = 0;
  /// Slab backing decision; kAuto applies the budget rule above, kInRam /
  /// kMmap force one backing (benches, tests).
  SlabPolicy slab_policy = SlabPolicy::kAuto;
  /// Spill flavor once the policy says "spill": kPooled (default) routes
  /// all spilled slabs through one store::BufferPool — pages are evicted by
  /// a clock policy only under budget pressure, at pool-page granularity —
  /// while kFlat keeps the original self-managed whole-panel-release path.
  /// Both produce bitwise-identical embeddings.
  SpillMode spill_mode = SpillMode::kPooled;
  /// Directory for spill files ("" => the system temp directory). Files are
  /// removed when their slab is destroyed, including on error paths.
  std::string spill_dir;
  /// false => PANE-R: random instead of greedy initialization (Section 5.7).
  bool greedy_init = true;
  /// Seed for RandSVD sketches / random init.
  uint64_t seed = 42;
};

/// \brief Checks a PaneOptions for validity: k even and > 0, alpha and
/// epsilon in (0, 1), num_threads >= 1, ccd_iterations >= 0, budgets >= 0.
/// Called up front by Pane::Train and by the api layer's option validation.
Status ValidatePaneOptions(const PaneOptions& options);

/// \brief The budget actually in force: memory_budget_mb, falling back to
/// the deprecated affinity_memory_mb alias.
int64_t ResolvedMemoryBudgetMb(const PaneOptions& options);

/// \brief Phase timings and diagnostics from one Train() run.
struct PaneStats {
  int t = 0;                      ///< derived iteration count
  double affinity_seconds = 0.0;  ///< APMI / PAPMI phase
  AffinityEngineStats affinity;   ///< panel decomposition + scratch bytes
  double init_seconds = 0.0;      ///< GreedyInit / SMGreedyInit phase
  double ccd_seconds = 0.0;       ///< CCD refinement phase
  double total_seconds = 0.0;
  double objective_initial = 0.0;  ///< Equation (4) right after init
  double objective_final = 0.0;    ///< Equation (4) after refinement
  bool slabs_spilled = false;      ///< factors lived in mmap spill slabs
  bool pooled_spill = false;       ///< spilled through the shared BufferPool
  int64_t slab_bytes = 0;          ///< the four n x d factors (F',B',Sf,Sb)
  int init_blocks_overlapped = 0;  ///< init block SVDs run during affinity
  CcdStats ccd;                    ///< phase-2 strip decomposition
  store::BufferPool::Stats pool;   ///< eviction/write-back counters (pooled)
};

/// \brief Trains PANE embeddings on an attributed graph.
class Pane {
 public:
  explicit Pane(PaneOptions options) : options_(options) {}

  /// Runs the full pipeline. `stats` (optional) receives phase timings.
  Result<PaneEmbedding> Train(const AttributedGraph& graph,
                              PaneStats* stats = nullptr) const;

  const PaneOptions& options() const { return options_; }

 private:
  PaneOptions options_;
};

}  // namespace pane
