// Panel-streamed affinity engine: the unified production path behind APMI
// (Algorithm 2) and PAPMI (Algorithm 6). The attribute matrix R is
// partitioned into column panels; for each panel the truncated series of
// Equation (6) is evaluated with the fused SpMMPanelStep kernel — the
// running series accumulates directly into the output slab, so each
// in-flight panel needs only two n x panel_width scratch buffers — and the
// SPMI transform (Equation 7) is applied in place: fully fused per panel on
// the forward side (column sums are panel-local), and as one in-place
// row-parallel pass over the backward slab once all panels have landed (row
// sums span every panel).
//
// The outputs are FactorSlabs (src/matrix/factor_slab.h): in-RAM for the
// historical shape, or memory-mapped spill files when the caller's memory
// budget cannot hold the factors — panels then run sequentially and each
// finished panel's pages are dropped from the resident set, so peak RSS
// tracks the scratch budget rather than 2 n d. A consumer callback fires as
// panels land; the engine-aware greedy init uses the forward-complete event
// to start RandSVD-ing F' row blocks while the backward panels are still
// streaming.
//
// Peak scratch is O(n x panel_width x in-flight panels), derived from the
// caller-supplied memory budget. Column blocks of a sparse-dense product
// are independent (Lemma 4.1), and the engine preserves per-element
// summation order, so its output is bitwise identical to the historical
// serial APMI path for every panel decomposition, thread count, and slab
// backing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/status.h"
#include "src/core/affinity.h"
#include "src/graph/graph.h"
#include "src/matrix/csr_matrix.h"
#include "src/matrix/factor_slab.h"

namespace pane {

class ThreadPool;

/// \brief One finished column panel, reported to the consumer callback.
struct AffinityPanelEvent {
  bool forward = true;       ///< which direction's slab the panel landed in
  int64_t col_begin = 0;     ///< attribute column range of the panel
  int64_t col_end = 0;
  int64_t panels_done = 0;   ///< finished panels in this direction so far
  int64_t num_panels = 0;    ///< total panels per direction
  /// True on the event that completes the forward direction: F' (including
  /// its fused SPMI transform) is final and may be consumed while the
  /// backward panels are still streaming. B' is final only when the engine
  /// returns (its SPMI row pass spans every panel).
  bool forward_complete = false;
};

struct AffinityEngineOptions {
  /// Random-walk stopping probability, in (0, 1).
  double alpha = 0.5;
  /// Truncation depth of the series (>= 1).
  int t = 5;
  /// Worker pool; nullptr or size 1 => serial.
  ThreadPool* pool = nullptr;
  /// Memory budget in MiB for the panel scratch buffers (the output slabs
  /// and the normalized copies of R are not counted — they are fixed costs
  /// of the result itself; spilled slabs barely dent RSS at all). 0 =>
  /// unbounded: the panel width defaults to the whole attribute set when
  /// serial and ceil(d / num_threads) when pooled, which reproduces the
  /// historical APMI / PAPMI memory shapes.
  int64_t memory_budget_mb = 0;
  /// Explicit panel-width override (tests, benches). 0 => derive from the
  /// budget. Values > d are clamped to d.
  int64_t panel_width = 0;
  /// Backing for slabs the engine creates itself (the Result-returning
  /// entry points). ComputeAffinityIntoSlabs honors the caller's slabs.
  FactorSlab::Backing backing = FactorSlab::Backing::kInRam;
  /// Spill-file directory for engine-created mmap slabs ("" => temp dir).
  std::string spill_dir;
  /// Residency pool for engine-created kPooled slabs (not owned; must
  /// outlive them). Required when backing == kPooled.
  store::BufferPool* buffer_pool = nullptr;
  /// Optional panel consumer; invoked under an engine mutex (events are
  /// serialized) from whichever thread finished the panel.
  std::function<void(const AffinityPanelEvent&)> panel_consumer;
};

/// \brief How one engine run decomposed the problem; filled analytically
/// before the panels execute, so tests can assert the budget is respected.
struct AffinityEngineStats {
  int64_t panel_width = 0;   ///< columns per panel (last panel may be narrower)
  int64_t num_panels = 0;    ///< panels per direction
  int64_t scratch_bytes = 0; ///< peak panel scratch: in-flight x 2 x 8 x n x w
  int64_t output_bytes = 0;  ///< the two n x d output slabs
  bool budget_clamped = false;  ///< budget < one width-1 panel; ran at width 1
  bool panel_parallel = false;  ///< true: panels across workers;
                                ///< false: row blocks within a panel
  bool spilled = false;         ///< outputs went to memory-mapped slabs
};

/// \brief Core entry: runs the engine on prebuilt P, P^T and attribute
/// matrix R, writing into caller-owned slabs. The slabs must either be
/// empty (they are created with options.backing) or already shaped n x d —
/// pre-creating them is what lets a consumer callback observe them while
/// the run is in flight. Bitwise equal to Apmi() on the same inputs.
Status ComputeAffinityIntoSlabs(const CsrMatrix& p,
                                const CsrMatrix& p_transposed,
                                const CsrMatrix& r,
                                const AffinityEngineOptions& options,
                                AffinitySlabs* out,
                                AffinityEngineStats* stats = nullptr);

/// \brief Slab-returning convenience over ComputeAffinityIntoSlabs.
Result<AffinitySlabs> ComputeAffinitySlabs(const CsrMatrix& p,
                                           const CsrMatrix& p_transposed,
                                           const CsrMatrix& r,
                                           const AffinityEngineOptions& options,
                                           AffinityEngineStats* stats = nullptr);

/// \brief Legacy dense-output form: runs the engine into in-RAM slabs and
/// moves them out as (F', B') DenseMatrices; bitwise equal to Apmi() on the
/// same inputs.
Result<AffinityMatrices> ComputeAffinityPanels(
    const CsrMatrix& p, const CsrMatrix& p_transposed, const CsrMatrix& r,
    const AffinityEngineOptions& options,
    AffinityEngineStats* stats = nullptr);

/// \brief Graph-level entry: builds P and P^T exactly once (the single
/// construction point per embedding run) and runs the engine into
/// caller-owned slabs.
Status ComputeGraphAffinityIntoSlabs(const AttributedGraph& graph,
                                     const AffinityEngineOptions& options,
                                     AffinitySlabs* out,
                                     AffinityEngineStats* stats = nullptr);

/// \brief Graph-level dense form (legacy surface).
Result<AffinityMatrices> ComputeGraphAffinity(
    const AttributedGraph& graph, const AffinityEngineOptions& options,
    AffinityEngineStats* stats = nullptr);

}  // namespace pane
