// Panel-streamed affinity engine: the unified production path behind APMI
// (Algorithm 2) and PAPMI (Algorithm 6). The attribute matrix R is
// partitioned into column panels; for each panel the truncated series of
// Equation (6) is evaluated with the fused SpMMPanelStep kernel — the
// running series accumulates directly into the output slab, so each
// in-flight panel needs only two n x panel_width scratch buffers — and the
// SPMI transform (Equation 7) is applied in place: fully fused per panel on
// the forward side (column sums are panel-local), and as one in-place
// row-parallel pass over the backward slab once all panels have landed (row
// sums span every panel).
//
// Peak memory is 2 n d doubles for the outputs plus
// O(n x panel_width x in-flight panels) scratch; the panel width is derived
// from a caller-supplied memory budget. Column blocks of a sparse-dense
// product are independent (Lemma 4.1), and the engine preserves per-element
// summation order, so its output is bitwise identical to the historical
// serial APMI path for every panel decomposition and thread count.
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/core/affinity.h"
#include "src/graph/graph.h"
#include "src/matrix/csr_matrix.h"

namespace pane {

class ThreadPool;

struct AffinityEngineOptions {
  /// Random-walk stopping probability, in (0, 1).
  double alpha = 0.5;
  /// Truncation depth of the series (>= 1).
  int t = 5;
  /// Worker pool; nullptr or size 1 => serial.
  ThreadPool* pool = nullptr;
  /// Scratch budget in MiB for the panel buffers (the outputs and the
  /// normalized copies of R are not counted — they are fixed costs of the
  /// result itself). 0 => unbounded: the panel width defaults to the whole
  /// attribute set when serial and ceil(d / num_threads) when pooled, which
  /// reproduces the historical APMI / PAPMI memory shapes.
  int64_t memory_budget_mb = 0;
  /// Explicit panel-width override (tests, benches). 0 => derive from the
  /// budget. Values > d are clamped to d.
  int64_t panel_width = 0;
};

/// \brief How one engine run decomposed the problem; filled analytically
/// before the panels execute, so tests can assert the budget is respected.
struct AffinityEngineStats {
  int64_t panel_width = 0;   ///< columns per panel (last panel may be narrower)
  int64_t num_panels = 0;    ///< panels per direction
  int64_t scratch_bytes = 0; ///< peak panel scratch: in-flight x 2 x 8 x n x w
  int64_t output_bytes = 0;  ///< the two n x d output slabs
  bool budget_clamped = false;  ///< budget < one width-1 panel; ran at width 1
  bool panel_parallel = false;  ///< true: panels across workers;
                                ///< false: row blocks within a panel
};

/// \brief Runs the engine on prebuilt P, P^T and attribute matrix R.
/// Returns (F', B'); bitwise equal to Apmi() on the same inputs.
Result<AffinityMatrices> ComputeAffinityPanels(
    const CsrMatrix& p, const CsrMatrix& p_transposed, const CsrMatrix& r,
    const AffinityEngineOptions& options,
    AffinityEngineStats* stats = nullptr);

/// \brief Graph-level entry: builds P and P^T exactly once (the single
/// construction point per embedding run) and runs the engine.
Result<AffinityMatrices> ComputeGraphAffinity(
    const AttributedGraph& graph, const AffinityEngineOptions& options,
    AffinityEngineStats* stats = nullptr);

}  // namespace pane
