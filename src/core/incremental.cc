#include "src/core/incremental.h"

#include <memory>

#include "src/common/timer.h"
#include "src/core/affinity_engine.h"
#include "src/core/ccd.h"
#include "src/core/greedy_init.h"
#include "src/matrix/gemm.h"
#include "src/parallel/thread_pool.h"

namespace pane {

Result<PaneEmbedding> RefreshEmbedding(const AttributedGraph& updated_graph,
                                       const PaneEmbedding& previous,
                                       const RefreshOptions& options,
                                       RefreshStats* stats) {
  const int64_t n = updated_graph.num_nodes();
  const int64_t d = updated_graph.num_attributes();
  const int64_t h = previous.xf.cols();
  if (previous.y.rows() != d) {
    return Status::InvalidArgument(
        "attribute count changed; refresh requires a fixed attribute set");
  }
  if (previous.xf.rows() > n) {
    return Status::InvalidArgument(
        "node count shrank; compact/remap ids before refreshing");
  }
  if (options.ccd_iterations < 0) {
    return Status::InvalidArgument("ccd_iterations must be >= 0");
  }
  RefreshStats local;
  RefreshStats* out = stats != nullptr ? stats : &local;
  *out = RefreshStats{};
  WallTimer total_timer;

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  // Fresh affinity on the updated graph (the linear-time part); P and P^T
  // are built once inside the engine.
  AffinityMatrices affinity;
  {
    ScopedTimer timer(&out->affinity_seconds);
    AffinityEngineOptions engine_options;
    engine_options.alpha = options.alpha;
    engine_options.t = ComputeIterationCount(options.epsilon, options.alpha);
    engine_options.pool = pool.get();
    engine_options.memory_budget_mb = options.affinity_memory_mb;
    PANE_ASSIGN_OR_RETURN(affinity,
                          ComputeGraphAffinity(updated_graph, engine_options));
  }

  // Warm seed: old rows keep their embeddings; new nodes get the
  // projection seed X[v] = Affinity[v] . Y (the Y^T Y ~ I rule GreedyInit
  // uses for Xb, applied on both sides — no SVD needed).
  EmbeddingState state;
  state.y = previous.y;
  state.xf.Resize(n, h);
  state.xb.Resize(n, h);
  const int64_t n_prev = previous.xf.rows();
  state.xf.SetBlock(0, 0, previous.xf);
  state.xb.SetBlock(0, 0, previous.xb);
  if (n_prev < n) {
    DenseMatrix f_tail = affinity.forward.RowBlock(n_prev, n);
    DenseMatrix b_tail = affinity.backward.RowBlock(n_prev, n);
    DenseMatrix xf_tail, xb_tail;
    Gemm(f_tail, state.y, &xf_tail, pool.get());
    Gemm(b_tail, state.y, &xb_tail, pool.get());
    state.xf.SetBlock(n_prev, 0, xf_tail);
    state.xb.SetBlock(n_prev, 0, xb_tail);
  }
  GemmTransBAddScaled(state.xf, state.y, 1.0, affinity.forward, -1.0,
                      &state.sf, pool.get());
  GemmTransBAddScaled(state.xb, state.y, 1.0, affinity.backward, -1.0,
                      &state.sb, pool.get());
  out->objective_initial = Objective(state);

  {
    ScopedTimer timer(&out->ccd_seconds);
    CcdOptions ccd_options;
    ccd_options.iterations = options.ccd_iterations;
    ccd_options.pool = pool.get();
    PANE_RETURN_NOT_OK(CcdRefine(&state, ccd_options));
  }
  out->objective_final = Objective(state);
  out->total_seconds = total_timer.ElapsedSeconds();

  PaneEmbedding refreshed;
  refreshed.xf = std::move(state.xf);
  refreshed.xb = std::move(state.xb);
  refreshed.y = std::move(state.y);
  return refreshed;
}

}  // namespace pane
