#include "src/core/incremental.h"

#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/core/affinity_engine.h"
#include "src/core/ccd.h"
#include "src/core/greedy_init.h"
#include "src/matrix/gemm.h"
#include "src/parallel/thread_pool.h"

namespace pane {

Result<PaneEmbedding> RefreshEmbedding(const AttributedGraph& updated_graph,
                                       const PaneEmbedding& previous,
                                       const RefreshOptions& options,
                                       RefreshStats* stats) {
  const int64_t n = updated_graph.num_nodes();
  const int64_t d = updated_graph.num_attributes();
  const int64_t h = previous.xf.cols();
  if (previous.y.rows() != d) {
    return Status::InvalidArgument(
        "attribute count changed; refresh requires a fixed attribute set");
  }
  if (previous.xf.rows() > n) {
    return Status::InvalidArgument(
        "node count shrank; compact/remap ids before refreshing");
  }
  if (options.ccd_iterations < 0) {
    return Status::InvalidArgument("ccd_iterations must be >= 0");
  }
  if (options.memory_budget_mb < 0 || options.affinity_memory_mb < 0) {
    return Status::InvalidArgument("memory budgets must be >= 0");
  }
  RefreshStats local;
  RefreshStats* out = stats != nullptr ? stats : &local;
  *out = RefreshStats{};
  WallTimer total_timer;

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  // Same single-budget rule as Pane::Train: the refresh keeps four n x d
  // factors resident (F', B', Sf, Sb); spill them when over budget.
  const int64_t budget_mb = options.memory_budget_mb > 0
                                ? options.memory_budget_mb
                                : options.affinity_memory_mb;
  const int64_t slab_bytes =
      4 * n * d * static_cast<int64_t>(sizeof(double));
  FactorSlab::Backing backing =
      ResolveSlabBacking(options.slab_policy, budget_mb, slab_bytes);
  std::unique_ptr<store::BufferPool> buffer_pool;
  if (backing == FactorSlab::Backing::kMmap &&
      options.spill_mode == SpillMode::kPooled) {
    store::BufferPool::Options pool_options;
    pool_options.budget_bytes = (budget_mb << 20) / 2;
    buffer_pool = std::make_unique<store::BufferPool>(pool_options);
    backing = FactorSlab::Backing::kPooled;
  }
  out->slabs_spilled = backing != FactorSlab::Backing::kInRam;

  // Fresh affinity on the updated graph (the linear-time part); P and P^T
  // are built once inside the engine.
  AffinitySlabs affinity;
  {
    ScopedTimer timer(&out->affinity_seconds);
    AffinityEngineOptions engine_options;
    engine_options.alpha = options.alpha;
    engine_options.t = ComputeIterationCount(options.epsilon, options.alpha);
    engine_options.pool = pool.get();
    engine_options.memory_budget_mb = budget_mb;
    engine_options.backing = backing;
    engine_options.spill_dir = options.spill_dir;
    engine_options.buffer_pool = buffer_pool.get();
    PANE_RETURN_NOT_OK(ComputeGraphAffinityIntoSlabs(
        updated_graph, engine_options, &affinity, &out->affinity));
  }

  // Warm seed: old rows keep their embeddings; new nodes get the
  // projection seed X[v] = Affinity[v] . Y (the Y^T Y ~ I rule GreedyInit
  // uses for Xb, applied on both sides — no SVD needed). The tails stream
  // from the slabs as row views.
  EmbeddingState state;
  state.y = previous.y;
  state.xf.Resize(n, h);
  state.xb.Resize(n, h);
  const int64_t n_prev = previous.xf.rows();
  state.xf.SetBlock(0, 0, previous.xf);
  state.xb.SetBlock(0, 0, previous.xb);
  if (n_prev < n) {
    DenseMatrix xf_tail, xb_tail;
    Gemm(affinity.forward.ViewRows(n_prev, n), state.y, &xf_tail, pool.get());
    Gemm(affinity.backward.ViewRows(n_prev, n), state.y, &xb_tail,
         pool.get());
    state.xf.SetBlock(n_prev, 0, xf_tail);
    state.xb.SetBlock(n_prev, 0, xb_tail);
  }
  PANE_ASSIGN_OR_RETURN(state.sf,
                        FactorSlab::Create(n, d, backing, options.spill_dir,
                                           buffer_pool.get()));
  PANE_ASSIGN_OR_RETURN(state.sb,
                        FactorSlab::Create(n, d, backing, options.spill_dir,
                                           buffer_pool.get()));
  PANE_RETURN_NOT_OK(BuildResidualSlab(state.xf, state.y, affinity.forward,
                                       &state.sf, pool.get()));
  PANE_RETURN_NOT_OK(BuildResidualSlab(state.xb, state.y, affinity.backward,
                                       &state.sb, pool.get()));
  // F' / B' are consumed; free them (and any spill files) before CCD.
  affinity = AffinitySlabs{};
  out->objective_initial = Objective(state);

  {
    ScopedTimer timer(&out->ccd_seconds);
    CcdOptions ccd_options;
    ccd_options.iterations = options.ccd_iterations;
    ccd_options.pool = pool.get();
    ccd_options.memory_budget_mb = budget_mb;
    PANE_RETURN_NOT_OK(CcdRefine(&state, ccd_options));
  }
  out->objective_final = Objective(state);
  out->total_seconds = total_timer.ElapsedSeconds();

  PaneEmbedding refreshed;
  refreshed.xf = std::move(state.xf);
  refreshed.xb = std::move(state.xb);
  refreshed.y = std::move(state.y);
  return refreshed;
}

}  // namespace pane
