#include "src/core/affinity_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/sync.h"
#include "src/matrix/spmm.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// term + next, doubles.
constexpr int64_t kScratchBuffersPerPanel = 2;

// Row granularity at which spilled slabs give pages back during streaming
// passes (release calls are no-ops for in-RAM slabs).
constexpr int64_t kSpillReleaseRows = 4096;

Status ValidateEngineInputs(const CsrMatrix& p, const CsrMatrix& pt,
                            const CsrMatrix& r,
                            const AffinityEngineOptions& options) {
  if (p.rows() != p.cols()) {
    return Status::InvalidArgument("P must be square");
  }
  if (pt.rows() != p.rows() || pt.cols() != p.cols()) {
    return Status::InvalidArgument("P^T shape must match P");
  }
  if (p.rows() != r.rows()) {
    return Status::InvalidArgument("P and R row counts differ");
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (options.t < 1) return Status::InvalidArgument("t must be >= 1");
  if (options.memory_budget_mb < 0) {
    return Status::InvalidArgument("memory_budget_mb must be >= 0");
  }
  if (options.panel_width < 0) {
    return Status::InvalidArgument("panel_width must be >= 0");
  }
  return Status::OK();
}

// How one run decomposes: panel width, count, and which level of the pool
// the parallelism lives at.
struct PanelDecomposition {
  int64_t width = 0;
  int64_t num_panels = 0;
  bool panel_parallel = false;  // panels across workers vs rows within panel
  int64_t in_flight = 1;        // panels holding scratch concurrently
  bool clamped = false;
};

int64_t NumPanels(int64_t d, int64_t width) {
  return (d + width - 1) / width;
}

// Decides panel width and parallelism level from the explicit override, the
// memory budget, or the historical defaults. `num_workers` is the pool size
// (1 when serial). When panels run across workers, the caller of RunBlocks
// drains alongside them, so up to num_workers + 1 panels hold scratch at
// once and the budget is divided accordingly; when panels run in sequence
// (row-parallel SpMM inside each), a single panel owns all the scratch and
// gets the whole budget. Spilled runs force the sequential shape: finished
// panels immediately return their slab pages, so exactly one panel's pages
// plus one panel's scratch are resident at a time.
PanelDecomposition DecomposePanels(int64_t n, int64_t d, int64_t num_workers,
                                   const AffinityEngineOptions& options,
                                   bool allow_panel_parallel) {
  PanelDecomposition out;
  const int64_t bytes_per_column =
      kScratchBuffersPerPanel * static_cast<int64_t>(sizeof(double)) * n;
  const int64_t max_in_flight = num_workers > 1 ? num_workers + 1 : 1;

  const auto finish = [&](int64_t width) {
    out.width = width;
    out.num_panels = NumPanels(d, width);
    out.panel_parallel = allow_panel_parallel && num_workers > 1 &&
                         2 * out.num_panels >= num_workers;
    out.in_flight = out.panel_parallel
                        ? std::min(max_in_flight, 2 * out.num_panels)
                        : 1;
  };

  if (options.panel_width > 0) {
    finish(std::min(options.panel_width, d));
    return out;
  }
  if (options.memory_budget_mb <= 0) {
    // Unbounded: whole attribute set when serial (APMI), one block per
    // worker when pooled (PAPMI).
    finish(num_workers <= 1 ? d
                            : (d + num_workers - 1) / num_workers);
    return out;
  }

  const int64_t budget_bytes = options.memory_budget_mb << 20;
  // First assume a single in-flight panel (the row-parallel shape, which
  // uses the whole budget). Only when that already yields enough panels to
  // occupy the pool does the engine try panel-parallel execution, which
  // re-divides the budget across the concurrent panels.
  const int64_t solo_width = std::min(budget_bytes / bytes_per_column, d);
  if (!allow_panel_parallel) {
    if (solo_width >= 1) {
      out.width = solo_width;
      out.num_panels = NumPanels(d, out.width);
      return out;
    }
  } else {
    if (num_workers > 1 && solo_width >= 1 &&
        2 * NumPanels(d, solo_width) < num_workers) {
      finish(solo_width);
      return out;
    }
    const int64_t divided_width =
        budget_bytes / (bytes_per_column * max_in_flight);
    if (divided_width >= 1) {
      finish(std::min(divided_width, d));
      return out;
    }
    // The budget admits sequential panels but not one panel per in-flight
    // worker: respect the budget and keep the parallelism at the row level
    // inside each panel.
    if (solo_width >= 1) {
      out.width = std::min(solo_width, d);
      out.num_panels = NumPanels(d, out.width);
      return out;
    }
  }
  // Below even one sequential width-1 panel: clamp, and run sequentially so
  // the overshoot is a single panel's scratch, not max_in_flight of them.
  out.clamped = true;
  PANE_LOG(WARNING) << "affinity memory budget " << options.memory_budget_mb
                    << " MiB is below one width-1 panel ("
                    << bytes_per_column
                    << " bytes); clamping to one sequential width-1 panel";
  out.width = 1;
  out.num_panels = d;
  return out;
}

// One direction-tagged column panel [begin, end) of the attribute set.
struct PanelTask {
  bool forward = true;
  int64_t begin = 0;
  int64_t end = 0;
};

}  // namespace

Status ComputeAffinityIntoSlabs(const CsrMatrix& p,
                                const CsrMatrix& p_transposed,
                                const CsrMatrix& r,
                                const AffinityEngineOptions& options,
                                AffinitySlabs* out,
                                AffinityEngineStats* stats) {
  if (out == nullptr) return Status::InvalidArgument("null output slabs");
  PANE_RETURN_NOT_OK(ValidateEngineInputs(p, p_transposed, r, options));
  const int64_t n = r.rows();
  const int64_t d = r.cols();
  const double alpha = options.alpha;

  // Accept caller-created slabs (pre-created so a consumer can hold a
  // stable pointer during the run) or create them here.
  for (FactorSlab* slab : {&out->forward, &out->backward}) {
    if (slab->empty() && (slab->rows() != n || slab->cols() != d)) {
      PANE_ASSIGN_OR_RETURN(
          *slab, FactorSlab::Create(n, d, options.backing, options.spill_dir,
                                    options.buffer_pool));
    } else if (slab->rows() != n || slab->cols() != d) {
      return Status::InvalidArgument("output slab shape must be n x d");
    }
  }
  const bool spilled = out->forward.spilled() || out->backward.spilled();

  AffinityEngineStats local_stats;
  AffinityEngineStats* st = stats != nullptr ? stats : &local_stats;
  *st = AffinityEngineStats{};
  st->output_bytes = 2 * n * d * static_cast<int64_t>(sizeof(double));
  st->spilled = spilled;
  if (n == 0 || d == 0) return Status::OK();

  ThreadPool* pool =
      (options.pool != nullptr && options.pool->num_threads() > 1)
          ? options.pool
          : nullptr;
  const int64_t nb = pool != nullptr ? pool->num_threads() : 1;

  // Two-level parallelism: when there are enough panels to occupy the pool,
  // panels run across workers (each serial inside, the Algorithm 6 shape);
  // otherwise panels run in sequence and the pool row-partitions the SpMM
  // inside each panel. Either way each output element is produced by exactly
  // one thread with unchanged per-element summation order, so the result is
  // bitwise independent of the decomposition — including the spilled shape,
  // which always runs panels sequentially so it can return each finished
  // panel's pages before starting the next.
  const PanelDecomposition decomp =
      DecomposePanels(n, d, nb, options, /*allow_panel_parallel=*/!spilled);
  const int64_t width = decomp.width;
  const bool panel_parallel = decomp.panel_parallel;
  ThreadPool* row_pool = panel_parallel ? nullptr : pool;

  st->panel_width = width;
  st->num_panels = decomp.num_panels;
  st->budget_clamped = decomp.clamped;
  st->panel_parallel = panel_parallel;
  st->scratch_bytes = decomp.in_flight * kScratchBuffersPerPanel *
                      static_cast<int64_t>(sizeof(double)) * n * width;

  const CsrMatrix rr = r.RowNormalized();
  const CsrMatrix rc = r.ColNormalized();

  std::vector<PanelTask> tasks;
  tasks.reserve(static_cast<size_t>(2 * decomp.num_panels));
  for (const bool forward : {true, false}) {
    for (int64_t begin = 0; begin < d; begin += width) {
      tasks.push_back(PanelTask{forward, begin, std::min(begin + width, d)});
    }
  }

  // Panel-completion bookkeeping for the consumer callback. The mutex
  // guards the done counters and serializes consumer invocations (the
  // consumer contract: at most one callback at a time).
  Mutex consumer_mutex;
  int64_t forward_done = 0;
  int64_t backward_done = 0;
  const auto notify = [&](const PanelTask& task) {
    if (!options.panel_consumer) return;
    MutexLock lock(&consumer_mutex);
    AffinityPanelEvent event;
    event.forward = task.forward;
    event.col_begin = task.begin;
    event.col_end = task.end;
    event.num_panels = decomp.num_panels;
    int64_t& done = task.forward ? forward_done : backward_done;
    event.panels_done = ++done;
    event.forward_complete =
        task.forward && event.panels_done == decomp.num_panels;
    options.panel_consumer(event);
  };

  const auto run_panel = [&](const PanelTask& task) {
    const CsrMatrix& m = task.forward ? p : p_transposed;
    const CsrMatrix& r0 = task.forward ? rr : rc;
    FactorSlab* slab = task.forward ? &out->forward : &out->backward;
    const int64_t w = task.end - task.begin;

    // Scratch: the panel's current series term and the next-iteration
    // buffer. The running sum lives directly in the output slab stripe.
    DenseMatrix term = r0.ColSlice(task.begin, task.end).ToDense();
    DenseMatrix next;

    // l = 0 term of Equation (6): stripe = alpha * R0 panel (slab is
    // zero-initialized).
    const auto seed_rows = [&](int64_t row_begin, int64_t row_end) {
      for (int64_t i = row_begin; i < row_end; ++i) {
        double* slab_row = slab->Row(i) + task.begin;
        const double* term_row = term.Row(i);
        for (int64_t j = 0; j < w; ++j) slab_row[j] += alpha * term_row[j];
      }
    };
    if (row_pool != nullptr) {
      ParallelFor(row_pool, 0, n, seed_rows);
    } else {
      seed_rows(0, n);
    }

    // Lines 4-5 of Algorithm 2, fused: term <- (1-alpha) * M * term and
    // stripe += alpha * term in one pass per iteration.
    for (int l = 1; l <= options.t; ++l) {
      SpMMPanelStep(m, term, 1.0 - alpha, &next, alpha, slab->data(),
                    slab->cols(), task.begin, row_pool);
      std::swap(term, next);
    }

    if (task.forward) {
      // Fused SPMI transform (Equation 7, forward side): the column sums of
      // a column panel are panel-local, so F' can be finished in place here
      // without ever materializing the probability matrix.
      std::vector<double> col_sums(static_cast<size_t>(w), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const double* slab_row = slab->Row(i) + task.begin;
        for (int64_t j = 0; j < w; ++j) {
          col_sums[static_cast<size_t>(j)] += slab_row[j];
        }
      }
      const auto transform_rows = [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          double* slab_row = slab->Row(i) + task.begin;
          for (int64_t j = 0; j < w; ++j) {
            const double cs = col_sums[static_cast<size_t>(j)];
            slab_row[j] = cs > 0.0 ? std::log1p(n * slab_row[j] / cs) : 0.0;
          }
        }
      };
      if (row_pool != nullptr) {
        ParallelFor(row_pool, 0, n, transform_rows);
      } else {
        transform_rows(0, n);
      }
    }

    // Spilled panels run sequentially, so the finished panel can hand every
    // resident page of its slab back before the next panel starts — this is
    // what keeps affinity-phase RSS near the scratch budget instead of
    // 2 n d. (The pages stay authoritative in the page cache; later panels
    // and the backward SPMI pass refault what they touch.)
    DropResidencyOrWarn(*slab);
    notify(task);
  };

  if (panel_parallel) {
    pool->RunBlocks(static_cast<int>(tasks.size()),
                    [&](int b) { run_panel(tasks[static_cast<size_t>(b)]); });
  } else {
    for (const PanelTask& task : tasks) run_panel(task);
  }

  // SPMI transform, backward side: row sums span every panel, so B' is
  // finished with one in-place row-parallel pass over the completed slab.
  // Rows are contiguous, so a spilled slab streams this pass in chunks that
  // release their pages as they finish.
  const auto backward_rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t chunk = row_begin; chunk < row_end;
         chunk += kSpillReleaseRows) {
      const int64_t chunk_end = std::min(chunk + kSpillReleaseRows, row_end);
      for (int64_t i = chunk; i < chunk_end; ++i) {
        double* row = out->backward.Row(i);
        double rs = 0.0;
        for (int64_t j = 0; j < d; ++j) rs += row[j];
        if (rs > 0.0) {
          for (int64_t j = 0; j < d; ++j) {
            row[j] = std::log1p(d * row[j] / rs);
          }
        } else {
          // A row can sum to <= 0 with nonzero entries when attribute
          // weights carry mixed signs; the unfused reference defines B' as
          // all-zero there, and the raw accumulated probabilities must not
          // leak out.
          std::fill(row, row + d, 0.0);
        }
      }
      ReleaseRowsOrWarn(out->backward, chunk, chunk_end, /*dirty=*/true);
    }
  };
  if (pool != nullptr) {
    ParallelFor(pool, 0, n, backward_rows);
  } else {
    backward_rows(0, n);
  }
  return Status::OK();
}

Result<AffinitySlabs> ComputeAffinitySlabs(const CsrMatrix& p,
                                           const CsrMatrix& p_transposed,
                                           const CsrMatrix& r,
                                           const AffinityEngineOptions& options,
                                           AffinityEngineStats* stats) {
  AffinitySlabs out;
  PANE_RETURN_NOT_OK(
      ComputeAffinityIntoSlabs(p, p_transposed, r, options, &out, stats));
  return out;
}

Result<AffinityMatrices> ComputeAffinityPanels(
    const CsrMatrix& p, const CsrMatrix& p_transposed, const CsrMatrix& r,
    const AffinityEngineOptions& options, AffinityEngineStats* stats) {
  AffinityEngineOptions in_ram = options;
  in_ram.backing = FactorSlab::Backing::kInRam;
  PANE_ASSIGN_OR_RETURN(
      AffinitySlabs slabs,
      ComputeAffinitySlabs(p, p_transposed, r, in_ram, stats));
  AffinityMatrices out;
  out.forward = slabs.forward.TakeDense();
  out.backward = slabs.backward.TakeDense();
  return out;
}

Status ComputeGraphAffinityIntoSlabs(const AttributedGraph& graph,
                                     const AffinityEngineOptions& options,
                                     AffinitySlabs* out,
                                     AffinityEngineStats* stats) {
  // The one place P and P^T are constructed per embedding run; every caller
  // that used to build its own transposed copy now funnels through here.
  const CsrMatrix p = graph.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  return ComputeAffinityIntoSlabs(p, pt, graph.attributes(), options, out,
                                  stats);
}

Result<AffinityMatrices> ComputeGraphAffinity(const AttributedGraph& graph,
                                              const AffinityEngineOptions& options,
                                              AffinityEngineStats* stats) {
  const CsrMatrix p = graph.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  return ComputeAffinityPanels(p, pt, graph.attributes(), options, stats);
}

}  // namespace pane
