// The PANE output: forward / backward node embeddings and attribute
// embeddings, with the scoring functions the paper's downstream tasks use
// (attribute inference, Equation 21; link prediction, Equation 22) and
// binary save / load.
#pragma once

#include <string>

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/vector_ops.h"

namespace pane {

/// \brief Trained embeddings. xf / xb are n x k/2, y is d x k/2.
struct PaneEmbedding {
  DenseMatrix xf;
  DenseMatrix xb;
  DenseMatrix y;

  int64_t num_nodes() const { return xf.rows(); }
  int64_t num_attributes() const { return y.rows(); }
  /// Total space budget k (= 2 * per-side dimension).
  int64_t k() const { return 2 * xf.cols(); }

  /// Attribute-inference score p(v, r) = Xf[v].Y[r] + Xb[v].Y[r]
  /// ~= F[v, r] + B[v, r] (Equation 21).
  double AttributeScore(int64_t v, int64_t r) const {
    const double* yr = y.Row(r);
    return Dot(xf.Row(v), yr, xf.cols()) + Dot(xb.Row(v), yr, xb.cols());
  }

  Status Save(const std::string& path) const;
  static Result<PaneEmbedding> Load(const std::string& path);
};

/// \brief Link-prediction scorer (Equation 22):
///   p(u, w) = sum_r (Xf[u].Y[r]) (Xb[w].Y[r]) = Xf[u] (Y^T Y) Xb[w]^T.
///
/// Precomputes Z = Xb (Y^T Y) once so each pair costs one k/2-dot:
/// p(u, w) = Xf[u] . Z[w]. For undirected graphs use ScoreUndirected.
///
/// Owns copies of the data it scores with, so the scorer stays valid after
/// the source embedding is destroyed.
class EdgeScorer {
 public:
  explicit EdgeScorer(const PaneEmbedding& embedding);

  /// Builds the scorer directly from factor matrices (xf, xb: n x k/2,
  /// y: d x k/2) — the api-layer NodeEmbedding path.
  EdgeScorer(const DenseMatrix& xf, const DenseMatrix& xb,
             const DenseMatrix& y);

  /// Directed-edge score p(u -> w).
  double Score(int64_t u, int64_t w) const {
    return Dot(xf_.Row(u), xb_gram_.Row(w), xf_.cols());
  }

  /// p(u, w) + p(w, u), the paper's undirected-edge score.
  double ScoreUndirected(int64_t u, int64_t w) const {
    return Score(u, w) + Score(w, u);
  }

  /// Read-only views of the scoring operands — the forward factor and the
  /// precomputed Z = Xb (Y^T Y) — so the batched serving engine
  /// (src/serve/query_engine.h) can score through the scorer's exact
  /// arithmetic without re-deriving Z. Valid while the scorer lives.
  ConstMatrixView xf() const { return xf_.View(); }
  ConstMatrixView z() const { return xb_gram_.View(); }

 private:
  DenseMatrix xf_;       // copy of the forward factor, n x k/2
  DenseMatrix xb_gram_;  // Xb (Y^T Y), n x k/2
};

}  // namespace pane
