// Forward / backward node-attribute affinity (Section 2.2) shared
// definitions, plus the exact dense reference implementation that tests and
// the Table 2 running-example bench validate APMI against.
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/factor_slab.h"

namespace pane {

/// \brief The pair (F, B) of n x d affinity matrices.
struct AffinityMatrices {
  DenseMatrix forward;   // F (or its approximation F')
  DenseMatrix backward;  // B (or B')
};

/// \brief The pair (F', B') as FactorSlabs — the pipeline's native shape.
/// Under the in-RAM backing this is AffinityMatrices with a different coat;
/// under the mmap backing the factors live in spill files and consumers
/// stream row blocks. See src/matrix/factor_slab.h.
struct AffinitySlabs {
  FactorSlab forward;
  FactorSlab backward;
};

/// \brief Iteration count t = ceil(log(eps) / log(1 - alpha) - 1), clamped
/// to >= 1 (Algorithm 1, line 1). Guarantees (1 - alpha)^(t+1) <= eps.
int ComputeIterationCount(double epsilon, double alpha);

/// \brief Probability matrices P_f, P_b of Equation (6), truncated at t.
struct ProbabilityMatrices {
  DenseMatrix pf;  // n x d, P_f^(t)
  DenseMatrix pb;  // n x d, P_b^(t)
};

/// \brief Turns probability matrices into SPMI affinity (Equations 2-3 /
/// lines 6-8 of Algorithm 2): column-normalize pf and row-normalize pb,
/// then F' = ln(n * pf_hat + 1), B' = ln(d * pb_hat + 1).
///
/// Natural log is used; the base only scales the objective uniformly.
AffinityMatrices SpmiFromProbabilities(const ProbabilityMatrices& probs);

/// \brief Exact affinity via dense power-series evaluation: Equation (5)
/// truncated at machine precision. O(n^2 d) time, O(n^2) memory — reference
/// implementation for small graphs (tests, Table 2), written against dense
/// arithmetic so it shares no kernels with the CSR production path.
Result<AffinityMatrices> ExactAffinity(const AttributedGraph& graph,
                                       double alpha);

/// \brief Exact truncated probability matrices (same dense path), exposed so
/// tests can check the Lemma 3.1 bounds at a specific t.
Result<ProbabilityMatrices> ExactProbabilities(const AttributedGraph& graph,
                                               double alpha, int t);

}  // namespace pane
