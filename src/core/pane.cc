#include "src/core/pane.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/core/affinity_engine.h"
#include "src/core/ccd.h"
#include "src/core/greedy_init.h"
#include "src/parallel/thread_pool.h"

namespace pane {

Status ValidatePaneOptions(const PaneOptions& options) {
  if (options.k < 2 || options.k % 2 != 0) {
    return Status::InvalidArgument("k must be even and >= 2");
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.ccd_iterations < 0) {
    return Status::InvalidArgument("ccd_iterations must be >= 0");
  }
  if (options.memory_budget_mb < 0) {
    return Status::InvalidArgument("memory_budget_mb must be >= 0");
  }
  if (options.affinity_memory_mb < 0) {
    return Status::InvalidArgument("affinity_memory_mb must be >= 0");
  }
  return Status::OK();
}

int64_t ResolvedMemoryBudgetMb(const PaneOptions& options) {
  if (options.memory_budget_mb > 0) return options.memory_budget_mb;
  return options.affinity_memory_mb;
}

Result<PaneEmbedding> Pane::Train(const AttributedGraph& graph,
                                  PaneStats* stats) const {
  const PaneOptions& opt = options_;
  PANE_RETURN_NOT_OK(ValidatePaneOptions(opt));
  if (graph.num_nodes() == 0 || graph.num_attributes() == 0) {
    return Status::InvalidArgument("graph must have nodes and attributes");
  }
  if (opt.k / 2 > graph.num_attributes()) {
    PANE_LOG(WARNING) << "k/2 = " << opt.k / 2 << " exceeds d = "
                      << graph.num_attributes()
                      << "; surplus dimensions carry no signal";
  }
  const int64_t budget_mb = ResolvedMemoryBudgetMb(opt);
  if (opt.memory_budget_mb == 0 && opt.affinity_memory_mb > 0) {
    PANE_LOG(WARNING) << "affinity_memory_mb is deprecated; it now feeds the "
                         "whole-pipeline budget — use memory_budget_mb";
  }

  const int t = ComputeIterationCount(opt.epsilon, opt.alpha);
  const int ccd_iters = opt.ccd_iterations > 0 ? opt.ccd_iterations : t;
  PaneStats local_stats;
  PaneStats* out_stats = stats != nullptr ? stats : &local_stats;
  *out_stats = PaneStats{};
  out_stats->t = t;

  WallTimer total_timer;
  std::unique_ptr<ThreadPool> pool;
  if (opt.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(opt.num_threads);
  }

  // One budget, one backing decision: the pipeline's resident factor cost
  // is the four n x d slabs (F', B' during affinity/init, Sf, Sb through
  // CCD); when that exceeds the budget they all go to mmap spill files —
  // by default through a shared BufferPool whose residency budget is half
  // the pipeline budget (the other half stays with the panel scratch and
  // CCD strips).
  const int64_t n = graph.num_nodes();
  const int64_t d = graph.num_attributes();
  const int64_t slab_bytes =
      4 * n * d * static_cast<int64_t>(sizeof(double));
  FactorSlab::Backing backing =
      ResolveSlabBacking(opt.slab_policy, budget_mb, slab_bytes);
  std::unique_ptr<store::BufferPool> buffer_pool;
  if (backing == FactorSlab::Backing::kMmap &&
      opt.spill_mode == SpillMode::kPooled) {
    store::BufferPool::Options pool_options;
    pool_options.budget_bytes = (budget_mb << 20) / 2;
    buffer_pool = std::make_unique<store::BufferPool>(pool_options);
    backing = FactorSlab::Backing::kPooled;
  }
  out_stats->slabs_spilled = backing != FactorSlab::Backing::kInRam;
  out_stats->pooled_spill = buffer_pool != nullptr;
  out_stats->slab_bytes = slab_bytes;

  // Phase 1: affinity approximation (Algorithm 2 / 6) via the
  // panel-streamed engine; P and P^T are built once inside it. The slabs
  // are created up front so the engine-aware init can watch them fill.
  AffinitySlabs affinity;
  PANE_ASSIGN_OR_RETURN(
      affinity.forward,
      FactorSlab::Create(n, d, backing, opt.spill_dir, buffer_pool.get()));
  PANE_ASSIGN_OR_RETURN(
      affinity.backward,
      FactorSlab::Create(n, d, backing, opt.spill_dir, buffer_pool.get()));

  InitOptions init_options;
  init_options.k = opt.k;
  init_options.t = t;
  init_options.seed = opt.seed;
  init_options.pool = pool.get();
  init_options.residual_backing = backing;
  init_options.spill_dir = opt.spill_dir;
  init_options.memory_budget_mb = budget_mb;
  init_options.buffer_pool = buffer_pool.get();

  // Declared after `affinity` so its destructor (which joins the helper
  // thread reading the slabs) runs first on every exit path.
  std::optional<EngineAwareInit> streamed_init;
  if (opt.greedy_init && pool != nullptr) {
    streamed_init.emplace(&affinity, init_options);
  }

  {
    ScopedTimer timer(&out_stats->affinity_seconds);
    AffinityEngineOptions engine_options;
    engine_options.alpha = opt.alpha;
    engine_options.t = t;
    engine_options.pool = pool.get();
    engine_options.memory_budget_mb = budget_mb;
    engine_options.spill_dir = opt.spill_dir;
    if (streamed_init.has_value()) {
      // Fold Algorithm 7's per-block F' SVDs into the panel stream: they
      // start the moment the forward slab is final, while the backward
      // panels are still running.
      engine_options.panel_consumer = [&](const AffinityPanelEvent& event) {
        if (event.forward_complete) streamed_init->OnForwardSlabComplete();
      };
    }
    PANE_RETURN_NOT_OK(ComputeGraphAffinityIntoSlabs(
        graph, engine_options, &affinity, &out_stats->affinity));
  }

  // Phase 2a: seeding (Algorithm 3 / 7, or random for PANE-R).
  EmbeddingState state;
  {
    ScopedTimer timer(&out_stats->init_seconds);
    if (!opt.greedy_init) {
      PANE_ASSIGN_OR_RETURN(state, RandomInit(affinity, init_options));
    } else if (streamed_init.has_value()) {
      PANE_ASSIGN_OR_RETURN(state, streamed_init->Finish());
      out_stats->init_blocks_overlapped = streamed_init->blocks_overlapped();
    } else {
      PANE_ASSIGN_OR_RETURN(state, GreedyInit(affinity, init_options));
    }
  }
  // F' / B' are fully consumed: free them (and their spill files) before
  // CCD instead of carrying 2 n d dead weight through refinement.
  streamed_init.reset();
  affinity = AffinitySlabs{};
  out_stats->objective_initial = Objective(state);

  // Phase 2b: CCD refinement (Algorithm 4 / 8).
  {
    ScopedTimer timer(&out_stats->ccd_seconds);
    CcdOptions ccd_options;
    ccd_options.iterations = ccd_iters;
    ccd_options.pool = pool.get();
    ccd_options.memory_budget_mb = budget_mb;
    ccd_options.stats = &out_stats->ccd;
    PANE_RETURN_NOT_OK(CcdRefine(&state, ccd_options));
  }
  out_stats->objective_final = Objective(state);
  out_stats->total_seconds = total_timer.ElapsedSeconds();
  if (buffer_pool != nullptr) out_stats->pool = buffer_pool->stats();

  PaneEmbedding embedding;
  embedding.xf = std::move(state.xf);
  embedding.xb = std::move(state.xb);
  embedding.y = std::move(state.y);
  return embedding;
}

}  // namespace pane
