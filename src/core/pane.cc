#include "src/core/pane.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/core/affinity_engine.h"
#include "src/core/ccd.h"
#include "src/core/greedy_init.h"
#include "src/parallel/thread_pool.h"

namespace pane {

Status ValidatePaneOptions(const PaneOptions& options) {
  if (options.k < 2 || options.k % 2 != 0) {
    return Status::InvalidArgument("k must be even and >= 2");
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options.ccd_iterations < 0) {
    return Status::InvalidArgument("ccd_iterations must be >= 0");
  }
  if (options.affinity_memory_mb < 0) {
    return Status::InvalidArgument("affinity_memory_mb must be >= 0");
  }
  return Status::OK();
}

Result<PaneEmbedding> Pane::Train(const AttributedGraph& graph,
                                  PaneStats* stats) const {
  const PaneOptions& opt = options_;
  PANE_RETURN_NOT_OK(ValidatePaneOptions(opt));
  if (graph.num_nodes() == 0 || graph.num_attributes() == 0) {
    return Status::InvalidArgument("graph must have nodes and attributes");
  }
  if (opt.k / 2 > graph.num_attributes()) {
    PANE_LOG(WARNING) << "k/2 = " << opt.k / 2 << " exceeds d = "
                      << graph.num_attributes()
                      << "; surplus dimensions carry no signal";
  }

  const int t = ComputeIterationCount(opt.epsilon, opt.alpha);
  const int ccd_iters = opt.ccd_iterations > 0 ? opt.ccd_iterations : t;
  PaneStats local_stats;
  PaneStats* out_stats = stats != nullptr ? stats : &local_stats;
  *out_stats = PaneStats{};
  out_stats->t = t;

  WallTimer total_timer;
  std::unique_ptr<ThreadPool> pool;
  if (opt.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(opt.num_threads);
  }

  // Phase 1: affinity approximation (Algorithm 2 / 6) via the
  // panel-streamed engine; P and P^T are built once inside it.
  AffinityMatrices affinity;
  {
    ScopedTimer timer(&out_stats->affinity_seconds);
    AffinityEngineOptions engine_options;
    engine_options.alpha = opt.alpha;
    engine_options.t = t;
    engine_options.pool = pool.get();
    engine_options.memory_budget_mb = opt.affinity_memory_mb;
    PANE_ASSIGN_OR_RETURN(
        affinity,
        ComputeGraphAffinity(graph, engine_options, &out_stats->affinity));
  }

  // Phase 2a: seeding (Algorithm 3 / 7, or random for PANE-R).
  EmbeddingState state;
  {
    ScopedTimer timer(&out_stats->init_seconds);
    if (!opt.greedy_init) {
      PANE_ASSIGN_OR_RETURN(state,
                            RandomInit(affinity, opt.k, opt.seed, pool.get()));
    } else if (pool != nullptr) {
      PANE_ASSIGN_OR_RETURN(
          state, SmGreedyInit(affinity, opt.k, t, pool.get(), opt.seed));
    } else {
      PANE_ASSIGN_OR_RETURN(state, GreedyInit(affinity, opt.k, t, opt.seed));
    }
  }
  out_stats->objective_initial = Objective(state);

  // Phase 2b: CCD refinement (Algorithm 4 / 8).
  {
    ScopedTimer timer(&out_stats->ccd_seconds);
    CcdOptions ccd_options;
    ccd_options.iterations = ccd_iters;
    ccd_options.pool = pool.get();
    PANE_RETURN_NOT_OK(CcdRefine(&state, ccd_options));
  }
  out_stats->objective_final = Objective(state);
  out_stats->total_seconds = total_timer.ElapsedSeconds();

  PaneEmbedding embedding;
  embedding.xf = std::move(state.xf);
  embedding.xb = std::move(state.xb);
  embedding.y = std::move(state.y);
  return embedding;
}

}  // namespace pane
