#include "src/core/apmi.h"

#include "src/matrix/spmm.h"

namespace pane {
namespace {

Status ValidateInputs(const ApmiInputs& in) {
  if (in.p == nullptr || in.p_transposed == nullptr || in.r == nullptr) {
    return Status::InvalidArgument("APMI inputs must be non-null");
  }
  if (in.p->rows() != in.p->cols()) {
    return Status::InvalidArgument("P must be square");
  }
  if (in.p->rows() != in.r->rows()) {
    return Status::InvalidArgument("P and R row counts differ");
  }
  if (in.alpha <= 0.0 || in.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (in.t < 1) return Status::InvalidArgument("t must be >= 1");
  return Status::OK();
}

// Reference path: acc = alpha * sum_{l=0..t} (1-alpha)^l M^l R0 with dense
// term / next / acc intermediates — the memory shape the panel-streamed
// engine exists to avoid. Kept for ApmiProbabilities (Lemma 3.1 tests).
void TruncatedSeries(const CsrMatrix& m, const CsrMatrix& r0, double alpha,
                     int t, DenseMatrix* acc) {
  DenseMatrix term = r0.ToDense();
  acc->Resize(term.rows(), term.cols());
  acc->Axpy(alpha, term);
  DenseMatrix next;
  for (int l = 1; l <= t; ++l) {
    SpMMAddScaled(m, term, 1.0 - alpha, term, 0.0, &next);
    std::swap(term, next);
    acc->Axpy(alpha, term);
  }
}

AffinityEngineOptions EngineOptions(const ApmiInputs& inputs,
                                    ThreadPool* pool) {
  AffinityEngineOptions options;
  options.alpha = inputs.alpha;
  options.t = inputs.t;
  options.pool = pool;
  options.memory_budget_mb = inputs.memory_budget_mb;
  return options;
}

}  // namespace

Result<ProbabilityMatrices> ApmiProbabilities(const ApmiInputs& inputs) {
  PANE_RETURN_NOT_OK(ValidateInputs(inputs));
  const CsrMatrix rr = inputs.r->RowNormalized();
  const CsrMatrix rc = inputs.r->ColNormalized();
  ProbabilityMatrices probs;
  TruncatedSeries(*inputs.p, rr, inputs.alpha, inputs.t, &probs.pf);
  TruncatedSeries(*inputs.p_transposed, rc, inputs.alpha, inputs.t, &probs.pb);
  return probs;
}

Result<AffinityMatrices> Apmi(const ApmiInputs& inputs,
                              AffinityEngineStats* stats) {
  PANE_RETURN_NOT_OK(ValidateInputs(inputs));
  return ComputeAffinityPanels(*inputs.p, *inputs.p_transposed, *inputs.r,
                               EngineOptions(inputs, /*pool=*/nullptr),
                               stats);
}

Result<AffinityMatrices> ComputeAffinity(const AttributedGraph& graph,
                                         double alpha, double epsilon,
                                         ThreadPool* pool,
                                         int64_t memory_budget_mb,
                                         AffinityEngineStats* stats) {
  AffinityEngineOptions options;
  options.alpha = alpha;
  options.t = ComputeIterationCount(epsilon, alpha);
  options.pool = pool;
  options.memory_budget_mb = memory_budget_mb;
  return ComputeGraphAffinity(graph, options, stats);
}

}  // namespace pane
