#include "src/core/embedding.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "src/matrix/gemm.h"

namespace pane {
namespace {

constexpr uint64_t kEmbeddingMagic = 0x50414e45454d4231ULL;  // "PANEEMB1"

void AppendMatrix(std::string* buf, const DenseMatrix& m) {
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  buf->append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  buf->append(reinterpret_cast<const char*>(&cols), sizeof(cols));
  buf->append(reinterpret_cast<const char*>(m.data()),
              static_cast<size_t>(m.size()) * sizeof(double));
}

Status ReadMatrix(std::istream* in, DenseMatrix* m) {
  int64_t rows = 0, cols = 0;
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!*in || rows < 0 || cols < 0) {
    return Status::IOError("truncated embedding file");
  }
  m->Resize(rows, cols);
  in->read(reinterpret_cast<char*>(m->data()),
           static_cast<std::streamsize>(m->size() * sizeof(double)));
  if (!*in) return Status::IOError("truncated embedding file");
  return Status::OK();
}

}  // namespace

Status PaneEmbedding::Save(const std::string& path) const {
  std::string buf;
  buf.append(reinterpret_cast<const char*>(&kEmbeddingMagic),
             sizeof(kEmbeddingMagic));
  AppendMatrix(&buf, xf);
  AppendMatrix(&buf, xb);
  AppendMatrix(&buf, y);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<PaneEmbedding> PaneEmbedding::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kEmbeddingMagic) {
    return Status::InvalidArgument("not a PANE embedding file: " + path);
  }
  PaneEmbedding e;
  PANE_RETURN_NOT_OK(ReadMatrix(&in, &e.xf));
  PANE_RETURN_NOT_OK(ReadMatrix(&in, &e.xb));
  PANE_RETURN_NOT_OK(ReadMatrix(&in, &e.y));
  if (e.xf.rows() != e.xb.rows() || e.xf.cols() != e.xb.cols() ||
      e.y.cols() != e.xf.cols()) {
    return Status::InvalidArgument("inconsistent embedding shapes in " + path);
  }
  return e;
}

EdgeScorer::EdgeScorer(const PaneEmbedding& embedding)
    : EdgeScorer(embedding.xf, embedding.xb, embedding.y) {}

EdgeScorer::EdgeScorer(const DenseMatrix& xf, const DenseMatrix& xb,
                       const DenseMatrix& y)
    : xf_(xf) {
  // Gram = Y^T Y (k/2 x k/2), then Z = Xb Gram.
  DenseMatrix gram;
  GemmTransA(y, y, &gram);
  Gemm(xb, gram, &xb_gram_);
}

}  // namespace pane
