#include "src/core/papmi.h"

namespace pane {

Result<AffinityMatrices> Papmi(const PapmiInputs& inputs,
                               AffinityEngineStats* stats) {
  if (inputs.p == nullptr || inputs.p_transposed == nullptr ||
      inputs.r == nullptr) {
    return Status::InvalidArgument("PAPMI inputs must be non-null");
  }
  AffinityEngineOptions options;
  options.alpha = inputs.alpha;
  options.t = inputs.t;
  options.pool = inputs.pool;
  options.memory_budget_mb = inputs.memory_budget_mb;
  return ComputeAffinityPanels(*inputs.p, *inputs.p_transposed, *inputs.r,
                               options, stats);
}

}  // namespace pane
