#include "src/core/papmi.h"

#include <cmath>

#include "src/matrix/spmm.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Per-block series accumulation: identical arithmetic to APMI's
// TruncatedSeries restricted to the attribute columns [col_begin, col_end).
void BlockSeries(const CsrMatrix& m, const CsrMatrix& r0_slice, double alpha,
                 int t, DenseMatrix* acc) {
  DenseMatrix term = r0_slice.ToDense();
  acc->Resize(term.rows(), term.cols());
  acc->Axpy(alpha, term);
  DenseMatrix next;
  for (int l = 1; l <= t; ++l) {
    SpMMAddScaled(m, term, 1.0 - alpha, term, 0.0, &next);
    std::swap(term, next);
    acc->Axpy(alpha, term);
  }
}

}  // namespace

Result<AffinityMatrices> Papmi(const PapmiInputs& inputs) {
  if (inputs.pool == nullptr || inputs.pool->num_threads() == 1) {
    return Apmi(inputs);
  }
  if (inputs.p == nullptr || inputs.p_transposed == nullptr ||
      inputs.r == nullptr) {
    return Status::InvalidArgument("PAPMI inputs must be non-null");
  }
  ThreadPool* pool = inputs.pool;
  const int nb = pool->num_threads();
  const int64_t n = inputs.r->rows();
  const int64_t d = inputs.r->cols();

  const CsrMatrix rr = inputs.r->RowNormalized();
  const CsrMatrix rc = inputs.r->ColNormalized();

  // Lines 2-8: each worker iterates its own attribute-column block of
  // Pf / Pb; results are concatenated into the full n x d panels.
  const std::vector<Range> attr_blocks = PartitionRange(d, nb);
  ProbabilityMatrices probs;
  probs.pf.Resize(n, d);
  probs.pb.Resize(n, d);
  pool->RunBlocks(nb, [&](int b) {
    const Range& blk = attr_blocks[static_cast<size_t>(b)];
    if (blk.size() == 0) return;
    const CsrMatrix rr_slice = rr.ColSlice(blk.begin, blk.end);
    const CsrMatrix rc_slice = rc.ColSlice(blk.begin, blk.end);
    DenseMatrix pf_block, pb_block;
    BlockSeries(*inputs.p, rr_slice, inputs.alpha, inputs.t, &pf_block);
    BlockSeries(*inputs.p_transposed, rc_slice, inputs.alpha, inputs.t,
                &pb_block);
    probs.pf.SetBlock(0, blk.begin, pf_block);
    probs.pb.SetBlock(0, blk.begin, pb_block);
  });

  // Lines 9-10: normalization denominators over the full matrices.
  const std::vector<double> pf_col_sums = probs.pf.ColumnSums();
  const std::vector<double> pb_row_sums = probs.pb.RowSums();

  // Lines 11-13: SPMI transform, parallel over node row blocks.
  AffinityMatrices out;
  out.forward.Resize(n, d);
  out.backward.Resize(n, d);
  const std::vector<Range> node_blocks = PartitionRange(n, nb);
  pool->RunBlocks(nb, [&](int b) {
    const Range& blk = node_blocks[static_cast<size_t>(b)];
    for (int64_t i = blk.begin; i < blk.end; ++i) {
      const double* pf_row = probs.pf.Row(i);
      const double* pb_row = probs.pb.Row(i);
      double* f_row = out.forward.Row(i);
      double* b_row = out.backward.Row(i);
      const double rs = pb_row_sums[static_cast<size_t>(i)];
      for (int64_t j = 0; j < d; ++j) {
        const double cs = pf_col_sums[static_cast<size_t>(j)];
        f_row[j] = cs > 0.0 ? std::log1p(n * pf_row[j] / cs) : 0.0;
        b_row[j] = rs > 0.0 ? std::log1p(d * pb_row[j] / rs) : 0.0;
      }
    }
  });
  return out;
}

}  // namespace pane
