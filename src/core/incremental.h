// Warm-start embedding refresh for evolving graphs — the "time-varying
// graphs where attributes and node connections change over time" extension
// the paper's conclusion names as future work. Instead of re-running the
// full pipeline after a batch of edge/attribute updates, RefreshEmbedding
// recomputes the (cheap, linear-time) affinity matrices on the updated
// graph and re-seeds CCD from the *previous* embedding, which for modest
// update batches sits far closer to the new optimum than either a fresh
// RandSVD or a random seed — so a handful of CCD sweeps suffices.
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/core/embedding.h"
#include "src/core/pane.h"
#include "src/graph/graph.h"

namespace pane {

struct RefreshOptions {
  /// CCD sweeps applied on top of the warm start (typically 1-3).
  int ccd_iterations = 2;
  double alpha = 0.5;
  double epsilon = 0.015;
  int num_threads = 1;
  /// Scratch budget in MiB for the affinity engine's streamed panels
  /// (0 => unbounded); see src/core/affinity_engine.h.
  int64_t affinity_memory_mb = 0;
};

/// \brief Statistics from one refresh.
struct RefreshStats {
  double affinity_seconds = 0.0;
  double ccd_seconds = 0.0;
  double total_seconds = 0.0;
  double objective_initial = 0.0;  ///< Eq. 4 right after warm-seeding
  double objective_final = 0.0;
};

/// \brief Refreshes `previous` onto `updated_graph`.
///
/// Requirements: same attribute count d and per-side dimension as
/// `previous`; the node count may grow (new nodes are seeded from B' Y,
/// i.e. the GreedyInit backward rule, which needs no SVD) but not shrink —
/// delete-and-compact is the caller's remapping concern.
Result<PaneEmbedding> RefreshEmbedding(const AttributedGraph& updated_graph,
                                       const PaneEmbedding& previous,
                                       const RefreshOptions& options,
                                       RefreshStats* stats = nullptr);

}  // namespace pane
