// Warm-start embedding refresh for evolving graphs — the "time-varying
// graphs where attributes and node connections change over time" extension
// the paper's conclusion names as future work. Instead of re-running the
// full pipeline after a batch of edge/attribute updates, RefreshEmbedding
// recomputes the (cheap, linear-time) affinity matrices on the updated
// graph and re-seeds CCD from the *previous* embedding, which for modest
// update batches sits far closer to the new optimum than either a fresh
// RandSVD or a random seed — so a handful of CCD sweeps suffices.
//
// The refresh rides the same FactorSlab storage as Pane::Train: one
// --memory-budget-mb sizes the affinity panels and CCD strips and spills
// the four n x d factors to memory-mapped files when they exceed it.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/core/embedding.h"
#include "src/core/pane.h"
#include "src/graph/graph.h"
#include "src/matrix/factor_slab.h"

namespace pane {

struct RefreshOptions {
  /// CCD sweeps applied on top of the warm start (typically 1-3).
  int ccd_iterations = 2;
  double alpha = 0.5;
  double epsilon = 0.015;
  int num_threads = 1;
  /// Whole-pipeline memory budget in MiB, as in PaneOptions: panel scratch,
  /// CCD strips, and the slab spill decision. 0 => unbounded, all in RAM.
  int64_t memory_budget_mb = 0;
  /// DEPRECATED alias for memory_budget_mb; honored when it is 0.
  int64_t affinity_memory_mb = 0;
  /// Slab backing decision (kAuto => spill when 4 n d exceeds the budget).
  SlabPolicy slab_policy = SlabPolicy::kAuto;
  /// Spill flavor once spilling: pooled (shared BufferPool, default) or the
  /// flat self-managed path — see PaneOptions::spill_mode.
  SpillMode spill_mode = SpillMode::kPooled;
  /// Spill-file directory ("" => temp dir).
  std::string spill_dir;
};

/// \brief Statistics from one refresh.
struct RefreshStats {
  double affinity_seconds = 0.0;
  double ccd_seconds = 0.0;
  double total_seconds = 0.0;
  double objective_initial = 0.0;  ///< Eq. 4 right after warm-seeding
  double objective_final = 0.0;
  AffinityEngineStats affinity;    ///< panel decomposition + scratch bytes
  bool slabs_spilled = false;      ///< factors lived in mmap spill slabs
};

/// \brief Refreshes `previous` onto `updated_graph`.
///
/// Requirements: same attribute count d and per-side dimension as
/// `previous`; the node count may grow (new nodes are seeded from B' Y,
/// i.e. the GreedyInit backward rule, which needs no SVD) but not shrink —
/// delete-and-compact is the caller's remapping concern.
Result<PaneEmbedding> RefreshEmbedding(const AttributedGraph& updated_graph,
                                       const PaneEmbedding& previous,
                                       const RefreshOptions& options,
                                       RefreshStats* stats = nullptr);

}  // namespace pane
