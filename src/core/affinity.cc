#include "src/core/affinity.h"

#include <cmath>

#include "src/common/logging.h"

namespace pane {

int ComputeIterationCount(double epsilon, double alpha) {
  PANE_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon must be in (0, 1)";
  PANE_CHECK(alpha > 0.0 && alpha < 1.0) << "alpha must be in (0, 1)";
  const double t = std::log(epsilon) / std::log(1.0 - alpha) - 1.0;
  const int rounded = static_cast<int>(std::ceil(t - 1e-9));
  return rounded < 1 ? 1 : rounded;
}

AffinityMatrices SpmiFromProbabilities(const ProbabilityMatrices& probs) {
  const int64_t n = probs.pf.rows();
  const int64_t d = probs.pf.cols();
  AffinityMatrices out;
  out.forward.Resize(n, d);
  out.backward.Resize(n, d);

  // F' = ln(n * pf / colsum(pf) + 1); zero columns stay ln(1) = 0.
  const std::vector<double> col_sums = probs.pf.ColumnSums();
  for (int64_t i = 0; i < n; ++i) {
    const double* pf_row = probs.pf.Row(i);
    double* f_row = out.forward.Row(i);
    for (int64_t j = 0; j < d; ++j) {
      const double cs = col_sums[static_cast<size_t>(j)];
      f_row[j] = cs > 0.0 ? std::log1p(n * pf_row[j] / cs) : 0.0;
    }
  }

  // B' = ln(d * pb / rowsum(pb) + 1); zero rows stay 0.
  for (int64_t i = 0; i < n; ++i) {
    const double* pb_row = probs.pb.Row(i);
    double* b_row = out.backward.Row(i);
    double rs = 0.0;
    for (int64_t j = 0; j < d; ++j) rs += pb_row[j];
    if (rs > 0.0) {
      for (int64_t j = 0; j < d; ++j) {
        b_row[j] = std::log1p(d * pb_row[j] / rs);
      }
    }
  }
  return out;
}

Result<ProbabilityMatrices> ExactProbabilities(const AttributedGraph& graph,
                                               double alpha, int t) {
  const int64_t n = graph.num_nodes();
  if (n > 4000) {
    return Status::InvalidArgument(
        "ExactProbabilities is a dense O(n^2 d) reference; use APMI for "
        "graphs beyond a few thousand nodes");
  }
  const DenseMatrix p = graph.RandomWalkMatrix().ToDense();
  const DenseMatrix pt = p.Transposed();
  const DenseMatrix rr = graph.attributes().RowNormalized().ToDense();
  const DenseMatrix rc = graph.attributes().ColNormalized().ToDense();
  const int64_t d = graph.num_attributes();

  // acc = alpha * sum_{l=0..t} (1-alpha)^l M^l R0 via the scaled-term
  // recurrence term <- (1-alpha) * M * term.
  auto series = [&](const DenseMatrix& m, const DenseMatrix& r0) {
    DenseMatrix term = r0;  // (1-alpha)^l M^l R0
    DenseMatrix acc(n, d);
    acc.Axpy(alpha, term);
    DenseMatrix next(n, d);
    for (int l = 1; l <= t; ++l) {
      next.SetZero();
      // next = (1 - alpha) * m * term, naive dense multiply.
      for (int64_t i = 0; i < n; ++i) {
        double* next_row = next.Row(i);
        const double* m_row = m.Row(i);
        for (int64_t h = 0; h < n; ++h) {
          const double v = m_row[h];
          if (v == 0.0) continue;
          const double scaled = (1.0 - alpha) * v;
          const double* term_row = term.Row(h);
          for (int64_t j = 0; j < d; ++j) next_row[j] += scaled * term_row[j];
        }
      }
      term = next;
      acc.Axpy(alpha, term);
    }
    return acc;
  };

  ProbabilityMatrices probs;
  probs.pf = series(p, rr);
  probs.pb = series(pt, rc);
  return probs;
}

Result<AffinityMatrices> ExactAffinity(const AttributedGraph& graph,
                                       double alpha) {
  // Truncate at machine precision: (1 - alpha)^(t+1) <= 1e-14.
  const int t = ComputeIterationCount(1e-14, alpha);
  PANE_ASSIGN_OR_RETURN(ProbabilityMatrices probs,
                        ExactProbabilities(graph, alpha, t));
  return SpmiFromProbabilities(probs);
}

}  // namespace pane
