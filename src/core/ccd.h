// Cyclic coordinate descent refinement (Algorithm 4, SVDCCD) and its
// block-parallel version (Algorithm 8, PSVDCCD). Each iteration fixes Y and
// sweeps the rows of Xf / Xb (updating residual rows Sf[vi], Sb[vi] in O(d),
// Equations 13-14 / 16 / 18-19), then fixes Xf / Xb and sweeps the rows of Y
// (updating residual columns in O(n), Equations 15 / 17 / 20).
#pragma once

#include "src/common/status.h"
#include "src/core/greedy_init.h"

namespace pane {

class ThreadPool;

struct CcdOptions {
  /// Number of full CCD sweeps (the t of Algorithm 1 by default).
  int iterations = 5;
  /// Worker pool: node-row blocks in phase 1, attribute-row blocks in
  /// phase 2 (Algorithm 8). nullptr => serial Algorithm 4.
  ThreadPool* pool = nullptr;
  /// Optional per-iteration objective trace (appended; Figures 7-8).
  std::vector<double>* objective_trace = nullptr;
};

/// \brief Refines `state` in place. The residuals sf / sb are maintained
/// incrementally and remain consistent with (xf, xb, y) on return.
Status CcdRefine(EmbeddingState* state, const CcdOptions& options);

}  // namespace pane
