// Cyclic coordinate descent refinement (Algorithm 4, SVDCCD) and its
// block-parallel version (Algorithm 8, PSVDCCD). Each iteration fixes Y and
// sweeps the rows of Xf / Xb (updating residual rows Sf[vi], Sb[vi] in O(d),
// Equations 13-14 / 16 / 18-19), then fixes Xf / Xb and sweeps the rows of Y
// (updating residual columns in O(n), Equations 15 / 17 / 20).
//
// The residuals live in FactorSlabs. Phase 1 streams row blocks (zero-copy
// under either backing, pages released as blocks finish when spilled).
// Phase 2 needs residual columns, which are hostile to a row-major slab, so
// it gathers a strip of columns per sequential scan over the rows, updates
// every attribute row of the strip against the contiguous strip buffers,
// and scatters the strip back — the strip width follows the memory budget,
// and since gather/scatter is pure copying the results are bitwise
// identical for every strip width, backing, and thread count.
#pragma once

#include <cstdint>

#include "src/common/status.h"
#include "src/core/greedy_init.h"

namespace pane {

class ThreadPool;

/// \brief How one CcdRefine call sized its streaming state.
struct CcdStats {
  int64_t strip_width = 0;    ///< residual columns gathered per strip
  int64_t scratch_bytes = 0;  ///< the two strip buffers: 2 x 8 x n x strip
};

struct CcdOptions {
  /// Number of full CCD sweeps (the t of Algorithm 1 by default).
  int iterations = 5;
  /// Worker pool: node-row blocks in phase 1; in phase 2 the pool
  /// row-parallelizes the strip gather/scatter scans and splits the strip's
  /// attribute rows across workers (Algorithm 8). nullptr => serial
  /// Algorithm 4.
  ThreadPool* pool = nullptr;
  /// Memory budget in MiB for the phase-2 strip buffers; 0 => a fixed
  /// cache-friendly default width. Affects residency and locality only —
  /// never the arithmetic.
  int64_t memory_budget_mb = 0;
  /// Optional per-iteration objective trace (appended; Figures 7-8).
  std::vector<double>* objective_trace = nullptr;
  /// Optional streaming diagnostics.
  CcdStats* stats = nullptr;
};

/// \brief Refines `state` in place. The residuals sf / sb are maintained
/// incrementally and remain consistent with (xf, xb, y) on return.
Status CcdRefine(EmbeddingState* state, const CcdOptions& options);

}  // namespace pane
