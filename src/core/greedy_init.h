// Greedy seeding of the CCD optimizer (Algorithm 3) and its split-merge
// parallel counterpart SMGreedyInit (Algorithm 7). The key idea: RandSVD of
// F' gives Xf = U Sigma, Y = V with Xf Y^T ~= F'; since V is (near)
// unitary, Xb = B' Y immediately also approximates B' — so CCD starts close
// to a joint optimum and needs few iterations (Section 5.7, Figures 7-8).
#pragma once

#include "src/common/status.h"
#include "src/core/affinity.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

class ThreadPool;

/// \brief Embeddings plus the dynamically maintained CCD residuals.
struct EmbeddingState {
  DenseMatrix xf;  // n x k/2 forward embeddings
  DenseMatrix xb;  // n x k/2 backward embeddings
  DenseMatrix y;   // d x k/2 attribute embeddings
  DenseMatrix sf;  // n x d residual Sf = Xf Y^T - F'
  DenseMatrix sb;  // n x d residual Sb = Xb Y^T - B'
};

/// \brief Algorithm 3: seeds (Xf, Xb, Y) from one RandSVD of F' and
/// computes the residuals. `t` is the RandSVD power-iteration count.
Result<EmbeddingState> GreedyInit(const AffinityMatrices& affinity, int k,
                                  int t, uint64_t seed = 42);

/// \brief Algorithm 7: splits F' into row blocks (one per pool worker),
/// RandSVDs each block, merges the per-block right factors with a second
/// small RandSVD, and assembles Xf[Vi] = Ui * Wi, Xb = B' Y. At t = infinity
/// this matches GreedyInit exactly (Lemma 4.2); at finite t the extra
/// factorization error is the parallel-vs-serial utility gap measured in
/// Section 5.
Result<EmbeddingState> SmGreedyInit(const AffinityMatrices& affinity, int k,
                                    int t, ThreadPool* pool,
                                    uint64_t seed = 42);

/// \brief Random seeding (the PANE-R ablation of Section 5.7): Gaussian
/// Xf, Xb, Y scaled by 1/sqrt(k/2), residuals computed from them.
Result<EmbeddingState> RandomInit(const AffinityMatrices& affinity, int k,
                                  uint64_t seed, ThreadPool* pool = nullptr);

/// \brief Objective of Equation (4) given maintained residuals:
/// ||Sf||_F^2 + ||Sb||_F^2.
double Objective(const EmbeddingState& state);

}  // namespace pane
