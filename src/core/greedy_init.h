// Greedy seeding of the CCD optimizer (Algorithm 3) and its split-merge
// parallel counterpart SMGreedyInit (Algorithm 7). The key idea: RandSVD of
// F' gives Xf = U Sigma, Y = V with Xf Y^T ~= F'; since V is (near)
// unitary, Xb = B' Y immediately also approximates B' — so CCD starts close
// to a joint optimum and needs few iterations (Section 5.7, Figures 7-8).
//
// The init layer consumes the affinity factors and produces the residuals
// as FactorSlabs: every F' / B' access streams row blocks through one code
// path whether the slab lives in RAM or in a memory-mapped spill file, so
// spilled and in-RAM runs are bitwise identical. EngineAwareInit folds
// Algorithm 7 into the affinity engine's panel stream: the per-block
// RandSVDs of F' start the moment the engine reports the forward slab
// final, overlapping with the backward panels still streaming.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/core/affinity.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/factor_slab.h"

namespace pane {

class ThreadPool;

/// \brief Embeddings plus the dynamically maintained CCD residuals. The
/// small factors stay dense; the n x d residuals are slabs so they follow
/// the pipeline's memory budget (in-RAM or spilled).
struct EmbeddingState {
  DenseMatrix xf;  // n x k/2 forward embeddings
  DenseMatrix xb;  // n x k/2 backward embeddings
  DenseMatrix y;   // d x k/2 attribute embeddings
  FactorSlab sf;   // n x d residual Sf = Xf Y^T - F'
  FactorSlab sb;   // n x d residual Sb = Xb Y^T - B'
};

/// \brief Shared knobs of the init family.
struct InitOptions {
  /// Space budget k (must be even and >= 2); each side gets k/2.
  int k = 128;
  /// RandSVD power-iteration count (the paper passes its t).
  int t = 5;
  /// Seed for the RandSVD sketches / random init.
  uint64_t seed = 42;
  /// Worker pool; its size is the block count nb of Algorithm 7. nullptr or
  /// size 1 => the serial Algorithm 3.
  ThreadPool* pool = nullptr;
  /// Backing for the residual slabs Sf / Sb this phase creates.
  FactorSlab::Backing residual_backing = FactorSlab::Backing::kInRam;
  /// Spill directory for mmap residuals ("" => temp dir).
  std::string spill_dir;
  /// Residency pool for kPooled residuals (not owned; must outlive the
  /// returned EmbeddingState). Required when residual_backing == kPooled.
  store::BufferPool* buffer_pool = nullptr;
  /// Memory budget in MiB; bounds how many F' row blocks hold pages
  /// concurrently when the affinity slabs are spilled (0 => no cap). Does
  /// not affect the arithmetic — only residency.
  int64_t memory_budget_mb = 0;
};

/// \brief Algorithm 3: seeds (Xf, Xb, Y) from one RandSVD of F' (streamed
/// from the slab) and computes the residuals.
Result<EmbeddingState> GreedyInit(const AffinitySlabs& affinity,
                                  const InitOptions& options);

/// \brief Algorithm 7: splits F' into row blocks (one per pool worker),
/// RandSVDs each block, merges the per-block right factors with a second
/// small RandSVD, and assembles Xf[Vi] = Ui * Wi, Xb = B' Y. At t = infinity
/// this matches GreedyInit exactly (Lemma 4.2); at finite t the extra
/// factorization error is the parallel-vs-serial utility gap measured in
/// Section 5.
Result<EmbeddingState> SmGreedyInit(const AffinitySlabs& affinity,
                                    const InitOptions& options);

/// \brief Random seeding (the PANE-R ablation of Section 5.7): Gaussian
/// Xf, Xb, Y scaled by 1/sqrt(k/2), residuals computed from them.
Result<EmbeddingState> RandomInit(const AffinitySlabs& affinity,
                                  const InitOptions& options);

/// \brief Engine-aware SMGreedyInit: Algorithm 7 whose per-block F'
/// RandSVDs are driven by the affinity engine's panel stream.
///
/// Bind an instance to the (pre-created) affinity slabs, wire
/// OnForwardSlabComplete into the engine's panel consumer, run the engine,
/// then call Finish(). When the forward slab lands, a helper thread starts
/// claiming block SVDs while the engine's pool is still streaming the
/// backward panels; Finish() drains the remaining blocks on the pool and
/// merges. Work is claimed from one atomic counter and every block's math
/// is independent of who computes it, so the result is bitwise identical to
/// SmGreedyInit — overlap changes the schedule, never the answer.
class EngineAwareInit {
 public:
  EngineAwareInit(const AffinitySlabs* affinity, const InitOptions& options);
  ~EngineAwareInit();  // joins the helper thread if Finish was never reached

  EngineAwareInit(const EngineAwareInit&) = delete;
  EngineAwareInit& operator=(const EngineAwareInit&) = delete;

  /// Panel-consumer hook: start overlapped block SVDs. Thread-safe and
  /// idempotent; a no-op for serial options (the Algorithm 1 path stays
  /// single-threaded).
  void OnForwardSlabComplete();

  /// Drains unclaimed blocks, merges, assembles the state. Call once, after
  /// the engine run has returned successfully.
  Result<EmbeddingState> Finish();

  /// Blocks whose SVD ran overlapped with the backward panel stream.
  int blocks_overlapped() const {
    return overlapped_.load(std::memory_order_relaxed);
  }

 private:
  void ClaimLoop(bool overlapped) PANE_EXCLUDES(inflight_mutex_);
  void RunBlock(int b);

  const AffinitySlabs* affinity_;
  InitOptions options_;
  Status setup_status_;
  int nb_ = 1;
  int h_ = 0;
  int64_t max_inflight_blocks_ = 0;  // residency cap under spill (0 => none)
  std::vector<DenseMatrix> u_blocks_;
  std::vector<DenseMatrix> v_blocks_;
  std::vector<Status> block_status_;
  std::atomic<int> next_block_{0};
  std::atomic<int> overlapped_{0};
  std::atomic<bool> helper_started_{false};
  std::atomic<bool> draining_{false};  // Finish() reached; engine is done
  std::thread helper_;
  /// Guards the residency throttle only: claim tickets (next_block_) and
  /// the overlap stat stay atomics; per-block outputs (u_blocks_ /
  /// v_blocks_ / block_status_) are disjoint slots indexed by the claimed
  /// block and published by the pool barrier / helper join in Finish().
  Mutex inflight_mutex_;
  CondVar inflight_cv_;
  int64_t inflight_blocks_ PANE_GUARDED_BY(inflight_mutex_) = 0;
};

/// \brief Streams S = X Y^T - F into the residual slab `s` (row blocks,
/// release-as-you-go under spill). Shared by the init family and the
/// incremental refresh path.
Status BuildResidualSlab(const DenseMatrix& x, const DenseMatrix& y,
                         const FactorSlab& f, FactorSlab* s,
                         ThreadPool* pool = nullptr);

/// \brief Objective of Equation (4) given maintained residuals:
/// ||Sf||_F^2 + ||Sb||_F^2.
double Objective(const EmbeddingState& state);

/// \name Legacy dense-affinity adapters (tests / benches): wrap the
/// matrices into in-RAM slabs and delegate. Each call copies both n x d
/// matrices — fine for test-scale setup code, but production paths should
/// hold AffinitySlabs and call the slab forms above.
/// @{
Result<EmbeddingState> GreedyInit(const AffinityMatrices& affinity, int k,
                                  int t, uint64_t seed = 42);
Result<EmbeddingState> SmGreedyInit(const AffinityMatrices& affinity, int k,
                                    int t, ThreadPool* pool,
                                    uint64_t seed = 42);
Result<EmbeddingState> RandomInit(const AffinityMatrices& affinity, int k,
                                  uint64_t seed, ThreadPool* pool = nullptr);
/// @}

}  // namespace pane
