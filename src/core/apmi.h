// APMI (Algorithm 2): deterministic linear-time approximation of the
// forward / backward affinity matrices. Evaluates the truncated series of
// Equation (6),
//   P_f^(t) = alpha * sum_{l=0..t} (1-alpha)^l P^l  Rr,
//   P_b^(t) = alpha * sum_{l=0..t} (1-alpha)^l P^T^l Rc,
// then applies the SPMI transform (Equation 7). Error bound: Lemma 3.1.
//
// Apmi() and ComputeAffinity() are thin wrappers over the panel-streamed
// affinity engine (src/core/affinity_engine.h), which fuses the series and
// the SPMI transform under a memory budget; ApmiProbabilities() keeps the
// original unfused dense-intermediate evaluation as the reference the
// Lemma 3.1 tests and ablation benches compare against.
#pragma once

#include "src/common/status.h"
#include "src/core/affinity.h"
#include "src/core/affinity_engine.h"
#include "src/graph/graph.h"
#include "src/matrix/csr_matrix.h"

namespace pane {

class ThreadPool;

struct ApmiInputs {
  /// Random-walk matrix P = D^-1 A (n x n, row-stochastic).
  const CsrMatrix* p = nullptr;
  /// P^T, prebuilt (backward iterations).
  const CsrMatrix* p_transposed = nullptr;
  /// Attribute matrix R (n x d).
  const CsrMatrix* r = nullptr;
  double alpha = 0.5;
  int t = 5;
  /// Scratch budget for the engine's panel buffers in MiB; 0 => unbounded.
  int64_t memory_budget_mb = 0;
};

/// \brief Runs Algorithm 2 through the affinity engine (serial, one panel
/// unless a memory budget narrows it); returns the approximate pair
/// (F', B'). `stats` (optional) receives the engine's panel decomposition —
/// width / panel count / scratch — so every entry point can report how the
/// budget was spent (pane_cli --verbose).
Result<AffinityMatrices> Apmi(const ApmiInputs& inputs,
                              AffinityEngineStats* stats = nullptr);

/// \brief The truncated probability matrices before the SPMI transform
/// (Algorithm 2 up to line 5); exposed for the Lemma 3.1 tests. This is the
/// historical unfused path, kept as an independent reference for the
/// engine's bitwise-equality tests.
Result<ProbabilityMatrices> ApmiProbabilities(const ApmiInputs& inputs);

/// \brief Convenience wrapper: builds P, P^T from the graph exactly once and
/// runs the engine with t derived from (epsilon, alpha). `pool` parallelizes
/// the affinity phase (the hottest path of an embedding run);
/// `memory_budget_mb` bounds the engine's panel scratch (0 => unbounded).
Result<AffinityMatrices> ComputeAffinity(const AttributedGraph& graph,
                                         double alpha, double epsilon,
                                         ThreadPool* pool = nullptr,
                                         int64_t memory_budget_mb = 0,
                                         AffinityEngineStats* stats = nullptr);

}  // namespace pane
