// APMI (Algorithm 2): deterministic linear-time approximation of the
// forward / backward affinity matrices. Evaluates the truncated series of
// Equation (6),
//   P_f^(t) = alpha * sum_{l=0..t} (1-alpha)^l P^l  Rr,
//   P_b^(t) = alpha * sum_{l=0..t} (1-alpha)^l P^T^l Rc,
// with t sparse-dense multiplies each (O(m d t) total), then applies the
// SPMI transform (Equation 7). Error bound: Lemma 3.1.
#pragma once

#include "src/common/status.h"
#include "src/core/affinity.h"
#include "src/graph/graph.h"
#include "src/matrix/csr_matrix.h"

namespace pane {

struct ApmiInputs {
  /// Random-walk matrix P = D^-1 A (n x n, row-stochastic).
  const CsrMatrix* p = nullptr;
  /// P^T, prebuilt (backward iterations).
  const CsrMatrix* p_transposed = nullptr;
  /// Attribute matrix R (n x d).
  const CsrMatrix* r = nullptr;
  double alpha = 0.5;
  int t = 5;
};

/// \brief Runs Algorithm 2; returns the approximate affinity pair (F', B').
Result<AffinityMatrices> Apmi(const ApmiInputs& inputs);

/// \brief The truncated probability matrices before the SPMI transform
/// (Algorithm 2 up to line 5); exposed for the Lemma 3.1 tests.
Result<ProbabilityMatrices> ApmiProbabilities(const ApmiInputs& inputs);

/// \brief Convenience wrapper: builds P, P^T from the graph and runs APMI
/// with t derived from (epsilon, alpha).
Result<AffinityMatrices> ComputeAffinity(const AttributedGraph& graph,
                                         double alpha, double epsilon);

}  // namespace pane
