#include "src/core/ccd.h"

#include <vector>

#include "src/matrix/vector_ops.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Coordinate directions whose denominator underflows are skipped: they can
// arise when k/2 exceeds the rank of the affinity matrices and a Y (or X)
// column is identically zero.
constexpr double kDenominatorFloor = 1e-300;

// Phase 1 over node rows [begin, end): for each vi and l, the updates of
// Equations (13), (14), (16), (18), (19). `yt` is Y^T (k/2 x d, rows
// contiguous) and `y_denoms[l] = Y[:,l] . Y[:,l]`, both fixed this phase.
void UpdateNodeRows(EmbeddingState* state, const DenseMatrix& yt,
                    const std::vector<double>& y_denoms, int64_t begin,
                    int64_t end) {
  const int64_t h = state->xf.cols();
  const int64_t d = state->sf.cols();
  for (int64_t vi = begin; vi < end; ++vi) {
    double* xf_row = state->xf.Row(vi);
    double* xb_row = state->xb.Row(vi);
    double* sf_row = state->sf.Row(vi);
    double* sb_row = state->sb.Row(vi);
    for (int64_t l = 0; l < h; ++l) {
      const double denom = y_denoms[static_cast<size_t>(l)];
      if (denom < kDenominatorFloor) continue;
      const double* yl = yt.Row(l);
      const double mu_f = Dot(sf_row, yl, d) / denom;  // Equation (16)
      const double mu_b = Dot(sb_row, yl, d) / denom;
      xf_row[l] -= mu_f;                               // Equation (13)
      xb_row[l] -= mu_b;                               // Equation (14)
      Axpy(-mu_f, yl, sf_row, d);                      // Equation (18)
      Axpy(-mu_b, yl, sb_row, d);                      // Equation (19)
    }
  }
}

// Phase 2 over attribute rows [begin, end): updates of Equations (15),
// (17), (20). `xft` / `xbt` are Xf^T / Xb^T (k/2 x n) and
// `x_denoms[l] = Xf[:,l].Xf[:,l] + Xb[:,l].Xb[:,l]`, fixed this phase.
// Residual columns are staged through contiguous scratch buffers.
void UpdateAttributeRows(EmbeddingState* state, const DenseMatrix& xft,
                         const DenseMatrix& xbt,
                         const std::vector<double>& x_denoms, int64_t begin,
                         int64_t end, std::vector<double>* sf_scratch,
                         std::vector<double>* sb_scratch) {
  const int64_t h = state->y.cols();
  const int64_t n = state->sf.rows();
  const int64_t d = state->sf.cols();
  double* sf_col = sf_scratch->data();
  double* sb_col = sb_scratch->data();
  for (int64_t rj = begin; rj < end; ++rj) {
    // Gather the residual columns Sf[:, rj], Sb[:, rj].
    const double* sf_base = state->sf.data() + rj;
    const double* sb_base = state->sb.data() + rj;
    for (int64_t i = 0; i < n; ++i) {
      sf_col[i] = sf_base[i * d];
      sb_col[i] = sb_base[i * d];
    }
    double* y_row = state->y.Row(rj);
    for (int64_t l = 0; l < h; ++l) {
      const double denom = x_denoms[static_cast<size_t>(l)];
      if (denom < kDenominatorFloor) continue;
      const double* xfl = xft.Row(l);
      const double* xbl = xbt.Row(l);
      const double mu_y =
          (Dot(xfl, sf_col, n) + Dot(xbl, sb_col, n)) / denom;  // Eq. (17)
      y_row[l] -= mu_y;                                         // Eq. (15)
      Axpy(-mu_y, xfl, sf_col, n);                              // Eq. (20)
      Axpy(-mu_y, xbl, sb_col, n);
    }
    // Scatter the updated columns back.
    double* sf_out = state->sf.data() + rj;
    double* sb_out = state->sb.data() + rj;
    for (int64_t i = 0; i < n; ++i) {
      sf_out[i * d] = sf_col[i];
      sb_out[i * d] = sb_col[i];
    }
  }
}

std::vector<double> ColumnSquaredNorms(const DenseMatrix& transposed) {
  std::vector<double> out(static_cast<size_t>(transposed.rows()));
  for (int64_t l = 0; l < transposed.rows(); ++l) {
    out[static_cast<size_t>(l)] =
        SquaredNorm(transposed.Row(l), transposed.cols());
  }
  return out;
}

}  // namespace

Status CcdRefine(EmbeddingState* state, const CcdOptions& options) {
  if (state == nullptr) return Status::InvalidArgument("null state");
  const int64_t n = state->xf.rows();
  const int64_t d = state->y.rows();
  const int64_t h = state->xf.cols();
  if (state->xb.rows() != n || state->xb.cols() != h ||
      state->y.cols() != h || state->sf.rows() != n || state->sf.cols() != d ||
      state->sb.rows() != n || state->sb.cols() != d) {
    return Status::InvalidArgument("inconsistent embedding state shapes");
  }
  if (options.iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }

  ThreadPool* pool = options.pool;
  const int nb = pool != nullptr ? pool->num_threads() : 1;
  const std::vector<Range> node_blocks = PartitionRange(n, nb);
  const std::vector<Range> attr_blocks = PartitionRange(d, nb);

  for (int iter = 0; iter < options.iterations; ++iter) {
    // ----- Phase 1 (Algorithm 4 lines 3-9 / Algorithm 8 lines 3-10): Y
    // fixed, sweep Xf / Xb rows.
    const DenseMatrix yt = state->y.Transposed();
    const std::vector<double> y_denoms = ColumnSquaredNorms(yt);
    if (nb == 1) {
      UpdateNodeRows(state, yt, y_denoms, 0, n);
    } else {
      pool->RunBlocks(nb, [&](int b) {
        const Range& blk = node_blocks[static_cast<size_t>(b)];
        if (blk.size() > 0) {
          UpdateNodeRows(state, yt, y_denoms, blk.begin, blk.end);
        }
      });
    }

    // ----- Phase 2 (Algorithm 4 lines 10-14 / Algorithm 8 lines 11-16):
    // Xf / Xb fixed, sweep Y rows.
    const DenseMatrix xft = state->xf.Transposed();
    const DenseMatrix xbt = state->xb.Transposed();
    std::vector<double> x_denoms = ColumnSquaredNorms(xft);
    {
      const std::vector<double> xb_denoms = ColumnSquaredNorms(xbt);
      for (size_t l = 0; l < x_denoms.size(); ++l) {
        x_denoms[l] += xb_denoms[l];
      }
    }
    if (nb == 1) {
      std::vector<double> sf_scratch(static_cast<size_t>(n));
      std::vector<double> sb_scratch(static_cast<size_t>(n));
      UpdateAttributeRows(state, xft, xbt, x_denoms, 0, d, &sf_scratch,
                          &sb_scratch);
    } else {
      pool->RunBlocks(nb, [&](int b) {
        const Range& blk = attr_blocks[static_cast<size_t>(b)];
        if (blk.size() == 0) return;
        std::vector<double> sf_scratch(static_cast<size_t>(n));
        std::vector<double> sb_scratch(static_cast<size_t>(n));
        UpdateAttributeRows(state, xft, xbt, x_denoms, blk.begin, blk.end,
                            &sf_scratch, &sb_scratch);
      });
    }

    if (options.objective_trace != nullptr) {
      options.objective_trace->push_back(Objective(*state));
    }
  }
  return Status::OK();
}

}  // namespace pane
