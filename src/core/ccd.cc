#include "src/core/ccd.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/matrix/vector_ops.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Coordinate directions whose denominator underflows are skipped: they can
// arise when k/2 exceeds the rank of the affinity matrices and a Y (or X)
// column is identically zero.
constexpr double kDenominatorFloor = 1e-300;

// Row granularity for release-as-you-go streaming over spilled residuals.
constexpr int64_t kStreamChunkRows = 4096;

// Residual columns gathered per phase-2 strip: budget-derived, with a
// cache-friendly default when unbounded. Pure residency/locality knob — the
// per-column arithmetic is identical for every width.
int64_t StripWidth(int64_t n, int64_t d, int64_t memory_budget_mb) {
  if (d <= 0) return 1;
  const int64_t bytes_per_column =
      2 * static_cast<int64_t>(sizeof(double)) * std::max<int64_t>(n, 1);
  // Unbounded runs still cap the strip scratch (32 MiB) so the buffers stay
  // a rounding error next to the n x d residuals they stage.
  const int64_t budget_bytes = memory_budget_mb > 0
                                   ? (memory_budget_mb << 20)
                                   : (int64_t{32} << 20);
  return std::clamp<int64_t>(budget_bytes / bytes_per_column, 1, d);
}

// Phase 1 over node rows [begin, end): for each vi and l, the updates of
// Equations (13), (14), (16), (18), (19). `yt` is Y^T (k/2 x d, rows
// contiguous) and `y_denoms[l] = Y[:,l] . Y[:,l]`, both fixed this phase.
// Residual rows are touched in place through the slab (zero-copy under
// either backing).
void UpdateNodeRows(EmbeddingState* state, const DenseMatrix& yt,
                    const std::vector<double>& y_denoms, int64_t begin,
                    int64_t end) {
  const int64_t h = state->xf.cols();
  const int64_t d = state->sf.cols();
  for (int64_t vi = begin; vi < end; ++vi) {
    double* xf_row = state->xf.Row(vi);
    double* xb_row = state->xb.Row(vi);
    double* sf_row = state->sf.Row(vi);
    double* sb_row = state->sb.Row(vi);
    for (int64_t l = 0; l < h; ++l) {
      const double denom = y_denoms[static_cast<size_t>(l)];
      if (denom < kDenominatorFloor) continue;
      const double* yl = yt.Row(l);
      const double mu_f = Dot(sf_row, yl, d) / denom;  // Equation (16)
      const double mu_b = Dot(sb_row, yl, d) / denom;
      xf_row[l] -= mu_f;                               // Equation (13)
      xb_row[l] -= mu_b;                               // Equation (14)
      Axpy(-mu_f, yl, sf_row, d);                      // Equation (18)
      Axpy(-mu_b, yl, sb_row, d);                      // Equation (19)
    }
  }
}

// Phase 2 updates for the strip's attribute rows [strip_begin, strip_end)
// (local indices into the gathered buffers): Equations (15), (17), (20).
// `xft` / `xbt` are Xf^T / Xb^T (k/2 x n) and
// `x_denoms[l] = Xf[:,l].Xf[:,l] + Xb[:,l].Xb[:,l]`, fixed this phase. Each
// gathered column is a contiguous length-n buffer, exactly the scratch
// shape the unstreamed implementation staged per attribute row.
void UpdateStripAttributeRows(EmbeddingState* state, const DenseMatrix& xft,
                              const DenseMatrix& xbt,
                              const std::vector<double>& x_denoms,
                              int64_t col_begin, double* sf_strip,
                              double* sb_strip, int64_t strip_begin,
                              int64_t strip_end) {
  const int64_t h = state->y.cols();
  const int64_t n = state->sf.rows();
  for (int64_t idx = strip_begin; idx < strip_end; ++idx) {
    double* sf_col = sf_strip + idx * n;
    double* sb_col = sb_strip + idx * n;
    double* y_row = state->y.Row(col_begin + idx);
    for (int64_t l = 0; l < h; ++l) {
      const double denom = x_denoms[static_cast<size_t>(l)];
      if (denom < kDenominatorFloor) continue;
      const double* xfl = xft.Row(l);
      const double* xbl = xbt.Row(l);
      const double mu_y =
          (Dot(xfl, sf_col, n) + Dot(xbl, sb_col, n)) / denom;  // Eq. (17)
      y_row[l] -= mu_y;                                         // Eq. (15)
      Axpy(-mu_y, xfl, sf_col, n);                              // Eq. (20)
      Axpy(-mu_y, xbl, sb_col, n);
    }
  }
}

std::vector<double> ColumnSquaredNorms(const DenseMatrix& transposed) {
  std::vector<double> out(static_cast<size_t>(transposed.rows()));
  for (int64_t l = 0; l < transposed.rows(); ++l) {
    out[static_cast<size_t>(l)] =
        SquaredNorm(transposed.Row(l), transposed.cols());
  }
  return out;
}

}  // namespace

Status CcdRefine(EmbeddingState* state, const CcdOptions& options) {
  if (state == nullptr) return Status::InvalidArgument("null state");
  const int64_t n = state->xf.rows();
  const int64_t d = state->y.rows();
  const int64_t h = state->xf.cols();
  if (state->xb.rows() != n || state->xb.cols() != h ||
      state->y.cols() != h || state->sf.rows() != n || state->sf.cols() != d ||
      state->sb.rows() != n || state->sb.cols() != d) {
    return Status::InvalidArgument("inconsistent embedding state shapes");
  }
  if (options.iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }
  if (options.memory_budget_mb < 0) {
    return Status::InvalidArgument("memory_budget_mb must be >= 0");
  }

  ThreadPool* pool = options.pool;
  const int nb = pool != nullptr ? pool->num_threads() : 1;
  const std::vector<Range> node_blocks = PartitionRange(n, nb);

  const int64_t strip = StripWidth(n, d, options.memory_budget_mb);
  if (options.stats != nullptr) {
    options.stats->strip_width = strip;
    options.stats->scratch_bytes =
        2 * strip * n * static_cast<int64_t>(sizeof(double));
  }
  std::vector<double> sf_strip(static_cast<size_t>(strip * n));
  std::vector<double> sb_strip(static_cast<size_t>(strip * n));

  for (int iter = 0; iter < options.iterations; ++iter) {
    // ----- Phase 1 (Algorithm 4 lines 3-9 / Algorithm 8 lines 3-10): Y
    // fixed, sweep Xf / Xb rows; spilled residual rows are released as each
    // chunk finishes so phase-1 residency stays at the chunk level.
    const DenseMatrix yt = state->y.Transposed();
    const std::vector<double> y_denoms = ColumnSquaredNorms(yt);
    const auto phase1_rows = [&](int64_t begin, int64_t end) {
      for (int64_t chunk = begin; chunk < end; chunk += kStreamChunkRows) {
        const int64_t chunk_end = std::min(chunk + kStreamChunkRows, end);
        UpdateNodeRows(state, yt, y_denoms, chunk, chunk_end);
        ReleaseRowsOrWarn(state->sf, chunk, chunk_end, /*dirty=*/true);
        ReleaseRowsOrWarn(state->sb, chunk, chunk_end, /*dirty=*/true);
      }
    };
    if (nb == 1) {
      phase1_rows(0, n);
    } else {
      pool->RunBlocks(nb, [&](int b) {
        const Range& blk = node_blocks[static_cast<size_t>(b)];
        if (blk.size() > 0) phase1_rows(blk.begin, blk.end);
      });
    }

    // ----- Phase 2 (Algorithm 4 lines 10-14 / Algorithm 8 lines 11-16):
    // Xf / Xb fixed, sweep Y rows. Residual columns are gathered a strip at
    // a time with sequential row scans (slab-friendly), updated in the
    // contiguous strip buffers, and scattered back.
    const DenseMatrix xft = state->xf.Transposed();
    const DenseMatrix xbt = state->xb.Transposed();
    std::vector<double> x_denoms = ColumnSquaredNorms(xft);
    {
      const std::vector<double> xb_denoms = ColumnSquaredNorms(xbt);
      for (size_t l = 0; l < x_denoms.size(); ++l) {
        x_denoms[l] += xb_denoms[l];
      }
    }
    for (int64_t col_begin = 0; col_begin < d; col_begin += strip) {
      const int64_t col_end = std::min(col_begin + strip, d);
      const int64_t c = col_end - col_begin;
      const auto gather_rows = [&](int64_t begin, int64_t end) {
        for (int64_t chunk = begin; chunk < end; chunk += kStreamChunkRows) {
          const int64_t chunk_end = std::min(chunk + kStreamChunkRows, end);
          for (int64_t i = chunk; i < chunk_end; ++i) {
            const double* sf_row = state->sf.Row(i) + col_begin;
            const double* sb_row = state->sb.Row(i) + col_begin;
            for (int64_t l = 0; l < c; ++l) {
              sf_strip[static_cast<size_t>(l * n + i)] = sf_row[l];
              sb_strip[static_cast<size_t>(l * n + i)] = sb_row[l];
            }
          }
          ReleaseRowsOrWarn(state->sf, chunk, chunk_end, /*dirty=*/false);
          ReleaseRowsOrWarn(state->sb, chunk, chunk_end, /*dirty=*/false);
        }
      };
      const auto scatter_rows = [&](int64_t begin, int64_t end) {
        for (int64_t chunk = begin; chunk < end; chunk += kStreamChunkRows) {
          const int64_t chunk_end = std::min(chunk + kStreamChunkRows, end);
          for (int64_t i = chunk; i < chunk_end; ++i) {
            double* sf_row = state->sf.Row(i) + col_begin;
            double* sb_row = state->sb.Row(i) + col_begin;
            for (int64_t l = 0; l < c; ++l) {
              sf_row[l] = sf_strip[static_cast<size_t>(l * n + i)];
              sb_row[l] = sb_strip[static_cast<size_t>(l * n + i)];
            }
          }
          ReleaseRowsOrWarn(state->sf, chunk, chunk_end, /*dirty=*/true);
          ReleaseRowsOrWarn(state->sb, chunk, chunk_end, /*dirty=*/true);
        }
      };
      if (nb == 1) {
        gather_rows(0, n);
        UpdateStripAttributeRows(state, xft, xbt, x_denoms, col_begin,
                                 sf_strip.data(), sb_strip.data(), 0, c);
        scatter_rows(0, n);
      } else {
        ParallelFor(pool, 0, n, gather_rows);
        const std::vector<Range> strip_blocks = PartitionRange(c, nb);
        pool->RunBlocks(nb, [&](int b) {
          const Range& blk = strip_blocks[static_cast<size_t>(b)];
          if (blk.size() == 0) return;
          UpdateStripAttributeRows(state, xft, xbt, x_denoms, col_begin,
                                   sf_strip.data(), sb_strip.data(),
                                   blk.begin, blk.end);
        });
        ParallelFor(pool, 0, n, scatter_rows);
      }
    }

    if (options.objective_trace != nullptr) {
      options.objective_trace->push_back(Objective(*state));
    }
  }
  return Status::OK();
}

}  // namespace pane
