// PAPMI (Algorithm 6): block-parallel affinity approximation, now a thin
// wrapper over the panel-streamed affinity engine
// (src/core/affinity_engine.h). The attribute set R is partitioned into
// column panels (column blocks of a sparse-dense product are independent);
// with no memory budget the panel width is ceil(d / nb), reproducing the
// paper's one-block-per-worker shape. Lemma 4.1: output is identical to
// single-thread APMI — the engine preserves per-element summation order, so
// the equality is bitwise and tested as such.
#pragma once

#include "src/common/status.h"
#include "src/core/apmi.h"

namespace pane {

class ThreadPool;

struct PapmiInputs : ApmiInputs {
  /// Worker pool; its size is the nb of Algorithm 5. nullptr => serial.
  ThreadPool* pool = nullptr;
};

/// \brief Runs Algorithm 6 through the engine; returns (F', B') equal to
/// Apmi() on the same inputs. `stats` (optional) receives the engine's
/// panel decomposition, as on every other entry point.
Result<AffinityMatrices> Papmi(const PapmiInputs& inputs,
                               AffinityEngineStats* stats = nullptr);

}  // namespace pane
