// PAPMI (Algorithm 6): block-parallel affinity approximation. The attribute
// set R is partitioned into nb column blocks; each worker runs the APMI
// iteration on its own n x |Ri| panel (column blocks of a sparse-dense
// product are independent). The SPMI transform then runs parallel over node
// row blocks. Lemma 4.1: output is identical to single-thread APMI — our
// implementation preserves per-element summation order, so the equality is
// bitwise and tested as such.
#pragma once

#include "src/common/status.h"
#include "src/core/apmi.h"

namespace pane {

class ThreadPool;

struct PapmiInputs : ApmiInputs {
  /// Worker pool; its size is the nb of Algorithm 5. nullptr => serial.
  ThreadPool* pool = nullptr;
};

/// \brief Runs Algorithm 6; returns (F', B') equal to Apmi() on the same
/// inputs.
Result<AffinityMatrices> Papmi(const PapmiInputs& inputs);

}  // namespace pane
