#include "src/common/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

namespace pane {
namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

Status WriteFully(int fd, const char* p, int64_t bytes,
                  const std::string& path) {
  while (bytes > 0) {
    const ssize_t written = write(fd, p, static_cast<size_t>(bytes));
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write failed on", path));
    }
    p += written;
    bytes -= written;
  }
  return Status::OK();
}

}  // namespace

AtomicFile::AtomicFile(AtomicFile&& other) noexcept {
  *this = std::move(other);
}

AtomicFile& AtomicFile::operator=(AtomicFile&& other) noexcept {
  if (this == &other) return *this;
  Abandon();
  fd_ = other.fd_;
  appended_ = other.appended_;
  tmp_path_ = std::move(other.tmp_path_);
  final_path_ = std::move(other.final_path_);
  other.fd_ = -1;
  other.appended_ = 0;
  other.tmp_path_.clear();
  other.final_path_.clear();
  return *this;
}

AtomicFile::~AtomicFile() { Abandon(); }

void AtomicFile::Abandon() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  if (!tmp_path_.empty()) unlink(tmp_path_.c_str());
  tmp_path_.clear();
  final_path_.clear();
}

Result<AtomicFile> AtomicFile::Create(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("AtomicFile needs a non-empty path");
  }
  std::string tmpl = path + ".tmp.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const int fd = mkstemp(buf.data());
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot create temp file for", path));
  }
  AtomicFile file;
  file.fd_ = fd;
  file.tmp_path_.assign(buf.data());
  file.final_path_ = path;
  return file;
}

Status AtomicFile::Append(const void* data, int64_t bytes) {
  if (fd_ < 0) return Status::Internal("AtomicFile is not open");
  if (bytes < 0) return Status::InvalidArgument("negative append length");
  PANE_RETURN_NOT_OK(
      WriteFully(fd_, static_cast<const char*>(data), bytes, tmp_path_));
  appended_ += bytes;
  return Status::OK();
}

Status AtomicFile::WriteAt(int64_t offset, const void* data, int64_t bytes) {
  if (fd_ < 0) return Status::Internal("AtomicFile is not open");
  if (offset < 0 || bytes < 0) {
    return Status::InvalidArgument("negative offset or length");
  }
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t written =
        pwrite(fd_, p, static_cast<size_t>(bytes), static_cast<off_t>(offset));
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pwrite failed on", tmp_path_));
    }
    p += written;
    offset += written;
    bytes -= written;
  }
  return Status::OK();
}

Status AtomicFile::Commit() {
  if (fd_ < 0) return Status::Internal("AtomicFile is not open");
  if (fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed on", tmp_path_));
  }
  if (close(fd_) != 0) {
    fd_ = -1;  // the descriptor is gone even on error
    return Status::IOError(ErrnoMessage("close failed on", tmp_path_));
  }
  fd_ = -1;
  if (rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    return Status::IOError(ErrnoMessage(
        "cannot rename over", final_path_ + " from " + tmp_path_));
  }
  tmp_path_.clear();  // renamed away; nothing to unlink
  // Durability of the rename itself: fsync the parent directory.
  // Best-effort — some filesystems refuse O_RDONLY on directories.
  const std::string dir =
      std::filesystem::path(final_path_).parent_path().string();
  const int dir_fd = open(dir.empty() ? "." : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    fsync(dir_fd);
    close(dir_fd);
  }
  final_path_.clear();
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  PANE_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path));
  PANE_RETURN_NOT_OK(
      file.Append(contents.data(), static_cast<int64_t>(contents.size())));
  return file.Commit();
}

}  // namespace pane
