#include "src/common/sync.h"

namespace pane {

void CondVar::Wait(Mutex* mu) {
  // Adopt the already-held std::mutex for the duration of the wait, then
  // release the unique_lock wrapper without unlocking: ownership stays with
  // the caller's scoped MutexLock exactly as the REQUIRES annotation says.
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

}  // namespace pane
