#include "src/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pane {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("cannot parse integer: '" +
                                   std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("cannot parse empty double");
  // std::from_chars<double> is available in libstdc++ 11+, but strtod via a
  // bounded copy is portable and the IO layer is not performance-critical.
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("cannot parse double: '" + buf + "'");
  }
  return value;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatCount(int64_t value) {
  if (value >= 1000000000) return StrFormat("%.1fB", value / 1e9);
  if (value >= 1000000) return StrFormat("%.1fM", value / 1e6);
  if (value >= 1000) return StrFormat("%.1fK", value / 1e3);
  return StrFormat("%lld", static_cast<long long>(value));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace pane
