// A tiny --key=value command-line flag parser for the bench and example
// binaries (keeps them dependency-free). Unknown flags are an error so typos
// in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/common/status.h"

namespace pane {

/// \brief Registry + parser for `--name=value` style flags.
///
/// Usage:
///   FlagSet flags;
///   flags.AddInt("k", 128, "embedding space budget");
///   flags.AddDouble("alpha", 0.5, "stopping probability");
///   PANE_CHECK_OK(flags.Parse(argc, argv));
///   int k = flags.GetInt("k");
class FlagSet {
 public:
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv; accepts `--name=value`, `--name value`, and bare `--name`
  /// for bool flags. `--help` prints usage and exits(0).
  Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Rendered --help text.
  std::string Usage(const std::string& program) const;

  /// All flags rendered to strings, e.g. {"k": "128", "alpha": "0.5"}.
  /// This is the bridge into the api layer's string-keyed EmbedderConfig.
  std::map<std::string, std::string> ValueMap() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetFromString(Flag* flag, const std::string& value);
  const Flag& Lookup(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
};

/// \brief Reads an environment variable as double, or returns fallback.
/// Used for PANE_BENCH_SCALE, which enlarges benchmark datasets.
double EnvDoubleOr(const char* name, double fallback);

}  // namespace pane
