#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace pane {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNumericError:
      return "Numeric error";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResult(const std::string& why) {
  std::fprintf(stderr, "[pane] fatal: %s\n", why.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace pane
