// Status / Result error-handling primitives, following the Arrow/RocksDB
// idiom: library entry points that can fail return a Status (or a Result<T>
// which is Status + value); exceptions are not used on any library path.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace pane {

/// Machine-readable category of a failure.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kIOError = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kNumericError = 8,
  kCancelled = 9,
};

/// \brief Human-readable name for a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or a code plus message.
///
/// A default-constructed Status is OK and carries no allocation; error
/// statuses allocate a small message string. Statuses are cheap to move and
/// copy, and must be inspected (ok()) before using any dependent result.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \name Factory helpers, one per code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNumericError() const { return code_ == StatusCode::kNumericError; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Status plus a value: holds either a T or an error Status.
///
/// Mirrors arrow::Result. Access the value only after checking ok();
/// ValueOrDie() aborts the process on error (use in tests/examples only).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; aborts if the status is OK (an OK Result
  /// must carry a value).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      Fail("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// OK() if a value is present, otherwise the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    if (!ok()) Fail(std::get<Status>(payload_).ToString());
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    if (!ok()) Fail(std::get<Status>(payload_).ToString());
    return std::get<T>(payload_);
  }
  T ValueOrDie() && {
    if (!ok()) Fail(std::get<Status>(payload_).ToString());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, leaving the Result unspecified. ok() must hold.
  T MoveValueUnsafe() { return std::move(std::get<T>(payload_)); }

 private:
  [[noreturn]] static void Fail(const std::string& why);
  std::variant<Status, T> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const std::string& why);
}  // namespace internal

template <typename T>
void Result<T>::Fail(const std::string& why) {
  internal::DieOnBadResult(why);
}

}  // namespace pane

/// Evaluates an expression returning Status; on error, returns it upward.
#define PANE_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::pane::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define PANE_CONCAT_IMPL(x, y) x##y
#define PANE_CONCAT(x, y) PANE_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on error returns the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define PANE_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  PANE_ASSIGN_OR_RETURN_IMPL(PANE_CONCAT(_res_, __COUNTER__), lhs, rexpr)

#define PANE_ASSIGN_OR_RETURN_IMPL(res, lhs, rexpr) \
  auto res = (rexpr);                               \
  if (!res.ok()) return res.status();               \
  lhs = res.MoveValueUnsafe()
