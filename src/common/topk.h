// Deterministic top-k selection shared by the offline ranking helpers
// (src/tasks/ranking.h) and the serving-side query engine
// (src/serve/query_engine.h). Both paths rank by the same strict total
// order — score descending, index ascending — so the same (index, score)
// stream produces the same top-k whichever selection algorithm runs, and
// results are reproducible across thread counts, tile widths, and batch
// splits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace pane {

/// \brief (index, score) pairs sorted by descending score; ties broken by
/// ascending index.
using Ranking = std::vector<std::pair<int64_t, double>>;

/// \brief The ranking order: score descending, index ascending. A strict
/// total order over distinct indices, so any selection algorithm that
/// respects it returns the same top-k set in the same order.
inline bool RankBetter(const std::pair<int64_t, double>& a,
                       const std::pair<int64_t, double>& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

/// \brief Keeps the k best pairs out of `candidates`: nth_element to the
/// cut, then a full sort of the kept prefix (O(n + k log k), no full sort
/// of the candidate set).
inline Ranking SelectTopK(Ranking candidates, int64_t k) {
  const int64_t kk =
      std::min<int64_t>(k, static_cast<int64_t>(candidates.size()));
  if (kk < static_cast<int64_t>(candidates.size())) {
    std::nth_element(candidates.begin(), candidates.begin() + kk,
                     candidates.end(), RankBetter);
  }
  std::sort(candidates.begin(), candidates.begin() + kk, RankBetter);
  candidates.resize(static_cast<size_t>(kk));
  return candidates;
}

/// \brief Deterministic k-way merge of per-shard top-k lists. Each input
/// list must already be sorted by RankBetter (what SelectTopK / TopKHeap::
/// Take produce); indices must be globally unique across lists (each shard
/// ranks a disjoint candidate range). The merge walks a cursor heap over
/// the list heads, so the global order is exactly the order a single scan
/// over the union would have produced: a sharded answer is byte-identical
/// to the unsharded one. O(k log s) for s lists.
inline Ranking MergeTopK(const std::vector<Ranking>& lists, int64_t k) {
  // Heap of (list, position) cursors; the best current head is popped first.
  std::vector<std::pair<size_t, size_t>> cursors;
  cursors.reserve(lists.size());
  for (size_t l = 0; l < lists.size(); ++l) {
    if (!lists[l].empty()) cursors.emplace_back(l, 0);
  }
  const auto cursor_worse = [&lists](const std::pair<size_t, size_t>& a,
                                     const std::pair<size_t, size_t>& b) {
    // std::push_heap keeps the max on top, so "a worse than b" puts the
    // RankBetter-best cursor at the front.
    return RankBetter(lists[b.first][b.second], lists[a.first][a.second]);
  };
  std::make_heap(cursors.begin(), cursors.end(), cursor_worse);
  int64_t total = 0;
  for (const Ranking& list : lists) total += static_cast<int64_t>(list.size());
  Ranking merged;
  merged.reserve(static_cast<size_t>(std::max<int64_t>(
      0, std::min<int64_t>(k, total))));
  while (static_cast<int64_t>(merged.size()) < k && !cursors.empty()) {
    std::pop_heap(cursors.begin(), cursors.end(), cursor_worse);
    auto [l, p] = cursors.back();
    cursors.pop_back();
    merged.push_back(lists[l][p]);
    if (p + 1 < lists[l].size()) {
      cursors.emplace_back(l, p + 1);
      std::push_heap(cursors.begin(), cursors.end(), cursor_worse);
    }
  }
  return merged;
}

/// \brief Streaming bounded selection: offer any number of (index, score)
/// pairs, take the k best in ranking order. A size-k min-heap whose top is
/// the worst kept pair, so the common reject case is one comparison.
/// Equivalent to SelectTopK over the same stream (the order is total).
class TopKHeap {
 public:
  explicit TopKHeap(int64_t k) : k_(k) { heap_.reserve(static_cast<size_t>(k)); }

  /// Current worst kept pair is heap_.front() once full.
  void Offer(int64_t index, double score) {
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.emplace_back(index, score);
      std::push_heap(heap_.begin(), heap_.end(), RankBetter);
      return;
    }
    if (!RankBetter({index, score}, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), RankBetter);
    heap_.back() = {index, score};
    std::push_heap(heap_.begin(), heap_.end(), RankBetter);
  }

  /// Extracts the kept pairs sorted best-first, leaving the heap empty.
  Ranking Take() {
    std::sort(heap_.begin(), heap_.end(), RankBetter);
    return std::move(heap_);
  }

  int64_t size() const { return static_cast<int64_t>(heap_.size()); }
  bool AtCapacity() const { return size() == k_; }

  /// The worst kept pair — the scan threshold: once AtCapacity(), a
  /// candidate can only enter if RankBetter(candidate, Worst()). Only
  /// valid when the heap is non-empty.
  const std::pair<int64_t, double>& Worst() const { return heap_.front(); }

 private:
  int64_t k_;
  Ranking heap_;  // min-heap under RankBetter: front() is the worst kept
};

}  // namespace pane
