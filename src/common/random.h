// Deterministic, fast pseudo-random generation. All stochastic components in
// the library (random-walk simulation, randomized SVD, negative sampling,
// synthetic graph generation) take an explicit seed so that every experiment
// is reproducible run-to-run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pane {

/// \brief SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Xoshiro256** PRNG: the library-wide random engine.
///
/// Satisfies UniformRandomBitGenerator, so it composes with <random>
/// distributions, but the helpers below avoid the libstdc++ distribution
/// objects on hot paths for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x8533cc1aa6f3b5dfULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (caches the second deviate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Forks an independent generator (for per-thread streams).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Fisher–Yates shuffle of an index vector.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = rng->UniformInt(static_cast<uint64_t>(i));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

/// \brief k distinct values sampled uniformly from [0, n) (Floyd's method).
std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k, Rng* rng);

/// \brief O(1)-per-draw sampler from a fixed discrete distribution
/// (Walker/Vose alias method). Used by the Monte-Carlo walk simulator to
/// draw attribute picks proportional to edge weight.
class AliasSampler {
 public:
  /// Builds the alias table from non-negative weights (need not sum to 1).
  /// An all-zero weight vector falls back to the uniform distribution.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability weight[i]/sum(weights).
  int64_t Sample(Rng* rng) const;

  int64_t size() const { return static_cast<int64_t>(prob_.size()); }

 private:
  std::vector<double> prob_;
  std::vector<int32_t> alias_;
};

}  // namespace pane
