// Wall-clock timing utilities used by the benchmark harnesses and the
// running-time experiments (Figures 3, 4, 7, 8).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace pane {

/// \brief Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates the elapsed time of a scope into a double (seconds).
///
/// Usage:
///   double apmi_seconds = 0;
///   { ScopedTimer t(&apmi_seconds); RunApmi(); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

/// \brief "1.23 s" / "45.6 ms" / "789 us" style formatting for reports.
std::string FormatDuration(double seconds);

// Monotonic (steady_clock) readings since an arbitrary epoch. These are the
// serving stack's only clocks: tools/lint.sh Rule 4 bans std::chrono inside
// src/serve/, so deadline bookkeeping uses these and latency accounting
// goes through src/obs/ histograms fed from them.
int64_t MonotonicNanos();
int64_t MonotonicMicros();
int64_t MonotonicMillis();

}  // namespace pane
