#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pane {

void FlagSet::AddInt(const std::string& name, int64_t default_value,
                     const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::AddString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagSet::SetFromString(Flag* flag, const std::string& value) {
  switch (flag->type) {
    case Type::kInt: {
      PANE_ASSIGN_OR_RETURN(flag->int_value, ParseInt64(value));
      return Status::OK();
    }
    case Type::kDouble: {
      PANE_ASSIGN_OR_RETURN(flag->double_value, ParseDouble(value));
      return Status::OK();
    }
    case Type::kString:
      flag->string_value = value;
      return Status::OK();
    case Type::kBool: {
      std::string v = ToLower(value);
      if (v == "true" || v == "1" || v == "yes" || v.empty()) {
        flag->bool_value = true;
      } else if (v == "false" || v == "0" || v == "no") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("bad bool value: " + value);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", Usage(argv[0]).c_str());
      std::exit(0);
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name + "\n" +
                                     Usage(argv[0]));
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    PANE_RETURN_NOT_OK(SetFromString(&it->second, value));
  }
  return Status::OK();
}

const FlagSet::Flag& FlagSet::Lookup(const std::string& name,
                                     Type type) const {
  auto it = flags_.find(name);
  PANE_CHECK(it != flags_.end()) << "flag not registered: " << name;
  PANE_CHECK(it->second.type == type) << "flag type mismatch: " << name;
  return it->second;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return Lookup(name, Type::kInt).int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Lookup(name, Type::kDouble).double_value;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).string_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).bool_value;
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [--flag=value ...]\n";
  for (const auto& [name, flag] : flags_) {
    std::string def;
    switch (flag.type) {
      case Type::kInt:
        def = StrFormat("%lld", static_cast<long long>(flag.int_value));
        break;
      case Type::kDouble:
        def = StrFormat("%g", flag.double_value);
        break;
      case Type::kString:
        def = flag.string_value;
        break;
      case Type::kBool:
        def = flag.bool_value ? "true" : "false";
        break;
    }
    out += StrFormat("  --%-18s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), def.c_str());
  }
  return out;
}

std::map<std::string, std::string> FlagSet::ValueMap() const {
  std::map<std::string, std::string> out;
  for (const auto& [name, flag] : flags_) {
    switch (flag.type) {
      case Type::kInt:
        out[name] = StrFormat("%lld", static_cast<long long>(flag.int_value));
        break;
      case Type::kDouble:
        out[name] = StrFormat("%.17g", flag.double_value);
        break;
      case Type::kString:
        out[name] = flag.string_value;
        break;
      case Type::kBool:
        out[name] = flag.bool_value ? "true" : "false";
        break;
    }
  }
  return out;
}

double EnvDoubleOr(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  auto parsed = ParseDouble(env);
  return parsed.ok() ? *parsed : fallback;
}

}  // namespace pane
