// Annotated synchronization primitives — the only place in src/ allowed to
// name the raw std:: mutex types (enforced by tools/lint.sh).
//
// Every wrapper carries Clang thread-safety attributes, so under
//   clang++ -Wthread-safety -Werror=thread-safety   (the `strict` preset)
// the compiler proves the lock discipline: a field declared
// PANE_GUARDED_BY(mu_) cannot be touched without holding mu_, a method
// declared PANE_REQUIRES(mu_) cannot be called without it, and a scoped
// MutexLock cannot be forgotten on an early return. On GCC (and any other
// non-Clang compiler) the attributes expand to nothing and the wrappers are
// zero-cost forwarding shims over the std primitives, so the annotations
// never change behavior — only what the compiler is able to reject.
//
// Usage pattern (see thread_pool.h, buffer_pool.h, server.h for real ones):
//
//   class Worklist {
//    public:
//     void Push(Item item) PANE_EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       queue_.push_back(std::move(item));
//       cv_.Signal();
//     }
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     std::deque<Item> queue_ PANE_GUARDED_BY(mu_);
//   };
//
// Condition waits are written as explicit loops (`while (!pred)
// cv_.Wait(&mu_);`) rather than predicate lambdas: the analysis sees the
// guarded reads inside the loop under the scoped lock, whereas a lambda
// body would be opaque to it.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros (no-ops outside Clang). Names follow the capability
// vocabulary of https://clang.llvm.org/docs/ThreadSafetyAnalysis.html with a
// PANE_ prefix so they cannot collide with other libraries' spellings.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PANE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PANE_THREAD_ANNOTATION
#define PANE_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

/// Marks a class as a lockable capability (e.g. "mutex").
#define PANE_CAPABILITY(x) PANE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PANE_SCOPED_CAPABILITY PANE_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field may only be accessed while holding the capability.
#define PANE_GUARDED_BY(x) PANE_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the data a pointer field points to is guarded.
#define PANE_PT_GUARDED_BY(x) PANE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (exclusively / shared) and holds it on
/// return.
#define PANE_ACQUIRE(...) \
  PANE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PANE_ACQUIRE_SHARED(...) \
  PANE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define PANE_RELEASE(...) \
  PANE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PANE_RELEASE_SHARED(...) \
  PANE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function may only be called while holding the capability.
#define PANE_REQUIRES(...) \
  PANE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PANE_REQUIRES_SHARED(...) \
  PANE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the capability (deadlock
/// guard for public entry points that take the lock themselves).
#define PANE_EXCLUDES(...) PANE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability only when it returns `true`.
#define PANE_TRY_ACQUIRE(...) \
  PANE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Runtime no-op that tells the analysis the capability is held here.
#define PANE_ASSERT_CAPABILITY(x) \
  PANE_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define PANE_RETURN_CAPABILITY(x) PANE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch; use only with a comment explaining why the analysis is
/// wrong (e.g. locks handed across threads).
#define PANE_NO_THREAD_SAFETY_ANALYSIS \
  PANE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pane {

class CondVar;

// ---------------------------------------------------------------------------
// Mutex: exclusive lock. The codebase's default primitive.

class PANE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PANE_ACQUIRE() { mu_.lock(); }
  void Unlock() PANE_RELEASE() { mu_.unlock(); }
  bool TryLock() PANE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Static-analysis assertion that this mutex is held (no runtime check:
  /// std::mutex has no portable ownership query). Use it at the top of
  /// private helpers reached only under the lock when an annotation cannot
  /// express the path.
  void AssertHeld() const PANE_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// SharedMutex: writer/reader lock for read-mostly state (e.g. the container
// verify memo: readers check the bit, one writer verifies pages).

class PANE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PANE_ACQUIRE() { mu_.lock(); }
  void Unlock() PANE_RELEASE() { mu_.unlock(); }
  void ReaderLock() PANE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() PANE_RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const PANE_ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// ---------------------------------------------------------------------------
// Scoped lockers. Constructors take a pointer (never null) so call sites
// read `MutexLock lock(&mu_);` and the analysis tracks the capability.

class PANE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PANE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PANE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

class PANE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) PANE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() PANE_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

class PANE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) PANE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() PANE_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// ---------------------------------------------------------------------------
// CondVar: condition variable bound to Mutex. Wait() releases and reacquires
// the mutex; callers hold it across the call, so the annotation is
// REQUIRES(mu). Spurious wakeups are possible — always wait in a loop:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks until notified (or spuriously wakes),
  /// and reacquires *mu before returning.
  void Wait(Mutex* mu) PANE_REQUIRES(mu);

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pane
