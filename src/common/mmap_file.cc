#include "src/common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pane {
namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

MappedFile::MappedFile(MappedFile&& other) noexcept {
  *this = std::move(other);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  if (map_ != nullptr) munmap(map_, static_cast<size_t>(size_));
  map_ = other.map_;
  size_ = other.size_;
  other.map_ = nullptr;
  other.size_ = 0;
  return *this;
}

MappedFile::~MappedFile() {
  if (map_ != nullptr) munmap(map_, static_cast<size_t>(size_));
}

Result<MappedFile> MappedFile::OpenReadOnly(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const Status status = Status::IOError(ErrnoMessage("cannot stat", path));
    close(fd);
    return status;
  }
  MappedFile file;
  file.size_ = static_cast<int64_t>(st.st_size);
  if (file.size_ == 0) {
    close(fd);
    return file;
  }
  void* map = mmap(nullptr, static_cast<size_t>(file.size_), PROT_READ,
                   MAP_SHARED, fd, 0);
  close(fd);  // the mapping keeps the file contents alive
  if (map == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("cannot map", path));
  }
  file.map_ = map;
  return file;
}

}  // namespace pane
