// Small string helpers shared by the IO layer and the bench/CLI harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace pane {

/// Splits on a single character; empty fields are kept.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Locale-independent parsers returning Status on malformed input.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Joins elements with a separator: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "12.3K" / "4.5M" / "6.7B" human-readable count formatting.
std::string FormatCount(int64_t value);

/// Lowercase copy (ASCII).
std::string ToLower(std::string_view s);

}  // namespace pane
