// Read-only memory-mapped file. The serving-side counterpart of
// FactorSlab's read-write spill mapping (src/matrix/factor_slab.h): where a
// slab owns a private scratch file, MappedFile shares an existing artifact
// through the page cache — every process that maps the same file reads the
// same physical pages, which is what makes N server processes over one
// embedding cost one embedding's worth of RAM.
//
// The file descriptor is closed as soon as the mapping is established (the
// mapping keeps the contents alive), so a MappedFile holds no fd for its
// lifetime and survives the path being unlinked.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace pane {

class MappedFile {
 public:
  /// Empty (nothing mapped).
  MappedFile() = default;

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  ~MappedFile();

  /// Maps `path` read-only (PROT_READ, MAP_SHARED). An empty file maps to
  /// size() == 0 with data() == nullptr.
  static Result<MappedFile> OpenReadOnly(const std::string& path);

  const char* data() const { return static_cast<const char*>(map_); }
  int64_t size() const { return size_; }
  bool mapped() const { return map_ != nullptr; }

 private:
  void* map_ = nullptr;
  int64_t size_ = 0;
};

}  // namespace pane
