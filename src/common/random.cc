#include "src/common/random.h"

#include <cmath>
#include <unordered_set>

#include "src/common/logging.h"

namespace pane {

uint64_t Rng::UniformInt(uint64_t bound) {
  PANE_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection to remove
  // modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (-bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller on (0,1] uniforms; u1 > 0 guaranteed by the 1 - U trick.
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k, Rng* rng) {
  PANE_CHECK(k >= 0 && k <= n) << "k=" << k << " n=" << n;
  // Floyd's algorithm: O(k) expected draws, no O(n) scratch.
  std::unordered_set<int64_t> chosen;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(j + 1)));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  PANE_CHECK(n > 0) << "AliasSampler needs at least one weight";
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  double total = 0.0;
  for (double w : weights) {
    PANE_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  if (total <= 0.0) {
    // Degenerate all-zero input: fall back to the uniform distribution.
    prob_.assign(n, 1.0);
    return;
  }

  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<int32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<int32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    int32_t s = small.back();
    small.pop_back();
    int32_t g = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = g;
    scaled[g] = (scaled[g] + scaled[s]) - 1.0;
    (scaled[g] < 1.0 ? small : large).push_back(g);
  }
  for (int32_t g : large) prob_[g] = 1.0;
  for (int32_t s : small) prob_[s] = 1.0;
}

int64_t AliasSampler::Sample(Rng* rng) const {
  const int64_t i =
      static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(prob_.size())));
  return rng->UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace pane
