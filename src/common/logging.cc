#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace pane {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("PANE_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}

std::atomic<int> g_log_level{static_cast<int>(InitialLevel())};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: (" << condition << ") ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[FATAL %s:%d] %s\n", Basename(file_), line_,
                 stream_.str().c_str());
  }
  std::abort();
}

}  // namespace internal
}  // namespace pane
