#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/sync.h"

namespace pane {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("PANE_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}

std::atomic<int> g_log_level{static_cast<int>(InitialLevel())};

// Serializes the sink: every emitted record goes through WriteLogLine below,
// so concurrent threads can never interleave bytes of two records even when
// stderr is unbuffered or redirected to a pipe.
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// The single guarded write path: both the leveled and the fatal emitters
/// funnel here, one whole record per acquisition.
void WriteLogLine(const char* severity, const char* file, int line,
                  const std::string& text) PANE_EXCLUDES(g_log_mutex) {
  MutexLock lock(&g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", severity, Basename(file), line,
               text.c_str());
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  WriteLogLine(LevelName(level_), file_, line_, stream_.str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: (" << condition << ") ";
}

FatalLogMessage::~FatalLogMessage() {
  WriteLogLine("FATAL", file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace pane
