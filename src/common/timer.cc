#include "src/common/timer.h"

#include <cstdio>

namespace pane {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t MonotonicMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace pane
