// Crash-safe file replacement: write into a same-directory temp file, fsync,
// then atomically rename over the destination. A reader (or a crashed
// writer) therefore only ever observes the old complete file or the new
// complete file — never a torn half-write. Every artifact writer in the
// tree (NodeEmbedding::Save, SaveGraphBinary, the store:: container) goes
// through this helper, so "the process died mid-save" can no longer corrupt
// a deployed embedding or graph snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace pane {

/// \brief Incremental crash-safe writer. Appends (and random-access writes)
/// go to `<path>.tmp.XXXXXX` in the destination directory; Commit() fsyncs
/// and renames the temp file onto `path`. If the writer is destroyed
/// without a successful Commit, the temp file is removed — the destination
/// is never touched.
class AtomicFile {
 public:
  AtomicFile() = default;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  AtomicFile(AtomicFile&& other) noexcept;
  AtomicFile& operator=(AtomicFile&& other) noexcept;

  /// Removes the temp file when Commit never succeeded.
  ~AtomicFile();

  /// Creates the temp file next to `path` (same filesystem, so the final
  /// rename is atomic).
  static Result<AtomicFile> Create(const std::string& path);

  Status Append(const void* data, int64_t bytes);

  /// pwrite at an absolute offset (placeholder back-patching: a container
  /// writes its superblock last, after the page checksums are known).
  Status WriteAt(int64_t offset, const void* data, int64_t bytes);

  /// Bytes appended so far (not counting WriteAt beyond the append cursor).
  int64_t appended() const { return appended_; }

  /// fsync, close, rename over the destination, then best-effort fsync of
  /// the parent directory so the rename itself is durable.
  Status Commit();

 private:
  void Abandon();

  int fd_ = -1;
  int64_t appended_ = 0;
  std::string tmp_path_;
  std::string final_path_;
};

/// \brief One-shot convenience: atomically replaces `path` with `contents`.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

}  // namespace pane
