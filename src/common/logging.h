// Minimal leveled logging + check macros, modeled on the glog subset that
// Arrow and RocksDB use internally. Logging goes to stderr; the level is
// settable programmatically or via the PANE_LOG_LEVEL environment variable
// (0=DEBUG, 1=INFO, 2=WARNING, 3=ERROR, 4=OFF).
#pragma once

#include <sstream>
#include <string>

namespace pane {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-collecting helper behind the PANE_LOG macro; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Emits the message then aborts. Used by PANE_CHECK / PANE_DCHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Severity-name constants for the PANE_LOG token-pasting macro.
inline constexpr LogLevel kLogSeverity_DEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogSeverity_INFO = LogLevel::kInfo;
inline constexpr LogLevel kLogSeverity_WARNING = LogLevel::kWarning;
inline constexpr LogLevel kLogSeverity_ERROR = LogLevel::kError;

}  // namespace internal
}  // namespace pane

#define PANE_LOG_INTERNAL(level)                                      \
  ::pane::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Usage: PANE_LOG(INFO) << "loaded " << n << " nodes";
#define PANE_LOG(severity) \
  PANE_LOG_INTERNAL(::pane::internal::kLogSeverity_##severity)

/// Aborts with a message when `condition` is false. Always on.
#define PANE_CHECK(condition)                                              \
  if (!(condition))                                                        \
  ::pane::internal::FatalLogMessage(__FILE__, __LINE__, #condition).stream()

#define PANE_CHECK_OK(expr)                                          \
  do {                                                               \
    ::pane::Status _st = (expr);                                     \
    PANE_CHECK(_st.ok()) << _st.ToString();                          \
  } while (false)

/// Debug-build-only check (compiled out under NDEBUG).
#ifdef NDEBUG
#define PANE_DCHECK(condition) \
  while (false) PANE_CHECK(condition)
#else
#define PANE_DCHECK(condition) PANE_CHECK(condition)
#endif
