// Monte-Carlo simulation of the forward / backward random walks of
// Section 2.2 on the extended graph (graph nodes + attribute nodes). This is
// the *definition* of node-attribute affinity; APMI (Algorithm 2)
// approximates it deterministically. The simulator provides the ground truth
// that tests and the Table 2 running-example bench validate APMI against.
#pragma once

#include <cstdint>

#include "src/common/random.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

/// \brief Samples forward/backward walks and accumulates empirical
/// probabilities p_f(v, r), p_b(v, r).
class WalkSimulator {
 public:
  /// \param alpha stopping probability per step (0 < alpha < 1).
  WalkSimulator(const AttributedGraph& graph, double alpha, uint64_t seed);

  /// Empirical p_f as an n x d matrix: entry (v, r) is the fraction of the
  /// `walks_per_node` forward walks from v that yielded pair (v, r).
  /// Matches the matrix form of Equation (5): walks that die (dangling node,
  /// or stop at an attribute-less node) contribute to no pair, so rows may
  /// sum to less than 1.
  DenseMatrix EstimateForwardProbabilities(int64_t walks_per_node);

  /// Empirical p_b as an n x d matrix: entry (v, r) is the fraction of the
  /// `walks_per_attribute` backward walks from r that stopped at v.
  DenseMatrix EstimateBackwardProbabilities(int64_t walks_per_attribute);

  /// One forward walk from `start`; returns the attribute index picked, or
  /// -1 if the walk died. Exposed for tests.
  int64_t ForwardWalk(int64_t start, Rng* rng) const;

  /// One backward walk from attribute `attr`; returns the node the walk
  /// stopped at, or -1 if it died.
  int64_t BackwardWalk(int64_t attr, Rng* rng) const;

 private:
  const AttributedGraph& graph_;
  double alpha_;
  Rng rng_;
  CsrMatrix attributes_col_normalized_;       // Rc, for backward source pick
  std::vector<AliasSampler> attr_col_sampler_;  // per attribute: nodes ~ Rc
  std::vector<std::vector<int64_t>> attr_col_nodes_;
};

}  // namespace pane
