#include "src/graph/random_walk.h"

#include "src/common/logging.h"

namespace pane {
namespace {

// Weighted pick from a CSR row by cumulative scan (row fan-outs are small).
int64_t SampleRowWeighted(const CsrMatrix::RowView& row, Rng* rng) {
  if (row.length == 0) return -1;
  double total = 0.0;
  for (int64_t p = 0; p < row.length; ++p) total += row.vals[p];
  if (total <= 0.0) return -1;
  double u = rng->UniformDouble() * total;
  for (int64_t p = 0; p < row.length; ++p) {
    u -= row.vals[p];
    if (u <= 0.0) return row.cols[p];
  }
  return row.cols[row.length - 1];
}

}  // namespace

WalkSimulator::WalkSimulator(const AttributedGraph& graph, double alpha,
                             uint64_t seed)
    : graph_(graph), alpha_(alpha), rng_(seed) {
  PANE_CHECK(alpha > 0.0 && alpha < 1.0) << "alpha must be in (0, 1)";
  attributes_col_normalized_ = graph.attributes().ColNormalized();
  // Backward walks start from a node drawn ~ Rc[:, r]: build one alias
  // sampler per attribute from the transposed attribute matrix.
  const CsrMatrix rt = graph.attributes().Transposed();  // d x n
  const int64_t d = graph.num_attributes();
  attr_col_sampler_.reserve(static_cast<size_t>(d));
  attr_col_nodes_.resize(static_cast<size_t>(d));
  for (int64_t r = 0; r < d; ++r) {
    const CsrMatrix::RowView row = rt.Row(r);
    std::vector<double> weights(static_cast<size_t>(row.length));
    auto& nodes = attr_col_nodes_[static_cast<size_t>(r)];
    nodes.resize(static_cast<size_t>(row.length));
    for (int64_t p = 0; p < row.length; ++p) {
      nodes[static_cast<size_t>(p)] = row.cols[p];
      weights[static_cast<size_t>(p)] = row.vals[p];
    }
    if (weights.empty()) weights.push_back(1.0);  // placeholder, never used
    attr_col_sampler_.emplace_back(weights);
  }
}

int64_t WalkSimulator::ForwardWalk(int64_t start, Rng* rng) const {
  int64_t cur = start;
  while (true) {
    if (rng->Bernoulli(alpha_)) {
      // Terminate here; follow E_R to an attribute ~ Rr[cur, :].
      return SampleRowWeighted(graph_.attributes().Row(cur), rng);
    }
    const CsrMatrix::RowView out = graph_.adjacency().Row(cur);
    if (out.length == 0) {
      // Dangling node: absorbing self-loop (matches RandomWalkMatrix), so
      // the walk is guaranteed to stop here eventually.
      return SampleRowWeighted(graph_.attributes().Row(cur), rng);
    }
    cur = out.cols[rng->UniformInt(static_cast<uint64_t>(out.length))];
  }
}

int64_t WalkSimulator::BackwardWalk(int64_t attr, Rng* rng) const {
  const auto& nodes = attr_col_nodes_[static_cast<size_t>(attr)];
  if (nodes.empty()) return -1;  // attribute with no owners
  int64_t cur = nodes[static_cast<size_t>(
      attr_col_sampler_[static_cast<size_t>(attr)].Sample(rng))];
  while (true) {
    if (rng->Bernoulli(alpha_)) return cur;
    const CsrMatrix::RowView out = graph_.adjacency().Row(cur);
    if (out.length == 0) return cur;  // absorbing dangling node
    cur = out.cols[rng->UniformInt(static_cast<uint64_t>(out.length))];
  }
}

DenseMatrix WalkSimulator::EstimateForwardProbabilities(
    int64_t walks_per_node) {
  const int64_t n = graph_.num_nodes();
  DenseMatrix pf(n, graph_.num_attributes());
  const double inv = 1.0 / static_cast<double>(walks_per_node);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t w = 0; w < walks_per_node; ++w) {
      const int64_t attr = ForwardWalk(v, &rng_);
      if (attr >= 0) pf(v, attr) += inv;
    }
  }
  return pf;
}

DenseMatrix WalkSimulator::EstimateBackwardProbabilities(
    int64_t walks_per_attribute) {
  const int64_t d = graph_.num_attributes();
  DenseMatrix pb(graph_.num_nodes(), d);
  const double inv = 1.0 / static_cast<double>(walks_per_attribute);
  for (int64_t r = 0; r < d; ++r) {
    for (int64_t w = 0; w < walks_per_attribute; ++w) {
      const int64_t node = BackwardWalk(r, &rng_);
      if (node >= 0) pb(node, r) += inv;
    }
  }
  return pb;
}

}  // namespace pane
