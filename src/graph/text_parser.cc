#include "src/graph/text_parser.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "src/common/string_util.h"
#include "src/parallel/thread_pool.h"

namespace pane {
namespace {

// Chunks below this size are parsed inline: thread handoff costs more than
// the parse itself.
constexpr size_t kMinParallelBytes = 1 << 20;

inline bool IsBlank(char c) { return c == ' ' || c == '\t' || c == '\r'; }

inline const char* SkipBlanks(const char* p, const char* end) {
  while (p < end && IsBlank(*p)) ++p;
  return p;
}

// Parses one integer field at *p; the field must be terminated by a blank or
// a line end so "12x" fails instead of parsing as 12. A hand-rolled digit
// loop: this is the hot path of graph ingestion and runs ~2x faster than
// std::from_chars here. At most 18 digits are accepted, which covers every
// valid node id (< 2^31) without needing an overflow check.
inline bool ParseInt64Field(const char** p, const char* end, int64_t* value) {
  const char* q = *p;
  bool negative = false;
  if (q < end && *q == '-') {
    negative = true;
    ++q;
  }
  const char* digits = q;
  uint64_t v = 0;
  while (q < end) {
    const unsigned d = static_cast<unsigned>(*q) - '0';
    if (d > 9) break;
    v = v * 10 + d;
    ++q;
  }
  if (q == digits || q - digits > 18) return false;
  if (q != end && !IsBlank(*q) && *q != '\n') return false;
  *value = negative ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  *p = q;
  return true;
}

inline bool ParseDoubleField(const char** p, const char* end, double* value) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const auto [ptr, ec] = std::from_chars(*p, end, *value);
  if (ec != std::errc() || ptr == *p) return false;
  if (ptr != end && !IsBlank(*ptr) && *ptr != '\n') return false;
  *p = ptr;
  return true;
#else
  // Bounded copy + strtod for toolchains without floating-point from_chars.
  char buf[64];
  size_t len = 0;
  const char* q = *p;
  while (q < end && !IsBlank(*q) && *q != '\n' && len + 1 < sizeof(buf)) {
    buf[len++] = *q++;
  }
  if (len == 0) return false;
  buf[len] = '\0';
  char* parse_end = nullptr;
  *value = std::strtod(buf, &parse_end);
  if (parse_end != buf + len) return false;
  *p = q;
  return true;
#endif
}

struct ChunkOutcome {
  bool failed = false;
  size_t error_offset = 0;  // offset of the offending line start in the text
  std::string error_line;   // trimmed copy for the message
};

// Parses text[begin, end) into *triplets. `begin` must sit at a line start;
// `end` at a line start or the end of the text. Line ends are discovered
// during field scanning — there is no separate find-the-newline pass.
void ParseChunk(std::string_view text, size_t begin, size_t end,
                const TripletParseOptions& options,
                std::vector<Triplet>* triplets, ChunkOutcome* out) {
  const char* p = text.data() + begin;
  const char* stop = text.data() + end;
  // Lines like "123456 234567\n" run ~14 bytes; /8 over-reserves mildly but
  // avoids reallocation churn inside the hot loop.
  triplets->reserve((end - begin) / 8 + 8);
  while (p < stop) {
    const char* line_start = p;
    p = SkipBlanks(p, stop);
    if (p == stop) break;
    if (*p == '\n') {  // blank line
      ++p;
      continue;
    }
    if (options.allow_comments && (*p == '#' || *p == '%')) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<size_t>(stop - p)));
      p = nl != nullptr ? nl + 1 : stop;
      continue;
    }

    Triplet t;
    t.value = 1.0;
    bool ok = ParseInt64Field(&p, stop, &t.row);
    if (ok) {
      p = SkipBlanks(p, stop);
      ok = ParseInt64Field(&p, stop, &t.col);
    }
    if (ok) {
      p = SkipBlanks(p, stop);
      switch (options.layout) {
        case TripletLayout::kPair:
          break;  // any residue is trailing garbage, caught below
        case TripletLayout::kWeightedPair:
          if (p < stop && *p != '\n') ok = ParseDoubleField(&p, stop, &t.value);
          break;
        case TripletLayout::kTriple:
          ok = ParseDoubleField(&p, stop, &t.value);
          break;
      }
    }
    if (ok) {
      p = SkipBlanks(p, stop);
      ok = (p == stop || *p == '\n');
    }
    if (!ok) {
      out->failed = true;
      out->error_offset = static_cast<size_t>(line_start - text.data());
      const char* nl = static_cast<const char*>(
          std::memchr(line_start, '\n', static_cast<size_t>(stop - line_start)));
      const char* line_end = nl != nullptr ? nl : stop;
      std::string_view bad(line_start,
                           static_cast<size_t>(line_end - line_start));
      bad = Trim(bad).substr(0, 60);
      out->error_line.assign(bad);
      return;  // abort the chunk at the first malformed line
    }
    triplets->push_back(t);
    if (p < stop) ++p;  // consume the newline
  }
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  in.seekg(0, std::ios::beg);
  std::string contents;
  contents.resize(static_cast<size_t>(size));
  in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!in) return Status::IOError("read failed: " + path);
  return contents;
}

Result<std::vector<std::vector<Triplet>>> ParseTripletChunks(
    std::string_view text, const TripletParseOptions& options) {
  // Parsing is pure CPU work, so running more parse threads than physical
  // cores only buys scheduler churn; cap the fan-out at the hardware even
  // when the pool is configured wider (the paper's nb is an algorithm
  // parameter, not a core count).
  int workers = 1;
  if (options.pool != nullptr && text.size() >= kMinParallelBytes) {
    workers = options.pool->num_threads();
    const unsigned hardware = std::thread::hardware_concurrency();
    if (hardware > 0) {
      workers = std::min(workers, static_cast<int>(hardware));
    }
  }
  // Mild oversubscription evens out chunks with different line densities.
  const int num_chunks = workers > 1 ? workers * 2 : 1;

  // Chunk boundaries at approximately equal byte offsets, advanced to the
  // next line start so no line spans two chunks.
  std::vector<size_t> bounds;
  bounds.reserve(static_cast<size_t>(num_chunks) + 1);
  bounds.push_back(0);
  for (int i = 1; i < num_chunks; ++i) {
    size_t pos = text.size() * static_cast<size_t>(i) /
                 static_cast<size_t>(num_chunks);
    pos = std::max(pos, bounds.back());
    const size_t nl = text.find('\n', pos);
    pos = (nl == std::string_view::npos) ? text.size() : nl + 1;
    bounds.push_back(pos);
  }
  bounds.push_back(text.size());

  std::vector<std::vector<Triplet>> chunks(static_cast<size_t>(num_chunks));
  std::vector<ChunkOutcome> outcomes(static_cast<size_t>(num_chunks));
  const auto parse_one = [&](int c) {
    ParseChunk(text, bounds[static_cast<size_t>(c)],
               bounds[static_cast<size_t>(c) + 1], options,
               &chunks[static_cast<size_t>(c)],
               &outcomes[static_cast<size_t>(c)]);
  };
  if (num_chunks == 1) {
    parse_one(0);
  } else {
    options.pool->RunBlocks(num_chunks, parse_one);
  }

  // Report the earliest malformed line across all chunks; counting the
  // newlines before it is cheap because errors are the rare path.
  size_t first_error = text.size() + 1;
  const ChunkOutcome* bad = nullptr;
  for (const ChunkOutcome& outcome : outcomes) {
    if (outcome.failed && outcome.error_offset < first_error) {
      first_error = outcome.error_offset;
      bad = &outcome;
    }
  }
  if (bad != nullptr) {
    const int64_t line =
        1 + std::count(text.begin(),
                       text.begin() + static_cast<std::ptrdiff_t>(first_error),
                       '\n');
    return Status::InvalidArgument(
        StrFormat("malformed line %lld: '%s'", static_cast<long long>(line),
                  bad->error_line.c_str()));
  }
  return chunks;
}

Result<std::vector<Triplet>> ParseTriplets(std::string_view text,
                                           const TripletParseOptions& options) {
  PANE_ASSIGN_OR_RETURN(std::vector<std::vector<Triplet>> chunks,
                        ParseTripletChunks(text, options));
  if (chunks.size() == 1) return std::move(chunks[0]);
  size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  std::vector<Triplet> merged;
  merged.reserve(total);
  for (auto& chunk : chunks) {
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  }
  return merged;
}

}  // namespace pane
