#include "src/graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/string_util.h"

namespace pane {
namespace {

constexpr uint64_t kBinaryMagic = 0x50414e4547523031ULL;  // "PANEGR01"

Status WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void AppendVector(std::string* buf, const std::vector<T>& v) {
  AppendPod<uint64_t>(buf, v.size());
  buf->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

template <typename T>
Status ReadPod(std::istream* in, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(T));
  if (!*in) return Status::IOError("truncated binary graph file");
  return Status::OK();
}

template <typename T>
Status ReadVector(std::istream* in, std::vector<T>* v) {
  uint64_t size = 0;
  PANE_RETURN_NOT_OK(ReadPod(in, &size));
  v->resize(size);
  in->read(reinterpret_cast<char*>(v->data()),
           static_cast<std::streamsize>(size * sizeof(T)));
  if (!*in) return Status::IOError("truncated binary graph file");
  return Status::OK();
}

void AppendCsr(std::string* buf, const CsrMatrix& m) {
  AppendPod<int64_t>(buf, m.rows());
  AppendPod<int64_t>(buf, m.cols());
  AppendVector(buf, m.indptr());
  AppendVector(buf, m.indices());
  AppendVector(buf, m.values());
}

Result<CsrMatrix> ReadCsr(std::istream* in) {
  int64_t rows = 0, cols = 0;
  PANE_RETURN_NOT_OK(ReadPod(in, &rows));
  PANE_RETURN_NOT_OK(ReadPod(in, &cols));
  std::vector<int64_t> indptr;
  std::vector<int32_t> indices;
  std::vector<double> values;
  PANE_RETURN_NOT_OK(ReadVector(in, &indptr));
  PANE_RETURN_NOT_OK(ReadVector(in, &indices));
  PANE_RETURN_NOT_OK(ReadVector(in, &values));
  return CsrMatrix::FromCsrArrays(rows, cols, std::move(indptr),
                                  std::move(indices), std::move(values));
}

}  // namespace

Status SaveGraphText(const AttributedGraph& graph, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);

  PANE_RETURN_NOT_OK(WriteAll(
      dir + "/meta.txt",
      StrFormat("%lld %lld %d\n", static_cast<long long>(graph.num_nodes()),
                static_cast<long long>(graph.num_attributes()),
                graph.undirected() ? 0 : 1)));

  std::string edges;
  for (int64_t u = 0; u < graph.num_nodes(); ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      edges += StrFormat("%lld %d\n", static_cast<long long>(u), row.cols[p]);
    }
  }
  PANE_RETURN_NOT_OK(WriteAll(dir + "/edges.txt", edges));

  std::string attrs;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const CsrMatrix::RowView row = graph.attributes().Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      attrs += StrFormat("%lld %d %.17g\n", static_cast<long long>(v),
                         row.cols[p], row.vals[p]);
    }
  }
  PANE_RETURN_NOT_OK(WriteAll(dir + "/attrs.txt", attrs));

  std::string labels;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const auto& node_labels = graph.labels()[static_cast<size_t>(v)];
    if (node_labels.empty()) continue;
    labels += StrFormat("%lld", static_cast<long long>(v));
    for (int32_t l : node_labels) labels += StrFormat(" %d", l);
    labels += "\n";
  }
  return WriteAll(dir + "/labels.txt", labels);
}

Result<AttributedGraph> LoadGraphText(const std::string& dir) {
  std::ifstream meta(dir + "/meta.txt");
  if (!meta) return Status::IOError("cannot open " + dir + "/meta.txt");
  int64_t n = 0, d = 0;
  int directed = 1;
  meta >> n >> d >> directed;
  if (!meta) return Status::IOError("malformed meta.txt");

  GraphBuilder builder(n, d);

  {
    std::ifstream edges(dir + "/edges.txt");
    if (!edges) return Status::IOError("cannot open " + dir + "/edges.txt");
    int64_t u = 0, v = 0;
    while (edges >> u >> v) builder.AddEdge(u, v);
  }
  {
    std::ifstream attrs(dir + "/attrs.txt");
    if (!attrs) return Status::IOError("cannot open " + dir + "/attrs.txt");
    int64_t v = 0, r = 0;
    double w = 0.0;
    while (attrs >> v >> r >> w) builder.AddNodeAttribute(v, r, w);
  }
  {
    std::ifstream labels(dir + "/labels.txt");
    if (labels) {
      std::string line;
      while (std::getline(labels, line)) {
        std::istringstream ls(line);
        int64_t v = 0;
        if (!(ls >> v)) continue;
        int32_t label = 0;
        while (ls >> label) builder.AddLabel(v, label);
      }
    }
  }
  return builder.Build(directed == 0);
}

Status SaveGraphBinary(const AttributedGraph& graph, const std::string& path) {
  std::string buf;
  AppendPod(&buf, kBinaryMagic);
  AppendPod<uint8_t>(&buf, graph.undirected() ? 1 : 0);
  AppendCsr(&buf, graph.adjacency());
  AppendCsr(&buf, graph.attributes());
  AppendPod<int64_t>(&buf, graph.num_nodes());
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const auto& labels = graph.labels()[static_cast<size_t>(v)];
    AppendPod<uint32_t>(&buf, static_cast<uint32_t>(labels.size()));
    buf.append(reinterpret_cast<const char*>(labels.data()),
               labels.size() * sizeof(int32_t));
  }
  return WriteAll(path, buf);
}

Result<AttributedGraph> LoadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  uint64_t magic = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &magic));
  if (magic != kBinaryMagic) {
    return Status::InvalidArgument("not a PANE binary graph file: " + path);
  }
  uint8_t undirected = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &undirected));
  PANE_ASSIGN_OR_RETURN(CsrMatrix adjacency, ReadCsr(&in));
  PANE_ASSIGN_OR_RETURN(CsrMatrix attributes, ReadCsr(&in));
  int64_t n = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &n));
  if (n != adjacency.rows()) {
    return Status::InvalidArgument("label count mismatch in binary graph");
  }

  GraphBuilder builder(adjacency.rows(), attributes.cols());
  for (int64_t u = 0; u < adjacency.rows(); ++u) {
    const CsrMatrix::RowView row = adjacency.Row(u);
    for (int64_t p = 0; p < row.length; ++p) builder.AddEdge(u, row.cols[p]);
  }
  for (int64_t v = 0; v < attributes.rows(); ++v) {
    const CsrMatrix::RowView row = attributes.Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      builder.AddNodeAttribute(v, row.cols[p], row.vals[p]);
    }
  }
  for (int64_t v = 0; v < n; ++v) {
    uint32_t count = 0;
    PANE_RETURN_NOT_OK(ReadPod(&in, &count));
    for (uint32_t i = 0; i < count; ++i) {
      int32_t label = 0;
      PANE_RETURN_NOT_OK(ReadPod(&in, &label));
      builder.AddLabel(v, label);
    }
  }
  return builder.Build(undirected == 1);
}

}  // namespace pane
