#include "src/graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/string_util.h"
#include "src/graph/text_parser.h"
#include "src/parallel/thread_pool.h"
#include "src/store/container.h"

namespace pane {
namespace {

constexpr uint64_t kBinaryMagic = 0x50414e4547523031ULL;  // "PANEGR01"

// Container stream names (SaveGraphContainer / LoadGraphContainer).
constexpr char kGraphMetaStream[] = "graph.meta";
constexpr char kAdjIndptrStream[] = "graph.adj.indptr";
constexpr char kAdjIndicesStream[] = "graph.adj.indices";
constexpr char kAdjValuesStream[] = "graph.adj.values";
constexpr char kAttrIndptrStream[] = "graph.attr.indptr";
constexpr char kAttrIndicesStream[] = "graph.attr.indices";
constexpr char kAttrValuesStream[] = "graph.attr.values";
constexpr char kLabelOffsetsStream[] = "graph.label.offsets";
constexpr char kLabelIdsStream[] = "graph.label.ids";
constexpr uint32_t kGraphMetaVersion = 1;

Status WriteAll(const std::string& path, const std::string& contents) {
  return AtomicWriteFile(path, contents);
}

/// Re-labels an error status with the file it came from.
Status AnnotateError(const Status& s, const std::string& path) {
  if (s.ok()) return s;
  return Status(s.code(), path + ": " + s.message());
}

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void AppendVector(std::string* buf, const std::vector<T>& v) {
  AppendPod<uint64_t>(buf, v.size());
  buf->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

/// All binary reads go through this wrapper, which tracks the bytes left in
/// the file so a corrupt length field fails with an IOError before any
/// allocation instead of triggering a multi-GB resize.
class BoundedReader {
 public:
  static Result<BoundedReader> Open(const std::string& path) {
    BoundedReader r;
    r.in_.open(path, std::ios::binary);
    if (!r.in_) return Status::IOError("cannot open: " + path);
    r.in_.seekg(0, std::ios::end);
    const std::streamoff size = r.in_.tellg();
    if (size < 0) return Status::IOError("cannot stat: " + path);
    r.remaining_ = static_cast<int64_t>(size);
    r.in_.seekg(0, std::ios::beg);
    return r;
  }

  int64_t remaining() const { return remaining_; }

  template <typename T>
  Status ReadPod(T* value) {
    if (remaining_ < static_cast<int64_t>(sizeof(T))) {
      return Status::IOError("truncated binary graph file");
    }
    in_.read(reinterpret_cast<char*>(value), sizeof(T));
    if (!in_) return Status::IOError("truncated binary graph file");
    remaining_ -= static_cast<int64_t>(sizeof(T));
    return Status::OK();
  }

  /// Reads a u64 length header + payload. The declared length is checked
  /// against the remaining file size before the vector is resized.
  template <typename T>
  Status ReadVector(std::vector<T>* v, const char* what) {
    uint64_t size = 0;
    PANE_RETURN_NOT_OK(ReadPod(&size));
    PANE_RETURN_NOT_OK(CheckFits(size, sizeof(T), what));
    v->resize(size);
    const int64_t bytes = static_cast<int64_t>(size * sizeof(T));
    in_.read(reinterpret_cast<char*>(v->data()),
             static_cast<std::streamsize>(bytes));
    if (!in_) return Status::IOError("truncated binary graph file");
    remaining_ -= bytes;
    return Status::OK();
  }

  /// Reads `bytes` raw bytes; the caller has already bounded them via
  /// CheckFits.
  Status ReadRaw(void* dst, int64_t bytes) {
    if (bytes > remaining_) return Status::IOError("truncated binary graph file");
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
    if (!in_) return Status::IOError("truncated binary graph file");
    remaining_ -= bytes;
    return Status::OK();
  }

  /// Fails unless `count` elements of `elem_size` bytes fit in the file's
  /// remaining bytes. Division keeps the comparison overflow-free.
  Status CheckFits(uint64_t count, size_t elem_size, const char* what) const {
    if (count > static_cast<uint64_t>(remaining_) / elem_size) {
      return Status::IOError(
          StrFormat("%s length %llu exceeds the bytes remaining in the file",
                    what, static_cast<unsigned long long>(count)));
    }
    return Status::OK();
  }

 private:
  std::ifstream in_;
  int64_t remaining_ = 0;
};

void AppendCsr(std::string* buf, const CsrMatrix& m) {
  AppendPod<int64_t>(buf, m.rows());
  AppendPod<int64_t>(buf, m.cols());
  AppendVector(buf, m.indptr());
  AppendVector(buf, m.indices());
  AppendVector(buf, m.values());
}

Result<CsrMatrix> ReadCsr(BoundedReader* reader) {
  int64_t rows = 0, cols = 0;
  PANE_RETURN_NOT_OK(reader->ReadPod(&rows));
  PANE_RETURN_NOT_OK(reader->ReadPod(&cols));
  if (rows < 0 || cols < 0) {
    return Status::IOError("negative matrix shape in binary graph file");
  }
  std::vector<int64_t> indptr;
  std::vector<int32_t> indices;
  std::vector<double> values;
  PANE_RETURN_NOT_OK(reader->ReadVector(&indptr, "indptr"));
  if (static_cast<int64_t>(indptr.size()) != rows + 1) {
    return Status::IOError("indptr length does not match the stored row count");
  }
  PANE_RETURN_NOT_OK(reader->ReadVector(&indices, "indices"));
  PANE_RETURN_NOT_OK(reader->ReadVector(&values, "values"));
  return CsrMatrix::FromCsrArrays(rows, cols, std::move(indptr),
                                  std::move(indices), std::move(values));
}

Result<std::vector<std::vector<Triplet>>> ParseGraphFile(
    const std::string& path, TripletLayout layout, bool allow_comments,
    ThreadPool* pool) {
  PANE_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  TripletParseOptions options;
  options.layout = layout;
  options.allow_comments = allow_comments;
  options.pool = pool;
  auto parsed = ParseTripletChunks(text, options);
  if (!parsed.ok()) return AnnotateError(parsed.status(), path);
  return parsed;
}

}  // namespace

Status SaveGraphText(const AttributedGraph& graph, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);

  PANE_RETURN_NOT_OK(WriteAll(
      dir + "/meta.txt",
      StrFormat("%lld %lld %d\n", static_cast<long long>(graph.num_nodes()),
                static_cast<long long>(graph.num_attributes()),
                graph.undirected() ? 0 : 1)));

  std::string edges;
  for (int64_t u = 0; u < graph.num_nodes(); ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      edges += StrFormat("%lld %d\n", static_cast<long long>(u), row.cols[p]);
    }
  }
  PANE_RETURN_NOT_OK(WriteAll(dir + "/edges.txt", edges));

  std::string attrs;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const CsrMatrix::RowView row = graph.attributes().Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      attrs += StrFormat("%lld %d %.17g\n", static_cast<long long>(v),
                         row.cols[p], row.vals[p]);
    }
  }
  PANE_RETURN_NOT_OK(WriteAll(dir + "/attrs.txt", attrs));

  std::string labels;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const auto& node_labels = graph.labels()[static_cast<size_t>(v)];
    if (node_labels.empty()) continue;
    labels += StrFormat("%lld", static_cast<long long>(v));
    for (int32_t l : node_labels) labels += StrFormat(" %d", l);
    labels += "\n";
  }
  return WriteAll(dir + "/labels.txt", labels);
}

Result<AttributedGraph> LoadGraphText(const std::string& dir,
                                      ThreadPool* pool) {
  const std::string meta_path = dir + "/meta.txt";
  PANE_ASSIGN_OR_RETURN(const std::string meta, ReadFileToString(meta_path));
  const std::vector<std::string_view> fields = SplitWhitespace(meta);
  if (fields.size() != 3) {
    return Status::InvalidArgument(meta_path +
                                   ": expected 'nodes attributes directed'");
  }
  auto n = ParseInt64(fields[0]);
  auto d = ParseInt64(fields[1]);
  auto directed = ParseInt64(fields[2]);
  if (!n.ok() || !d.ok() || !directed.ok() || *n < 0 || *d < 0 ||
      (*directed != 0 && *directed != 1)) {
    return Status::InvalidArgument(meta_path + ": malformed header '" +
                                   std::string(Trim(meta)) + "'");
  }
  // Column indices are 32-bit; a larger count can only be a corrupt header,
  // and must not size the builder's allocations.
  constexpr int64_t kMaxCount = int64_t{1} << 31;
  if (*n > kMaxCount || *d > kMaxCount) {
    return Status::InvalidArgument(
        meta_path + ": node/attribute count exceeds the 2^31 format limit");
  }

  GraphBuilder builder(*n, *d);
  {
    PANE_ASSIGN_OR_RETURN(
        const std::vector<std::vector<Triplet>> edges,
        ParseGraphFile(dir + "/edges.txt", TripletLayout::kPair,
                       /*allow_comments=*/false, pool));
    builder.AddEdges(edges);
  }
  {
    PANE_ASSIGN_OR_RETURN(
        const std::vector<std::vector<Triplet>> attrs,
        ParseGraphFile(dir + "/attrs.txt", TripletLayout::kTriple,
                       /*allow_comments=*/false, pool));
    builder.AddNodeAttributes(attrs);
  }
  {
    const std::string labels_path = dir + "/labels.txt";
    std::ifstream labels(labels_path);
    if (labels) {  // optional file
      std::string line;
      int64_t line_number = 0;
      while (std::getline(labels, line)) {
        ++line_number;
        const std::vector<std::string_view> tokens = SplitWhitespace(line);
        if (tokens.empty()) continue;
        const auto node = ParseInt64(tokens[0]);
        const int64_t v = node.ok() ? *node : -1;
        bool ok = node.ok();
        for (size_t i = 1; ok && i < tokens.size(); ++i) {
          const auto label = ParseInt64(tokens[i]);
          // Range-check before the int32 narrowing so 2^32 cannot silently
          // wrap to class 0.
          ok = label.ok() && *label >= 0 && *label <= INT32_MAX;
          if (ok) builder.AddLabel(v, static_cast<int32_t>(*label));
        }
        if (!ok) {
          return Status::InvalidArgument(
              StrFormat("%s: malformed line %lld: '%s'", labels_path.c_str(),
                        static_cast<long long>(line_number),
                        std::string(Trim(line)).substr(0, 60).c_str()));
        }
      }
    }
  }
  return builder.Build(*directed == 0);
}

Status SaveGraphBinary(const AttributedGraph& graph, const std::string& path) {
  std::string buf;
  AppendPod(&buf, kBinaryMagic);
  AppendPod<uint8_t>(&buf, graph.undirected() ? 1 : 0);
  AppendCsr(&buf, graph.adjacency());
  AppendCsr(&buf, graph.attributes());
  AppendPod<int64_t>(&buf, graph.num_nodes());
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const auto& labels = graph.labels()[static_cast<size_t>(v)];
    AppendPod<uint32_t>(&buf, static_cast<uint32_t>(labels.size()));
    buf.append(reinterpret_cast<const char*>(labels.data()),
               labels.size() * sizeof(int32_t));
  }
  return WriteAll(path, buf);
}

Result<AttributedGraph> LoadGraphBinary(const std::string& path) {
  PANE_ASSIGN_OR_RETURN(BoundedReader reader, BoundedReader::Open(path));
  uint64_t magic = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&magic));
  if (magic != kBinaryMagic) {
    return Status::InvalidArgument("not a PANE binary graph file: " + path);
  }
  uint8_t undirected = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&undirected));
  auto adjacency = ReadCsr(&reader);
  if (!adjacency.ok()) return AnnotateError(adjacency.status(), path);
  auto attributes = ReadCsr(&reader);
  if (!attributes.ok()) return AnnotateError(attributes.status(), path);
  int64_t n = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&n));
  if (n != adjacency->rows()) {
    return Status::InvalidArgument("label count mismatch in " + path);
  }
  std::vector<std::vector<int32_t>> labels(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    uint32_t count = 0;
    PANE_RETURN_NOT_OK(reader.ReadPod(&count));
    PANE_RETURN_NOT_OK(AnnotateError(
        reader.CheckFits(count, sizeof(int32_t), "label list"), path));
    auto& node_labels = labels[static_cast<size_t>(v)];
    node_labels.resize(count);
    PANE_RETURN_NOT_OK(reader.ReadRaw(
        node_labels.data(), static_cast<int64_t>(count) * sizeof(int32_t)));
  }
  // The validated CSR arrays are adopted directly — no per-edge rebuild.
  auto graph =
      AttributedGraph::FromCsr(adjacency.MoveValueUnsafe(),
                               attributes.MoveValueUnsafe(), std::move(labels),
                               undirected == 1);
  if (!graph.ok()) return AnnotateError(graph.status(), path);
  return graph;
}

Status SaveGraphContainer(const AttributedGraph& graph,
                          const std::string& path) {
  // Fixed-size meta record, serialized field by field (no struct memcpy, so
  // no padding-byte nondeterminism): version u32, undirected u8, 3 reserved
  // bytes, then the two CSR shapes as i64 pairs.
  std::string meta;
  AppendPod<uint32_t>(&meta, kGraphMetaVersion);
  AppendPod<uint8_t>(&meta, graph.undirected() ? 1 : 0);
  meta.append(3, '\0');
  AppendPod<int64_t>(&meta, graph.adjacency().rows());
  AppendPod<int64_t>(&meta, graph.adjacency().cols());
  AppendPod<int64_t>(&meta, graph.attributes().rows());
  AppendPod<int64_t>(&meta, graph.attributes().cols());

  // Flatten the per-node label lists into an offsets + ids pair so they pack
  // as two flat streams.
  const int64_t n = graph.num_nodes();
  std::vector<int64_t> label_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<int32_t> label_ids;
  for (int64_t v = 0; v < n; ++v) {
    const auto& node_labels = graph.labels()[static_cast<size_t>(v)];
    label_ids.insert(label_ids.end(), node_labels.begin(), node_labels.end());
    label_offsets[static_cast<size_t>(v) + 1] =
        static_cast<int64_t>(label_ids.size());
  }

  store::ContainerWriter writer;
  const auto add = [&writer](const char* name, store::PageType type,
                             const void* data, int64_t bytes) {
    return writer.AddStream(name, type, data, bytes);
  };
  const auto bytes_of = [](const auto& v) {
    return static_cast<int64_t>(v.size() * sizeof(v[0]));
  };
  const CsrMatrix& adj = graph.adjacency();
  const CsrMatrix& attr = graph.attributes();
  PANE_RETURN_NOT_OK(add(kGraphMetaStream, store::PageType::kMeta, meta.data(),
                         static_cast<int64_t>(meta.size())));
  PANE_RETURN_NOT_OK(add(kAdjIndptrStream, store::PageType::kGraphCsr,
                         adj.indptr().data(), bytes_of(adj.indptr())));
  PANE_RETURN_NOT_OK(add(kAdjIndicesStream, store::PageType::kGraphCsr,
                         adj.indices().data(), bytes_of(adj.indices())));
  PANE_RETURN_NOT_OK(add(kAdjValuesStream, store::PageType::kGraphCsr,
                         adj.values().data(), bytes_of(adj.values())));
  PANE_RETURN_NOT_OK(add(kAttrIndptrStream, store::PageType::kGraphCsr,
                         attr.indptr().data(), bytes_of(attr.indptr())));
  PANE_RETURN_NOT_OK(add(kAttrIndicesStream, store::PageType::kGraphCsr,
                         attr.indices().data(), bytes_of(attr.indices())));
  PANE_RETURN_NOT_OK(add(kAttrValuesStream, store::PageType::kGraphCsr,
                         attr.values().data(), bytes_of(attr.values())));
  PANE_RETURN_NOT_OK(add(kLabelOffsetsStream, store::PageType::kGraphCsr,
                         label_offsets.data(), bytes_of(label_offsets)));
  PANE_RETURN_NOT_OK(add(kLabelIdsStream, store::PageType::kGraphCsr,
                         label_ids.data(), bytes_of(label_ids)));
  return writer.WriteTo(path);
}

namespace {

/// Reads one CSR matrix from its three container streams. The arrays are
/// copied out of the mapping (the graph owns its storage) and validated by
/// FromCsrArrays before adoption.
Result<CsrMatrix> ReadContainerCsr(const store::Container& container,
                                   int64_t rows, int64_t cols,
                                   const char* indptr_name,
                                   const char* indices_name,
                                   const char* values_name) {
  PANE_ASSIGN_OR_RETURN(auto indptr_view,
                        container.ReadArray<int64_t>(indptr_name));
  PANE_ASSIGN_OR_RETURN(auto indices_view,
                        container.ReadArray<int32_t>(indices_name));
  PANE_ASSIGN_OR_RETURN(auto values_view,
                        container.ReadArray<double>(values_name));
  if (indptr_view.count != rows + 1) {
    return Status::IOError(std::string(indptr_name) +
                           " length does not match the stored row count");
  }
  if (indices_view.count != values_view.count) {
    return Status::IOError(std::string(indices_name) + " and " + values_name +
                           " lengths disagree");
  }
  std::vector<int64_t> indptr(indptr_view.data,
                              indptr_view.data + indptr_view.count);
  std::vector<int32_t> indices(indices_view.data,
                               indices_view.data + indices_view.count);
  std::vector<double> values(values_view.data,
                             values_view.data + values_view.count);
  return CsrMatrix::FromCsrArrays(rows, cols, std::move(indptr),
                                  std::move(indices), std::move(values));
}

}  // namespace

Result<AttributedGraph> LoadGraphContainer(const std::string& path) {
  PANE_ASSIGN_OR_RETURN(store::Container container,
                        store::Container::Open(path));
  auto meta_result = container.Read(kGraphMetaStream);
  if (!meta_result.ok()) {
    if (meta_result.status().IsNotFound()) {
      return Status::InvalidArgument("container " + path +
                                     " holds no graph artifact");
    }
    return meta_result.status();
  }
  const store::Container::StreamView meta = meta_result.MoveValueUnsafe();
  constexpr int64_t kMetaBytes = 4 + 1 + 3 + 4 * 8;
  if (meta.bytes != kMetaBytes) {
    return Status::IOError("graph.meta stream in " + path + " holds " +
                           std::to_string(meta.bytes) + " bytes, expected " +
                           std::to_string(kMetaBytes));
  }
  const char* p = meta.data;
  uint32_t version = 0;
  std::memcpy(&version, p, sizeof(version));
  if (version != kGraphMetaVersion) {
    return Status::InvalidArgument(
        "unsupported graph container version " + std::to_string(version) +
        " in " + path);
  }
  const uint8_t undirected = static_cast<uint8_t>(p[4]);
  if (undirected > 1) {
    return Status::IOError("bad undirected flag in " + path);
  }
  int64_t shapes[4] = {0, 0, 0, 0};
  std::memcpy(shapes, p + 8, sizeof(shapes));
  for (int64_t s : shapes) {
    if (s < 0) return Status::IOError("negative matrix shape in " + path);
  }
  if (shapes[2] != shapes[0]) {
    return Status::IOError(
        "adjacency and attribute row counts disagree in " + path);
  }

  auto adjacency =
      ReadContainerCsr(container, shapes[0], shapes[1], kAdjIndptrStream,
                       kAdjIndicesStream, kAdjValuesStream);
  if (!adjacency.ok()) return AnnotateError(adjacency.status(), path);
  auto attributes =
      ReadContainerCsr(container, shapes[2], shapes[3], kAttrIndptrStream,
                       kAttrIndicesStream, kAttrValuesStream);
  if (!attributes.ok()) return AnnotateError(attributes.status(), path);

  const int64_t n = shapes[0];
  PANE_ASSIGN_OR_RETURN(auto offsets_view,
                        container.ReadArray<int64_t>(kLabelOffsetsStream));
  PANE_ASSIGN_OR_RETURN(auto ids_view,
                        container.ReadArray<int32_t>(kLabelIdsStream));
  if (offsets_view.count != n + 1) {
    return Status::IOError("label offsets length does not match the node "
                           "count in " + path);
  }
  if (offsets_view.data[0] != 0 ||
      offsets_view.data[n] != ids_view.count) {
    return Status::IOError("label offsets do not span the id list in " + path);
  }
  std::vector<std::vector<int32_t>> labels(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    const int64_t begin = offsets_view.data[v];
    const int64_t end = offsets_view.data[v + 1];
    if (begin > end) {
      return Status::IOError("label offsets not non-decreasing in " + path);
    }
    auto& node_labels = labels[static_cast<size_t>(v)];
    node_labels.reserve(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) {
      if (ids_view.data[i] < 0) {
        return Status::IOError("negative label id in " + path);
      }
      node_labels.push_back(ids_view.data[i]);
    }
  }

  auto graph =
      AttributedGraph::FromCsr(adjacency.MoveValueUnsafe(),
                               attributes.MoveValueUnsafe(), std::move(labels),
                               undirected == 1);
  if (!graph.ok()) return AnnotateError(graph.status(), path);
  return graph;
}

// Parses "key=value" integer fields from a SaveEdgeList header line
// ("# PANE edge list: nodes=N edges=M directed=D"); returns -1 when absent.
int64_t HeaderField(std::string_view line, std::string_view key) {
  const size_t pos = line.find(key);
  if (pos == std::string_view::npos) return -1;
  std::string_view rest = line.substr(pos + key.size());
  const size_t end = rest.find_first_not_of("0123456789");
  const auto value = ParseInt64(rest.substr(0, end));
  return value.ok() ? *value : -1;
}

Result<AttributedGraph> LoadEdgeList(const std::string& path,
                                     const EdgeListOptions& options) {
  PANE_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  TripletParseOptions parse_options;
  parse_options.layout = TripletLayout::kWeightedPair;
  parse_options.allow_comments = true;
  parse_options.pool = options.pool;
  auto parsed = ParseTripletChunks(text, parse_options);
  if (!parsed.ok()) return AnnotateError(parsed.status(), path);
  const std::vector<std::vector<Triplet>>& edges = *parsed;

  // A file written by SaveEdgeList carries the node count and directedness
  // in its header; honor them so the round trip preserves trailing isolated
  // nodes and the undirected flag. Explicit options still win.
  int64_t header_nodes = -1;
  bool header_undirected = false;
  {
    const std::string_view first_line =
        std::string_view(text).substr(0, text.find('\n'));
    if (StartsWith(first_line, "# PANE edge list:")) {
      header_nodes = HeaderField(first_line, "nodes=");
      header_undirected = HeaderField(first_line, "directed=") == 0;
    }
  }

  int64_t n = options.num_nodes >= 0 ? options.num_nodes : header_nodes;
  if (n < 0) {
    n = 0;
    for (const auto& chunk : edges) {
      for (const Triplet& t : chunk) n = std::max({n, t.row + 1, t.col + 1});
    }
  }
  // Column indices are 32-bit, so a node id >= 2^31 can only be a corrupt
  // file; reject it here instead of attempting a multi-GB builder
  // allocation sized by the bogus id.
  constexpr int64_t kMaxNodes = int64_t{1} << 31;
  if (n > kMaxNodes) {
    return Status::InvalidArgument(
        StrFormat("%s: node id %lld exceeds the 2^31 format limit",
                  path.c_str(), static_cast<long long>(n - 1)));
  }

  GraphBuilder builder(n, /*num_attributes=*/0);
  if (options.undirected) {
    // The file stores one direction per line; mirror while adding.
    for (const auto& chunk : edges) {
      for (const Triplet& t : chunk) builder.AddUndirectedEdge(t.row, t.col);
    }
  } else {
    // An undirected header means both directions are already present.
    builder.AddEdges(edges);
  }
  auto graph = builder.Build(options.undirected || header_undirected);
  if (!graph.ok()) return AnnotateError(graph.status(), path);
  return graph;
}

Status SaveEdgeList(const AttributedGraph& graph, const std::string& path) {
  std::string buf = StrFormat(
      "# PANE edge list: nodes=%lld edges=%lld directed=%d\n",
      static_cast<long long>(graph.num_nodes()),
      static_cast<long long>(graph.num_edges()), graph.undirected() ? 0 : 1);
  for (int64_t u = 0; u < graph.num_nodes(); ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      buf += StrFormat("%lld %d\n", static_cast<long long>(u), row.cols[p]);
    }
  }
  return WriteAll(path, buf);
}

Result<AttributedGraph> LoadGraphAuto(const std::string& path,
                                      ThreadPool* pool) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return LoadGraphText(path, pool);
  }
  if (!std::filesystem::is_regular_file(path, ec)) {
    return Status::IOError("no such graph file or directory: " + path);
  }
  uint64_t magic = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::IOError("cannot open: " + path);
    probe.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (!probe) magic = 0;  // shorter than a magic header: not binary
  }
  if (magic == kBinaryMagic) return LoadGraphBinary(path);
  if (store::Container::HasContainerMagic(&magic)) {
    return LoadGraphContainer(path);
  }
  EdgeListOptions options;
  options.pool = pool;
  return LoadEdgeList(path, options);
}

}  // namespace pane
