// Synthetic attributed-graph generators. These stand in for the paper's
// eight real datasets (Table 3), which are not redistributable/offline; the
// degree-corrected stochastic block model with homophilous attributes
// reproduces the properties PANE's evaluation depends on: skewed degrees,
// multi-hop node-attribute affinity, and label/community structure.
#pragma once

#include <cstdint>

#include "src/graph/graph.h"

namespace pane {

/// \brief G(n, m) Erdos-Renyi: m distinct directed edges chosen uniformly.
AttributedGraph ErdosRenyi(int64_t num_nodes, int64_t num_edges, uint64_t seed,
                           bool undirected = false);

/// \brief Barabasi-Albert preferential attachment: each new node attaches
/// `edges_per_node` out-edges to existing nodes ~ degree. Produces the
/// power-law degree profile of citation/social graphs.
AttributedGraph BarabasiAlbert(int64_t num_nodes, int64_t edges_per_node,
                               uint64_t seed);

/// \brief Parameters for the attributed degree-corrected SBM.
struct SbmParams {
  int64_t num_nodes = 1000;
  /// Target number of directed edges (expected; realized count is close).
  int64_t num_edges = 5000;
  int64_t num_attributes = 200;
  /// Target number of node-attribute associations |E_R| (expected).
  int64_t num_attr_entries = 5000;
  /// Communities; doubles as the label classes.
  int32_t num_communities = 5;
  /// Fraction of out-edges that stay inside the source's community.
  double edge_homophily = 0.8;
  /// Fraction of attribute picks drawn from the community's preferred block.
  double attr_homophily = 0.8;
  /// Pareto exponent for expected degrees (2.5 ~ social/citation graphs).
  double degree_exponent = 2.5;
  /// If true, every edge is mirrored (Facebook / Flickr style).
  bool undirected = false;
  /// Labels per node; > 1 yields multi-label nodes (Facebook / MAG style).
  int32_t labels_per_node = 1;
  uint64_t seed = 1;
};

/// \brief Attributed degree-corrected stochastic block model.
///
/// Nodes are assigned to communities uniformly; per-node activity follows a
/// truncated Pareto; edges pick their target inside the community with
/// probability edge_homophily (else globally), weighted by activity.
/// Attributes are partitioned into per-community preferred blocks; each
/// association picks from the block with probability attr_homophily (else
/// uniformly), with Zipf-tilted popularity inside the block. Labels are the
/// community ids (plus random extras when labels_per_node > 1).
AttributedGraph GenerateAttributedSbm(const SbmParams& params);

}  // namespace pane
