// The attributed network G = (V, E_V, R, E_R) of Section 2.1: a directed
// graph over n nodes, a set of d attributes, weighted node-attribute
// associations, and (optional) node labels for the classification task.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/matrix/csr_matrix.h"

namespace pane {

/// \brief Immutable attributed graph. Construct via GraphBuilder.
class AttributedGraph {
 public:
  AttributedGraph() = default;

  /// Adopts already-structurally-valid CSR matrices directly — the zero-copy
  /// load path for binary snapshots. Per-array structure (indptr shape,
  /// index ranges, sorted columns) is CsrMatrix::FromCsrArrays's job; this
  /// checks cross-matrix consistency (adjacency square, attribute row count
  /// matching, labels sized n with non-negative ids) plus the domain rules
  /// GraphBuilder enforces per entry: no self-loops, unit adjacency values,
  /// positive finite attribute weights. Labels are sorted/deduplicated; the
  /// adjacency transpose is computed here.
  static Result<AttributedGraph> FromCsr(
      CsrMatrix adjacency, CsrMatrix attributes,
      std::vector<std::vector<int32_t>> labels, bool undirected);

  int64_t num_nodes() const { return adjacency_.rows(); }
  int64_t num_edges() const { return adjacency_.nnz(); }
  int64_t num_attributes() const { return attributes_.cols(); }
  int64_t num_attribute_entries() const { return attributes_.nnz(); }

  /// True if the graph was declared undirected at build time (stored as a
  /// symmetric adjacency per Section 2.1).
  bool undirected() const { return undirected_; }

  /// Adjacency matrix A (n x n): A[u, v] = 1 iff edge (u, v).
  const CsrMatrix& adjacency() const { return adjacency_; }

  /// A^T, prebuilt once (backward-affinity iterations multiply by P^T).
  const CsrMatrix& adjacency_transposed() const { return adjacency_t_; }

  /// Attribute matrix R (n x d): R[v, r] = w for (v, r, w) in E_R.
  const CsrMatrix& attributes() const { return attributes_; }

  /// Random-walk matrix P = D^-1 A, row-stochastic. Dangling nodes (no
  /// out-edges) become absorbing via a self-loop: a walk that reaches one
  /// stays until the alpha-stop fires, so no probability mass is lost —
  /// the standard RWR convention, and what keeps a dangling node's
  /// affinity to its own attributes intact.
  CsrMatrix RandomWalkMatrix() const;

  /// Out-degrees (number of out-edges per node).
  std::vector<int64_t> OutDegrees() const;

  /// In-degrees.
  std::vector<int64_t> InDegrees() const;

  /// Node labels: labels()[v] is the sorted set of class ids of node v
  /// (multi-label datasets like Facebook / MAG have several). Empty when
  /// the dataset has no labels.
  const std::vector<std::vector<int32_t>>& labels() const { return labels_; }

  /// Number of distinct label classes (|L|); 0 when unlabeled.
  int32_t num_label_classes() const { return num_label_classes_; }

  bool has_labels() const { return num_label_classes_ > 0; }

  /// One-line "n=.. m=.. d=.. |E_R|=.. |L|=.." summary.
  std::string Summary() const;

 private:
  friend class GraphBuilder;

  CsrMatrix adjacency_;
  CsrMatrix adjacency_t_;
  CsrMatrix attributes_;
  std::vector<std::vector<int32_t>> labels_;
  int32_t num_label_classes_ = 0;
  bool undirected_ = false;
};

/// \brief Accumulates edges / attribute entries / labels, then Build()s an
/// AttributedGraph. Duplicate edges collapse to a single unit-weight edge;
/// duplicate attribute entries sum their weights.
class GraphBuilder {
 public:
  /// \param num_nodes n  \param num_attributes d
  GraphBuilder(int64_t num_nodes, int64_t num_attributes);

  /// Adds directed edge (from -> to). Self-loops are dropped.
  GraphBuilder& AddEdge(int64_t from, int64_t to);

  /// Bulk AddEdge over parsed (row=from, col=to) triplets (values ignored);
  /// one reserve up front. Used by the chunked text loaders.
  GraphBuilder& AddEdges(const std::vector<Triplet>& edges);

  /// Same, over the per-chunk vectors the parallel parser produces; the
  /// total is reserved once so appending chunks never reallocates.
  GraphBuilder& AddEdges(const std::vector<std::vector<Triplet>>& chunks);

  /// Adds both (u -> v) and (v -> u) per the undirected-graph convention of
  /// Section 2.1.
  GraphBuilder& AddUndirectedEdge(int64_t u, int64_t v);

  /// Associates node v with attribute r at weight w (> 0).
  GraphBuilder& AddNodeAttribute(int64_t v, int64_t r, double weight = 1.0);

  /// Bulk AddNodeAttribute over parsed (row=v, col=r, value=w) triplets.
  GraphBuilder& AddNodeAttributes(const std::vector<Triplet>& entries);

  /// Same, over per-chunk vectors (one up-front reserve).
  GraphBuilder& AddNodeAttributes(
      const std::vector<std::vector<Triplet>>& chunks);

  /// Adds a class label to node v.
  GraphBuilder& AddLabel(int64_t v, int32_t label);

  /// \param undirected declare the graph undirected (metadata only; callers
  /// are expected to have used AddUndirectedEdge).
  Result<AttributedGraph> Build(bool undirected = false);

 private:
  int64_t num_nodes_;
  int64_t num_attributes_;
  std::vector<Triplet> edges_;
  std::vector<Triplet> attr_entries_;
  std::vector<std::vector<int32_t>> labels_;
  Status deferred_error_;
};

}  // namespace pane
