// Graph analysis utilities: connectivity, BFS, degree statistics,
// reciprocity. Used for dataset sanity checks (generator validation, bench
// provenance lines) and generally useful to library consumers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace pane {

/// \brief Weakly connected components (edge direction ignored).
struct ComponentInfo {
  /// component_id[v] in [0, num_components), ids ordered by first-seen node.
  std::vector<int32_t> component_id;
  int32_t num_components = 0;
  /// Size of the largest component.
  int64_t largest_size = 0;
};

ComponentInfo WeaklyConnectedComponents(const AttributedGraph& graph);

/// \brief BFS hop distances from `source` along out-edges; unreachable
/// nodes get -1.
std::vector<int64_t> BfsDistances(const AttributedGraph& graph,
                                  int64_t source);

/// \brief Degree distribution summary.
struct DegreeStats {
  int64_t max = 0;
  double mean = 0.0;
  /// Fraction of nodes with zero out-degree (dangling).
  double dangling_fraction = 0.0;
  /// Gini coefficient of the degree distribution in [0, 1); heavy-tailed
  /// graphs (citation/social) sit well above Erdos-Renyi.
  double gini = 0.0;
};

DegreeStats OutDegreeStats(const AttributedGraph& graph);

/// \brief Fraction of directed edges (u, v) whose reverse (v, u) is also an
/// edge. 1.0 for undirected graphs; low for citation-style DAG-ish graphs.
double EdgeReciprocity(const AttributedGraph& graph);

}  // namespace pane
