// Chunked parallel parsing for whitespace-separated numeric graph files
// (edges.txt, attrs.txt, SNAP-style edge lists). The file is read into one
// large buffer, split on line boundaries into per-thread chunks, and each
// chunk is parsed on the ThreadPool into its own triplet vector; the vectors
// are concatenated afterwards. Parsing is strict: a malformed token, a wrong
// field count, or trailing garbage yields InvalidArgument naming the 1-based
// line number instead of silently truncating the input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/matrix/csr_matrix.h"

namespace pane {

class ThreadPool;

/// Reads a whole file into a string sized from the file length (one
/// allocation, large sequential reads). IOError if the file cannot be
/// opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// How ParseTriplets interprets each non-blank, non-comment line.
enum class TripletLayout {
  kPair,          // "u v"     -> Triplet{u, v, 1.0}; a third field is an error
  kWeightedPair,  // "u v [w]" -> Triplet{u, v, w or 1.0} (edge-list files)
  kTriple,        // "u r w"   -> Triplet{u, r, w}; the weight is required
};

struct TripletParseOptions {
  TripletLayout layout = TripletLayout::kPair;
  /// Skip lines whose first non-blank character is '#' or '%' (the comment
  /// headers SNAP / KONECT edge lists ship with).
  bool allow_comments = false;
  /// Parse chunks on this pool; nullptr (or a 1-thread pool) parses inline.
  ThreadPool* pool = nullptr;
};

/// Parses the whole text into per-chunk triplet vectors, one per parallel
/// chunk (a single vector when sequential). Blank lines are ignored; '\r'
/// before a newline is tolerated (CRLF files). The first malformed line in
/// file order aborts the parse with
/// InvalidArgument("malformed line <n>: '<content>'").
///
/// This is the zero-copy primitive: consumers that bulk-append (GraphBuilder)
/// iterate the chunks directly and skip the concatenation.
Result<std::vector<std::vector<Triplet>>> ParseTripletChunks(
    std::string_view text, const TripletParseOptions& options);

/// Convenience wrapper over ParseTripletChunks that concatenates the chunks
/// into one vector.
Result<std::vector<Triplet>> ParseTriplets(std::string_view text,
                                           const TripletParseOptions& options);

}  // namespace pane
