#include "src/graph/graph.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"

namespace pane {
namespace {

// Sorts and deduplicates each node's label list and returns the class count
// (max label + 1, 0 when unlabeled); negative ids are OutOfRange. Shared by
// the builder and the zero-copy adoption path so the semantics cannot drift.
Result<int32_t> NormalizeLabels(std::vector<std::vector<int32_t>>* labels) {
  int32_t max_label = -1;
  for (auto& node_labels : *labels) {
    std::sort(node_labels.begin(), node_labels.end());
    node_labels.erase(std::unique(node_labels.begin(), node_labels.end()),
                      node_labels.end());
    if (node_labels.empty()) continue;
    if (node_labels.front() < 0) {
      return Status::OutOfRange("negative label id");
    }
    max_label = std::max(max_label, node_labels.back());
  }
  return max_label + 1;
}

}  // namespace

Result<AttributedGraph> AttributedGraph::FromCsr(
    CsrMatrix adjacency, CsrMatrix attributes,
    std::vector<std::vector<int32_t>> labels, bool undirected) {
  if (adjacency.rows() != adjacency.cols()) {
    return Status::InvalidArgument(
        StrFormat("adjacency must be square, got %lld x %lld",
                  static_cast<long long>(adjacency.rows()),
                  static_cast<long long>(adjacency.cols())));
  }
  if (attributes.rows() != adjacency.rows()) {
    return Status::InvalidArgument(
        StrFormat("attribute rows (%lld) must match node count (%lld)",
                  static_cast<long long>(attributes.rows()),
                  static_cast<long long>(adjacency.rows())));
  }
  // Domain checks the per-edge builder path used to enforce: the adjacency
  // is an unweighted simple digraph (unit values, no self-loops) and
  // attribute weights are positive and finite. One O(nnz) pass each —
  // negligible next to the transpose below.
  for (int64_t u = 0; u < adjacency.rows(); ++u) {
    const CsrMatrix::RowView row = adjacency.Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      if (row.cols[p] == u) {
        return Status::InvalidArgument(
            StrFormat("adjacency has a self-loop at node %lld",
                      static_cast<long long>(u)));
      }
      if (row.vals[p] != 1.0) {
        return Status::InvalidArgument(
            "adjacency values must all be 1.0 (unweighted graph)");
      }
    }
  }
  for (const double w : attributes.values()) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "attribute weights must be positive and finite");
    }
  }
  const size_t n = static_cast<size_t>(adjacency.rows());
  if (labels.empty()) {
    labels.resize(n);
  } else if (labels.size() != n) {
    return Status::InvalidArgument("label vector must have one entry per node");
  }
  PANE_ASSIGN_OR_RETURN(const int32_t num_classes, NormalizeLabels(&labels));
  AttributedGraph g;
  g.adjacency_ = std::move(adjacency);
  g.adjacency_t_ = g.adjacency_.Transposed();
  g.attributes_ = std::move(attributes);
  g.labels_ = std::move(labels);
  g.num_label_classes_ = num_classes;
  g.undirected_ = undirected;
  return g;
}

CsrMatrix AttributedGraph::RandomWalkMatrix() const {
  const int64_t n = num_nodes();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(adjacency_.nnz() + n));
  for (int64_t u = 0; u < n; ++u) {
    const CsrMatrix::RowView row = adjacency_.Row(u);
    if (row.length == 0) {
      triplets.push_back(Triplet{u, u, 1.0});  // absorbing dangling node
      continue;
    }
    const double inv = 1.0 / static_cast<double>(row.length);
    for (int64_t p = 0; p < row.length; ++p) {
      triplets.push_back(Triplet{u, row.cols[p], inv});
    }
  }
  return CsrMatrix::FromTriplets(n, n, triplets).ValueOrDie();
}

std::vector<int64_t> AttributedGraph::OutDegrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(num_nodes()), 0);
  for (int64_t v = 0; v < num_nodes(); ++v) deg[static_cast<size_t>(v)] = adjacency_.RowNnz(v);
  return deg;
}

std::vector<int64_t> AttributedGraph::InDegrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(num_nodes()), 0);
  for (int64_t v = 0; v < num_nodes(); ++v) {
    deg[static_cast<size_t>(v)] = adjacency_t_.RowNnz(v);
  }
  return deg;
}

std::string AttributedGraph::Summary() const {
  return StrFormat(
      "graph{n=%s, m=%s, d=%s, |E_R|=%s, |L|=%d, %s}",
      FormatCount(num_nodes()).c_str(), FormatCount(num_edges()).c_str(),
      FormatCount(num_attributes()).c_str(),
      FormatCount(num_attribute_entries()).c_str(), num_label_classes_,
      undirected_ ? "undirected" : "directed");
}

GraphBuilder::GraphBuilder(int64_t num_nodes, int64_t num_attributes)
    : num_nodes_(num_nodes), num_attributes_(num_attributes),
      labels_(static_cast<size_t>(num_nodes)) {}

GraphBuilder& GraphBuilder::AddEdge(int64_t from, int64_t to) {
  if (from == to) return *this;  // self-loops dropped
  if (from < 0 || from >= num_nodes_ || to < 0 || to >= num_nodes_) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::OutOfRange(
          StrFormat("edge (%lld, %lld) outside [0, %lld)",
                    static_cast<long long>(from), static_cast<long long>(to),
                    static_cast<long long>(num_nodes_)));
    }
    return *this;
  }
  edges_.push_back(Triplet{from, to, 1.0});
  return *this;
}

GraphBuilder& GraphBuilder::AddEdges(const std::vector<Triplet>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Triplet& t : edges) AddEdge(t.row, t.col);
  return *this;
}

GraphBuilder& GraphBuilder::AddEdges(
    const std::vector<std::vector<Triplet>>& chunks) {
  size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  edges_.reserve(edges_.size() + total);
  for (const auto& chunk : chunks) {
    for (const Triplet& t : chunk) AddEdge(t.row, t.col);
  }
  return *this;
}

GraphBuilder& GraphBuilder::AddUndirectedEdge(int64_t u, int64_t v) {
  AddEdge(u, v);
  AddEdge(v, u);
  return *this;
}

GraphBuilder& GraphBuilder::AddNodeAttribute(int64_t v, int64_t r,
                                             double weight) {
  // !(> 0) rather than <= 0 so NaN weights (parsable from corrupt attrs
  // files) are rejected too; infinities are caught explicitly.
  if (v < 0 || v >= num_nodes_ || r < 0 || r >= num_attributes_ ||
      !(weight > 0.0) || !std::isfinite(weight)) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::OutOfRange(
          StrFormat("attribute entry (%lld, %lld, %f) invalid",
                    static_cast<long long>(v), static_cast<long long>(r),
                    weight));
    }
    return *this;
  }
  attr_entries_.push_back(Triplet{v, r, weight});
  return *this;
}

GraphBuilder& GraphBuilder::AddNodeAttributes(const std::vector<Triplet>& entries) {
  attr_entries_.reserve(attr_entries_.size() + entries.size());
  for (const Triplet& t : entries) AddNodeAttribute(t.row, t.col, t.value);
  return *this;
}

GraphBuilder& GraphBuilder::AddNodeAttributes(
    const std::vector<std::vector<Triplet>>& chunks) {
  size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  attr_entries_.reserve(attr_entries_.size() + total);
  for (const auto& chunk : chunks) {
    for (const Triplet& t : chunk) AddNodeAttribute(t.row, t.col, t.value);
  }
  return *this;
}

GraphBuilder& GraphBuilder::AddLabel(int64_t v, int32_t label) {
  if (v < 0 || v >= num_nodes_ || label < 0) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::OutOfRange("label entry invalid");
    }
    return *this;
  }
  labels_[static_cast<size_t>(v)].push_back(label);
  return *this;
}

Result<AttributedGraph> GraphBuilder::Build(bool undirected) {
  PANE_RETURN_NOT_OK(deferred_error_);
  AttributedGraph g;
  PANE_ASSIGN_OR_RETURN(
      g.adjacency_, CsrMatrix::FromTriplets(num_nodes_, num_nodes_, edges_));
  // Duplicate edges were summed by the triplet merge; clamp back to 1.
  {
    std::vector<int64_t> indptr = g.adjacency_.indptr();
    std::vector<int32_t> indices = g.adjacency_.indices();
    std::vector<double> values(indices.size(), 1.0);
    PANE_ASSIGN_OR_RETURN(
        g.adjacency_,
        CsrMatrix::FromCsrArrays(num_nodes_, num_nodes_, std::move(indptr),
                                 std::move(indices), std::move(values)));
  }
  g.adjacency_t_ = g.adjacency_.Transposed();
  PANE_ASSIGN_OR_RETURN(g.attributes_,
                        CsrMatrix::FromTriplets(num_nodes_, num_attributes_,
                                                attr_entries_));
  PANE_ASSIGN_OR_RETURN(g.num_label_classes_, NormalizeLabels(&labels_));
  g.labels_ = std::move(labels_);
  g.undirected_ = undirected;
  return g;
}

}  // namespace pane
