#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace pane {

AttributedGraph ErdosRenyi(int64_t num_nodes, int64_t num_edges, uint64_t seed,
                           bool undirected) {
  PANE_CHECK(num_nodes >= 2);
  Rng rng(seed);
  GraphBuilder builder(num_nodes, /*num_attributes=*/1);
  // Rejection sampling of distinct pairs; duplicates are merged by the
  // builder so a mild duplicate rate only costs a few extra draws.
  for (int64_t e = 0; e < num_edges; ++e) {
    int64_t u = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    int64_t v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    while (v == u) {
      v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    }
    if (undirected) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build(undirected).ValueOrDie();
}

AttributedGraph BarabasiAlbert(int64_t num_nodes, int64_t edges_per_node,
                               uint64_t seed) {
  PANE_CHECK(num_nodes > edges_per_node && edges_per_node >= 1);
  Rng rng(seed);
  GraphBuilder builder(num_nodes, /*num_attributes=*/1);
  // Repeated-endpoint list trick: sampling a uniform element of `targets`
  // is sampling proportional to degree.
  std::vector<int64_t> targets;
  targets.reserve(static_cast<size_t>(2 * num_nodes * edges_per_node));
  // Seed clique over the first edges_per_node + 1 nodes.
  for (int64_t u = 0; u <= edges_per_node; ++u) {
    for (int64_t v = 0; v <= edges_per_node; ++v) {
      if (u == v) continue;
      builder.AddEdge(u, v);
      targets.push_back(v);
    }
  }
  for (int64_t u = edges_per_node + 1; u < num_nodes; ++u) {
    for (int64_t e = 0; e < edges_per_node; ++e) {
      const int64_t v =
          targets[rng.UniformInt(static_cast<uint64_t>(targets.size()))];
      if (v == u) {
        --e;
        continue;
      }
      builder.AddEdge(u, v);
      targets.push_back(v);
    }
    targets.push_back(u);
  }
  return builder.Build(false).ValueOrDie();
}

namespace {

// Truncated Pareto activity: rank-independent heavy tail with bounded max
// so no single hub absorbs the whole edge budget at small n.
double ParetoActivity(Rng* rng, double exponent) {
  const double u = rng->UniformDouble();
  const double x = std::pow(1.0 - u, -1.0 / (exponent - 1.0));
  return std::min(x, 1000.0);
}

}  // namespace

AttributedGraph GenerateAttributedSbm(const SbmParams& params) {
  PANE_CHECK(params.num_nodes >= 2);
  PANE_CHECK(params.num_communities >= 1);
  PANE_CHECK(params.num_attributes >= params.num_communities)
      << "need at least one attribute per community";
  Rng rng(params.seed);

  const int64_t n = params.num_nodes;
  const int32_t c = params.num_communities;

  // Community assignment, round-robin after a shuffle => balanced classes.
  std::vector<int32_t> community(static_cast<size_t>(n));
  {
    std::vector<int64_t> perm(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    Shuffle(&perm, &rng);
    for (int64_t i = 0; i < n; ++i) {
      community[static_cast<size_t>(perm[static_cast<size_t>(i)])] =
          static_cast<int32_t>(i % c);
    }
  }

  // Per-node activity and per-community member lists / alias samplers.
  std::vector<double> activity(static_cast<size_t>(n));
  for (double& a : activity) a = ParetoActivity(&rng, params.degree_exponent);

  std::vector<std::vector<int64_t>> members(static_cast<size_t>(c));
  std::vector<std::vector<double>> member_weights(static_cast<size_t>(c));
  for (int64_t v = 0; v < n; ++v) {
    const int32_t cv = community[static_cast<size_t>(v)];
    members[static_cast<size_t>(cv)].push_back(v);
    member_weights[static_cast<size_t>(cv)].push_back(activity[static_cast<size_t>(v)]);
  }
  std::vector<AliasSampler> community_sampler;
  community_sampler.reserve(static_cast<size_t>(c));
  for (int32_t i = 0; i < c; ++i) {
    community_sampler.emplace_back(member_weights[static_cast<size_t>(i)]);
  }
  const AliasSampler global_sampler(activity);

  // Out-degree budget proportional to activity.
  double activity_sum = 0.0;
  for (double a : activity) activity_sum += a;
  const int64_t edge_budget =
      params.undirected ? params.num_edges / 2 : params.num_edges;

  GraphBuilder builder(n, params.num_attributes);

  // First sampled out-neighbor per node; secondary labels (multi-label
  // mode) are drawn from its community so they are *learnable* from the
  // structure rather than noise.
  std::vector<int64_t> first_target(static_cast<size_t>(n), -1);

  std::unordered_set<int64_t> chosen_targets;
  for (int64_t v = 0; v < n; ++v) {
    const double expected =
        edge_budget * activity[static_cast<size_t>(v)] / activity_sum;
    int64_t degree = static_cast<int64_t>(expected);
    if (rng.UniformDouble() < expected - degree) ++degree;
    if (degree == 0 && rng.UniformDouble() < 0.5) degree = 1;  // avoid isolates
    const int32_t cv = community[static_cast<size_t>(v)];
    chosen_targets.clear();
    for (int64_t e = 0; e < degree; ++e) {
      // Resample self-loops and duplicate targets so the realized edge
      // count tracks the budget (duplicates would silently merge).
      int64_t target = -1;
      for (int attempt = 0;
           attempt < 16 &&
           (target < 0 || target == v || chosen_targets.count(target) > 0);
           ++attempt) {
        if (rng.Bernoulli(params.edge_homophily)) {
          const auto& pool = members[static_cast<size_t>(cv)];
          if (pool.size() > 1) {
            target = pool[static_cast<size_t>(
                community_sampler[static_cast<size_t>(cv)].Sample(&rng))];
          }
        } else {
          target = global_sampler.Sample(&rng);
        }
      }
      if (target < 0 || target == v || chosen_targets.count(target) > 0) {
        continue;
      }
      chosen_targets.insert(target);
      if (first_target[static_cast<size_t>(v)] < 0) {
        first_target[static_cast<size_t>(v)] = target;
      }
      if (params.undirected) {
        builder.AddUndirectedEdge(v, target);
      } else {
        builder.AddEdge(v, target);
      }
    }
  }

  // Attribute blocks: community i prefers attributes
  // [i * d / c, (i + 1) * d / c), with Zipf-tilted popularity inside the
  // block so a few attributes dominate, like word/tag data.
  const int64_t d = params.num_attributes;
  std::vector<AliasSampler> block_sampler;
  std::vector<int64_t> block_begin(static_cast<size_t>(c));
  std::vector<int64_t> block_size(static_cast<size_t>(c));
  block_sampler.reserve(static_cast<size_t>(c));
  for (int32_t i = 0; i < c; ++i) {
    block_begin[static_cast<size_t>(i)] = i * d / c;
    block_size[static_cast<size_t>(i)] = (i + 1) * static_cast<int64_t>(d) / c -
                                         block_begin[static_cast<size_t>(i)];
    std::vector<double> zipf(static_cast<size_t>(block_size[static_cast<size_t>(i)]));
    for (size_t j = 0; j < zipf.size(); ++j) {
      zipf[j] = 1.0 / static_cast<double>(j + 1);
    }
    block_sampler.emplace_back(zipf);
  }

  std::unordered_set<int64_t> chosen_attrs;
  for (int64_t v = 0; v < n; ++v) {
    const double expected = static_cast<double>(params.num_attr_entries) / n *
                            (0.5 + activity[static_cast<size_t>(v)] /
                                       (activity_sum / n) * 0.5);
    int64_t count = static_cast<int64_t>(expected);
    if (rng.UniformDouble() < expected - count) ++count;
    const int32_t cv = community[static_cast<size_t>(v)];
    chosen_attrs.clear();
    for (int64_t e = 0; e < count; ++e) {
      // Resample duplicates (Zipf popularity makes them common) so |E_R|
      // tracks its budget.
      int64_t attr = -1;
      for (int attempt = 0;
           attempt < 16 && (attr < 0 || chosen_attrs.count(attr) > 0);
           ++attempt) {
        if (rng.Bernoulli(params.attr_homophily)) {
          attr = block_begin[static_cast<size_t>(cv)] +
                 block_sampler[static_cast<size_t>(cv)].Sample(&rng);
        } else {
          attr = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(d)));
        }
      }
      if (attr < 0 || chosen_attrs.count(attr) > 0) continue;
      chosen_attrs.insert(attr);
      builder.AddNodeAttribute(v, attr, 1.0);
    }
  }

  // Labels: the community, plus (multi-label mode) the community of the
  // node's first out-neighbor — a structurally grounded secondary class
  // that embeddings capturing the neighborhood can actually predict.
  for (int64_t v = 0; v < n; ++v) {
    builder.AddLabel(v, community[static_cast<size_t>(v)]);
    for (int32_t extra = 1; extra < params.labels_per_node; ++extra) {
      if (!rng.Bernoulli(0.5)) continue;
      const int64_t neighbor = first_target[static_cast<size_t>(v)];
      if (neighbor >= 0) {
        builder.AddLabel(v, community[static_cast<size_t>(neighbor)]);
      }
    }
  }

  return builder.Build(params.undirected).ValueOrDie();
}

}  // namespace pane
