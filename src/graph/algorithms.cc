#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "src/common/logging.h"

namespace pane {

ComponentInfo WeaklyConnectedComponents(const AttributedGraph& graph) {
  const int64_t n = graph.num_nodes();
  ComponentInfo info;
  info.component_id.assign(static_cast<size_t>(n), -1);
  std::vector<int64_t> component_size;
  std::deque<int64_t> queue;

  for (int64_t start = 0; start < n; ++start) {
    if (info.component_id[static_cast<size_t>(start)] >= 0) continue;
    const int32_t id = info.num_components++;
    component_size.push_back(0);
    queue.clear();
    queue.push_back(start);
    info.component_id[static_cast<size_t>(start)] = id;
    while (!queue.empty()) {
      const int64_t u = queue.front();
      queue.pop_front();
      ++component_size[static_cast<size_t>(id)];
      auto visit = [&](const CsrMatrix& adj) {
        const CsrMatrix::RowView row = adj.Row(u);
        for (int64_t p = 0; p < row.length; ++p) {
          const int64_t v = row.cols[p];
          if (info.component_id[static_cast<size_t>(v)] < 0) {
            info.component_id[static_cast<size_t>(v)] = id;
            queue.push_back(v);
          }
        }
      };
      visit(graph.adjacency());             // out-edges
      visit(graph.adjacency_transposed());  // in-edges (weak connectivity)
    }
  }
  for (int64_t size : component_size) {
    info.largest_size = std::max(info.largest_size, size);
  }
  return info;
}

std::vector<int64_t> BfsDistances(const AttributedGraph& graph,
                                  int64_t source) {
  const int64_t n = graph.num_nodes();
  PANE_CHECK(source >= 0 && source < n);
  std::vector<int64_t> dist(static_cast<size_t>(n), -1);
  std::deque<int64_t> queue;
  dist[static_cast<size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int64_t u = queue.front();
    queue.pop_front();
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      const int64_t v = row.cols[p];
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

DegreeStats OutDegreeStats(const AttributedGraph& graph) {
  const int64_t n = graph.num_nodes();
  DegreeStats stats;
  if (n == 0) return stats;
  std::vector<int64_t> degrees = graph.OutDegrees();
  int64_t total = 0;
  int64_t dangling = 0;
  for (int64_t d : degrees) {
    stats.max = std::max(stats.max, d);
    total += d;
    dangling += (d == 0);
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(n);
  stats.dangling_fraction = static_cast<double>(dangling) / static_cast<double>(n);

  // Gini via the sorted-rank formula: G = (2 sum_i i*x_i) / (n sum x) -
  // (n + 1) / n, with x ascending and i starting at 1.
  if (total > 0) {
    std::sort(degrees.begin(), degrees.end());
    double weighted = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) *
                  static_cast<double>(degrees[static_cast<size_t>(i)]);
    }
    stats.gini = 2.0 * weighted /
                     (static_cast<double>(n) * static_cast<double>(total)) -
                 (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  }
  return stats;
}

double EdgeReciprocity(const AttributedGraph& graph) {
  const int64_t m = graph.num_edges();
  if (m == 0) return 0.0;
  int64_t reciprocal = 0;
  for (int64_t u = 0; u < graph.num_nodes(); ++u) {
    const CsrMatrix::RowView row = graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) {
      if (graph.adjacency().At(row.cols[p], u) != 0.0) ++reciprocal;
    }
  }
  return static_cast<double>(reciprocal) / static_cast<double>(m);
}

}  // namespace pane
