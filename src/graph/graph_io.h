// Text, binary, and edge-list persistence for attributed graphs. The text
// layout mirrors the edge-list / attribute-triple / label-list files that
// public ANE datasets (Cora, Citeseer, TWeibo, ...) ship as, so real data
// drops in when available; the binary format exists for fast reload of large
// instances; the raw edge-list reader ingests SNAP-style downloads without
// conversion.
//
// Text directory layout:
//   meta.txt    "num_nodes num_attributes directed(0|1)"
//   edges.txt   one "from to" pair per line
//   attrs.txt   one "node attr weight" triple per line
//   labels.txt  one "node label1 label2 ..." line per labeled node (optional)
//
// Binary snapshot layout (little-endian):
//   magic "PANEGR01" (u64), undirected flag (u8),
//   adjacency CSR  { rows i64, cols i64, indptr/indices/values each as
//                    u64 length + payload },
//   attribute CSR  { same },
//   label block    { n i64, then per node: u32 count + count * i32 ids }
// Every length field is validated against the bytes remaining in the file
// before any allocation, and the CSR arrays are adopted zero-copy after
// structural validation (no per-edge rebuild).
//
// Edge-list input: plain whitespace/TSV "u v" pairs, one per line, optional
// third numeric weight column (ignored — PANE's adjacency is binary), and
// '#'/'%' comment lines (SNAP / KONECT headers).
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/graph/graph.h"

namespace pane {

class ThreadPool;

/// Writes the graph as the four text files under `dir` (created if needed).
Status SaveGraphText(const AttributedGraph& graph, const std::string& dir);

/// Loads a graph from the text layout above. Edge and attribute files are
/// parsed in parallel chunks on `pool` when provided. Malformed lines yield
/// InvalidArgument naming the file and 1-based line number.
Result<AttributedGraph> LoadGraphText(const std::string& dir,
                                      ThreadPool* pool = nullptr);

/// Writes a single binary snapshot (magic + CSR arrays, little-endian).
Status SaveGraphBinary(const AttributedGraph& graph, const std::string& path);

/// Loads a binary snapshot written by SaveGraphBinary. All reads are bounded
/// by the file size (a corrupt length field is an IOError, not a multi-GB
/// allocation) and the stored CSR arrays are validated then adopted directly
/// — no per-edge rebuild.
Result<AttributedGraph> LoadGraphBinary(const std::string& path);

/// Writes the graph as a paged, checksummed store:: container
/// (src/store/container.h): one meta stream plus the adjacency / attribute
/// CSR arrays and the flattened label lists, each its own page-aligned
/// stream. Crash-safe (temp + fsync + rename) and every page CRC32C-guarded.
Status SaveGraphContainer(const AttributedGraph& graph,
                          const std::string& path);

/// Loads a container written by SaveGraphContainer. Page checksums are
/// verified for every stream read, so a flipped bit anywhere in the loaded
/// bytes is a descriptive IOError, not a corrupt graph.
Result<AttributedGraph> LoadGraphContainer(const std::string& path);

struct EdgeListOptions {
  /// Mirror every (u, v) as (v, u) — most SNAP graphs are undirected.
  bool undirected = false;
  /// Node count; -1 infers max node id + 1 (trailing isolated nodes need an
  /// explicit count).
  int64_t num_nodes = -1;
  /// Parse chunks on this pool (nullptr = sequential).
  ThreadPool* pool = nullptr;
};

/// Loads a raw edge list (format above). The graph has no attributes or
/// labels; node ids must be non-negative.
Result<AttributedGraph> LoadEdgeList(const std::string& path,
                                     const EdgeListOptions& options = {});

/// Writes the adjacency as a "# nodes=<n> edges=<m>" header plus one
/// "u v" line per edge — re-loadable with LoadEdgeList.
Status SaveEdgeList(const AttributedGraph& graph, const std::string& path);

/// Dispatches on `path`: a directory loads the text layout, a file starting
/// with the binary magic loads the binary snapshot, a file starting with the
/// container magic loads the checksummed container, anything else is parsed
/// as a raw edge list.
Result<AttributedGraph> LoadGraphAuto(const std::string& path,
                                      ThreadPool* pool = nullptr);

}  // namespace pane
