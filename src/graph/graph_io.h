// Text and binary persistence for attributed graphs. The text layout mirrors
// the edge-list / attribute-triple / label-list files that public ANE
// datasets (Cora, Citeseer, TWeibo, ...) ship as, so real data drops in when
// available; the binary format exists for fast reload of large synthetic
// instances.
//
// Text directory layout:
//   meta.txt    "num_nodes num_attributes directed(0|1)"
//   edges.txt   one "from to" pair per line
//   attrs.txt   one "node attr weight" triple per line
//   labels.txt  one "node label1 label2 ..." line per labeled node (optional)
#pragma once

#include <string>

#include "src/common/status.h"
#include "src/graph/graph.h"

namespace pane {

/// Writes the graph as the four text files under `dir` (created if needed).
Status SaveGraphText(const AttributedGraph& graph, const std::string& dir);

/// Loads a graph from the text layout above.
Result<AttributedGraph> LoadGraphText(const std::string& dir);

/// Writes a single binary snapshot (magic + CSR arrays, little-endian).
Status SaveGraphBinary(const AttributedGraph& graph, const std::string& path);

/// Loads a binary snapshot written by SaveGraphBinary.
Result<AttributedGraph> LoadGraphBinary(const std::string& path);

}  // namespace pane
