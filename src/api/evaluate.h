// The three downstream-task drivers of the paper (Sections 5.2-5.4) on the
// unified Embedder surface: split, train via the abstract interface, adapt
// the NodeEmbedding, evaluate. The CLI and the table / figure benches run
// every method — PANE and baselines alike — through these, with no
// per-algorithm branching.
#pragma once

#include <cstdint>

#include "src/api/embedder.h"
#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/tasks/metrics.h"
#include "src/tasks/node_classification.h"

namespace pane {

/// \brief Attribute inference (Section 5.2): hold out `test_fraction` of the
/// attribute entries, train on the rest, score held-out positives against
/// sampled negatives.
Result<AucAp> RunAttributeInference(const Embedder& embedder,
                                    const AttributedGraph& graph,
                                    double test_fraction, uint64_t seed);

/// \brief Link prediction (Section 5.3): remove `holdout_fraction` of the
/// edges, train on the residual graph, score removed edges against sampled
/// non-edges. Tries every candidate scoring convention of the artifact and
/// returns the best, mirroring the paper's protocol.
Result<AucAp> RunLinkPrediction(const Embedder& embedder,
                                const AttributedGraph& graph,
                                double holdout_fraction, uint64_t seed);

/// \brief Node classification (Section 5.4): train on the full graph, fit
/// one-vs-rest SVMs on the adapter's classifier features.
Result<F1Scores> RunNodeClassification(
    const Embedder& embedder, const AttributedGraph& graph,
    const NodeClassificationOptions& options);

}  // namespace pane
