// The NodeEmbedding artifact's on-disk vocabulary, shared by the producer
// side (src/api/node_embedding.cc writes and stream-loads artifacts) and the
// serving side (src/serve/embedding_store.cc maps them read-only). Header
// only — src/serve includes it without linking pane_api.
//
// Layout (little-endian, native doubles):
//   magic u64 | version u32 | method_len u32 | method bytes |
//   link i8 | attr i8 | presence mask u8 | [v2: zero padding to 8-byte
//   file offset] | matrices (rows i64, cols i64, row-major doubles) in the
//   order features, xf, xb, y (optional blocks present per the mask).
//
// Version 2 pads the header so every matrix payload sits at an 8-byte file
// offset: a matrix header is 16 bytes and every payload a multiple of 8, so
// aligning the first payload aligns them all. That is what lets a
// memory-mapped reader point double views straight into the mapping.
// Version 1 (no padding) is still read by both loaders; the mmap store
// falls back to copying its matrices out of the mapping.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pane {

/// How a method's pairwise link score is computed from the artifact
/// (Section 5.3 evaluates every competitor under its best convention).
enum class LinkConvention : int8_t {
  /// Inner product over `features` rows; the adapter also tries cosine and
  /// keeps the best, mirroring the paper's best-of protocol.
  kInnerProduct = 0,
  /// Negated Hamming distance of sign patterns (binary codes, BANE).
  kHamming = 1,
  /// PANE's Equation 22 over the xf / xb / y factor blocks.
  kForwardBackward = 2,
  /// Xf[u] . Xb[w] over the node factor blocks (NRP's score; no attribute
  /// factor involved).
  kAsymmetricDot = 3,
};

/// How an attribute-inference score p(v, r) is computed.
enum class AttributeConvention : int8_t {
  /// Generic fallback: dot(features[v], centroid[r]) with per-attribute
  /// centroids fitted on the training graph by the adapter.
  kCentroid = 0,
  /// `features` is itself an n x d attribute-score matrix (BLA).
  kDirect = 1,
  /// PANE's Equation 21 over the xf / xb / y factor blocks.
  kFactors = 2,
};

namespace embedding_format {

// "PANENEB1": the unified NodeEmbedding artifact, distinct from the legacy
// PaneEmbedding magic so old files fail loudly instead of misparsing.
inline constexpr uint64_t kMagic = 0x50414e454e454231ULL;

/// The original, unpadded layout.
inline constexpr uint32_t kVersionUnaligned = 1;
/// The padded layout Save writes: matrix payloads 8-byte aligned.
inline constexpr uint32_t kVersionAligned = 2;

inline constexpr size_t kMaxMethodNameLength = 256;

inline constexpr uint8_t kHasXf = 1u << 0;
inline constexpr uint8_t kHasXb = 1u << 1;
inline constexpr uint8_t kHasY = 1u << 2;
inline constexpr uint8_t kKnownMaskBits = kHasXf | kHasXb | kHasY;

inline constexpr int64_t kPayloadAlignment =
    static_cast<int64_t>(sizeof(double));

/// Bytes before the version-2 padding: magic(8) + version(4) +
/// method_len(4) + method + link(1) + attr(1) + mask(1).
inline constexpr int64_t HeaderBytes(size_t method_len) {
  return 19 + static_cast<int64_t>(method_len);
}

/// Zero bytes inserted after the header so the next byte sits at an
/// 8-byte file offset.
inline constexpr int64_t PaddingFor(int64_t offset) {
  return (kPayloadAlignment - offset % kPayloadAlignment) % kPayloadAlignment;
}

}  // namespace embedding_format
}  // namespace pane
