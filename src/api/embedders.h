// Factory functions for the built-in embedders, one per algorithm in the
// reproduction. Each parses its options out of an EmbedderConfig (returning
// InvalidArgument on malformed values); EmbedderRegistry::Create then runs
// Validate() so callers never hold an embedder with bad options. Prefer
// EmbedderRegistry::Create("name", config) over calling these directly.
#pragma once

#include <memory>

#include "src/api/embedder.h"
#include "src/common/status.h"

namespace pane {

/// PANE, Algorithm 5 (parallel; config "threads", default 4).
Result<std::unique_ptr<Embedder>> NewPaneEmbedder(const EmbedderConfig& config);
/// PANE, Algorithm 1 (single thread regardless of config "threads").
Result<std::unique_ptr<Embedder>> NewPaneSeqEmbedder(
    const EmbedderConfig& config);
/// TADW (text-associated DeepWalk; refuses graphs over "max_nodes").
Result<std::unique_ptr<Embedder>> NewTadwEmbedder(const EmbedderConfig& config);
/// NRP (topology-only reweighted PPR factorization).
Result<std::unique_ptr<Embedder>> NewNrpEmbedder(const EmbedderConfig& config);
/// BANE (binarized codes, Hamming link scoring).
Result<std::unique_ptr<Embedder>> NewBaneEmbedder(const EmbedderConfig& config);
/// LQANR (low-bit quantized features).
Result<std::unique_ptr<Embedder>> NewLqanrEmbedder(
    const EmbedderConfig& config);
/// BLA-like attribute-propagation baseline (direct n x d score matrix).
Result<std::unique_ptr<Embedder>> NewBlaEmbedder(const EmbedderConfig& config);

}  // namespace pane
