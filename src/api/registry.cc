#include "src/api/registry.h"

#include <map>

#include "src/api/embedders.h"
#include "src/common/string_util.h"

namespace pane {
namespace {

using FactoryFn =
    Result<std::unique_ptr<Embedder>> (*)(const EmbedderConfig&);

const std::map<std::string, FactoryFn>& Table() {
  static const std::map<std::string, FactoryFn> table = {
      {"pane", &NewPaneEmbedder},     {"pane-seq", &NewPaneSeqEmbedder},
      {"tadw", &NewTadwEmbedder},     {"nrp", &NewNrpEmbedder},
      {"bane", &NewBaneEmbedder},     {"lqanr", &NewLqanrEmbedder},
      {"bla", &NewBlaEmbedder},
  };
  return table;
}

}  // namespace

Result<std::unique_ptr<Embedder>> EmbedderRegistry::Create(
    const std::string& name, const EmbedderConfig& config) {
  const std::string key = ToLower(name);
  auto it = Table().find(key);
  if (it == Table().end()) {
    return Status::NotFound("unknown embedder '" + name + "' (registered: " +
                            Join(Names(), ", ") + ")");
  }
  PANE_ASSIGN_OR_RETURN(std::unique_ptr<Embedder> embedder,
                        it->second(config));
  PANE_RETURN_NOT_OK(embedder->Validate());
  return embedder;
}

std::vector<std::string> EmbedderRegistry::Names() {
  std::vector<std::string> names;
  names.reserve(Table().size());
  for (const auto& [name, factory] : Table()) names.push_back(name);
  return names;
}

bool EmbedderRegistry::Contains(const std::string& name) {
  return Table().count(ToLower(name)) != 0;
}

}  // namespace pane
