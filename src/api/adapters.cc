#include "src/api/adapters.h"

#include <utility>

#include "src/core/embedding.h"
#include "src/matrix/vector_ops.h"
#include "src/tasks/link_prediction.h"
#include "src/tasks/node_classification.h"

namespace pane {
namespace {

PairScorer Symmetrized(PairScorer directed, bool undirected) {
  if (!undirected) return directed;
  return [directed = std::move(directed)](int64_t u, int64_t v) {
    return directed(u, v) + directed(v, u);
  };
}

}  // namespace

Result<PairScorer> MakeLinkScorer(std::shared_ptr<const NodeEmbedding> e,
                                  bool undirected) {
  PANE_RETURN_NOT_OK(e->Check());
  switch (e->link_convention) {
    case LinkConvention::kInnerProduct:
      return PairScorer([e](int64_t u, int64_t v) {
        return InnerProductScore(e->features, u, v);
      });
    case LinkConvention::kHamming:
      return PairScorer([e](int64_t u, int64_t v) {
        return HammingScore(e->features, u, v);
      });
    case LinkConvention::kForwardBackward: {
      auto scorer = std::make_shared<EdgeScorer>(e->xf, e->xb, e->y);
      return Symmetrized(
          [scorer](int64_t u, int64_t v) { return scorer->Score(u, v); },
          undirected);
    }
    case LinkConvention::kAsymmetricDot:
      return Symmetrized(
          [e](int64_t u, int64_t v) {
            return Dot(e->xf.Row(u), e->xb.Row(v), e->xf.cols());
          },
          undirected);
  }
  return Status::Internal("unreachable link convention");
}

Result<std::vector<PairScorer>> MakeCandidateLinkScorers(
    std::shared_ptr<const NodeEmbedding> e, bool undirected) {
  PANE_ASSIGN_OR_RETURN(PairScorer primary, MakeLinkScorer(e, undirected));
  std::vector<PairScorer> scorers;
  scorers.push_back(std::move(primary));
  if (e->link_convention == LinkConvention::kInnerProduct) {
    scorers.push_back([e](int64_t u, int64_t v) {
      return CosineScore(e->features, u, v);
    });
  }
  return scorers;
}

Result<PairScorer> MakeAttributeScorer(std::shared_ptr<const NodeEmbedding> e,
                                       const AttributedGraph& train_graph) {
  PANE_RETURN_NOT_OK(e->Check());
  if (e->num_nodes() != train_graph.num_nodes()) {
    return Status::InvalidArgument(
        "embedding row count does not match the graph's node count");
  }
  switch (e->attribute_convention) {
    case AttributeConvention::kFactors:
      // Equation 21: p(v, r) = Xf[v].Y[r] + Xb[v].Y[r].
      return PairScorer([e](int64_t v, int64_t r) {
        const double* yr = e->y.Row(r);
        return Dot(e->xf.Row(v), yr, e->xf.cols()) +
               Dot(e->xb.Row(v), yr, e->xb.cols());
      });
    case AttributeConvention::kDirect:
      if (e->dim() != train_graph.num_attributes()) {
        return Status::InvalidArgument(
            "direct attribute artifact must be n x d");
      }
      return PairScorer(
          [e](int64_t v, int64_t r) { return e->features(v, r); });
    case AttributeConvention::kCentroid: {
      // Per-attribute centroids of the training-graph members' features.
      const CsrMatrix& r = train_graph.attributes();
      auto centroids = std::make_shared<DenseMatrix>(
          train_graph.num_attributes(), e->dim());
      std::vector<double> weight(
          static_cast<size_t>(train_graph.num_attributes()), 0.0);
      for (int64_t v = 0; v < r.rows(); ++v) {
        const CsrMatrix::RowView row = r.Row(v);
        const double* fv = e->features.Row(v);
        for (int64_t i = 0; i < row.length; ++i) {
          const int64_t attr = row.cols[i];
          const double w = row.vals[i];
          double* c = centroids->Row(attr);
          for (int64_t j = 0; j < e->dim(); ++j) c[j] += w * fv[j];
          weight[static_cast<size_t>(attr)] += w;
        }
      }
      for (int64_t a = 0; a < centroids->rows(); ++a) {
        const double w = weight[static_cast<size_t>(a)];
        if (w > 0.0) {
          double* c = centroids->Row(a);
          for (int64_t j = 0; j < e->dim(); ++j) c[j] /= w;
        }
      }
      return PairScorer([e, centroids](int64_t v, int64_t a) {
        return Dot(e->features.Row(v), centroids->Row(a), e->dim());
      });
    }
  }
  return Status::Internal("unreachable attribute convention");
}

DenseMatrix ClassifierFeatures(const NodeEmbedding& e) {
  if (e.has_node_factors()) {
    return ConcatNormalizedEmbeddings(e.xf, e.xb);
  }
  if (e.link_convention == LinkConvention::kHamming) {
    return e.features;  // binary codes are consumed raw
  }
  return RowNormalizedCopy(e.features);
}

}  // namespace pane
