#include "src/api/evaluate.h"

#include <memory>
#include <utility>

#include "src/api/adapters.h"
#include "src/tasks/attribute_inference.h"
#include "src/tasks/link_prediction.h"

namespace pane {

Result<AucAp> RunAttributeInference(const Embedder& embedder,
                                    const AttributedGraph& graph,
                                    double test_fraction, uint64_t seed) {
  PANE_ASSIGN_OR_RETURN(AttributeSplit split,
                        SplitAttributes(graph, test_fraction, seed));
  PANE_ASSIGN_OR_RETURN(NodeEmbedding trained,
                        embedder.Train(split.train_graph));
  auto artifact = std::make_shared<const NodeEmbedding>(std::move(trained));
  PANE_ASSIGN_OR_RETURN(PairScorer scorer,
                        MakeAttributeScorer(artifact, split.train_graph));
  return EvaluateAttributeInference(split, scorer);
}

Result<AucAp> RunLinkPrediction(const Embedder& embedder,
                                const AttributedGraph& graph,
                                double holdout_fraction, uint64_t seed) {
  PANE_ASSIGN_OR_RETURN(LinkSplit split,
                        SplitEdges(graph, holdout_fraction, seed));
  PANE_ASSIGN_OR_RETURN(NodeEmbedding trained,
                        embedder.Train(split.residual_graph));
  auto artifact = std::make_shared<const NodeEmbedding>(std::move(trained));
  PANE_ASSIGN_OR_RETURN(
      std::vector<PairScorer> scorers,
      MakeCandidateLinkScorers(artifact, graph.undirected()));
  AucAp best{0.0, 0.0};
  bool first = true;
  for (const PairScorer& scorer : scorers) {
    const AucAp result = EvaluateLinkPrediction(split, scorer);
    if (first || result.auc > best.auc) best = result;
    first = false;
  }
  return best;
}

Result<F1Scores> RunNodeClassification(
    const Embedder& embedder, const AttributedGraph& graph,
    const NodeClassificationOptions& options) {
  PANE_ASSIGN_OR_RETURN(NodeEmbedding trained, embedder.Train(graph));
  return EvaluateNodeClassification(ClassifierFeatures(trained), graph,
                                    options);
}

}  // namespace pane
