// String-keyed factory for the unified Embedder surface: one Create() call
// turns ("pane" | "pane-seq" | "tadw" | "nrp" | "bane" | "lqanr" | "bla",
// EmbedderConfig) into a validated trainer. This is the single entry point
// the CLI, the task drivers, and the table / figure benches select methods
// through.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/api/embedder.h"
#include "src/common/status.h"

namespace pane {

class EmbedderRegistry {
 public:
  /// Builds the named embedder from the config. Name matching is
  /// case-insensitive. Returns NotFound (listing the registered names) for
  /// an unknown name, and InvalidArgument when the config fails to parse or
  /// the resulting options fail Validate().
  static Result<std::unique_ptr<Embedder>> Create(
      const std::string& name, const EmbedderConfig& config);

  /// All registered names, sorted ("bane", "bla", "lqanr", ...).
  static std::vector<std::string> Names();

  static bool Contains(const std::string& name);
};

}  // namespace pane
