#include "src/api/embedder.h"

#include <algorithm>
#include <utility>

#include "src/common/flags.h"
#include "src/common/string_util.h"

namespace pane {
namespace {

// Dashed spellings (--affinity-memory-mb) are normalized to the underscore
// spelling every config key uses, on every write path (FromMap, FromFlags,
// Set — including the CLI's --opt merge), so embedders read one key
// regardless of how the value arrived.
std::string NormalizeKey(std::string key) {
  std::replace(key.begin(), key.end(), '-', '_');
  return key;
}

}  // namespace

EmbedderConfig EmbedderConfig::FromMap(
    std::map<std::string, std::string> values) {
  EmbedderConfig config;
  for (auto& [key, value] : values) {
    config.values_[NormalizeKey(key)] = std::move(value);
  }
  return config;
}

EmbedderConfig EmbedderConfig::FromFlags(const FlagSet& flags) {
  return FromMap(flags.ValueMap());
}

EmbedderConfig& EmbedderConfig::Set(const std::string& key,
                                    std::string value) {
  values_[NormalizeKey(key)] = std::move(value);
  return *this;
}

bool EmbedderConfig::Has(const std::string& key) const {
  return values_.count(key) != 0;
}

Result<int64_t> EmbedderConfig::GetInt(const std::string& key,
                                       int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  auto parsed = ParseInt64(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("config key '" + key +
                                   "': not an integer: " + it->second);
  }
  return *parsed;
}

Result<double> EmbedderConfig::GetDouble(const std::string& key,
                                         double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("config key '" + key +
                                   "': not a number: " + it->second);
  }
  return *parsed;
}

Result<bool> EmbedderConfig::GetBool(const std::string& key,
                                     bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("config key '" + key +
                                 "': not a bool: " + it->second);
}

std::string EmbedderConfig::GetString(const std::string& key,
                                      const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace pane
