#include "src/api/node_embedding.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace pane {
namespace {

// "PANENEB1": the unified NodeEmbedding artifact, distinct from the legacy
// PaneEmbedding magic so old files fail loudly instead of misparsing.
constexpr uint64_t kNodeEmbeddingMagic = 0x50414e454e454231ULL;
constexpr uint32_t kFormatVersion = 1;

constexpr size_t kMaxMethodNameLength = 256;

constexpr uint8_t kHasXf = 1u << 0;
constexpr uint8_t kHasXb = 1u << 1;
constexpr uint8_t kHasY = 1u << 2;

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
Status ReadPod(std::istream* in, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(*value));
  if (!*in) return Status::IOError("truncated embedding file");
  return Status::OK();
}

void AppendMatrix(std::string* buf, const DenseMatrix& m) {
  AppendPod(buf, m.rows());
  AppendPod(buf, m.cols());
  buf->append(reinterpret_cast<const char*>(m.data()),
              static_cast<size_t>(m.size()) * sizeof(double));
}

/// \param max_doubles entry budget derived from the bytes remaining in the
/// file, so a corrupt shape header yields a Status instead of a huge
/// allocation (or rows * cols overflow).
Status ReadMatrix(std::istream* in, DenseMatrix* m, int64_t max_doubles) {
  int64_t rows = 0, cols = 0;
  PANE_RETURN_NOT_OK(ReadPod(in, &rows));
  PANE_RETURN_NOT_OK(ReadPod(in, &cols));
  if (rows < 0 || cols < 0) {
    return Status::IOError("negative matrix shape in embedding file");
  }
  if (rows > 0 && cols > max_doubles / rows) {
    return Status::IOError(
        "matrix shape in embedding file exceeds the file's size");
  }
  m->Resize(rows, cols);
  in->read(reinterpret_cast<char*>(m->data()),
           static_cast<std::streamsize>(m->size() * sizeof(double)));
  if (!*in) return Status::IOError("truncated embedding file");
  return Status::OK();
}

}  // namespace

const char* LinkConventionToString(LinkConvention c) {
  switch (c) {
    case LinkConvention::kInnerProduct:
      return "inner-product";
    case LinkConvention::kHamming:
      return "hamming";
    case LinkConvention::kForwardBackward:
      return "forward-backward";
    case LinkConvention::kAsymmetricDot:
      return "asymmetric-dot";
  }
  return "unknown";
}

const char* AttributeConventionToString(AttributeConvention c) {
  switch (c) {
    case AttributeConvention::kCentroid:
      return "centroid";
    case AttributeConvention::kDirect:
      return "direct";
    case AttributeConvention::kFactors:
      return "factors";
  }
  return "unknown";
}

Status NodeEmbedding::Check() const {
  if (features.empty()) {
    return Status::InvalidArgument("NodeEmbedding has no feature matrix");
  }
  if (method.size() > kMaxMethodNameLength) {
    return Status::InvalidArgument(
        "NodeEmbedding method name exceeds the serializable length");
  }
  if (!xf.empty() || !xb.empty()) {
    if (xf.rows() != features.rows() || !xf.SameShape(xb)) {
      return Status::InvalidArgument(
          "NodeEmbedding factor blocks xf / xb must be n x k/2 with matching "
          "shapes");
    }
  }
  if (!y.empty()) {
    if (xf.empty() || y.cols() != xf.cols()) {
      return Status::InvalidArgument(
          "NodeEmbedding attribute factor y requires xf / xb with the same "
          "column count");
    }
  }
  if (link_convention == LinkConvention::kForwardBackward &&
      !has_attribute_factors()) {
    return Status::InvalidArgument(
        "forward-backward link convention requires xf, xb and y");
  }
  if (link_convention == LinkConvention::kAsymmetricDot &&
      !has_node_factors()) {
    return Status::InvalidArgument(
        "asymmetric-dot link convention requires xf and xb");
  }
  if (attribute_convention == AttributeConvention::kFactors &&
      !has_attribute_factors()) {
    return Status::InvalidArgument(
        "factor attribute convention requires xf, xb and y");
  }
  return Status::OK();
}

Status NodeEmbedding::Save(const std::string& path) const {
  PANE_RETURN_NOT_OK(Check());
  std::string buf;
  AppendPod(&buf, kNodeEmbeddingMagic);
  AppendPod(&buf, kFormatVersion);
  const uint32_t method_len = static_cast<uint32_t>(method.size());
  AppendPod(&buf, method_len);
  buf.append(method);
  AppendPod(&buf, static_cast<int8_t>(link_convention));
  AppendPod(&buf, static_cast<int8_t>(attribute_convention));
  uint8_t mask = 0;
  if (!xf.empty()) mask |= kHasXf;
  if (!xb.empty()) mask |= kHasXb;
  if (!y.empty()) mask |= kHasY;
  AppendPod(&buf, mask);
  AppendMatrix(&buf, features);
  if (!xf.empty()) AppendMatrix(&buf, xf);
  if (!xb.empty()) AppendMatrix(&buf, xb);
  if (!y.empty()) AppendMatrix(&buf, y);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<NodeEmbedding> NodeEmbedding::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  in.seekg(0, std::ios::end);
  const int64_t file_size = static_cast<int64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  const auto remaining_doubles = [&in, file_size]() {
    return (file_size - static_cast<int64_t>(in.tellg())) /
           static_cast<int64_t>(sizeof(double));
  };
  uint64_t magic = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &magic));
  if (magic != kNodeEmbeddingMagic) {
    return Status::InvalidArgument("not a NodeEmbedding file: " + path);
  }
  uint32_t version = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &version));
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported NodeEmbedding version in " +
                                   path);
  }
  uint32_t method_len = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &method_len));
  if (method_len > kMaxMethodNameLength) {
    return Status::InvalidArgument("implausible method-name length in " + path);
  }
  NodeEmbedding e;
  e.method.resize(method_len);
  in.read(e.method.data(), method_len);
  if (!in) return Status::IOError("truncated embedding file");
  int8_t link = 0, attr = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &link));
  PANE_RETURN_NOT_OK(ReadPod(&in, &attr));
  if (link < 0 || link > static_cast<int8_t>(LinkConvention::kAsymmetricDot)) {
    return Status::InvalidArgument("bad link convention in " + path);
  }
  if (attr < 0 || attr > static_cast<int8_t>(AttributeConvention::kFactors)) {
    return Status::InvalidArgument("bad attribute convention in " + path);
  }
  e.link_convention = static_cast<LinkConvention>(link);
  e.attribute_convention = static_cast<AttributeConvention>(attr);
  uint8_t mask = 0;
  PANE_RETURN_NOT_OK(ReadPod(&in, &mask));
  PANE_RETURN_NOT_OK(ReadMatrix(&in, &e.features, remaining_doubles()));
  if (mask & kHasXf) {
    PANE_RETURN_NOT_OK(ReadMatrix(&in, &e.xf, remaining_doubles()));
  }
  if (mask & kHasXb) {
    PANE_RETURN_NOT_OK(ReadMatrix(&in, &e.xb, remaining_doubles()));
  }
  if (mask & kHasY) {
    PANE_RETURN_NOT_OK(ReadMatrix(&in, &e.y, remaining_doubles()));
  }
  PANE_RETURN_NOT_OK(e.Check());
  return e;
}

}  // namespace pane
