#include "src/api/node_embedding.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/store/container.h"
#include "src/store/embedding_pages.h"

namespace pane {
namespace {

namespace fmt = embedding_format;

store::MatrixExtent ExtentOf(const DenseMatrix& m) {
  store::MatrixExtent extent;
  if (!m.empty()) {
    extent.data = m.data();
    extent.rows = m.rows();
    extent.cols = m.cols();
  }
  return extent;
}

void CopyExtent(const store::MatrixExtent& extent, DenseMatrix* out) {
  out->Resize(extent.rows, extent.cols);
  if (extent.present()) {
    std::memcpy(out->data(), extent.data,
                static_cast<size_t>(extent.payload_bytes()));
  }
}

Result<NodeEmbedding> LoadFromContainer(const std::string& path) {
  PANE_ASSIGN_OR_RETURN(store::Container container,
                        store::Container::Open(path));
  if (!store::HasEmbeddingStreams(container)) {
    return Status::InvalidArgument(
        "container " + path + " holds no embedding artifact");
  }
  PANE_ASSIGN_OR_RETURN(
      store::EmbeddingExtents extents,
      store::ReadEmbeddingStreams(container, /*verify_payloads=*/true));
  if (extents.link_convention < 0 ||
      extents.link_convention >
          static_cast<int8_t>(LinkConvention::kAsymmetricDot)) {
    return Status::InvalidArgument("bad link convention in " + path);
  }
  if (extents.attribute_convention < 0 ||
      extents.attribute_convention >
          static_cast<int8_t>(AttributeConvention::kFactors)) {
    return Status::InvalidArgument("bad attribute convention in " + path);
  }
  NodeEmbedding e;
  e.method = std::move(extents.method);
  e.link_convention = static_cast<LinkConvention>(extents.link_convention);
  e.attribute_convention =
      static_cast<AttributeConvention>(extents.attribute_convention);
  CopyExtent(extents.features, &e.features);
  CopyExtent(extents.xf, &e.xf);
  CopyExtent(extents.xb, &e.xb);
  CopyExtent(extents.y, &e.y);
  PANE_RETURN_NOT_OK(e.Check());
  return e;
}

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void AppendMatrix(std::string* buf, const DenseMatrix& m) {
  AppendPod(buf, m.rows());
  AppendPod(buf, m.cols());
  buf->append(reinterpret_cast<const char*>(m.data()),
              static_cast<size_t>(m.size()) * sizeof(double));
}

/// Stream reader that tracks the bytes left in the file, so every length
/// and shape field is checked before it drives an allocation — the same
/// BoundedReader discipline LoadGraphBinary uses.
class BoundedReader {
 public:
  BoundedReader(std::istream* in, int64_t file_size)
      : in_(in), remaining_(file_size) {}

  int64_t remaining() const { return remaining_; }

  template <typename T>
  Status ReadPod(T* value) {
    if (remaining_ < static_cast<int64_t>(sizeof(T))) {
      return Status::IOError("truncated embedding file");
    }
    in_->read(reinterpret_cast<char*>(value), sizeof(*value));
    if (!*in_) return Status::IOError("truncated embedding file");
    remaining_ -= static_cast<int64_t>(sizeof(T));
    return Status::OK();
  }

  Status ReadBytes(char* dst, int64_t count) {
    if (remaining_ < count) {
      return Status::IOError("truncated embedding file");
    }
    in_->read(dst, static_cast<std::streamsize>(count));
    if (!*in_) return Status::IOError("truncated embedding file");
    remaining_ -= count;
    return Status::OK();
  }

  Status SkipPadding(int64_t count) {
    std::vector<char> pad(static_cast<size_t>(count));
    return ReadBytes(pad.data(), count);
  }

  /// Reads one (rows, cols, payload) matrix record. The shape is validated
  /// against the remaining byte budget before Resize, so a corrupt header
  /// can't request an implausible allocation (and rows * cols can't
  /// overflow: cols is bounded by remaining / rows first).
  Status ReadMatrix(DenseMatrix* m) {
    int64_t rows = 0, cols = 0;
    PANE_RETURN_NOT_OK(ReadPod(&rows));
    PANE_RETURN_NOT_OK(ReadPod(&cols));
    if (rows < 0 || cols < 0) {
      return Status::IOError("negative matrix shape in embedding file");
    }
    const int64_t max_doubles =
        remaining_ / static_cast<int64_t>(sizeof(double));
    if (rows > 0 && cols > max_doubles / rows) {
      return Status::IOError(
          "matrix shape in embedding file exceeds the file's size");
    }
    m->Resize(rows, cols);
    return ReadBytes(reinterpret_cast<char*>(m->data()),
                     m->size() * static_cast<int64_t>(sizeof(double)));
  }

 private:
  std::istream* in_;
  int64_t remaining_;
};

}  // namespace

const char* LinkConventionToString(LinkConvention c) {
  switch (c) {
    case LinkConvention::kInnerProduct:
      return "inner-product";
    case LinkConvention::kHamming:
      return "hamming";
    case LinkConvention::kForwardBackward:
      return "forward-backward";
    case LinkConvention::kAsymmetricDot:
      return "asymmetric-dot";
  }
  return "unknown";
}

const char* AttributeConventionToString(AttributeConvention c) {
  switch (c) {
    case AttributeConvention::kCentroid:
      return "centroid";
    case AttributeConvention::kDirect:
      return "direct";
    case AttributeConvention::kFactors:
      return "factors";
  }
  return "unknown";
}

Status NodeEmbedding::Check() const {
  if (features.empty()) {
    return Status::InvalidArgument("NodeEmbedding has no feature matrix");
  }
  if (method.size() > fmt::kMaxMethodNameLength) {
    return Status::InvalidArgument(
        "NodeEmbedding method name exceeds the serializable length");
  }
  if (!xf.empty() || !xb.empty()) {
    if (xf.rows() != features.rows() || !xf.SameShape(xb)) {
      return Status::InvalidArgument(
          "NodeEmbedding factor blocks xf / xb must be n x k/2 with matching "
          "shapes");
    }
  }
  if (!y.empty()) {
    if (xf.empty() || y.cols() != xf.cols()) {
      return Status::InvalidArgument(
          "NodeEmbedding attribute factor y requires xf / xb with the same "
          "column count");
    }
  }
  if (link_convention == LinkConvention::kForwardBackward &&
      !has_attribute_factors()) {
    return Status::InvalidArgument(
        "forward-backward link convention requires xf, xb and y");
  }
  if (link_convention == LinkConvention::kAsymmetricDot &&
      !has_node_factors()) {
    return Status::InvalidArgument(
        "asymmetric-dot link convention requires xf and xb");
  }
  if (attribute_convention == AttributeConvention::kFactors &&
      !has_attribute_factors()) {
    return Status::InvalidArgument(
        "factor attribute convention requires xf, xb and y");
  }
  return Status::OK();
}

Status NodeEmbedding::Save(const std::string& path) const {
  PANE_RETURN_NOT_OK(Check());
  std::string buf;
  AppendPod(&buf, fmt::kMagic);
  AppendPod(&buf, fmt::kVersionAligned);
  const uint32_t method_len = static_cast<uint32_t>(method.size());
  AppendPod(&buf, method_len);
  buf.append(method);
  AppendPod(&buf, static_cast<int8_t>(link_convention));
  AppendPod(&buf, static_cast<int8_t>(attribute_convention));
  uint8_t mask = 0;
  if (!xf.empty()) mask |= fmt::kHasXf;
  if (!xb.empty()) mask |= fmt::kHasXb;
  if (!y.empty()) mask |= fmt::kHasY;
  AppendPod(&buf, mask);
  // Version 2: align the first matrix record to an 8-byte file offset so an
  // mmap reader can point double views straight into the mapping.
  buf.append(
      static_cast<size_t>(fmt::PaddingFor(static_cast<int64_t>(buf.size()))),
      '\0');
  AppendMatrix(&buf, features);
  if (!xf.empty()) AppendMatrix(&buf, xf);
  if (!xb.empty()) AppendMatrix(&buf, xb);
  if (!y.empty()) AppendMatrix(&buf, y);

  return AtomicWriteFile(path, buf);
}

Status NodeEmbedding::SaveContainer(const std::string& path) const {
  PANE_RETURN_NOT_OK(Check());
  store::EmbeddingExtents extents;
  extents.method = method;
  extents.link_convention = static_cast<int8_t>(link_convention);
  extents.attribute_convention = static_cast<int8_t>(attribute_convention);
  extents.features = ExtentOf(features);
  extents.xf = ExtentOf(xf);
  extents.xb = ExtentOf(xb);
  extents.y = ExtentOf(y);
  store::ContainerWriter writer;
  std::string meta_buf;
  PANE_RETURN_NOT_OK(
      store::AppendEmbeddingStreams(extents, &meta_buf, &writer));
  return writer.WriteTo(path);
}

Result<NodeEmbedding> NodeEmbedding::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  in.seekg(0, std::ios::end);
  const int64_t file_size = static_cast<int64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_size < 0) return Status::IOError("cannot size: " + path);
  BoundedReader reader(&in, file_size);

  uint64_t magic = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&magic));
  if (store::Container::HasContainerMagic(&magic)) {
    in.close();
    return LoadFromContainer(path);
  }
  if (magic != fmt::kMagic) {
    return Status::InvalidArgument("not a NodeEmbedding file: " + path);
  }
  uint32_t version = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&version));
  if (version != fmt::kVersionUnaligned && version != fmt::kVersionAligned) {
    return Status::InvalidArgument("unsupported NodeEmbedding version in " +
                                   path);
  }
  uint32_t method_len = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&method_len));
  if (method_len > fmt::kMaxMethodNameLength) {
    return Status::InvalidArgument("implausible method-name length in " + path);
  }
  NodeEmbedding e;
  e.method.resize(method_len);
  PANE_RETURN_NOT_OK(reader.ReadBytes(e.method.data(), method_len));
  int8_t link = 0, attr = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&link));
  PANE_RETURN_NOT_OK(reader.ReadPod(&attr));
  if (link < 0 || link > static_cast<int8_t>(LinkConvention::kAsymmetricDot)) {
    return Status::InvalidArgument("bad link convention in " + path);
  }
  if (attr < 0 || attr > static_cast<int8_t>(AttributeConvention::kFactors)) {
    return Status::InvalidArgument("bad attribute convention in " + path);
  }
  e.link_convention = static_cast<LinkConvention>(link);
  e.attribute_convention = static_cast<AttributeConvention>(attr);
  uint8_t mask = 0;
  PANE_RETURN_NOT_OK(reader.ReadPod(&mask));
  if ((mask & ~fmt::kKnownMaskBits) != 0) {
    return Status::InvalidArgument("unknown presence-mask bits in " + path);
  }
  if (version == fmt::kVersionAligned) {
    PANE_RETURN_NOT_OK(
        reader.SkipPadding(fmt::PaddingFor(fmt::HeaderBytes(method_len))));
  }
  PANE_RETURN_NOT_OK(reader.ReadMatrix(&e.features));
  if (mask & fmt::kHasXf) {
    PANE_RETURN_NOT_OK(reader.ReadMatrix(&e.xf));
  }
  if (mask & fmt::kHasXb) {
    PANE_RETURN_NOT_OK(reader.ReadMatrix(&e.xb));
  }
  if (mask & fmt::kHasY) {
    PANE_RETURN_NOT_OK(reader.ReadMatrix(&e.y));
  }
  PANE_RETURN_NOT_OK(e.Check());
  return e;
}

}  // namespace pane
