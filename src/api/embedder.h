// The unified training interface of the api layer: every algorithm in the
// reproduction (PANE and the baselines of Tables 4-5) is an Embedder that
// validates its typed options up front and trains an AttributedGraph into
// the common NodeEmbedding artifact. Concrete embedders are constructed via
// EmbedderRegistry::Create (src/api/registry.h) from an EmbedderConfig — a
// string-keyed option map bridged from the FlagSet command-line parser.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/api/node_embedding.h"
#include "src/common/status.h"
#include "src/graph/graph.h"

namespace pane {

class FlagSet;

/// \brief String-keyed configuration for an Embedder.
///
/// Values are stored as strings and parsed by the typed getters, which
/// return the supplied default when the key is absent and InvalidArgument
/// when a present value fails to parse. Unknown keys are tolerated: configs
/// are commonly bridged from a FlagSet whose namespace is shared with
/// harness-level flags (--graph, --mode, ...).
class EmbedderConfig {
 public:
  EmbedderConfig() = default;

  static EmbedderConfig FromMap(std::map<std::string, std::string> values);

  /// Bridge from the command-line parser: every registered flag becomes an
  /// entry, rendered to its string form.
  static EmbedderConfig FromFlags(const FlagSet& flags);

  /// Sets one entry (chainable): config.Set("k", "64").Set("alpha", "0.3").
  ///
  /// All write paths (FromMap, FromFlags, Set) normalize dashes in keys to
  /// underscores (--affinity-memory-mb => affinity_memory_mb) so config
  /// keys have one spelling however the value arrived.
  EmbedderConfig& Set(const std::string& key, std::string value);

  bool Has(const std::string& key) const;

  Result<int64_t> GetInt(const std::string& key, int64_t default_value) const;
  Result<double> GetDouble(const std::string& key,
                           double default_value) const;
  Result<bool> GetBool(const std::string& key, bool default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// \brief Abstract trainer: one name, validated options, one Train() that
/// produces the common artifact.
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Registry name of this embedder ("pane", "tadw", ...).
  virtual const char* name() const = 0;

  /// Checks the parsed options; returns InvalidArgument with a descriptive
  /// message instead of training with silently-misbehaving parameters.
  /// EmbedderRegistry::Create calls this, so a successfully created embedder
  /// always carries valid options.
  virtual Status Validate() const = 0;

  /// Trains on the graph and returns the method-agnostic artifact.
  virtual Result<NodeEmbedding> Train(const AttributedGraph& graph) const = 0;
};

}  // namespace pane
