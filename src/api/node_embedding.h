// The common embedding artifact of the unified api layer: every algorithm —
// PANE and all baselines — trains into a NodeEmbedding, and every downstream
// consumer (link prediction, attribute inference, node classification, the
// CLI save/load workflow) reads one, regardless of which method produced it.
//
// The artifact is a primary per-node feature matrix plus optional factor
// blocks (PANE's forward / backward node factors and its attribute factor),
// tagged with the scoring conventions the producer is evaluated under in the
// paper. One binary format serializes all of it.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

/// How a method's pairwise link score is computed from the artifact
/// (Section 5.3 evaluates every competitor under its best convention).
enum class LinkConvention : int8_t {
  /// Inner product over `features` rows; the adapter also tries cosine and
  /// keeps the best, mirroring the paper's best-of protocol.
  kInnerProduct = 0,
  /// Negated Hamming distance of sign patterns (binary codes, BANE).
  kHamming = 1,
  /// PANE's Equation 22 over the xf / xb / y factor blocks.
  kForwardBackward = 2,
  /// Xf[u] . Xb[w] over the node factor blocks (NRP's score; no attribute
  /// factor involved).
  kAsymmetricDot = 3,
};

/// How an attribute-inference score p(v, r) is computed.
enum class AttributeConvention : int8_t {
  /// Generic fallback: dot(features[v], centroid[r]) with per-attribute
  /// centroids fitted on the training graph by the adapter.
  kCentroid = 0,
  /// `features` is itself an n x d attribute-score matrix (BLA).
  kDirect = 1,
  /// PANE's Equation 21 over the xf / xb / y factor blocks.
  kFactors = 2,
};

const char* LinkConventionToString(LinkConvention c);
const char* AttributeConventionToString(AttributeConvention c);

/// \brief Method-agnostic trained embedding.
///
/// `features` is always present (n rows, one per node). The factor blocks
/// are optional (empty when absent): xf / xb are n x k/2 forward / backward
/// node factors, y is the d x k/2 attribute factor.
struct NodeEmbedding {
  /// Registry name of the producer ("pane", "nrp", ...).
  std::string method;

  DenseMatrix features;
  DenseMatrix xf;
  DenseMatrix xb;
  DenseMatrix y;

  LinkConvention link_convention = LinkConvention::kInnerProduct;
  AttributeConvention attribute_convention = AttributeConvention::kCentroid;

  int64_t num_nodes() const { return features.rows(); }
  int64_t dim() const { return features.cols(); }
  bool has_node_factors() const { return !xf.empty() && !xb.empty(); }
  bool has_attribute_factors() const { return has_node_factors() && !y.empty(); }

  /// Shape / convention consistency checks (called by Save and by the
  /// adapters before they consume the artifact).
  Status Check() const;

  /// One binary file: magic, version, method, conventions, presence mask,
  /// then the present matrices. Stable across save/load round-trips
  /// byte-for-byte.
  Status Save(const std::string& path) const;
  static Result<NodeEmbedding> Load(const std::string& path);
};

}  // namespace pane
