// The common embedding artifact of the unified api layer: every algorithm —
// PANE and all baselines — trains into a NodeEmbedding, and every downstream
// consumer (link prediction, attribute inference, node classification, the
// CLI save/load workflow) reads one, regardless of which method produced it.
//
// The artifact is a primary per-node feature matrix plus optional factor
// blocks (PANE's forward / backward node factors and its attribute factor),
// tagged with the scoring conventions the producer is evaluated under in the
// paper. One binary format serializes all of it.
#pragma once

#include <cstdint>
#include <string>

#include "src/api/embedding_format.h"
#include "src/common/status.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

// LinkConvention / AttributeConvention live in src/api/embedding_format.h
// (shared with the mmap-backed serving store) and are re-exported here.

const char* LinkConventionToString(LinkConvention c);
const char* AttributeConventionToString(AttributeConvention c);

/// \brief Method-agnostic trained embedding.
///
/// `features` is always present (n rows, one per node). The factor blocks
/// are optional (empty when absent): xf / xb are n x k/2 forward / backward
/// node factors, y is the d x k/2 attribute factor.
struct NodeEmbedding {
  /// Registry name of the producer ("pane", "nrp", ...).
  std::string method;

  DenseMatrix features;
  DenseMatrix xf;
  DenseMatrix xb;
  DenseMatrix y;

  LinkConvention link_convention = LinkConvention::kInnerProduct;
  AttributeConvention attribute_convention = AttributeConvention::kCentroid;

  int64_t num_nodes() const { return features.rows(); }
  int64_t dim() const { return features.cols(); }
  bool has_node_factors() const { return !xf.empty() && !xb.empty(); }
  bool has_attribute_factors() const { return has_node_factors() && !y.empty(); }

  /// Shape / convention consistency checks (called by Save and by the
  /// adapters before they consume the artifact).
  Status Check() const;

  /// One binary file: magic, version, method, conventions, presence mask,
  /// then the present matrices (layout in src/api/embedding_format.h; Save
  /// writes version 2, whose matrix payloads are 8-byte aligned so the
  /// serving-side EmbeddingStore can mmap them zero-copy). Stable across
  /// save/load round-trips byte-for-byte, and crash-safe: the file is
  /// written to a temp name and atomically renamed into place.
  Status Save(const std::string& path) const;

  /// The same artifact as a paged, checksummed store:: container
  /// (src/store/container.h): each matrix is its own page-aligned stream,
  /// every page CRC32C-guarded, committed via temp + fsync + rename.
  /// The pane_cli writes this with --output-format=container.
  Status SaveContainer(const std::string& path) const;

  /// Reads either format, dispatching on the leading magic: the legacy
  /// layout (version 1 or 2) or a container written by SaveContainer (whose
  /// page checksums are verified during the load, so a single flipped bit
  /// anywhere in the file is reported). Every shape and length field is
  /// validated against the bytes remaining in the file before any
  /// allocation, so a corrupt or truncated artifact yields a Status instead
  /// of an OOM. For a shared read-only view of a large artifact (no
  /// per-process copy), open it with serve::EmbeddingStore instead.
  static Result<NodeEmbedding> Load(const std::string& path);
};

}  // namespace pane
