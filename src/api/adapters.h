// Adapters from the common NodeEmbedding artifact to the three downstream
// task harnesses (src/tasks): pairwise link scorers, (node, attribute)
// scorers, and classifier feature matrices. All consumers go through these,
// so a task never needs to know which algorithm produced the artifact.
//
// Scorer factories take the embedding by shared_ptr and capture it in the
// returned closure — a scorer can safely outlive every other reference to
// the embedding.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/api/node_embedding.h"
#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/matrix/dense_matrix.h"

namespace pane {

using PairScorer = std::function<double(int64_t, int64_t)>;

/// \brief Link scorer under the artifact's primary convention
/// (EvaluateLinkPrediction-compatible). `undirected` selects the paper's
/// symmetric score p(u, w) + p(w, u) for the asymmetric conventions.
Result<PairScorer> MakeLinkScorer(std::shared_ptr<const NodeEmbedding> e,
                                  bool undirected);

/// \brief All link-scoring conventions this artifact should be tried under:
/// the paper evaluates single-matrix competitors under inner product AND
/// cosine and keeps the best, so kInnerProduct artifacts yield both.
Result<std::vector<PairScorer>> MakeCandidateLinkScorers(
    std::shared_ptr<const NodeEmbedding> e, bool undirected);

/// \brief Attribute-inference scorer p(v, r). Factor artifacts use Equation
/// 21; direct artifacts read their n x d score matrix; everything else
/// falls back to per-attribute centroids fitted on `train_graph` (so even
/// topology-only methods like NRP produce a defined score).
Result<PairScorer> MakeAttributeScorer(std::shared_ptr<const NodeEmbedding> e,
                                       const AttributedGraph& train_graph);

/// \brief Node-classification feature matrix: normalized Xf || Xb for
/// factor artifacts (the paper's PANE / NRP protocol), raw codes for
/// Hamming artifacts (BANE), row-normalized features otherwise.
DenseMatrix ClassifierFeatures(const NodeEmbedding& e);

}  // namespace pane
