// The six built-in embedders: thin adapters that parse an EmbedderConfig
// into each algorithm's option struct, delegate training to the existing
// entry points (Pane::Train, TrainTadw, ...), and package the output into
// the common NodeEmbedding artifact with the scoring conventions the paper
// evaluates that method under.
#include "src/api/embedders.h"

#include <utility>

#include "src/baselines/bane.h"
#include "src/common/logging.h"
#include "src/baselines/bla_like.h"
#include "src/baselines/lqanr.h"
#include "src/baselines/nrp.h"
#include "src/baselines/tadw.h"
#include "src/core/pane.h"

namespace pane {
namespace {

/// [xf | xb] as one n x k feature matrix (the factor methods' primary
/// features; consumers that want the normalized classifier view go through
/// the ClassifierFeatures adapter).
DenseMatrix ConcatFactors(const DenseMatrix& xf, const DenseMatrix& xb) {
  DenseMatrix features(xf.rows(), xf.cols() + xb.cols());
  features.SetBlock(0, 0, xf);
  features.SetBlock(0, xf.cols(), xb);
  return features;
}

// ---------------------------------------------------------------------------
// PANE ("pane" = Algorithm 5 parallel, "pane-seq" = Algorithm 1).

class PaneEmbedder : public Embedder {
 public:
  PaneEmbedder(PaneOptions options, bool parallel, bool verbose)
      : options_(options), parallel_(parallel), verbose_(verbose) {}

  const char* name() const override { return parallel_ ? "pane" : "pane-seq"; }

  Status Validate() const override { return ValidatePaneOptions(options_); }

  Result<NodeEmbedding> Train(const AttributedGraph& graph) const override {
    PaneStats stats;
    PANE_ASSIGN_OR_RETURN(PaneEmbedding trained,
                          Pane(options_).Train(graph, &stats));
    if (verbose_) {
      // The one stats sink every entry point shares (pane_cli --verbose):
      // how the memory budget decomposed the run.
      PANE_LOG(INFO) << name() << " affinity engine: width="
                     << stats.affinity.panel_width
                     << " panels=" << stats.affinity.num_panels
                     << " scratch=" << stats.affinity.scratch_bytes
                     << "B outputs=" << stats.affinity.output_bytes << "B"
                     << (stats.affinity.panel_parallel ? " panel-parallel"
                                                       : " row-parallel")
                     << (stats.affinity.budget_clamped ? " (clamped)" : "");
      PANE_LOG(INFO) << name() << " slabs: "
                     << (stats.slabs_spilled ? "mmap-spill" : "in-RAM")
                     << " total=" << stats.slab_bytes
                     << "B; init blocks overlapped="
                     << stats.init_blocks_overlapped
                     << "; ccd strip=" << stats.ccd.strip_width
                     << " scratch=" << stats.ccd.scratch_bytes << "B";
    }
    NodeEmbedding e;
    e.method = name();
    e.features = ConcatFactors(trained.xf, trained.xb);
    e.xf = std::move(trained.xf);
    e.xb = std::move(trained.xb);
    e.y = std::move(trained.y);
    e.link_convention = LinkConvention::kForwardBackward;
    e.attribute_convention = AttributeConvention::kFactors;
    return e;
  }

 private:
  PaneOptions options_;
  bool parallel_;
  bool verbose_;
};

Result<std::unique_ptr<Embedder>> MakePane(const EmbedderConfig& config,
                                           bool parallel) {
  PaneOptions options;
  PANE_ASSIGN_OR_RETURN(const int64_t k, config.GetInt("k", options.k));
  options.k = static_cast<int>(k);
  PANE_ASSIGN_OR_RETURN(options.alpha,
                        config.GetDouble("alpha", options.alpha));
  PANE_ASSIGN_OR_RETURN(options.epsilon,
                        config.GetDouble("epsilon", options.epsilon));
  PANE_ASSIGN_OR_RETURN(const int64_t ccd,
                        config.GetInt("ccd_iterations", 0));
  options.ccd_iterations = static_cast<int>(ccd);
  PANE_ASSIGN_OR_RETURN(options.greedy_init,
                        config.GetBool("greedy_init", true));
  // --memory-budget-mb arrives as this key: FromFlags normalizes dashed
  // flag names to the underscore spelling. --affinity-memory-mb is the
  // deprecated alias; Pane::Train falls back to it when the new key is 0.
  PANE_ASSIGN_OR_RETURN(options.memory_budget_mb,
                        config.GetInt("memory_budget_mb", 0));
  PANE_ASSIGN_OR_RETURN(options.affinity_memory_mb,
                        config.GetInt("affinity_memory_mb", 0));
  options.spill_dir = config.GetString("spill_dir", "");
  // Spill flavor once the budget forces out-of-core factors: "pooled"
  // (page-granular eviction through the shared BufferPool, the default) or
  // "flat" (the whole-panel MADV_DONTNEED path).
  const std::string spill_mode = config.GetString("spill_mode", "pooled");
  if (spill_mode == "pooled") {
    options.spill_mode = SpillMode::kPooled;
  } else if (spill_mode == "flat") {
    options.spill_mode = SpillMode::kFlat;
  } else {
    return Status::InvalidArgument(
        "spill_mode must be 'pooled' or 'flat', got '" + spill_mode + "'");
  }
  PANE_ASSIGN_OR_RETURN(const bool verbose,
                        config.GetBool("verbose", false));
  PANE_ASSIGN_OR_RETURN(const int64_t seed, config.GetInt("seed", 42));
  options.seed = static_cast<uint64_t>(seed);
  if (parallel) {
    PANE_ASSIGN_OR_RETURN(const int64_t threads, config.GetInt("threads", 4));
    options.num_threads = static_cast<int>(threads);
  } else {
    options.num_threads = 1;
  }
  return std::unique_ptr<Embedder>(
      new PaneEmbedder(options, parallel, verbose));
}

// ---------------------------------------------------------------------------
// TADW.

class TadwEmbedder : public Embedder {
 public:
  explicit TadwEmbedder(TadwOptions options) : options_(options) {}

  const char* name() const override { return "tadw"; }

  Status Validate() const override {
    if (options_.k < 2 || options_.k % 2 != 0) {
      return Status::InvalidArgument("tadw: k must be even and >= 2");
    }
    if (options_.text_dim < 1) {
      return Status::InvalidArgument("tadw: text_dim must be >= 1");
    }
    if (options_.als_iterations < 1) {
      return Status::InvalidArgument("tadw: als_iterations must be >= 1");
    }
    if (options_.ridge <= 0.0) {
      return Status::InvalidArgument("tadw: ridge must be > 0");
    }
    if (options_.max_nodes < 1) {
      return Status::InvalidArgument("tadw: max_nodes must be >= 1");
    }
    return Status::OK();
  }

  Result<NodeEmbedding> Train(const AttributedGraph& graph) const override {
    PANE_ASSIGN_OR_RETURN(TadwEmbedding trained, TrainTadw(graph, options_));
    NodeEmbedding e;
    e.method = name();
    e.features = std::move(trained.features);
    e.link_convention = LinkConvention::kInnerProduct;
    e.attribute_convention = AttributeConvention::kCentroid;
    return e;
  }

 private:
  TadwOptions options_;
};

// ---------------------------------------------------------------------------
// NRP.

class NrpEmbedder : public Embedder {
 public:
  explicit NrpEmbedder(NrpOptions options) : options_(options) {}

  const char* name() const override { return "nrp"; }

  Status Validate() const override {
    if (options_.k < 2 || options_.k % 2 != 0) {
      return Status::InvalidArgument("nrp: k must be even and >= 2");
    }
    if (options_.alpha <= 0.0 || options_.alpha >= 1.0) {
      return Status::InvalidArgument("nrp: teleport must be in (0, 1)");
    }
    if (options_.ppr_iterations < 1) {
      return Status::InvalidArgument("nrp: ppr_iterations must be >= 1");
    }
    if (options_.reweight_rounds < 0) {
      return Status::InvalidArgument("nrp: reweight_rounds must be >= 0");
    }
    return Status::OK();
  }

  Result<NodeEmbedding> Train(const AttributedGraph& graph) const override {
    PANE_ASSIGN_OR_RETURN(NrpEmbedding trained, TrainNrp(graph, options_));
    NodeEmbedding e;
    e.method = name();
    e.features = ConcatFactors(trained.xf, trained.xb);
    e.xf = std::move(trained.xf);
    e.xb = std::move(trained.xb);
    e.link_convention = LinkConvention::kAsymmetricDot;
    e.attribute_convention = AttributeConvention::kCentroid;
    return e;
  }

 private:
  NrpOptions options_;
};

// ---------------------------------------------------------------------------
// BANE.

class BaneEmbedder : public Embedder {
 public:
  explicit BaneEmbedder(BaneOptions options) : options_(options) {}

  const char* name() const override { return "bane"; }

  Status Validate() const override {
    if (options_.k < 1) {
      return Status::InvalidArgument("bane: k must be >= 1");
    }
    if (options_.smoothing_hops < 0) {
      return Status::InvalidArgument("bane: smoothing_hops must be >= 0");
    }
    if (options_.iterations < 1) {
      return Status::InvalidArgument("bane: iterations must be >= 1");
    }
    return Status::OK();
  }

  Result<NodeEmbedding> Train(const AttributedGraph& graph) const override {
    PANE_ASSIGN_OR_RETURN(BaneEmbedding trained, TrainBane(graph, options_));
    NodeEmbedding e;
    e.method = name();
    e.features = std::move(trained.codes);
    e.link_convention = LinkConvention::kHamming;
    e.attribute_convention = AttributeConvention::kCentroid;
    return e;
  }

 private:
  BaneOptions options_;
};

// ---------------------------------------------------------------------------
// LQANR.

class LqanrEmbedder : public Embedder {
 public:
  explicit LqanrEmbedder(LqanrOptions options) : options_(options) {}

  const char* name() const override { return "lqanr"; }

  Status Validate() const override {
    if (options_.k < 1) {
      return Status::InvalidArgument("lqanr: k must be >= 1");
    }
    if (options_.bit_width < 1 || options_.bit_width > 8) {
      return Status::InvalidArgument("lqanr: bit_width must be in [1, 8]");
    }
    if (options_.smoothing_hops < 0) {
      return Status::InvalidArgument("lqanr: smoothing_hops must be >= 0");
    }
    if (options_.refine_iterations < 1) {
      return Status::InvalidArgument("lqanr: refine_iterations must be >= 1");
    }
    return Status::OK();
  }

  Result<NodeEmbedding> Train(const AttributedGraph& graph) const override {
    PANE_ASSIGN_OR_RETURN(LqanrEmbedding trained, TrainLqanr(graph, options_));
    NodeEmbedding e;
    e.method = name();
    e.features = std::move(trained.features);
    e.link_convention = LinkConvention::kInnerProduct;
    e.attribute_convention = AttributeConvention::kCentroid;
    return e;
  }

 private:
  LqanrOptions options_;
};

// ---------------------------------------------------------------------------
// BLA-like.

class BlaEmbedder : public Embedder {
 public:
  explicit BlaEmbedder(BlaLikeOptions options) : options_(options) {}

  const char* name() const override { return "bla"; }

  Status Validate() const override {
    if (options_.hops < 1) {
      return Status::InvalidArgument("bla: hops must be >= 1");
    }
    if (options_.decay <= 0.0 || options_.decay > 1.0) {
      return Status::InvalidArgument("bla: decay must be in (0, 1]");
    }
    if (options_.self_weight < 0.0) {
      return Status::InvalidArgument("bla: self_weight must be >= 0");
    }
    return Status::OK();
  }

  Result<NodeEmbedding> Train(const AttributedGraph& graph) const override {
    PANE_ASSIGN_OR_RETURN(BlaLikeModel trained,
                          TrainBlaLike(graph, options_));
    NodeEmbedding e;
    e.method = name();
    e.features = std::move(trained.scores);
    e.link_convention = LinkConvention::kInnerProduct;
    e.attribute_convention = AttributeConvention::kDirect;
    return e;
  }

 private:
  BlaLikeOptions options_;
};

}  // namespace

Result<std::unique_ptr<Embedder>> NewPaneEmbedder(
    const EmbedderConfig& config) {
  return MakePane(config, /*parallel=*/true);
}

Result<std::unique_ptr<Embedder>> NewPaneSeqEmbedder(
    const EmbedderConfig& config) {
  return MakePane(config, /*parallel=*/false);
}

Result<std::unique_ptr<Embedder>> NewTadwEmbedder(
    const EmbedderConfig& config) {
  TadwOptions options;
  PANE_ASSIGN_OR_RETURN(const int64_t k, config.GetInt("k", options.k));
  options.k = static_cast<int>(k);
  PANE_ASSIGN_OR_RETURN(const int64_t text_dim,
                        config.GetInt("text_dim", options.text_dim));
  options.text_dim = static_cast<int>(text_dim);
  PANE_ASSIGN_OR_RETURN(
      const int64_t als,
      config.GetInt("als_iterations", options.als_iterations));
  options.als_iterations = static_cast<int>(als);
  PANE_ASSIGN_OR_RETURN(options.ridge,
                        config.GetDouble("ridge", options.ridge));
  PANE_ASSIGN_OR_RETURN(options.max_nodes,
                        config.GetInt("max_nodes", options.max_nodes));
  PANE_ASSIGN_OR_RETURN(const int64_t seed, config.GetInt("seed", 3));
  options.seed = static_cast<uint64_t>(seed);
  return std::unique_ptr<Embedder>(new TadwEmbedder(options));
}

Result<std::unique_ptr<Embedder>> NewNrpEmbedder(const EmbedderConfig& config) {
  NrpOptions options;
  PANE_ASSIGN_OR_RETURN(const int64_t k, config.GetInt("k", options.k));
  options.k = static_cast<int>(k);
  // NRP's restart probability has its own key: "alpha" is taken by PANE's
  // walk-stopping probability in bridged flag namespaces, and the defaults
  // differ (0.15 vs 0.5).
  PANE_ASSIGN_OR_RETURN(options.alpha,
                        config.GetDouble("teleport", options.alpha));
  PANE_ASSIGN_OR_RETURN(
      const int64_t ppr,
      config.GetInt("ppr_iterations", options.ppr_iterations));
  options.ppr_iterations = static_cast<int>(ppr);
  PANE_ASSIGN_OR_RETURN(
      const int64_t rounds,
      config.GetInt("reweight_rounds", options.reweight_rounds));
  options.reweight_rounds = static_cast<int>(rounds);
  PANE_ASSIGN_OR_RETURN(
      options.reweight_ridge,
      config.GetDouble("reweight_ridge", options.reweight_ridge));
  PANE_ASSIGN_OR_RETURN(const int64_t seed, config.GetInt("seed", 99));
  options.seed = static_cast<uint64_t>(seed);
  return std::unique_ptr<Embedder>(new NrpEmbedder(options));
}

Result<std::unique_ptr<Embedder>> NewBaneEmbedder(
    const EmbedderConfig& config) {
  BaneOptions options;
  PANE_ASSIGN_OR_RETURN(const int64_t k, config.GetInt("k", options.k));
  options.k = static_cast<int>(k);
  PANE_ASSIGN_OR_RETURN(
      const int64_t hops,
      config.GetInt("smoothing_hops", options.smoothing_hops));
  options.smoothing_hops = static_cast<int>(hops);
  PANE_ASSIGN_OR_RETURN(const int64_t iters,
                        config.GetInt("iterations", options.iterations));
  options.iterations = static_cast<int>(iters);
  PANE_ASSIGN_OR_RETURN(options.ridge,
                        config.GetDouble("ridge", options.ridge));
  PANE_ASSIGN_OR_RETURN(const int64_t seed, config.GetInt("seed", 11));
  options.seed = static_cast<uint64_t>(seed);
  return std::unique_ptr<Embedder>(new BaneEmbedder(options));
}

Result<std::unique_ptr<Embedder>> NewLqanrEmbedder(
    const EmbedderConfig& config) {
  LqanrOptions options;
  PANE_ASSIGN_OR_RETURN(const int64_t k, config.GetInt("k", options.k));
  options.k = static_cast<int>(k);
  PANE_ASSIGN_OR_RETURN(const int64_t bits,
                        config.GetInt("bit_width", options.bit_width));
  options.bit_width = static_cast<int>(bits);
  PANE_ASSIGN_OR_RETURN(
      const int64_t hops,
      config.GetInt("smoothing_hops", options.smoothing_hops));
  options.smoothing_hops = static_cast<int>(hops);
  PANE_ASSIGN_OR_RETURN(
      const int64_t refine,
      config.GetInt("refine_iterations", options.refine_iterations));
  options.refine_iterations = static_cast<int>(refine);
  PANE_ASSIGN_OR_RETURN(const int64_t seed, config.GetInt("seed", 13));
  options.seed = static_cast<uint64_t>(seed);
  return std::unique_ptr<Embedder>(new LqanrEmbedder(options));
}

Result<std::unique_ptr<Embedder>> NewBlaEmbedder(const EmbedderConfig& config) {
  BlaLikeOptions options;
  PANE_ASSIGN_OR_RETURN(const int64_t hops,
                        config.GetInt("hops", options.hops));
  options.hops = static_cast<int>(hops);
  PANE_ASSIGN_OR_RETURN(options.decay,
                        config.GetDouble("decay", options.decay));
  PANE_ASSIGN_OR_RETURN(options.self_weight,
                        config.GetDouble("self_weight", options.self_weight));
  return std::unique_ptr<Embedder>(new BlaEmbedder(options));
}

}  // namespace pane
