#include "src/datasets/registry.h"

#include <cmath>

#include "src/common/string_util.h"

namespace pane {
namespace {

SbmParams Params(int64_t n, int64_t m, int64_t d, int64_t er, int32_t labels,
                 bool undirected, int32_t labels_per_node, uint64_t seed) {
  SbmParams p;
  p.num_nodes = n;
  p.num_edges = m;
  p.num_attributes = d;
  p.num_attr_entries = er;
  p.num_communities = labels;
  p.undirected = undirected;
  p.labels_per_node = labels_per_node;
  p.seed = seed;
  return p;
}

std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> specs;
  // Scale-1.0 sizes keep the paper's relative ordering (Cora smallest ...
  // MAG largest) while the full 8-dataset sweep stays laptop-feasible.
  // Published statistics from Table 3.

  DatasetSpec cora;
  cora.name = "cora";
  cora.paper_nodes = 2708;
  cora.paper_edges = 5429;
  cora.paper_attributes = 1433;
  cora.paper_attr_entries = 49216;
  cora.paper_labels = 7;
  cora.params = Params(1400, 2800, 700, 24000, 7, false, 1, 101);
  specs.push_back(cora);

  DatasetSpec citeseer;
  citeseer.name = "citeseer";
  citeseer.paper_nodes = 3312;
  citeseer.paper_edges = 4715;
  citeseer.paper_attributes = 3703;
  citeseer.paper_attr_entries = 105165;
  citeseer.paper_labels = 6;
  citeseer.params = Params(1650, 2350, 1100, 52000, 6, false, 1, 202);
  specs.push_back(citeseer);

  DatasetSpec facebook;
  facebook.name = "facebook";
  facebook.paper_nodes = 4039;
  facebook.paper_edges = 88234;
  facebook.paper_attributes = 1283;
  facebook.paper_attr_entries = 33301;
  facebook.paper_labels = 193;
  facebook.params = Params(2000, 44000, 650, 16600, 12, true, 3, 303);
  // Ego-circle labels are noisier than citation areas: soften homophily so
  // classification sits in the paper's 0.5-0.75 band rather than saturating.
  facebook.params.edge_homophily = 0.65;
  facebook.params.attr_homophily = 0.6;
  specs.push_back(facebook);

  DatasetSpec pubmed;
  pubmed.name = "pubmed";
  pubmed.paper_nodes = 19717;
  pubmed.paper_edges = 44338;
  pubmed.paper_attributes = 500;
  pubmed.paper_attr_entries = 988031;
  pubmed.paper_labels = 3;
  pubmed.params = Params(4000, 9000, 250, 100000, 3, false, 1, 404);
  specs.push_back(pubmed);

  DatasetSpec flickr;
  flickr.name = "flickr";
  flickr.paper_nodes = 7575;
  flickr.paper_edges = 479476;
  flickr.paper_attributes = 12047;
  flickr.paper_attr_entries = 182517;
  flickr.paper_labels = 9;
  flickr.params = Params(2200, 44000, 1200, 26000, 9, true, 1, 505);
  flickr.params.edge_homophily = 0.6;
  flickr.params.attr_homophily = 0.55;
  specs.push_back(flickr);

  DatasetSpec googleplus;
  googleplus.name = "google+";
  googleplus.paper_nodes = 107614;
  googleplus.paper_edges = 13673453;
  googleplus.paper_attributes = 15907;
  googleplus.paper_attr_entries = 300636429;
  googleplus.paper_labels = 468;
  googleplus.small = false;
  googleplus.params = Params(6000, 120000, 1000, 120000, 20, false, 3, 606);
  googleplus.params.edge_homophily = 0.7;
  googleplus.params.attr_homophily = 0.65;
  specs.push_back(googleplus);

  DatasetSpec tweibo;
  tweibo.name = "tweibo";
  tweibo.paper_nodes = 2320895;
  tweibo.paper_edges = 50655143;
  tweibo.paper_attributes = 1657;
  tweibo.paper_attr_entries = 16799940;
  tweibo.paper_labels = 8;
  tweibo.small = false;
  tweibo.params = Params(10000, 220000, 600, 73000, 8, false, 1, 707);
  // Follower-graph labels (age bands) correlate weakly with communities.
  tweibo.params.edge_homophily = 0.55;
  tweibo.params.attr_homophily = 0.5;
  specs.push_back(tweibo);

  DatasetSpec mag;
  mag.name = "mag";
  mag.paper_nodes = 59249719;
  mag.paper_edges = 978147253;
  mag.paper_attributes = 2000;
  mag.paper_attr_entries = 434404289;
  mag.paper_labels = 100;
  mag.small = false;
  mag.params = Params(16000, 260000, 700, 117000, 16, false, 2, 808);
  mag.params.edge_homophily = 0.65;
  mag.params.attr_homophily = 0.6;
  specs.push_back(mag);

  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* const kRegistry =
      new std::vector<DatasetSpec>(BuildRegistry());
  return *kRegistry;
}

std::vector<DatasetSpec> SmallDatasets() {
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.small) out.push_back(spec);
  }
  return out;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  const std::string lower = ToLower(name);
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == lower) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

AttributedGraph MakeDataset(const DatasetSpec& spec, double scale) {
  SbmParams p = spec.params;
  p.num_nodes = std::max<int64_t>(
      64, static_cast<int64_t>(std::llround(p.num_nodes * scale)));
  p.num_edges = std::max<int64_t>(
      p.num_nodes, static_cast<int64_t>(std::llround(p.num_edges * scale)));
  p.num_attr_entries = std::max<int64_t>(
      p.num_nodes,
      static_cast<int64_t>(std::llround(p.num_attr_entries * scale)));
  // Attribute vocabulary grows sublinearly, like real tag/word vocabularies.
  p.num_attributes = std::max<int64_t>(
      p.num_communities,
      static_cast<int64_t>(std::llround(p.num_attributes * std::sqrt(scale))));
  return GenerateAttributedSbm(p);
}

Result<AttributedGraph> MakeDatasetByName(const std::string& name,
                                          double scale) {
  PANE_ASSIGN_OR_RETURN(DatasetSpec spec, FindDataset(name));
  return MakeDataset(spec, scale);
}

}  // namespace pane
