// Registry of synthetic stand-ins for the paper's eight datasets (Table 3).
// Each entry mirrors the published shape — node/edge/attribute counts,
// attribute-entry density, label count, directedness — at a configurable
// downscale so the full table/figure sweeps run on a laptop-class machine.
// Set scale = 1.0 for the bench defaults; larger scales approach the
// published sizes (memory permitting).
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace pane {

/// \brief One dataset entry: name, paper-reported statistics, generator
/// parameters at scale 1.0.
struct DatasetSpec {
  std::string name;
  /// Published statistics, for the provenance columns in bench output.
  int64_t paper_nodes = 0;
  int64_t paper_edges = 0;
  int64_t paper_attributes = 0;
  int64_t paper_attr_entries = 0;
  int32_t paper_labels = 0;
  /// True for the datasets every method handles (Cora ... Flickr); the
  /// large three (Google+, TWeibo, MAG) are where baselines start failing.
  bool small = true;
  /// Generator parameters at scale 1.0.
  SbmParams params;
};

/// All eight dataset specs in Table 3 order.
const std::vector<DatasetSpec>& AllDatasets();

/// The five small datasets (parameter-sensitivity figures use these).
std::vector<DatasetSpec> SmallDatasets();

/// Lookup by (case-insensitive) name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Instantiates the synthetic graph for a spec at the given scale: node,
/// edge and attribute-entry budgets are multiplied by `scale` (attribute
/// count grows with sqrt(scale) to keep per-attribute support realistic).
AttributedGraph MakeDataset(const DatasetSpec& spec, double scale = 1.0);

/// Convenience: FindDataset + MakeDataset.
Result<AttributedGraph> MakeDatasetByName(const std::string& name,
                                          double scale = 1.0);

}  // namespace pane
