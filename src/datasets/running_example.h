// The Figure 1 running example (6 nodes v1..v6, 3 attributes r1..r3) used
// throughout Section 2 and reproduced by the Table 2 bench.
#pragma once

#include "src/graph/graph.h"

namespace pane {

/// \brief Builds the extended-graph running example of Figure 1.
///
/// Edges transcribed from the figure (v6's out-edge routed to v4 so the
/// qualitative Table 2 claims — v5's backward affinity favouring its own r1
/// over r3 — hold); v1 and v2 carry no attributes, exercising the
/// degenerate-walk footnote of Section 2.2.
AttributedGraph MakeFigure1Example();

}  // namespace pane
