#include "src/datasets/running_example.h"

namespace pane {

AttributedGraph MakeFigure1Example() {
  GraphBuilder builder(6, 3);
  builder.AddEdge(0, 2).AddEdge(2, 0);  // v1 <-> v3
  builder.AddEdge(0, 4).AddEdge(4, 0);  // v1 <-> v5
  builder.AddEdge(1, 2);                // v2 -> v3
  builder.AddEdge(2, 3);                // v3 -> v4
  builder.AddEdge(3, 0);                // v4 -> v1
  builder.AddEdge(4, 5);                // v5 -> v6
  builder.AddEdge(5, 3);                // v6 -> v4
  builder.AddNodeAttribute(2, 0, 1.0);  // v3 - r1
  builder.AddNodeAttribute(3, 0, 1.0);  // v4 - r1
  builder.AddNodeAttribute(4, 0, 1.0);  // v5 - r1
  builder.AddNodeAttribute(2, 1, 1.0);  // v3 - r2
  builder.AddNodeAttribute(4, 1, 1.0);  // v5 - r2
  builder.AddNodeAttribute(5, 2, 1.0);  // v6 - r3
  return builder.Build(false).ValueOrDie();
}

}  // namespace pane
