#!/usr/bin/env bash
# Repo lint, run as a CI gate (see .github/workflows/ci.yml) and locally via
#   tools/lint.sh
#
# Rule 1 — annotated lock discipline cannot erode: the raw std:: sync
# primitives may be named ONLY inside src/common/sync.{h,cc}, which wraps
# them with Clang thread-safety annotations. Everything else (src/, bench/,
# examples/, tests/) must go through pane::Mutex / MutexLock /
# ReaderMutexLock / CondVar so `-Werror=thread-safety` keeps seeing every
# lock site. std::atomic and std::thread stay legal: atomics carry their own
# semantics and threads are not capabilities.
#
# Rule 2 — no tracked build directories (migrated from the inline CI grep).
#
# Rule 3 — the transport layer owns the sockets: raw socket / epoll
# syscalls may appear ONLY in src/serve/transport.cc. That covers the
# outbound side too — connect() / poll() belong to ShardConnection, so the
# router's shard hops (src/serve/router.cc) and every other caller go
# through the transport's deadline/reconnect logic instead of dialing
# sockets themselves. Server and example code sees connections through
# EpollTransport's handler interface, so fd-lifecycle and readiness bugs
# have exactly one home. tests/ and bench/ are exempt: they are *clients*
# of the server and legitimately open plain connect() sockets to talk to
# it.
#
# Rule 4 — one latency clock in the serving stack: src/serve/ must not do
# ad-hoc std::chrono arithmetic. Stage timings flow through the
# MonotonicNanos/Micros/Millis helpers (src/common/timer.h) into the
# src/obs/ histograms, so every recorded duration shares one clock and one
# unit convention and shows up in the `metrics` exposition. examples/ and
# bench/ may still use std::chrono for their own pacing/sleeps.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

# --- Rule 1: naked std sync primitives ------------------------------------
pattern='std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex'
pattern+='|shared_mutex|shared_timed_mutex|lock_guard|unique_lock'
pattern+='|shared_lock|scoped_lock|condition_variable|condition_variable_any)'

hits=$(grep -rEn "$pattern" src bench examples tests \
         --include='*.h' --include='*.cc' --include='*.cpp' \
       | grep -Ev '^src/common/sync\.(h|cc):' || true)
if [[ -n "$hits" ]]; then
  echo "lint: naked std:: sync primitives outside src/common/sync.{h,cc}:" >&2
  echo "$hits" >&2
  echo "lint: use the annotated wrappers from src/common/sync.h instead" >&2
  status=1
fi

# <mutex>/<shared_mutex>/<condition_variable> includes outside the wrapper
# are a smell for the same erosion (the types above would be unusable, but
# catch the include before someone reaches for them).
inc_hits=$(grep -rEn '#include <(mutex|shared_mutex|condition_variable)>' \
             src bench examples tests \
             --include='*.h' --include='*.cc' --include='*.cpp' \
           | grep -Ev '^src/common/sync\.(h|cc):' || true)
if [[ -n "$inc_hits" ]]; then
  echo "lint: raw sync headers included outside src/common/sync.{h,cc}:" >&2
  echo "$inc_hits" >&2
  status=1
fi

# --- Rule 3: raw socket syscalls outside the transport ---------------------
sock_pattern='\b(socket|accept4?|bind|listen|connect|poll'
sock_pattern+='|epoll_create1?|epoll_ctl|epoll_wait|eventfd)\('

sock_hits=$(grep -rEn "$sock_pattern" src examples \
              --include='*.h' --include='*.cc' --include='*.cpp' \
            | grep -Ev '^src/serve/transport\.cc:' || true)
if [[ -n "$sock_hits" ]]; then
  echo "lint: raw socket/epoll syscalls outside src/serve/transport.cc:" >&2
  echo "$sock_hits" >&2
  echo "lint: route inbound connections through serve::EpollTransport and" >&2
  echo "lint: outbound ones through serve::ShardConnection instead" >&2
  status=1
fi

# --- Rule 4: ad-hoc latency clocks in the serving stack --------------------
chrono_hits=$(grep -rEn 'std::chrono|#include <chrono>' src/serve \
                --include='*.h' --include='*.cc' || true)
if [[ -n "$chrono_hits" ]]; then
  echo "lint: std::chrono inside src/serve/ — use MonotonicNanos/Micros/" >&2
  echo "lint: Millis (src/common/timer.h) so stage timings share one clock" >&2
  echo "lint: and land in the src/obs/ histograms:" >&2
  echo "$chrono_hits" >&2
  status=1
fi

# --- Rule 2: tracked build directories ------------------------------------
if git ls-files | grep -E '^build[^/]*/' >&2; then
  echo "lint: build*/ paths must never be tracked (see .gitignore)" >&2
  status=1
fi

if [[ $status -eq 0 ]]; then
  echo "lint: OK"
fi
exit $status
