#!/usr/bin/env python3
"""Validates a Prometheus text exposition read from stdin (or a file arg).

Used by the metrics-smoke CI job against the `metrics` verb of pane_server.
Checks, strictly:
  - every metric name matches [a-zA-Z_:][a-zA-Z0-9_:]*, labels parse as
    key="value" lists, sample values are integers or floats;
  - `# TYPE` appears at most once per family and before that family's
    samples; every sample belongs to a declared family (summaries also own
    `<name>_sum`, `<name>_count`, and the `quantile` label);
  - no duplicate (name, labels) sample;
  - the stream ends with a `# EOF` terminator line;
  - at least one summary family has _count > 0 (the smoke signal that the
    server actually recorded stage timings).

Exit 0 on success, 1 with a message per violation otherwise.
Stdlib only; python3 tools/check_prometheus.py < exposition.txt
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABELS_RE = re.compile(
    r'^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*")*\}$'
)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)
VALID_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def main() -> int:
    if len(sys.argv) > 2:
        print("usage: check_prometheus.py [exposition.txt]", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    errors = []
    types = {}  # family name -> declared type
    seen_samples = set()  # (name, labels)
    summary_counts = {}  # family -> max observed _count value
    saw_eof = False

    lines = text.split("\n")
    for i, line in enumerate(lines, start=1):
        if line == "" and i >= len(lines) - 1:
            continue  # trailing newline
        if saw_eof:
            errors.append(f"line {i}: content after # EOF terminator")
            break
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                errors.append(f"line {i}: malformed TYPE line: {line!r}")
                continue
            _, _, family, kind = parts
            if not NAME_RE.match(family):
                errors.append(f"line {i}: bad family name {family!r}")
            if kind not in VALID_TYPES:
                errors.append(f"line {i}: unknown metric type {kind!r}")
            if family in types:
                errors.append(f"line {i}: duplicate TYPE for family {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # other comments (e.g. HELP) are fine
        if line == "":
            errors.append(f"line {i}: blank line inside exposition")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {i}: unparseable sample line: {line!r}")
            continue
        name, labels = m.group("name"), m.group("labels") or ""
        if labels and not LABELS_RE.match(labels):
            errors.append(f"line {i}: malformed labels {labels!r}")
            continue

        # Resolve the owning family: exact name, or the summary components.
        family = name
        if family not in types:
            for suffix in ("_sum", "_count"):
                base = name[: -len(suffix)] if name.endswith(suffix) else None
                if base and types.get(base) == "summary":
                    family = base
                    break
        if family not in types:
            errors.append(f"line {i}: sample {name!r} has no TYPE declaration")
            continue
        if types[family] != "summary" and 'quantile="' in labels:
            errors.append(
                f"line {i}: quantile label on non-summary family {family}"
            )

        key = (name, labels)
        if key in seen_samples:
            errors.append(f"line {i}: duplicate sample {name}{labels}")
        seen_samples.add(key)

        if types.get(family) == "summary" and name == family + "_count":
            count = float(m.group("value"))
            summary_counts[family] = max(summary_counts.get(family, 0), count)

    if not saw_eof:
        errors.append("missing # EOF terminator")
    if not any(c > 0 for c in summary_counts.values()):
        errors.append(
            "no summary family has _count > 0 — the server recorded no "
            "stage timings"
        )

    for e in errors:
        print(f"check_prometheus: {e}", file=sys.stderr)
    if not errors:
        nonzero = sum(1 for c in summary_counts.values() if c > 0)
        print(
            f"check_prometheus: OK ({len(types)} families, "
            f"{len(seen_samples)} samples, {nonzero} active summaries)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
