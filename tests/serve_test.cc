// Tests for the serving subsystem: exact-engine equivalence with an
// independent reference implementation (bitwise scores, exclude semantics,
// self-edge skipping, tie-breaking, any thread count / blocking), the
// mmap-backed EmbeddingStore (zero-copy views, lifetime past unlink,
// read-only pages, corrupt artifacts), the IVF pruned index's measured
// recall, and the PaneServer line protocol with batching, deduplication
// and the LRU cache.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/node_embedding.h"
#include "src/common/logging.h"
#include "src/common/topk.h"
#include "src/core/pane.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/embedding_store.h"
#include "src/serve/line_protocol.h"
#include "src/serve/query_engine.h"
#include "src/serve/server.h"
#include "src/tasks/ranking.h"
#include "test_util.h"

namespace pane {
namespace {

// ---- Independent reference implementation (the pre-engine scan) ---------

Ranking ReferenceTopKAttributes(const PaneEmbedding& embedding, int64_t v,
                                int64_t k, const AttributedGraph* exclude) {
  Ranking candidates;
  for (int64_t r = 0; r < embedding.num_attributes(); ++r) {
    if (exclude != nullptr && exclude->attributes().At(v, r) != 0.0) continue;
    candidates.emplace_back(r, embedding.AttributeScore(v, r));
  }
  return SelectTopK(std::move(candidates), k);
}

Ranking ReferenceTopKTargets(const PaneEmbedding& embedding,
                             const EdgeScorer& scorer, int64_t u, int64_t k,
                             const AttributedGraph* exclude) {
  Ranking candidates;
  for (int64_t v = 0; v < embedding.num_nodes(); ++v) {
    if (v == u) continue;
    if (exclude != nullptr && exclude->adjacency().At(u, v) != 0.0) continue;
    candidates.emplace_back(v, scorer.Score(u, v));
  }
  return SelectTopK(std::move(candidates), k);
}

void ExpectSameRanking(const Ranking& expected, const Ranking& actual,
                       const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << what << " rank " << i;
    // Bitwise equality, not approximate: the engine's blocked kernel must
    // reproduce Dot's accumulation exactly.
    EXPECT_EQ(expected[i].second, actual[i].second) << what << " rank " << i;
  }
}

struct TrainedFixture {
  AttributedGraph graph;
  PaneEmbedding embedding;

  static const TrainedFixture& Get() {
    static const TrainedFixture* fixture = [] {
      auto* f = new TrainedFixture();
      f->graph = testing::SmallSbm(161, 300);
      PaneOptions options;
      options.k = 32;
      f->embedding = Pane(options).Train(f->graph).ValueOrDie();
      return f;
    }();
    return *fixture;
  }
};

serve::QueryEngineOptions EngineOptions(ThreadPool* pool = nullptr,
                                        int64_t query_block = 0,
                                        int64_t candidate_tile = 0) {
  serve::QueryEngineOptions options;
  options.pool = pool;
  options.query_block = query_block;
  options.candidate_tile = candidate_tile;
  return options;
}

serve::QueryEngine MakeEngine(const PaneEmbedding& e,
                              const serve::QueryEngineOptions& options) {
  auto engine = serve::QueryEngine::Create(e.xf.View(), e.xb.View(),
                                           e.y.View(), ConstMatrixView(),
                                           options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return engine.MoveValueUnsafe();
}

std::vector<serve::TopKQuery> AllNodeQueries(int64_t n, int64_t k) {
  std::vector<serve::TopKQuery> queries;
  for (int64_t v = 0; v < n; ++v) queries.push_back({v, k});
  return queries;
}

// ---- Exact engine equivalence -------------------------------------------

TEST(QueryEngineTest, AttributesMatchReferenceBitwise) {
  const auto& f = TrainedFixture::Get();
  const serve::QueryEngine engine = MakeEngine(f.embedding, EngineOptions());
  const auto queries = AllNodeQueries(f.graph.num_nodes(), 7);
  const auto batched = engine.TopKAttributes(queries, nullptr);
  for (int64_t v = 0; v < f.graph.num_nodes(); ++v) {
    ExpectSameRanking(
        ReferenceTopKAttributes(f.embedding, v, 7, nullptr),
        batched[static_cast<size_t>(v)], "attr node " + std::to_string(v));
  }
}

TEST(QueryEngineTest, AttributesRespectExcludeSemantics) {
  const auto& f = TrainedFixture::Get();
  const serve::QueryEngine engine = MakeEngine(f.embedding, EngineOptions());
  const auto queries = AllNodeQueries(f.graph.num_nodes(), 10);
  const auto batched = engine.TopKAttributes(queries, &f.graph);
  for (int64_t v = 0; v < f.graph.num_nodes(); ++v) {
    ExpectSameRanking(
        ReferenceTopKAttributes(f.embedding, v, 10, &f.graph),
        batched[static_cast<size_t>(v)], "attr+excl node " + std::to_string(v));
    for (const auto& [attr, score] : batched[static_cast<size_t>(v)]) {
      (void)score;
      EXPECT_EQ(f.graph.attributes().At(v, attr), 0.0);
    }
  }
}

TEST(QueryEngineTest, TargetsMatchReferenceAndSkipSelfAndEdges) {
  const auto& f = TrainedFixture::Get();
  const EdgeScorer scorer(f.embedding);
  // Supply the scorer's Z so reference and engine share one scoring
  // operand (as TopKTargets does).
  auto engine = serve::QueryEngine::Create(scorer.xf(), ConstMatrixView(),
                                           ConstMatrixView(), scorer.z(),
                                           EngineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();
  const auto queries = AllNodeQueries(f.graph.num_nodes(), 9);
  for (const AttributedGraph* exclude :
       {static_cast<const AttributedGraph*>(nullptr), &f.graph}) {
    const auto batched = engine->TopKTargets(queries, exclude);
    for (int64_t u = 0; u < f.graph.num_nodes(); ++u) {
      ExpectSameRanking(
          ReferenceTopKTargets(f.embedding, scorer, u, 9, exclude),
          batched[static_cast<size_t>(u)], "link node " + std::to_string(u));
      for (const auto& [v, score] : batched[static_cast<size_t>(u)]) {
        (void)score;
        EXPECT_NE(v, u);
        if (exclude != nullptr) {
          EXPECT_EQ(f.graph.adjacency().At(u, v), 0.0);
        }
      }
    }
  }
}

TEST(QueryEngineTest, DerivedGramMatchesEdgeScorerBitwise) {
  const auto& f = TrainedFixture::Get();
  const EdgeScorer scorer(f.embedding);
  // Engine derives Z = Xb (Y^T Y) itself through the view kernels; scores
  // must still match the EdgeScorer's dense precompute bitwise.
  const serve::QueryEngine engine = MakeEngine(f.embedding, EngineOptions());
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t u = 0; u < 20; ++u) pairs.emplace_back(u, (u * 7 + 3) % 300);
  const auto scores = engine.LinkScores(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(scores[i], scorer.Score(pairs[i].first, pairs[i].second));
  }
}

TEST(QueryEngineTest, InvariantAcrossThreadsAndBlocking) {
  const auto& f = TrainedFixture::Get();
  const serve::QueryEngine baseline = MakeEngine(f.embedding, EngineOptions());
  const auto queries = AllNodeQueries(f.graph.num_nodes(), 5);
  const auto expected_attr = baseline.TopKAttributes(queries, &f.graph);
  const auto expected_link = baseline.TopKTargets(queries, &f.graph);

  ThreadPool pool(4);
  const struct {
    ThreadPool* pool;
    int64_t query_block, candidate_tile;
  } configs[] = {
      {nullptr, 1, 64},    {nullptr, 7, 101},  {nullptr, 64, 4096},
      {&pool, 0, 0},       {&pool, 3, 64},     {&pool, 128, 257},
  };
  for (const auto& config : configs) {
    const serve::QueryEngine engine = MakeEngine(
        f.embedding,
        EngineOptions(config.pool, config.query_block, config.candidate_tile));
    const auto attr = engine.TopKAttributes(queries, &f.graph);
    const auto link = engine.TopKTargets(queries, &f.graph);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameRanking(expected_attr[i], attr[i], "attr config");
      ExpectSameRanking(expected_link[i], link[i], "link config");
    }
  }
}

TEST(QueryEngineTest, DeterministicTieBreakIndexAscending) {
  // Identical factor rows => every candidate scores identically; the
  // deterministic order must return the lowest indices first.
  PaneEmbedding e;
  e.xf.Resize(6, 4);
  e.xb.Resize(6, 4);
  e.y.Resize(9, 4);
  e.xf.Fill(0.5);
  e.xb.Fill(0.25);
  e.y.Fill(1.0);
  ThreadPool pool(3);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    const serve::QueryEngine engine = MakeEngine(e, EngineOptions(p, 2, 64));
    const auto attr = engine.TopKAttributes({{0, 4}, {3, 4}}, nullptr);
    for (const auto& ranking : attr) {
      ASSERT_EQ(ranking.size(), 4u);
      for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(ranking[static_cast<size_t>(i)].first, i);
    }
    const auto link = engine.TopKTargets({{2, 6}}, nullptr);
    // Self (node 2) is skipped; ties resolve index-ascending.
    const std::vector<int64_t> expect_order = {0, 1, 3, 4, 5};
    ASSERT_EQ(link[0].size(), expect_order.size());
    for (size_t i = 0; i < expect_order.size(); ++i) {
      EXPECT_EQ(link[0][i].first, expect_order[i]);
    }
  }
}

TEST(QueryEngineTest, KLargerThanCandidateSet) {
  const auto& f = TrainedFixture::Get();
  const serve::QueryEngine engine = MakeEngine(f.embedding, EngineOptions());
  const auto attr = engine.TopKAttributes({{0, 100000}}, nullptr);
  EXPECT_EQ(attr[0].size(),
            static_cast<size_t>(f.graph.num_attributes()));
  const auto link = engine.TopKTargets({{0, 100000}}, nullptr);
  EXPECT_EQ(link[0].size(), static_cast<size_t>(f.graph.num_nodes() - 1));
}

TEST(QueryEngineTest, AttributeScoresMatchEq21) {
  const auto& f = TrainedFixture::Get();
  const serve::QueryEngine engine = MakeEngine(f.embedding, EngineOptions());
  std::vector<std::pair<int64_t, int64_t>> pairs = {{0, 0}, {5, 17}, {299, 79}};
  const auto scores = engine.AttributeScores(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(scores[i],
              f.embedding.AttributeScore(pairs[i].first, pairs[i].second));
  }
}

// The offline helpers are wrappers over the engine; they must agree with
// the independent reference exactly (including the deterministic order).
TEST(RankingWrappersTest, MatchReferenceBitwise) {
  const auto& f = TrainedFixture::Get();
  const EdgeScorer scorer(f.embedding);
  for (const int64_t v : {0, 17, 299}) {
    ExpectSameRanking(ReferenceTopKAttributes(f.embedding, v, 12, &f.graph),
                      TopKAttributes(f.embedding, v, 12, &f.graph),
                      "wrapper attr");
    ExpectSameRanking(
        ReferenceTopKTargets(f.embedding, scorer, v, 12, &f.graph),
        TopKTargets(f.embedding, scorer, v, 12, &f.graph), "wrapper link");
  }
}

TEST(QueryEngineTest, CreateRejectsInconsistentShapes) {
  DenseMatrix xf(4, 3), xb(4, 2), y(5, 3), z(3, 3);
  EXPECT_FALSE(serve::QueryEngine::Create(ConstMatrixView(), xb.View(),
                                          y.View(), ConstMatrixView(), {})
                   .ok());
  EXPECT_FALSE(serve::QueryEngine::Create(xf.View(), xb.View(), y.View(),
                                          ConstMatrixView(), {})
                   .ok());
  EXPECT_FALSE(serve::QueryEngine::Create(xf.View(), ConstMatrixView(),
                                          ConstMatrixView(), z.View(), {})
                   .ok());
}

// ---- EmbeddingStore -----------------------------------------------------

class EmbeddingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("serve_store_" + std::to_string(::getpid()) + ".bin"))
                .string();
    const auto& f = TrainedFixture::Get();
    artifact_.method = "pane";
    artifact_.xf = f.embedding.xf;
    artifact_.xb = f.embedding.xb;
    artifact_.y = f.embedding.y;
    artifact_.features.Resize(f.embedding.num_nodes(),
                              2 * f.embedding.xf.cols());
    artifact_.features.SetBlock(0, 0, f.embedding.xf);
    artifact_.features.SetBlock(0, f.embedding.xf.cols(), f.embedding.xb);
    artifact_.link_convention = LinkConvention::kForwardBackward;
    artifact_.attribute_convention = AttributeConvention::kFactors;
    PANE_CHECK_OK(artifact_.Save(path_));
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  NodeEmbedding artifact_;
};

void ExpectViewEqualsMatrix(ConstMatrixView view, const DenseMatrix& m) {
  ASSERT_EQ(view.rows(), m.rows());
  ASSERT_EQ(view.cols(), m.cols());
  for (int64_t i = 0; i < m.rows(); ++i) {
    for (int64_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(view.Row(i)[j], m(i, j));
    }
  }
}

TEST_F(EmbeddingStoreTest, OpensVersion2ZeroCopy) {
  auto store = serve::EmbeddingStore::Open(path_);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(store->zero_copy());
  EXPECT_EQ(store->method(), "pane");
  EXPECT_EQ(store->link_convention(), LinkConvention::kForwardBackward);
  EXPECT_TRUE(store->has_attribute_factors());
  EXPECT_GT(store->mapped_bytes(), 0);
  ExpectViewEqualsMatrix(store->features(), artifact_.features);
  ExpectViewEqualsMatrix(store->xf(), artifact_.xf);
  ExpectViewEqualsMatrix(store->xb(), artifact_.xb);
  ExpectViewEqualsMatrix(store->y(), artifact_.y);
}

TEST_F(EmbeddingStoreTest, StoreOutlivesUnlinkedFile) {
  auto store = serve::EmbeddingStore::Open(path_);
  ASSERT_TRUE(store.ok()) << store.status();
  // The fd is closed at open and the mapping keeps the pages alive: a
  // rotated / deleted artifact must stay fully readable.
  ASSERT_TRUE(std::filesystem::remove(path_));
  ASSERT_FALSE(std::filesystem::exists(path_));
  ExpectViewEqualsMatrix(store->xf(), artifact_.xf);
  ExpectViewEqualsMatrix(store->y(), artifact_.y);
}

TEST_F(EmbeddingStoreTest, MappingIsReadOnly) {
  auto store = serve::EmbeddingStore::Open(path_);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->zero_copy());
  // Find the mapping containing the features view in /proc/self/maps and
  // check its permissions are r-- (PROT_READ, no write).
  const uintptr_t addr =
      reinterpret_cast<uintptr_t>(store->features().data());
  std::ifstream maps("/proc/self/maps");
  if (!maps) GTEST_SKIP() << "/proc/self/maps unavailable";
  std::string line;
  bool found = false;
  while (std::getline(maps, line)) {
    uintptr_t lo = 0, hi = 0;
    char perms[5] = {0};
    if (std::sscanf(line.c_str(), "%lx-%lx %4s",
                    reinterpret_cast<unsigned long*>(&lo),
                    reinterpret_cast<unsigned long*>(&hi), perms) != 3) {
      continue;
    }
    if (addr >= lo && addr < hi) {
      found = true;
      EXPECT_EQ(perms[0], 'r') << line;
      EXPECT_EQ(perms[1], '-') << "mapping must not be writable: " << line;
      break;
    }
  }
  EXPECT_TRUE(found) << "mapping not found in /proc/self/maps";
}

TEST_F(EmbeddingStoreTest, FloatCopiesAndNormalization) {
  serve::EmbeddingStoreOptions options;
  options.float_copies = true;
  auto store = serve::EmbeddingStore::Open(path_, options);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_EQ(store->xf_f32().rows, artifact_.xf.rows());
  ASSERT_EQ(store->y_f32().cols, artifact_.y.cols());
  EXPECT_EQ(store->xf_f32().Row(3)[1],
            static_cast<float>(artifact_.xf(3, 1)));

  options.l2_normalize_floats = true;
  auto normalized = serve::EmbeddingStore::Open(path_, options);
  ASSERT_TRUE(normalized.ok()) << normalized.status();
  const serve::FloatMatrix& xf = normalized->xf_f32();
  for (const int64_t row : {int64_t{0}, int64_t{7}}) {
    double norm = 0.0;
    for (int64_t j = 0; j < xf.cols; ++j) {
      norm += static_cast<double>(xf.Row(row)[j]) * xf.Row(row)[j];
    }
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST_F(EmbeddingStoreTest, EngineOverStoreMatchesViewEngine) {
  auto store = serve::EmbeddingStore::Open(path_);
  ASSERT_TRUE(store.ok()) << store.status();
  auto store_engine = serve::QueryEngine::Create(*store, EngineOptions());
  ASSERT_TRUE(store_engine.ok()) << store_engine.status();
  const auto& f = TrainedFixture::Get();
  const serve::QueryEngine view_engine =
      MakeEngine(f.embedding, EngineOptions());
  const auto queries = AllNodeQueries(20, 8);
  const auto expected_attr = view_engine.TopKAttributes(queries, &f.graph);
  const auto expected_link = view_engine.TopKTargets(queries, &f.graph);
  const auto attr = store_engine->TopKAttributes(queries, &f.graph);
  const auto link = store_engine->TopKTargets(queries, &f.graph);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameRanking(expected_attr[i], attr[i], "store attr");
    ExpectSameRanking(expected_link[i], link[i], "store link");
  }
}

TEST_F(EmbeddingStoreTest, RejectsCorruptArtifacts) {
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string trunc_path = path_ + ".trunc";
  // Truncation sweep: every prefix must fail cleanly, never crash or OOM.
  for (size_t len : {size_t{0}, size_t{4}, size_t{9}, size_t{20},
                     bytes.size() / 3, bytes.size() - 8}) {
    std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_FALSE(serve::EmbeddingStore::Open(trunc_path).ok())
        << "prefix " << len;
  }
  std::filesystem::remove(trunc_path);
  EXPECT_TRUE(
      serve::EmbeddingStore::Open("/nonexistent/store.bin").status()
          .IsIOError());
}

// ---- Container-backed serving artifacts ---------------------------------

TEST_F(EmbeddingStoreTest, OpensContainerArtifactZeroCopy) {
  const std::string container_path = path_ + ".ctn";
  ASSERT_TRUE(artifact_.SaveContainer(container_path).ok());
  auto store = serve::EmbeddingStore::Open(container_path);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(store->container_backed());
  EXPECT_TRUE(store->zero_copy());
  EXPECT_EQ(store->method(), "pane");
  EXPECT_EQ(store->link_convention(), LinkConvention::kForwardBackward);
  EXPECT_TRUE(store->has_attribute_factors());
  EXPECT_GT(store->mapped_bytes(), 0);
  ExpectViewEqualsMatrix(store->features(), artifact_.features);
  ExpectViewEqualsMatrix(store->xf(), artifact_.xf);
  ExpectViewEqualsMatrix(store->xb(), artifact_.xb);
  ExpectViewEqualsMatrix(store->y(), artifact_.y);
  // Unverified open (the serving fast path that never faults pages it does
  // not serve) must expose the same views.
  serve::EmbeddingStoreOptions options;
  options.verify_checksums = false;
  auto unverified = serve::EmbeddingStore::Open(container_path, options);
  ASSERT_TRUE(unverified.ok()) << unverified.status();
  EXPECT_TRUE(unverified->container_backed());
  ExpectViewEqualsMatrix(unverified->y(), artifact_.y);
  std::filesystem::remove(container_path);
}

TEST_F(EmbeddingStoreTest, ContainerEngineMatchesLegacyEngine) {
  const std::string container_path = path_ + ".ctn";
  ASSERT_TRUE(artifact_.SaveContainer(container_path).ok());
  auto legacy = serve::EmbeddingStore::Open(path_);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  auto container = serve::EmbeddingStore::Open(container_path);
  ASSERT_TRUE(container.ok()) << container.status();
  auto legacy_engine = serve::QueryEngine::Create(*legacy, EngineOptions());
  ASSERT_TRUE(legacy_engine.ok()) << legacy_engine.status();
  auto container_engine =
      serve::QueryEngine::Create(*container, EngineOptions());
  ASSERT_TRUE(container_engine.ok()) << container_engine.status();
  const auto& f = TrainedFixture::Get();
  const auto queries = AllNodeQueries(25, 8);
  const auto expected_attr = legacy_engine->TopKAttributes(queries, &f.graph);
  const auto expected_link = legacy_engine->TopKTargets(queries, &f.graph);
  const auto attr = container_engine->TopKAttributes(queries, &f.graph);
  const auto link = container_engine->TopKTargets(queries, &f.graph);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameRanking(expected_attr[i], attr[i], "container attr");
    ExpectSameRanking(expected_link[i], link[i], "container link");
  }
  std::filesystem::remove(container_path);
}

TEST_F(EmbeddingStoreTest, ContainerOpenDetectsFlippedByte) {
  const std::string container_path = path_ + ".ctn";
  ASSERT_TRUE(artifact_.SaveContainer(container_path).ok());
  std::ifstream in(container_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2 + 11] ^= 0x04;
  std::ofstream out(container_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  const auto store = serve::EmbeddingStore::Open(container_path);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().message().find("checksum"), std::string::npos)
      << store.status();
  std::filesystem::remove(container_path);
}

TEST(IvfIndexTest, SaveLoadRoundTripSearchesIdentical) {
  const auto& f = TrainedFixture::Get();
  serve::IvfOptions ivf;
  ivf.num_clusters = 12;
  ivf.seed = 31;
  auto built = serve::IvfIndex::Build(f.embedding.y.View(), ivf);
  ASSERT_TRUE(built.ok()) << built.status();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("serve_ivf_" + std::to_string(::getpid()) + ".ctn"))
          .string();
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded = serve::IvfIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::filesystem::remove(path);
  EXPECT_EQ(loaded->num_clusters(), built->num_clusters());
  EXPECT_EQ(loaded->num_candidates(), built->num_candidates());
  EXPECT_EQ(loaded->dim(), built->dim());
  // Identical searches, not merely similar: the container round trip may
  // not perturb a single float.
  for (const int64_t v : {int64_t{0}, int64_t{17}, int64_t{123}}) {
    const Ranking expected =
        built->Search(f.embedding.xf.View().Row(v), 10, 6);
    const Ranking actual =
        loaded->Search(f.embedding.xf.View().Row(v), 10, 6);
    ExpectSameRanking(expected, actual, "ivf node " + std::to_string(v));
  }
  EXPECT_TRUE(
      serve::IvfIndex::Load("/nonexistent/index.ctn").status().IsIOError());
}

TEST(QueryEngineTest, PrunedIndexSaveLoadRoundTrip) {
  const auto& f = TrainedFixture::Get();
  serve::QueryEngine built = MakeEngine(f.embedding, EngineOptions());
  serve::IvfOptions ivf;
  ivf.num_clusters = 8;
  ivf.seed = 5;
  PANE_CHECK_OK(built.BuildPrunedIndex(ivf));
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("serve_pruned_" + std::to_string(::getpid()) + ".ctn"))
          .string();
  ASSERT_TRUE(built.SavePrunedIndex(path).ok());

  serve::QueryEngine loaded = MakeEngine(f.embedding, EngineOptions());
  EXPECT_FALSE(loaded.has_pruned_index());
  ASSERT_TRUE(loaded.LoadPrunedIndex(path).ok());
  ASSERT_TRUE(loaded.has_pruned_index());
  const auto queries = AllNodeQueries(40, 10);
  const auto expected_link = built.TopKTargetsPruned(queries, 6, nullptr);
  const auto expected_attr = built.TopKAttributesPruned(queries, 6, nullptr);
  const auto link = loaded.TopKTargetsPruned(queries, 6, nullptr);
  const auto attr = loaded.TopKAttributesPruned(queries, 6, nullptr);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameRanking(expected_link[i], link[i], "pruned link");
    ExpectSameRanking(expected_attr[i], attr[i], "pruned attr");
  }

  // An index built for a different embedding shape must be rejected, and
  // the rejection may not clobber the engine's state.
  DenseMatrix xf(10, 8), xb(10, 8), y(6, 8);
  for (int64_t i = 0; i < xf.size(); ++i) xf.data()[i] = 0.01 * (i + 1);
  for (int64_t i = 0; i < xb.size(); ++i) xb.data()[i] = 0.02 * (i + 1);
  for (int64_t i = 0; i < y.size(); ++i) y.data()[i] = 0.03 * (i + 1);
  auto mismatched = serve::QueryEngine::Create(
      xf.View(), xb.View(), y.View(), ConstMatrixView(), EngineOptions());
  ASSERT_TRUE(mismatched.ok()) << mismatched.status();
  const auto status = mismatched->LoadPrunedIndex(path);
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_FALSE(mismatched->has_pruned_index());
  std::filesystem::remove(path);
}

// ---- IVF pruned retrieval ----------------------------------------------

TEST(IvfIndexTest, PrunedRecallRegression) {
  const auto& f = TrainedFixture::Get();
  const serve::QueryEngine* engine = [] {
    static serve::QueryEngine* e = [] {
      auto built = new serve::QueryEngine(
          MakeEngine(TrainedFixture::Get().embedding, EngineOptions()));
      serve::IvfOptions ivf;
      ivf.num_clusters = 16;
      ivf.seed = 5;
      PANE_CHECK_OK(built->BuildPrunedIndex(ivf));
      return built;
    }();
    return e;
  }();
  ASSERT_TRUE(engine->has_pruned_index());
  const auto queries = AllNodeQueries(f.graph.num_nodes(), 10);
  const auto exact_link = engine->TopKTargets(queries, nullptr);
  const auto exact_attr = engine->TopKAttributes(queries, nullptr);

  // Probing half the clusters must already reach the satellite's 0.9
  // recall bar on the running example; probing all of them ~1.
  const auto pruned_link = engine->TopKTargetsPruned(queries, 8, nullptr);
  const auto pruned_attr = engine->TopKAttributesPruned(queries, 8, nullptr);
  double link_recall = 0.0, attr_recall = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    link_recall += serve::RecallAtK(exact_link[i], pruned_link[i]);
    attr_recall += serve::RecallAtK(exact_attr[i], pruned_attr[i]);
  }
  link_recall /= static_cast<double>(queries.size());
  attr_recall /= static_cast<double>(queries.size());
  EXPECT_GE(link_recall, 0.9);
  EXPECT_GE(attr_recall, 0.9);

  const auto full_link = engine->TopKTargetsPruned(queries, 16, nullptr);
  double full_recall = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    full_recall += serve::RecallAtK(exact_link[i], full_link[i]);
  }
  full_recall /= static_cast<double>(queries.size());
  // Full probe scans every candidate; only float rounding at the top-k
  // boundary can cost recall.
  EXPECT_GE(full_recall, 0.98);
}

TEST(IvfIndexTest, PrunedRespectsExclusionAndSelfSkip) {
  const auto& f = TrainedFixture::Get();
  serve::QueryEngine engine = MakeEngine(f.embedding, EngineOptions());
  serve::IvfOptions ivf;
  ivf.num_clusters = 8;
  PANE_CHECK_OK(engine.BuildPrunedIndex(ivf));
  const auto queries = AllNodeQueries(30, 10);
  const auto link = engine.TopKTargetsPruned(queries, 8, &f.graph);
  const auto attr = engine.TopKAttributesPruned(queries, 8, &f.graph);
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t u = queries[i].node;
    for (const auto& [v, score] : link[i]) {
      (void)score;
      EXPECT_NE(v, u);
      EXPECT_EQ(f.graph.adjacency().At(u, v), 0.0);
    }
    for (const auto& [r, score] : attr[i]) {
      (void)score;
      EXPECT_EQ(f.graph.attributes().At(u, r), 0.0);
    }
  }
}

TEST(IvfIndexTest, RecallAtKHelper) {
  const Ranking exact = {{1, 3.0}, {2, 2.0}, {3, 1.0}};
  const Ranking approx = {{2, 2.0}, {9, 1.5}, {1, 3.0}};
  EXPECT_DOUBLE_EQ(serve::RecallAtK(exact, approx), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(serve::RecallAtK({}, approx), 1.0);
}

// ---- Line protocol ------------------------------------------------------

TEST(LineProtocolTest, ParsesAndFormats) {
  auto attr = serve::ParseRequestLine("attr 12 5");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, serve::Request::Type::kTopKAttributes);
  EXPECT_EQ(attr->a, 12);
  EXPECT_EQ(attr->k, 5);

  auto pair = serve::ParseRequestLine("  pair 3 4  ");
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->type, serve::Request::Type::kLinkPair);
  EXPECT_EQ(serve::FormatScore(*pair, 0.5), "pair 3 4 ok 0.5");

  EXPECT_TRUE(serve::ParseRequestLine("attr x 5").status().IsInvalidArgument());
  EXPECT_TRUE(serve::ParseRequestLine("attr 1 0").status().IsInvalidArgument());
  EXPECT_TRUE(serve::ParseRequestLine("bogus 1 2").status().IsInvalidArgument());
  EXPECT_TRUE(serve::ParseRequestLine("stats 1").status().IsInvalidArgument());
  EXPECT_TRUE(serve::ParseRequestLine("attr -1 5").status().IsInvalidArgument());

  const Ranking ranking = {{4, 1.5}, {2, 0.25}};
  auto link = serve::ParseRequestLine("link 7 2");
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(serve::FormatRanking(*link, ranking), "link 7 ok 4:1.5 2:0.25");
}

TEST(LineProtocolTest, ScoreFormattingRoundTripsDoubles) {
  const double value = 0.12345678901234567;
  serve::Request request;
  request.type = serve::Request::Type::kLinkPair;
  const std::string line = serve::FormatScore(request, value);
  const size_t ok = line.rfind("ok ");
  ASSERT_NE(ok, std::string::npos);
  EXPECT_EQ(std::stod(line.substr(ok + 3)), value);
}

// ---- PaneServer ---------------------------------------------------------

class PaneServerTest : public ::testing::Test {
 protected:
  PaneServerTest()
      : engine_(MakeEngine(TrainedFixture::Get().embedding, EngineOptions())) {}

  std::string Serve(const std::string& script,
                    const serve::ServerOptions& options,
                    serve::PaneServer::Counters* counters = nullptr) {
    serve::PaneServer server(&engine_, options);
    std::istringstream in(script);
    std::ostringstream out;
    server.ServeStream(in, out);
    if (counters != nullptr) *counters = server.counters();
    return out.str();
  }

  serve::QueryEngine engine_;
};

TEST_F(PaneServerTest, AnswersMatchDirectEngineCalls) {
  serve::ServerOptions options;
  const std::string out = Serve("attr 3 4\nlink 3 4\npattr 3 7\npair 3 9\n",
                                options);
  const auto attr = engine_.TopKAttributes({{3, 4}}, nullptr);
  const auto link = engine_.TopKTargets({{3, 4}}, nullptr);
  serve::Request r;
  r.type = serve::Request::Type::kTopKAttributes;
  r.a = 3;
  r.k = 4;
  std::string expected = serve::FormatRanking(r, attr[0]) + "\n";
  r.type = serve::Request::Type::kTopKTargets;
  expected += serve::FormatRanking(r, link[0]) + "\n";
  r.type = serve::Request::Type::kAttributePair;
  r.b = 7;
  expected += serve::FormatScore(r, engine_.AttributeScores({{3, 7}})[0]) + "\n";
  r.type = serve::Request::Type::kLinkPair;
  r.b = 9;
  expected += serve::FormatScore(r, engine_.LinkScores({{3, 9}})[0]) + "\n";
  EXPECT_EQ(out, expected);
}

TEST_F(PaneServerTest, BatchingPreservesRequestOrder) {
  serve::ServerOptions options;
  options.batch_size = 3;  // force several flushes over one stream
  const std::string script =
      "attr 0 2\nattr 1 2\nattr 2 2\nlink 0 2\n\nattr 3 2\nlink 1 2\n";
  const std::string out = Serve(script, options);
  std::istringstream lines(out);
  std::string line;
  std::vector<std::string> got;
  while (std::getline(lines, line)) got.push_back(line);
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got[0].rfind("attr 0 ok", 0), 0u);
  EXPECT_EQ(got[3].rfind("link 0 ok", 0), 0u);
  EXPECT_EQ(got[4].rfind("attr 3 ok", 0), 0u);
  EXPECT_EQ(got[5].rfind("link 1 ok", 0), 0u);
}

TEST_F(PaneServerTest, DedupAndCacheCounters) {
  serve::ServerOptions options;
  options.batch_size = 8;
  serve::PaneServer::Counters counters;
  // Same request thrice in one batch (dedup), then again after a flush
  // (cache hit).
  const std::string out = Serve(
      "attr 5 3\nattr 5 3\nattr 5 3\n\nattr 5 3\nstats\n", options, &counters);
  EXPECT_EQ(counters.dedup_hits, 2u);
  EXPECT_EQ(counters.cache_hits, 1u);
  EXPECT_EQ(counters.requests, 5u);
  // All four attr responses must be identical.
  std::istringstream lines(out);
  std::string first, line;
  ASSERT_TRUE(std::getline(lines, first));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, first);
  }
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("stats ok", 0), 0u);
  EXPECT_NE(line.find("mode=exact"), std::string::npos);
}

TEST_F(PaneServerTest, CacheEvictionWithTinyCapacity) {
  serve::ServerOptions options;
  options.cache_capacity = 1;
  serve::PaneServer::Counters counters;
  // a, b evicts a, re-asking a misses, re-asking b after a misses too.
  Serve("attr 0 2\n\nattr 1 2\n\nattr 0 2\n\nattr 1 2\n", options, &counters);
  EXPECT_EQ(counters.cache_hits, 0u);
  // With capacity 2 both repeats hit.
  options.cache_capacity = 2;
  Serve("attr 0 2\n\nattr 1 2\n\nattr 0 2\n\nattr 1 2\n", options, &counters);
  EXPECT_EQ(counters.cache_hits, 2u);
}

TEST_F(PaneServerTest, MalformedAndOutOfRangeRequestsGetErrors) {
  serve::ServerOptions options;
  serve::PaneServer::Counters counters;
  const std::string out = Serve(
      "nonsense\nattr 999999 3\npair 0 999999\nattr 0 2\n", options,
      &counters);
  std::istringstream lines(out);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("err ", 0), 0u);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "err node out of range");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "err id out of range");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("attr 0 ok", 0), 0u);
  EXPECT_EQ(counters.errors, 3u);
}

TEST_F(PaneServerTest, QuitStopsTheStream) {
  serve::ServerOptions options;
  const std::string out = Serve("attr 0 1\nquit\nattr 1 1\n", options);
  std::istringstream lines(out);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("attr 0 ok", 0), 0u);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "bye");
  EXPECT_FALSE(std::getline(lines, line));  // nothing served after quit
}

TEST_F(PaneServerTest, PrunedModeServes) {
  serve::QueryEngine engine =
      MakeEngine(TrainedFixture::Get().embedding, EngineOptions());
  serve::IvfOptions ivf;
  ivf.num_clusters = 8;
  PANE_CHECK_OK(engine.BuildPrunedIndex(ivf));
  serve::ServerOptions options;
  options.pruned = true;
  options.nprobe = 8;
  serve::PaneServer server(&engine, options);
  std::istringstream in("attr 2 5\nlink 2 5\nstats\n");
  std::ostringstream out;
  server.ServeStream(in, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("attr 2 ok"), std::string::npos);
  EXPECT_NE(text.find("link 2 ok"), std::string::npos);
  EXPECT_NE(text.find("mode=pruned nprobe=8"), std::string::npos);
}

TEST_F(PaneServerTest, ServesOverTcp) {
  serve::ServerOptions options;
  serve::PaneServer server(&engine_, options);
  auto port = server.ListenTcp(0);
  ASSERT_TRUE(port.ok()) << port.status();
  std::thread acceptor([&server] { server.AcceptLoop(); });

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  const std::string request = "attr 4 3\nquit\n";
  ASSERT_EQ(write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t got = 0;
  while ((got = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(got));
  }
  close(fd);
  server.Shutdown();
  acceptor.join();

  const auto expected_ranking = engine_.TopKAttributes({{4, 3}}, nullptr);
  serve::Request r;
  r.type = serve::Request::Type::kTopKAttributes;
  r.a = 4;
  r.k = 3;
  EXPECT_EQ(response,
            serve::FormatRanking(r, expected_ranking[0]) + "\nbye\n");
}

}  // namespace
}  // namespace pane
