// Tests for the deterministic factorizations: thin QR, one-sided Jacobi
// SVD, symmetric Jacobi eigen, regularized SPD inverse.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/matrix/dense_matrix.h"
#include "src/matrix/gemm.h"
#include "src/matrix/qr.h"
#include "src/matrix/svd.h"

namespace pane {
namespace {

double OrthonormalityError(const DenseMatrix& q) {
  DenseMatrix gram;
  GemmTransA(q, q, &gram);
  gram.Sub(DenseMatrix::Identity(q.cols()));
  return gram.FrobeniusNorm();
}

TEST(ThinQrTest, ReconstructsAndOrthonormal) {
  Rng rng(1);
  DenseMatrix a(50, 8);
  a.FillGaussian(&rng);
  DenseMatrix q, r;
  ASSERT_TRUE(ThinQr(a, &q, &r, &rng).ok());
  EXPECT_LT(OrthonormalityError(q), 1e-12);
  DenseMatrix qr;
  Gemm(q, r, &qr);
  EXPECT_LT(qr.MaxAbsDiff(a), 1e-10);
}

TEST(ThinQrTest, RIsUpperTriangular) {
  Rng rng(2);
  DenseMatrix a(20, 6);
  a.FillGaussian(&rng);
  DenseMatrix q, r;
  ASSERT_TRUE(ThinQr(a, &q, &r, &rng).ok());
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < i; ++j) EXPECT_EQ(r(i, j), 0.0);
  }
}

TEST(ThinQrTest, RankDeficientStillOrthonormal) {
  Rng rng(3);
  DenseMatrix a(30, 5);
  a.FillGaussian(&rng);
  // Make column 3 a copy of column 1 and column 4 zero.
  for (int64_t i = 0; i < 30; ++i) {
    a(i, 3) = a(i, 1);
    a(i, 4) = 0.0;
  }
  DenseMatrix q, r;
  ASSERT_TRUE(ThinQr(a, &q, &r, &rng).ok());
  EXPECT_LT(OrthonormalityError(q), 1e-10);
  EXPECT_EQ(r(3, 3), 0.0);
  EXPECT_EQ(r(4, 4), 0.0);
}

TEST(ThinQrTest, WideInputRejected) {
  DenseMatrix a(3, 5), q, r;
  EXPECT_FALSE(ThinQr(a, &q, &r).ok());
}

TEST(OrthonormalizeColumnsTest, InPlace) {
  Rng rng(4);
  DenseMatrix m(40, 6);
  m.FillGaussian(&rng);
  ASSERT_TRUE(OrthonormalizeColumns(&m, &rng).ok());
  EXPECT_LT(OrthonormalityError(m), 1e-12);
}

TEST(JacobiSvdTest, ReconstructsInput) {
  Rng rng(5);
  DenseMatrix a(40, 7);
  a.FillGaussian(&rng);
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(JacobiSvd(a, &u, &sigma, &v).ok());
  // Rebuild U diag(sigma) V^T.
  DenseMatrix us = u;
  for (int64_t i = 0; i < us.rows(); ++i) {
    for (int64_t j = 0; j < us.cols(); ++j) {
      us(i, j) *= sigma[static_cast<size_t>(j)];
    }
  }
  DenseMatrix rebuilt;
  GemmTransB(us, v, &rebuilt);
  EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-10);
}

TEST(JacobiSvdTest, FactorsOrthonormalAndSigmaSorted) {
  Rng rng(6);
  DenseMatrix a(25, 6);
  a.FillGaussian(&rng);
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(JacobiSvd(a, &u, &sigma, &v).ok());
  EXPECT_LT(OrthonormalityError(u), 1e-10);
  EXPECT_LT(OrthonormalityError(v), 1e-10);
  for (size_t j = 1; j < sigma.size(); ++j) {
    EXPECT_GE(sigma[j - 1], sigma[j] - 1e-12);
  }
  for (double s : sigma) EXPECT_GE(s, 0.0);
}

TEST(JacobiSvdTest, KnownDiagonalCase) {
  DenseMatrix a({{3, 0}, {0, 4}, {0, 0}});
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(JacobiSvd(a, &u, &sigma, &v).ok());
  EXPECT_NEAR(sigma[0], 4.0, 1e-12);
  EXPECT_NEAR(sigma[1], 3.0, 1e-12);
}

TEST(JacobiSvdTest, RankDeficientPadsOrthonormalU) {
  Rng rng(7);
  DenseMatrix a(20, 5);
  a.FillGaussian(&rng);
  for (int64_t i = 0; i < 20; ++i) {
    a(i, 4) = 2.0 * a(i, 0);  // rank 4
  }
  DenseMatrix u, v;
  std::vector<double> sigma;
  ASSERT_TRUE(JacobiSvd(a, &u, &sigma, &v).ok());
  EXPECT_LT(sigma[4], 1e-8);
  EXPECT_LT(OrthonormalityError(u), 1e-6);
}

TEST(JacobiEigenTest, SymmetricReconstruction) {
  Rng rng(8);
  DenseMatrix b(6, 6);
  b.FillGaussian(&rng);
  DenseMatrix s;
  GemmTransA(b, b, &s);  // SPD
  DenseMatrix v;
  std::vector<double> lambda;
  ASSERT_TRUE(JacobiEigenSymmetric(s, &v, &lambda).ok());
  // V diag(lambda) V^T == S
  DenseMatrix vl = v;
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) vl(i, j) *= lambda[static_cast<size_t>(j)];
  }
  DenseMatrix rebuilt;
  GemmTransB(vl, v, &rebuilt);
  EXPECT_LT(rebuilt.MaxAbsDiff(s), 1e-9);
  for (size_t j = 1; j < lambda.size(); ++j) {
    EXPECT_GE(lambda[j - 1], lambda[j] - 1e-12);
  }
}

TEST(JacobiEigenTest, NonSquareRejected) {
  DenseMatrix s(2, 3), v;
  std::vector<double> lambda;
  EXPECT_FALSE(JacobiEigenSymmetric(s, &v, &lambda).ok());
}

TEST(InvertSymmetricPsdTest, InvertsWellConditioned) {
  Rng rng(9);
  DenseMatrix b(5, 5);
  b.FillGaussian(&rng);
  DenseMatrix s;
  GemmTransA(b, b, &s);
  for (int64_t i = 0; i < 5; ++i) s(i, i) += 1.0;  // well-conditioned
  DenseMatrix inv;
  ASSERT_TRUE(InvertSymmetricPsd(s, 1e-9, &inv).ok());
  DenseMatrix prod;
  Gemm(s, inv, &prod);
  prod.Sub(DenseMatrix::Identity(5));
  EXPECT_LT(prod.FrobeniusNorm(), 1e-6);
}

TEST(InvertSymmetricPsdTest, RidgeRegularizesSingular) {
  DenseMatrix s({{1, 0}, {0, 0}});  // singular
  DenseMatrix inv;
  ASSERT_TRUE(InvertSymmetricPsd(s, 0.1, &inv).ok());
  EXPECT_NEAR(inv(1, 1), 10.0, 1e-9);  // 1 / ridge
  EXPECT_FALSE(InvertSymmetricPsd(s, 0.0, &inv).ok());
}

}  // namespace
}  // namespace pane
