// Tests for the task harnesses: attribute / edge splitting invariants, the
// linear SVM, and the node-classification protocol.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/random.h"
#include "src/tasks/attribute_inference.h"
#include "src/tasks/link_prediction.h"
#include "src/tasks/node_classification.h"
#include "test_util.h"

namespace pane {
namespace {

TEST(SplitAttributesTest, CountsAndDisjointness) {
  const AttributedGraph g = testing::SmallSbm(71, 400);
  const auto split = SplitAttributes(g, 0.2, /*seed=*/5).ValueOrDie();
  const int64_t total = g.num_attribute_entries();
  const int64_t test_count = static_cast<int64_t>(split.test_positives.size());
  EXPECT_NEAR(static_cast<double>(test_count), 0.2 * total, 2.0);
  EXPECT_EQ(split.train_graph.num_attribute_entries(), total - test_count);
  EXPECT_EQ(split.test_negatives.size(), split.test_positives.size());
  // Topology unchanged.
  EXPECT_EQ(split.train_graph.num_edges(), g.num_edges());

  // Held-out positives are absent from the training matrix; negatives are
  // absent from the *full* matrix.
  for (const auto& [v, r] : split.test_positives) {
    EXPECT_EQ(split.train_graph.attributes().At(v, r), 0.0);
    EXPECT_GT(g.attributes().At(v, r), 0.0);
  }
  for (const auto& [v, r] : split.test_negatives) {
    EXPECT_EQ(g.attributes().At(v, r), 0.0);
  }
}

TEST(SplitAttributesTest, InvalidFraction) {
  const AttributedGraph g = testing::Figure1Graph();
  EXPECT_FALSE(SplitAttributes(g, 0.0, 1).ok());
  EXPECT_FALSE(SplitAttributes(g, 1.0, 1).ok());
}

TEST(SplitAttributesTest, PerfectScorerGetsAucOne) {
  const AttributedGraph g = testing::SmallSbm(72, 200);
  const auto split = SplitAttributes(g, 0.2, 6).ValueOrDie();
  // Oracle scorer: looks up the full matrix.
  const AucAp result = EvaluateAttributeInference(
      split,
      [&](int64_t v, int64_t r) { return g.attributes().At(v, r); });
  EXPECT_DOUBLE_EQ(result.auc, 1.0);
}

TEST(SplitEdgesTest, CountsAndResidual) {
  const AttributedGraph g = testing::SmallSbm(73, 400);
  const auto split = SplitEdges(g, 0.3, /*seed=*/7).ValueOrDie();
  const int64_t held = static_cast<int64_t>(split.test_positives.size());
  EXPECT_NEAR(static_cast<double>(held), 0.3 * g.num_edges(), 2.0);
  EXPECT_EQ(split.residual_graph.num_edges(), g.num_edges() - held);
  // Attributes and labels untouched.
  EXPECT_EQ(split.residual_graph.num_attribute_entries(),
            g.num_attribute_entries());
  EXPECT_EQ(split.residual_graph.num_label_classes(), g.num_label_classes());
  // Negatives are real non-edges.
  for (const auto& [u, v] : split.test_negatives) {
    EXPECT_EQ(g.adjacency().At(u, v), 0.0);
  }
  // Positives absent from the residual graph.
  for (const auto& [u, v] : split.test_positives) {
    EXPECT_EQ(split.residual_graph.adjacency().At(u, v), 0.0);
  }
}

TEST(SplitEdgesTest, UndirectedKeepsPairsTogether) {
  const AttributedGraph g = testing::SmallSbm(74, 300, /*undirected=*/true);
  const auto split = SplitEdges(g, 0.3, 8).ValueOrDie();
  // Residual must remain symmetric.
  const DenseMatrix a = split.residual_graph.adjacency().ToDense();
  for (int64_t i = 0; i < 60; ++i) {
    for (int64_t j = 0; j < 60; ++j) EXPECT_EQ(a(i, j), a(j, i));
  }
  // Removed pairs are gone in both directions.
  for (const auto& [u, v] : split.test_positives) {
    EXPECT_EQ(split.residual_graph.adjacency().At(u, v), 0.0);
    EXPECT_EQ(split.residual_graph.adjacency().At(v, u), 0.0);
  }
}

TEST(BaselineScorersTest, Conventions) {
  DenseMatrix e({{1.0, 0.0}, {2.0, 0.0}, {-1.0, 0.0}, {0.0, 3.0}});
  EXPECT_DOUBLE_EQ(InnerProductScore(e, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(CosineScore(e, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(CosineScore(e, 0, 2), -1.0);
  EXPECT_DOUBLE_EQ(CosineScore(e, 0, 3), 0.0);
  // Hamming: sign patterns (+,+) vs (+,+) = 0 mismatches for rows 0,1.
  EXPECT_DOUBLE_EQ(HammingScore(e, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(HammingScore(e, 0, 2), -1.0);
  EXPECT_DOUBLE_EQ(EdgeFeatureScore(e, {1.0, 1.0}, 0, 1), 2.0);
}

TEST(LinearSvmTest, SeparablePerfect) {
  // y = +1 iff x0 > x1.
  DenseMatrix features({{2, 0}, {3, 1}, {5, 2}, {0, 2}, {1, 3}, {2, 5}});
  std::vector<int> labels = {1, 1, 1, -1, -1, -1};
  std::vector<int64_t> rows = {0, 1, 2, 3, 4, 5};
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(features, labels, rows).ok());
  for (int64_t i = 0; i < 6; ++i) {
    const double decision = svm.Decision(features.Row(i));
    EXPECT_GT(decision * labels[static_cast<size_t>(i)], 0.0) << "row " << i;
  }
}

TEST(LinearSvmTest, BiasHandlesOffsetData) {
  // Both classes have positive coordinates; only the bias separates them.
  DenseMatrix features({{5.0}, {6.0}, {7.0}, {1.0}, {2.0}, {3.0}});
  std::vector<int> labels = {1, 1, 1, -1, -1, -1};
  std::vector<int64_t> rows = {0, 1, 2, 3, 4, 5};
  LinearSvm svm;
  ASSERT_TRUE(svm.Train(features, labels, rows).ok());
  EXPECT_GT(svm.Decision(features.Row(0)), 0.0);
  EXPECT_LT(svm.Decision(features.Row(3)), 0.0);
}

TEST(LinearSvmTest, EmptyTrainingRejected) {
  DenseMatrix features(3, 2);
  LinearSvm svm;
  EXPECT_FALSE(svm.Train(features, {}, {}).ok());
}

TEST(ConcatNormalizedEmbeddingsTest, UnitHalves) {
  DenseMatrix xf({{3, 4}}), xb({{0, 5}});
  const DenseMatrix features = ConcatNormalizedEmbeddings(xf, xb);
  EXPECT_EQ(features.cols(), 4);
  EXPECT_NEAR(features(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(features(0, 1), 0.8, 1e-12);
  EXPECT_NEAR(features(0, 3), 1.0, 1e-12);
}

TEST(NodeClassificationTest, EasyFeaturesHighF1) {
  // Features = one-hot of the community -> near-perfect classification.
  const AttributedGraph g = testing::SmallSbm(75, 300);
  DenseMatrix features(g.num_nodes(), g.num_label_classes());
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    features(v, g.labels()[static_cast<size_t>(v)][0]) = 1.0;
  }
  NodeClassificationOptions options;
  options.train_fraction = 0.5;
  options.repeats = 2;
  const F1Scores f1 =
      EvaluateNodeClassification(features, g, options).ValueOrDie();
  EXPECT_GT(f1.micro, 0.95);
  EXPECT_GT(f1.macro, 0.95);
}

TEST(NodeClassificationTest, RandomFeaturesNearChance) {
  const AttributedGraph g = testing::SmallSbm(76, 300);
  Rng rng(9);
  DenseMatrix features(g.num_nodes(), 8);
  features.FillGaussian(&rng);
  NodeClassificationOptions options;
  options.train_fraction = 0.5;
  options.repeats = 2;
  const F1Scores f1 =
      EvaluateNodeClassification(features, g, options).ValueOrDie();
  EXPECT_LT(f1.micro, 0.45);  // 4 balanced classes -> chance ~0.25
}

TEST(NodeClassificationTest, Validation) {
  const AttributedGraph unlabeled = testing::Figure1Graph();
  DenseMatrix features(6, 2);
  NodeClassificationOptions options;
  // Figure1Graph has no labels here (labels added only in graph_test).
  EXPECT_FALSE(
      EvaluateNodeClassification(features, unlabeled, options).ok());
}

}  // namespace
}  // namespace pane
