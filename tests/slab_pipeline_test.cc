// Whole-pipeline tests for the FactorSlab storage layer: a spill-forced
// Pane::Train must produce bitwise-identical embeddings to the in-RAM and
// unbounded runs on the same seed, spill-mode scratch must respect the
// budget, and spill files must vanish on success and on error paths.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/core/incremental.h"
#include "src/core/pane.h"
#include "test_util.h"

namespace pane {
namespace {

namespace fs = std::filesystem;

// Big enough that a 1 MiB budget spills under the kAuto rule:
// 4 n d doubles = 4 * 500 * 80 * 8 = 1.28 MB > 1 MiB.
constexpr int64_t kNodes = 500;
constexpr int64_t kBudgetMb = 1;

PaneOptions BudgetedOptions(int threads, int64_t budget_mb,
                            SlabPolicy policy) {
  PaneOptions options;
  options.k = 16;
  options.num_threads = threads;
  options.memory_budget_mb = budget_mb;
  options.slab_policy = policy;
  return options;
}

void ExpectBitwiseEqual(const PaneEmbedding& a, const PaneEmbedding& b,
                        const std::string& what) {
  EXPECT_EQ(a.xf.MaxAbsDiff(b.xf), 0.0) << what << ": xf differs";
  EXPECT_EQ(a.xb.MaxAbsDiff(b.xb), 0.0) << what << ": xb differs";
  EXPECT_EQ(a.y.MaxAbsDiff(b.y), 0.0) << what << ": y differs";
}

TEST(SlabPipelineTest, SpillBitwiseIdenticalToInRamAndUnbounded) {
  const AttributedGraph g = testing::SmallSbm(71, kNodes);
  const auto unbounded =
      Pane(BudgetedOptions(3, 0, SlabPolicy::kAuto)).Train(g).ValueOrDie();
  const auto in_ram =
      Pane(BudgetedOptions(3, kBudgetMb, SlabPolicy::kInRam))
          .Train(g)
          .ValueOrDie();
  PaneStats spill_stats;
  const auto spilled =
      Pane(BudgetedOptions(3, kBudgetMb, SlabPolicy::kAuto))
          .Train(g, &spill_stats)
          .ValueOrDie();
  ASSERT_TRUE(spill_stats.slabs_spilled)
      << "budget " << kBudgetMb << " MiB should spill "
      << spill_stats.slab_bytes << " slab bytes";
  ExpectBitwiseEqual(spilled, in_ram, "mmap vs in-RAM at equal budget");
  ExpectBitwiseEqual(spilled, unbounded, "mmap+budget vs unbounded");
}

TEST(SlabPipelineTest, SerialSpillMatchesSerialUnbounded) {
  const AttributedGraph g = testing::SmallSbm(72, kNodes);
  const auto unbounded =
      Pane(BudgetedOptions(1, 0, SlabPolicy::kAuto)).Train(g).ValueOrDie();
  const auto spilled =
      Pane(BudgetedOptions(1, kBudgetMb, SlabPolicy::kMmap))
          .Train(g)
          .ValueOrDie();
  ExpectBitwiseEqual(spilled, unbounded, "serial mmap vs serial unbounded");
}

TEST(SlabPipelineTest, RandomInitSpillMatches) {
  const AttributedGraph g = testing::SmallSbm(73, kNodes);
  PaneOptions base = BudgetedOptions(3, 0, SlabPolicy::kAuto);
  base.greedy_init = false;
  PaneOptions spill = BudgetedOptions(3, kBudgetMb, SlabPolicy::kMmap);
  spill.greedy_init = false;
  const auto unbounded = Pane(base).Train(g).ValueOrDie();
  const auto spilled = Pane(spill).Train(g).ValueOrDie();
  ExpectBitwiseEqual(spilled, unbounded, "PANE-R mmap vs unbounded");
}

TEST(SlabPipelineTest, SpillScratchStaysUnderBudget) {
  const AttributedGraph g = testing::SmallSbm(74, kNodes);
  PaneStats stats;
  ASSERT_TRUE(Pane(BudgetedOptions(3, kBudgetMb, SlabPolicy::kAuto))
                  .Train(g, &stats)
                  .ok());
  const int64_t budget_bytes = kBudgetMb << 20;
  EXPECT_TRUE(stats.slabs_spilled);
  EXPECT_FALSE(stats.affinity.budget_clamped);
  EXPECT_LE(stats.affinity.scratch_bytes, budget_bytes);
  EXPECT_LE(stats.ccd.scratch_bytes, budget_bytes);
  EXPECT_TRUE(stats.affinity.spilled);
}

TEST(SlabPipelineTest, SpillFilesRemovedAfterTraining) {
  const AttributedGraph g = testing::SmallSbm(75, kNodes);
  const fs::path dir =
      fs::temp_directory_path() / "pane_slab_pipeline_cleanup_test";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directory(dir));
  PaneOptions options = BudgetedOptions(3, kBudgetMb, SlabPolicy::kMmap);
  options.spill_dir = dir.string();
  ASSERT_TRUE(Pane(options).Train(g).ok());
  // Every slab (F', B', Sf, Sb) unlinked its spill file on destruction.
  EXPECT_TRUE(fs::is_empty(dir)) << "stray spill files left in " << dir;
  fs::remove_all(dir);
}

TEST(SlabPipelineTest, MissingSpillDirFailsWithoutSideEffects) {
  const AttributedGraph g = testing::SmallSbm(76, 200);
  PaneOptions options = BudgetedOptions(2, kBudgetMb, SlabPolicy::kMmap);
  options.spill_dir = "/nonexistent_pane_spill_dir_for_test";
  const auto result = Pane(options).Train(g);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_FALSE(fs::exists(options.spill_dir));
}

TEST(SlabPipelineTest, DeprecatedAliasFeedsTheBudget) {
  const AttributedGraph g = testing::SmallSbm(77, kNodes);
  PaneOptions alias = BudgetedOptions(3, 0, SlabPolicy::kAuto);
  alias.affinity_memory_mb = kBudgetMb;
  EXPECT_EQ(ResolvedMemoryBudgetMb(alias), kBudgetMb);
  PaneStats stats;
  const auto trained = Pane(alias).Train(g, &stats).ValueOrDie();
  // The alias now drives the whole budget, including the spill decision.
  EXPECT_TRUE(stats.slabs_spilled);
  PaneOptions direct = BudgetedOptions(3, kBudgetMb, SlabPolicy::kAuto);
  const auto expected = Pane(direct).Train(g).ValueOrDie();
  ExpectBitwiseEqual(trained, expected, "alias vs memory_budget_mb");
}

TEST(SlabPipelineTest, RefreshRunsSpilledAndMatchesInRam) {
  const AttributedGraph g = testing::SmallSbm(78, kNodes);
  const auto base =
      Pane(BudgetedOptions(2, 0, SlabPolicy::kAuto)).Train(g).ValueOrDie();
  RefreshOptions in_ram;
  in_ram.num_threads = 2;
  RefreshOptions spill = in_ram;
  spill.memory_budget_mb = kBudgetMb;
  spill.slab_policy = SlabPolicy::kMmap;
  RefreshStats spill_stats;
  const auto refreshed_ram =
      RefreshEmbedding(g, base, in_ram).ValueOrDie();
  const auto refreshed_spill =
      RefreshEmbedding(g, base, spill, &spill_stats).ValueOrDie();
  EXPECT_TRUE(spill_stats.slabs_spilled);
  ExpectBitwiseEqual(refreshed_spill, refreshed_ram,
                     "refresh mmap vs in-RAM");
}

}  // namespace
}  // namespace pane
