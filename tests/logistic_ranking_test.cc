// Tests for logistic regression, the edge-feature scoring convention, and
// the top-k retrieval helpers.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/pane.h"
#include "src/tasks/link_prediction.h"
#include "src/tasks/logistic.h"
#include "src/tasks/node_classification.h"
#include "src/tasks/ranking.h"
#include "test_util.h"

namespace pane {
namespace {

TEST(LogisticRegressionTest, SeparableData) {
  DenseMatrix features({{2, 0}, {3, 1}, {4, 0}, {0, 2}, {1, 3}, {0, 4}});
  std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  LogisticRegression model;
  ASSERT_TRUE(model.Train(features, labels).ok());
  for (int64_t i = 0; i < 6; ++i) {
    const double p = model.Predict(features.Row(i));
    if (labels[static_cast<size_t>(i)] == 1) {
      EXPECT_GT(p, 0.5) << "row " << i;
    } else {
      EXPECT_LT(p, 0.5) << "row " << i;
    }
  }
}

TEST(LogisticRegressionTest, ProbabilitiesInUnitInterval) {
  Rng rng(1);
  DenseMatrix features(50, 4);
  features.FillGaussian(&rng);
  std::vector<int> labels(50);
  for (size_t i = 0; i < 50; ++i) labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  LogisticRegression model;
  ASSERT_TRUE(model.Train(features, labels).ok());
  for (int64_t i = 0; i < 50; ++i) {
    const double p = model.Predict(features.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, Validation) {
  LogisticRegression model;
  DenseMatrix features(3, 2);
  EXPECT_FALSE(model.Train(features, {1, 0}).ok());  // size mismatch
  DenseMatrix empty(0, 2);
  EXPECT_FALSE(model.Train(empty, {}).ok());
}

TEST(EdgeFeatureTrainingTest, ImprovesLinkPredictionOverUntrained) {
  const AttributedGraph g = testing::SmallSbm(151, 400);
  const auto split = SplitEdges(g, 0.3, /*seed=*/7).ValueOrDie();
  PaneOptions options;
  options.k = 32;
  const auto embedding =
      Pane(options).Train(split.residual_graph).ValueOrDie();
  const DenseMatrix features =
      ConcatNormalizedEmbeddings(embedding.xf, embedding.xb);

  // Train weights on the residual graph's own edges + fresh negatives.
  std::vector<std::pair<int64_t, int64_t>> train_pos;
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    const auto row = split.residual_graph.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) train_pos.emplace_back(u, row.cols[p]);
  }
  Rng rng(9);
  std::vector<std::pair<int64_t, int64_t>> train_neg;
  while (train_neg.size() < train_pos.size()) {
    const auto u = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(g.num_nodes())));
    const auto v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(g.num_nodes())));
    if (u != v && g.adjacency().At(u, v) == 0.0) train_neg.emplace_back(u, v);
  }
  const auto weights =
      TrainEdgeFeatureWeights(features, train_pos, train_neg).ValueOrDie();

  const AucAp trained =
      EvaluateLinkPrediction(split, [&](int64_t u, int64_t v) {
        return EdgeFeatureScore(features, weights, u, v);
      });
  // Untrained (all-ones) weights = plain Hadamard sum.
  const std::vector<double> ones(static_cast<size_t>(features.cols()), 1.0);
  const AucAp untrained =
      EvaluateLinkPrediction(split, [&](int64_t u, int64_t v) {
        return EdgeFeatureScore(features, ones, u, v);
      });
  EXPECT_GT(trained.auc, 0.6);
  EXPECT_GE(trained.auc, untrained.auc - 0.02);
}

TEST(TopKAttributesTest, RanksOwnedAttributesHighly) {
  const AttributedGraph g = testing::SmallSbm(152, 300);
  PaneOptions options;
  options.k = 32;
  const auto embedding = Pane(options).Train(g).ValueOrDie();
  // For most nodes, the #1 unexcluded attribute should come from the
  // node's own community block (homophilous construction).
  const int64_t d = g.num_attributes();
  const int32_t c = g.num_label_classes();
  int64_t in_block = 0;
  const int64_t checked = 50;
  for (int64_t v = 0; v < checked; ++v) {
    const Ranking top = TopKAttributes(embedding, v, 1);
    ASSERT_EQ(top.size(), 1u);
    const int32_t cv = g.labels()[static_cast<size_t>(v)][0];
    if (top[0].first >= cv * d / c && top[0].first < (cv + 1) * d / c) {
      ++in_block;
    }
  }
  EXPECT_GT(in_block, checked * 6 / 10);
}

TEST(TopKAttributesTest, ExcludeSkipsExisting) {
  const AttributedGraph g = testing::SmallSbm(153, 200);
  PaneOptions options;
  options.k = 16;
  const auto embedding = Pane(options).Train(g).ValueOrDie();
  const Ranking top = TopKAttributes(embedding, 0, 10, &g);
  for (const auto& [attr, score] : top) {
    EXPECT_EQ(g.attributes().At(0, attr), 0.0) << "attr " << attr;
  }
}

TEST(TopKTargetsTest, SortedAndExcludesSelfAndEdges) {
  const AttributedGraph g = testing::SmallSbm(154, 200);
  PaneOptions options;
  options.k = 16;
  const auto embedding = Pane(options).Train(g).ValueOrDie();
  const EdgeScorer scorer(embedding);
  const Ranking top = TopKTargets(embedding, scorer, 0, 10, &g);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  for (const auto& [v, score] : top) {
    EXPECT_NE(v, 0);
    EXPECT_EQ(g.adjacency().At(0, v), 0.0);
  }
}

TEST(TopKTargetsTest, KLargerThanCandidates) {
  const AttributedGraph g = testing::Figure1Graph();
  PaneOptions options;
  options.k = 4;
  const auto embedding = Pane(options).Train(g).ValueOrDie();
  const EdgeScorer scorer(embedding);
  const Ranking top = TopKTargets(embedding, scorer, 0, 100);
  EXPECT_EQ(top.size(), 5u);  // n - 1 candidates
}

}  // namespace
}  // namespace pane
