// Tests for the length-prefixed binary frame codec: exact wire bytes,
// round-trips for every request type, hostile-input rejection (garbage
// magic, zero / oversized / saturated length fields, wrong version,
// truncation at every byte boundary), byte-at-a-time reassembly across
// simulated epoll wakeups, codec auto-detection from the first byte, and
// frame-vs-line conversation equality through a real PaneServer.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/matrix/dense_matrix.h"
#include "src/serve/frame_protocol.h"
#include "src/serve/line_protocol.h"
#include "src/serve/protocol.h"
#include "src/serve/query_engine.h"
#include "src/serve/server.h"

namespace pane {
namespace {

using serve::FrameCodec;
using serve::ProtocolCodec;

std::string Frame(const std::string& payload) {
  std::string out;
  serve::AppendFrame(payload, &out);
  return out;
}

/// Decodes every complete frame in `wire` into *payloads, failing the test
/// on a framing error.
void DecodeAll(const std::string& wire, std::vector<std::string>* payloads) {
  FrameCodec codec;
  payloads->clear();
  size_t pos = 0;
  while (true) {
    std::string_view payload;
    std::string error;
    const auto decoded = codec.Decode(wire, &pos, &payload, &error);
    if (decoded == ProtocolCodec::Decoded::kNeedMore) break;
    ASSERT_EQ(decoded, ProtocolCodec::Decoded::kMessage) << error;
    payloads->emplace_back(payload);
  }
  EXPECT_EQ(pos, wire.size()) << "trailing partial frame";
}

TEST(FrameCodecTest, WireBytesAreExactlyAsDocumented) {
  const std::string wire = Frame("stats");
  ASSERT_EQ(wire.size(), serve::kFrameHeaderSize + 5);
  const auto* bytes = reinterpret_cast<const unsigned char*>(wire.data());
  EXPECT_EQ(bytes[0], serve::kFrameMagic);
  EXPECT_EQ(bytes[1], 'P');
  EXPECT_EQ(bytes[2], 'F');
  EXPECT_EQ(bytes[3], serve::kFrameVersion);
  EXPECT_EQ(bytes[4], 5u);  // length, little-endian
  EXPECT_EQ(bytes[5], 0u);
  EXPECT_EQ(bytes[6], 0u);
  EXPECT_EQ(bytes[7], 0u);
  EXPECT_EQ(wire.substr(serve::kFrameHeaderSize), "stats");
}

TEST(FrameCodecTest, RoundTripsEveryRequestType) {
  const std::vector<std::string> requests = {"attr 3 5", "link 3 5",
                                             "pattr 0 1", "pair 0 1",
                                             "stats",    "quit"};
  std::string wire;
  for (const std::string& r : requests) wire += Frame(r);
  std::vector<std::string> decoded;
  ASSERT_NO_FATAL_FAILURE(DecodeAll(wire, &decoded));
  EXPECT_EQ(decoded, requests);
  // Every round-tripped payload still parses as the request it was.
  for (const std::string& r : requests) {
    EXPECT_TRUE(serve::ParseRequestLine(r).ok()) << r;
  }
}

TEST(FrameCodecTest, TruncationAtEveryBoundaryNeedsMoreNeverErrs) {
  const std::string wire = Frame("attr 3 5");
  FrameCodec codec;
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    const std::string prefix = wire.substr(0, cut);
    size_t pos = 0;
    std::string_view payload;
    std::string error;
    // Every proper prefix of a valid frame is just an incomplete frame:
    // kNeedMore with pos untouched, never an error, never a message.
    EXPECT_EQ(codec.Decode(prefix, &pos, &payload, &error),
              ProtocolCodec::Decoded::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(pos, 0u);
    if (cut > 0) {
      // ...but at end of input it is a framing error, not a request.
      EXPECT_FALSE(codec.DecodeFinal(prefix, &payload, &error));
      EXPECT_NE(error.find("truncated"), std::string::npos);
    }
  }
}

TEST(FrameCodecTest, GarbageMagicIsRejectedFromTheFirstWrongByte) {
  FrameCodec codec;
  // A line-protocol stream fed to a pinned frame codec: wrong magic.
  for (const std::string& wire :
       {std::string("attr 3 5\n"), std::string(1, '\0'),
        std::string({static_cast<char>(serve::kFrameMagic), 'X'}),
        std::string({static_cast<char>(serve::kFrameMagic), 'P', 'X'})}) {
    size_t pos = 0;
    std::string_view payload;
    std::string error;
    EXPECT_EQ(codec.Decode(wire, &pos, &payload, &error),
              ProtocolCodec::Decoded::kError);
    EXPECT_EQ(error, "bad frame magic");
  }
}

TEST(FrameCodecTest, WrongVersionIsRejected) {
  std::string wire = Frame("stats");
  wire[3] = 0x02;
  size_t pos = 0;
  std::string_view payload;
  std::string error;
  FrameCodec codec;
  EXPECT_EQ(codec.Decode(wire, &pos, &payload, &error),
            ProtocolCodec::Decoded::kError);
  EXPECT_NE(error.find("unsupported frame version 2"), std::string::npos);
}

TEST(FrameCodecTest, HostileLengthFieldsAreRejectedBeforeAllocation) {
  FrameCodec codec;
  const auto with_length = [](uint32_t length) {
    std::string wire = Frame("x");
    wire[4] = static_cast<char>(length & 0xFF);
    wire[5] = static_cast<char>((length >> 8) & 0xFF);
    wire[6] = static_cast<char>((length >> 16) & 0xFF);
    wire[7] = static_cast<char>((length >> 24) & 0xFF);
    return wire;
  };
  {
    size_t pos = 0;
    std::string_view payload;
    std::string error;
    EXPECT_EQ(codec.Decode(with_length(0), &pos, &payload, &error),
              ProtocolCodec::Decoded::kError);
    EXPECT_EQ(error, "zero-length frame");
  }
  for (const uint32_t hostile :
       {static_cast<uint32_t>(serve::kMaxFramePayload + 1), 0xFFFFFFFFu}) {
    size_t pos = 0;
    std::string_view payload;
    std::string error;
    // Only 9 bytes are buffered; a decoder that trusted the length and
    // waited for 4 GiB (or allocated for it) would hang or blow up here.
    EXPECT_EQ(codec.Decode(with_length(hostile), &pos, &payload, &error),
              ProtocolCodec::Decoded::kError)
        << hostile;
    EXPECT_NE(error.find("oversized frame length"), std::string::npos);
  }
}

TEST(FrameCodecTest, ByteAtATimeReassemblyAcrossWakeups) {
  const std::vector<std::string> requests = {"attr 1 3", "pair 0 1", "stats"};
  std::string wire;
  for (const std::string& r : requests) wire += Frame(r);

  // Simulate the session's buffer discipline over single-byte reads: append
  // one byte, decode what is complete, erase the consumed prefix.
  FrameCodec codec;
  std::string buffer;
  std::vector<std::string> decoded;
  for (const char byte : wire) {
    buffer.push_back(byte);
    size_t pos = 0;
    while (true) {
      std::string_view payload;
      std::string error;
      const auto result = codec.Decode(buffer, &pos, &payload, &error);
      if (result != ProtocolCodec::Decoded::kMessage) {
        ASSERT_EQ(result, ProtocolCodec::Decoded::kNeedMore) << error;
        break;
      }
      decoded.emplace_back(payload);
    }
    buffer.erase(0, pos);
  }
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(decoded, requests);
}

TEST(FrameCodecTest, AutoDetectionPicksCodecFromFirstByte) {
  EXPECT_STREQ(
      serve::MakeCodec(serve::Protocol::kAuto, serve::kFrameMagic)->name(),
      "frame");
  EXPECT_STREQ(serve::MakeCodec(serve::Protocol::kAuto, 'a')->name(), "line");
  // Pinning overrides sniffing in both directions.
  EXPECT_STREQ(serve::MakeCodec(serve::Protocol::kLine, serve::kFrameMagic)
                   ->name(),
               "line");
  EXPECT_STREQ(serve::MakeCodec(serve::Protocol::kFrame, 'a')->name(),
               "frame");
}

TEST(ProtocolNameTest, ParsesAndPrints) {
  serve::Protocol protocol = serve::Protocol::kAuto;
  EXPECT_TRUE(serve::ParseProtocolName("line", &protocol));
  EXPECT_EQ(protocol, serve::Protocol::kLine);
  EXPECT_TRUE(serve::ParseProtocolName("frame", &protocol));
  EXPECT_EQ(protocol, serve::Protocol::kFrame);
  EXPECT_TRUE(serve::ParseProtocolName("auto", &protocol));
  EXPECT_EQ(protocol, serve::Protocol::kAuto);
  EXPECT_FALSE(serve::ParseProtocolName("http", &protocol));
  EXPECT_STREQ(serve::ProtocolName(serve::Protocol::kFrame), "frame");
}

// ---- Frame conversations through a real server --------------------------

/// Tiny hand-built factors: enough for the server to answer every request
/// type, with no training involved.
serve::QueryEngine SmallEngine() {
  static const DenseMatrix xf{{0.5, 0.1}, {0.2, 0.7}, {0.9, 0.3},
                              {0.4, 0.4}, {0.1, 0.8}, {0.6, 0.2}};
  static const DenseMatrix xb{{0.3, 0.6}, {0.8, 0.1}, {0.2, 0.5},
                              {0.7, 0.2}, {0.5, 0.9}, {0.1, 0.4}};
  static const DenseMatrix y{{0.4, 0.9}, {0.6, 0.3}, {0.2, 0.8}, {0.7, 0.5}};
  auto engine = serve::QueryEngine::Create(xf.View(), xb.View(), y.View(),
                                           ConstMatrixView(), {});
  EXPECT_TRUE(engine.ok()) << engine.status();
  return engine.MoveValueUnsafe();
}

std::string ServeWire(const serve::QueryEngine& engine,
                      const std::string& wire, serve::Protocol protocol,
                      serve::PaneServer::Counters* counters = nullptr) {
  serve::ServerOptions options;
  options.protocol = protocol;
  serve::PaneServer server(&engine, options);
  std::istringstream in(wire);
  std::ostringstream out;
  server.ServeStream(in, out);
  if (counters != nullptr) *counters = server.counters();
  return out.str();
}

TEST(FrameServingTest, FrameAndLineConversationsDecodeIdentically) {
  const serve::QueryEngine engine = SmallEngine();
  const std::vector<std::string> requests = {
      "attr 2 3", "link 2 3", "pattr 1 2", "pair 0 5",
      "attr 99 3",  // out of range: errors must frame too
      "quit"};
  std::string line_wire, frame_wire;
  for (const std::string& r : requests) {
    line_wire += r + "\n";
    frame_wire += Frame(r);
  }

  const std::string line_out =
      ServeWire(engine, line_wire, serve::Protocol::kAuto);
  serve::PaneServer::Counters counters;
  const std::string frame_out =
      ServeWire(engine, frame_wire, serve::Protocol::kAuto, &counters);

  // Line responses, stripped of their framing ('\n'), must equal frame
  // payloads, stripped of theirs.
  std::vector<std::string> line_payloads;
  std::istringstream lines(line_out);
  std::string line;
  while (std::getline(lines, line)) line_payloads.push_back(line);
  std::vector<std::string> frame_payloads;
  ASSERT_NO_FATAL_FAILURE(DecodeAll(frame_out, &frame_payloads));
  EXPECT_EQ(frame_payloads, line_payloads);
  EXPECT_EQ(frame_payloads.back(), "bye");
  // Auto-detection picked the frame codec and counted the decoded frames.
  EXPECT_EQ(counters.frames, requests.size());
}

TEST(FrameServingTest, PinnedLineCodecTreatsFrameBytesAsGarbageText) {
  const serve::QueryEngine engine = SmallEngine();
  // Frame bytes contain no '\n', so a pinned line codec answers the whole
  // stream as one trailing malformed request at EOF.
  const std::string out =
      ServeWire(engine, Frame("attr 2 3"), serve::Protocol::kLine);
  EXPECT_EQ(out.rfind("err ", 0), 0u) << out;
}

TEST(FrameServingTest, FramingErrorAnswersDecodedRequestsThenCloses) {
  const serve::QueryEngine engine = SmallEngine();
  serve::PaneServer::Counters counters;
  std::string wire = Frame("attr 2 3");
  wire += "garbage that is not a frame header";
  const std::string out =
      ServeWire(engine, wire, serve::Protocol::kAuto, &counters);
  std::vector<std::string> payloads;
  ASSERT_NO_FATAL_FAILURE(DecodeAll(out, &payloads));
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0].rfind("attr 2 ok", 0), 0u);
  EXPECT_EQ(payloads[1], "err bad frame magic");
  EXPECT_EQ(counters.errors, 1u);
  EXPECT_EQ(counters.requests, 1u);
}

TEST(FrameServingTest, TruncatedFinalFrameIsAnErrorNotARequest) {
  const serve::QueryEngine engine = SmallEngine();
  std::string wire = Frame("attr 2 3");
  const std::string full = Frame("pair 0 1");
  wire += full.substr(0, full.size() - 3);  // cut mid-payload
  const std::string out = ServeWire(engine, wire, serve::Protocol::kAuto);
  std::vector<std::string> payloads;
  ASSERT_NO_FATAL_FAILURE(DecodeAll(out, &payloads));
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0].rfind("attr 2 ok", 0), 0u);
  EXPECT_EQ(payloads[1], "err truncated frame at end of input");
}

}  // namespace
}  // namespace pane
