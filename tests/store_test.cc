// Tests for the artifact container stack: CRC32C, crash-safe file commit,
// container round trips, and the corruption sweeps (every flipped byte and
// every truncation point must surface as a Status, with data-page damage
// reported as a checksum mismatch).
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/atomic_file.h"
#include "src/store/container.h"
#include "src/store/crc32c.h"
#include "src/store/page.h"

namespace pane {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes the superblock CRC after a deliberate header edit (the
/// version- and page-size-rejection tests need a structurally valid page 0).
void ResignSuperblock(std::string* bytes, uint32_t page_size) {
  SuperblockHeader header;
  std::memcpy(&header, bytes->data(), sizeof(header));
  header.crc = 0;
  std::memcpy(bytes->data(), &header, sizeof(header));
  const uint32_t crc = Crc32c(bytes->data(), page_size);
  std::memcpy(bytes->data() + offsetof(SuperblockHeader, crc), &crc,
              sizeof(crc));
}

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC32C check value (RFC 3720 appendix / every
  // implementation's self-test vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const std::string data =
      "chained checksums must equal the one-shot result for any split";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t head = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32c(data.data() + split, data.size() - split, head), whole)
        << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryByte) {
  std::string data(64, '\x5a');
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32c(data.data(), data.size()), clean) << "byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(AtomicFileTest, WriteIsAtomicAndLeavesNoTemp) {
  const std::string path = TempPath("pane_atomic_test.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "first contents").ok());
  EXPECT_EQ(ReadFileBytes(path), "first contents");
  // Overwrite: the new bytes replace the old ones in one rename.
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(ReadFileBytes(path), "second");
  // No stray temp siblings.
  const std::string stem =
      std::filesystem::path(path).filename().string() + ".tmp.";
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::temp_directory_path())) {
    EXPECT_EQ(entry.path().filename().string().rfind(stem, 0),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, AbandonedTempIsUnlinked) {
  const std::string path = TempPath("pane_atomic_abandon.bin");
  {
    auto file = AtomicFile::Create(path);
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(file->Append("doomed", 6).ok());
    // Destructor without Commit: the temp must vanish, the target must not
    // appear.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ContainerWriterTest, RejectsBadStreams) {
  ContainerWriter writer;
  double x = 1.0;
  EXPECT_TRUE(writer.AddStream("", PageType::kMeta, &x, 8).IsInvalidArgument());
  EXPECT_TRUE(writer
                  .AddStream(std::string(kMaxStreamNameLength + 1, 'a'),
                             PageType::kMeta, &x, 8)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      writer.AddStream("sb", PageType::kSuperblock, &x, 8).IsInvalidArgument());
  EXPECT_TRUE(writer.AddStream("neg", PageType::kMeta, &x, -1)
                  .IsInvalidArgument());
  EXPECT_TRUE(writer.AddStream("null", PageType::kMeta, nullptr, 8)
                  .IsInvalidArgument());
  ASSERT_TRUE(writer.AddStream("ok", PageType::kMeta, &x, 8).ok());
  EXPECT_EQ(writer.AddStream("ok", PageType::kMeta, &x, 8).code(),
            StatusCode::kAlreadyExists);
  // A 31-character name (the maximum) is legal.
  EXPECT_TRUE(writer
                  .AddStream(std::string(kMaxStreamNameLength, 'n'),
                             PageType::kMeta, &x, 8)
                  .ok());
}

/// Builds the sweep fixture: page_size 4096, one stream of every data page
/// type, sized to cover 0-byte, sub-page, exact-page and multi-page extents.
struct Fixture {
  std::string meta = "meta-record";                  // sub-page kMeta
  std::vector<int64_t> csr = [] {                    // exactly one page
    std::vector<int64_t> v(4096 / sizeof(int64_t));
    for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i * 3);
    return v;
  }();
  std::vector<double> factors = [] {                 // multi-page
    std::vector<double> v(700);
    for (size_t i = 0; i < v.size(); ++i) v[i] = 0.25 * static_cast<double>(i);
    return v;
  }();
  std::vector<float> ivf = [] {                      // sub-page kIvfList
    std::vector<float> v(50);
    for (size_t i = 0; i < v.size(); ++i) v[i] = 1.5f * static_cast<float>(i);
    return v;
  }();

  Status WriteTo(const std::string& path) const {
    ContainerWriter writer(/*page_size=*/4096);
    PANE_RETURN_NOT_OK(writer.AddStream("fix.meta", PageType::kMeta,
                                        meta.data(),
                                        static_cast<int64_t>(meta.size())));
    PANE_RETURN_NOT_OK(
        writer.AddStream("fix.empty", PageType::kMeta, nullptr, 0));
    PANE_RETURN_NOT_OK(writer.AddStream(
        "fix.csr", PageType::kGraphCsr, csr.data(),
        static_cast<int64_t>(csr.size() * sizeof(int64_t))));
    PANE_RETURN_NOT_OK(writer.AddStream(
        "fix.factors", PageType::kFactorMatrix, factors.data(),
        static_cast<int64_t>(factors.size() * sizeof(double))));
    PANE_RETURN_NOT_OK(
        writer.AddStream("fix.ivf", PageType::kIvfList, ivf.data(),
                         static_cast<int64_t>(ivf.size() * sizeof(float))));
    return writer.WriteTo(path);
  }
};

TEST(ContainerTest, RoundTripAllStreamShapes) {
  const std::string path = TempPath("pane_container_roundtrip.ctn");
  Fixture fix;
  ASSERT_TRUE(fix.WriteTo(path).ok());

  auto opened = Container::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  const Container& c = *opened;
  EXPECT_EQ(c.page_size(), 4096u);
  EXPECT_EQ(c.streams().size(), 5u);
  EXPECT_TRUE(c.VerifyAll().ok());

  auto meta = c.Read("fix.meta");
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_EQ(std::string(meta->data, static_cast<size_t>(meta->bytes)),
            fix.meta);
  EXPECT_EQ(meta->type, PageType::kMeta);
  // Payloads are page-aligned in the mapping (the zero-copy guarantee).
  EXPECT_EQ(reinterpret_cast<uintptr_t>(meta->data) % 4096, 0u);

  auto empty = c.Read("fix.empty");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->bytes, 0);

  auto csr = c.ReadArray<int64_t>("fix.csr");
  ASSERT_TRUE(csr.ok()) << csr.status();
  ASSERT_EQ(csr->count, static_cast<int64_t>(fix.csr.size()));
  EXPECT_EQ(std::memcmp(csr->data, fix.csr.data(),
                        fix.csr.size() * sizeof(int64_t)),
            0);

  auto factors = c.ReadArray<double>("fix.factors");
  ASSERT_TRUE(factors.ok()) << factors.status();
  ASSERT_EQ(factors->count, static_cast<int64_t>(fix.factors.size()));
  EXPECT_EQ(std::memcmp(factors->data, fix.factors.data(),
                        fix.factors.size() * sizeof(double)),
            0);
  EXPECT_EQ(factors->type, PageType::kFactorMatrix);

  auto ivf = c.ReadArray<float>("fix.ivf");
  ASSERT_TRUE(ivf.ok()) << ivf.status();
  ASSERT_EQ(ivf->count, static_cast<int64_t>(fix.ivf.size()));
  EXPECT_EQ(
      std::memcmp(ivf->data, fix.ivf.data(), fix.ivf.size() * sizeof(float)),
      0);

  EXPECT_TRUE(c.Read("fix.absent").status().IsNotFound());
  // Payload not a multiple of the element size.
  EXPECT_TRUE(c.ReadArray<double>("fix.meta").status().IsIOError());
  std::filesystem::remove(path);
}

TEST(ContainerTest, RewriteIsBitwiseDeterministic) {
  const std::string a = TempPath("pane_container_det_a.ctn");
  const std::string b = TempPath("pane_container_det_b.ctn");
  Fixture fix;
  ASSERT_TRUE(fix.WriteTo(a).ok());
  ASSERT_TRUE(fix.WriteTo(b).ok());
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b));
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

TEST(ContainerTest, BitFlipSweepDetectsEveryByte) {
  const std::string clean_path = TempPath("pane_container_sweep.ctn");
  const std::string dirty_path = TempPath("pane_container_sweep_dirty.ctn");
  Fixture fix;
  ASSERT_TRUE(fix.WriteTo(clean_path).ok());
  const std::string clean = ReadFileBytes(clean_path);
  // Superblock + table + data pages for every data page type: the fixture
  // spans kMeta, kGraphCsr, kFactorMatrix and kIvfList extents.
  ASSERT_EQ(clean.size() % 4096, 0u);

  // The first 16 bytes are magic/version/page_size, rejected before any
  // checksum can run; everything after them must be caught by a CRC.
  constexpr size_t kPreChecksumBytes = 16;
  std::string dirty = clean;
  for (size_t i = 0; i < clean.size(); ++i) {
    dirty[i] = static_cast<char>(dirty[i] ^ 0xFF);
    WriteFileBytes(dirty_path, dirty);
    auto opened = Container::Open(dirty_path);
    Status failure = Status::OK();
    if (!opened.ok()) {
      failure = opened.status();
    } else {
      failure = opened->VerifyAll();
    }
    ASSERT_FALSE(failure.ok()) << "flipped byte " << i << " went undetected";
    if (i >= kPreChecksumBytes) {
      EXPECT_NE(failure.message().find("checksum"), std::string::npos)
          << "byte " << i << " reported as: " << failure.message();
    }
    dirty[i] = clean[i];
  }
  std::filesystem::remove(clean_path);
  std::filesystem::remove(dirty_path);
}

TEST(ContainerTest, TruncationSweepAlwaysFails) {
  const std::string clean_path = TempPath("pane_container_trunc.ctn");
  const std::string short_path = TempPath("pane_container_trunc_cut.ctn");
  Fixture fix;
  ASSERT_TRUE(fix.WriteTo(clean_path).ok());
  const std::string clean = ReadFileBytes(clean_path);

  // Every page boundary, the bytes just around them, and a few odd cuts.
  std::vector<size_t> cuts = {0, 1, 7, 47, 48, 100, clean.size() - 1};
  for (size_t page_end = 4096; page_end < clean.size(); page_end += 4096) {
    cuts.push_back(page_end - 1);
    cuts.push_back(page_end);
    cuts.push_back(page_end + 1);
  }
  for (size_t cut : cuts) {
    WriteFileBytes(short_path, clean.substr(0, cut));
    auto opened = Container::Open(short_path);
    EXPECT_FALSE(opened.ok()) << "truncation to " << cut << " bytes opened";
  }
  std::filesystem::remove(clean_path);
  std::filesystem::remove(short_path);
}

TEST(ContainerTest, RejectsFutureVersionEvenWithValidCrc) {
  const std::string path = TempPath("pane_container_version.ctn");
  Fixture fix;
  ASSERT_TRUE(fix.WriteTo(path).ok());
  std::string bytes = ReadFileBytes(path);
  const uint32_t future = kFormatVersion + 1;
  std::memcpy(bytes.data() + offsetof(SuperblockHeader, version), &future,
              sizeof(future));
  ResignSuperblock(&bytes, 4096);
  WriteFileBytes(path, bytes);
  const auto opened = Container::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument()) << opened.status();
  EXPECT_NE(opened.status().message().find("version"), std::string::npos)
      << opened.status();
  std::filesystem::remove(path);
}

TEST(ContainerTest, RejectsBadPageSizeEvenWithValidCrc) {
  const std::string path = TempPath("pane_container_pagesize.ctn");
  Fixture fix;
  ASSERT_TRUE(fix.WriteTo(path).ok());
  std::string bytes = ReadFileBytes(path);
  const uint32_t bogus = 4096 + 512;  // not a power of two
  std::memcpy(bytes.data() + offsetof(SuperblockHeader, page_size), &bogus,
              sizeof(bogus));
  ResignSuperblock(&bytes, 4096);
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(Container::Open(path).ok());
  std::filesystem::remove(path);
}

TEST(ContainerTest, MagicProbes) {
  const std::string path = TempPath("pane_container_magic.ctn");
  Fixture fix;
  ASSERT_TRUE(fix.WriteTo(path).ok());
  EXPECT_TRUE(Container::PathIsContainer(path));
  const uint64_t magic = kContainerMagic;
  EXPECT_TRUE(Container::HasContainerMagic(&magic));
  const uint64_t other = 0x50414e454e454231ULL;
  EXPECT_FALSE(Container::HasContainerMagic(&other));
  EXPECT_FALSE(Container::PathIsContainer(path + ".does-not-exist"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace store
}  // namespace pane
