// Tests for PAPMI (Algorithm 6) — most importantly Lemma 4.1: the parallel
// block decomposition returns *the same* F', B' as single-thread APMI. The
// engine preserves per-element summation order, so the equality is checked
// bitwise. Papmi and Apmi now share the affinity engine, so the serial side
// of every comparison is computed with the independent unfused path
// (ApmiProbabilities + SpmiFromProbabilities) to keep the anchor meaningful.
#include "src/core/papmi.h"

#include <gtest/gtest.h>

#include "src/core/affinity.h"
#include "src/core/apmi.h"
#include "src/parallel/thread_pool.h"
#include "test_util.h"

namespace pane {
namespace {

AffinityMatrices RunPapmi(const AttributedGraph& g, double alpha, int t,
                          int nb) {
  const CsrMatrix p = g.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  ThreadPool pool(nb);
  PapmiInputs inputs;
  inputs.p = &p;
  inputs.p_transposed = &pt;
  inputs.r = &g.attributes();
  inputs.alpha = alpha;
  inputs.t = t;
  inputs.pool = &pool;
  return Papmi(inputs).ValueOrDie();
}

AffinityMatrices RunApmiSerial(const AttributedGraph& g, double alpha, int t) {
  const CsrMatrix p = g.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  ApmiInputs inputs;
  inputs.p = &p;
  inputs.p_transposed = &pt;
  inputs.r = &g.attributes();
  inputs.alpha = alpha;
  inputs.t = t;
  // Unfused reference, independent of the panel-streamed engine.
  return SpmiFromProbabilities(ApmiProbabilities(inputs).ValueOrDie());
}

// Lemma 4.1 as a parameterized sweep over the thread count nb.
class PapmiThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(PapmiThreadSweep, Lemma41IdenticalToApmi) {
  const int nb = GetParam();
  const AttributedGraph g = testing::SmallSbm(31, 300);
  const AffinityMatrices serial = RunApmiSerial(g, 0.5, 5);
  const AffinityMatrices parallel = RunPapmi(g, 0.5, 5, nb);
  EXPECT_EQ(serial.forward.MaxAbsDiff(parallel.forward), 0.0) << "nb=" << nb;
  EXPECT_EQ(serial.backward.MaxAbsDiff(parallel.backward), 0.0) << "nb=" << nb;
}

INSTANTIATE_TEST_SUITE_P(ThreadGrid, PapmiThreadSweep,
                         ::testing::Values(2, 3, 5, 8));

TEST(PapmiTest, MoreBlocksThanAttributes) {
  // d = 3 attributes split across 8 workers: most blocks are empty.
  const AttributedGraph g = testing::Figure1Graph();
  const AffinityMatrices serial = RunApmiSerial(g, 0.3, 4);
  const AffinityMatrices parallel = RunPapmi(g, 0.3, 4, 8);
  EXPECT_EQ(serial.forward.MaxAbsDiff(parallel.forward), 0.0);
  EXPECT_EQ(serial.backward.MaxAbsDiff(parallel.backward), 0.0);
}

TEST(PapmiTest, NullPoolFallsBackToApmi) {
  const AttributedGraph g = testing::Figure1Graph();
  const CsrMatrix p = g.RandomWalkMatrix();
  const CsrMatrix pt = p.Transposed();
  PapmiInputs inputs;
  inputs.p = &p;
  inputs.p_transposed = &pt;
  inputs.r = &g.attributes();
  inputs.alpha = 0.5;
  inputs.t = 3;
  inputs.pool = nullptr;
  const auto result = Papmi(inputs);
  ASSERT_TRUE(result.ok());
  const AffinityMatrices serial = RunApmiSerial(g, 0.5, 3);
  EXPECT_EQ(serial.forward.MaxAbsDiff(result->forward), 0.0);
}

TEST(PapmiTest, DifferentAlphaAndT) {
  const AttributedGraph g = testing::SmallSbm(33, 200);
  for (const double alpha : {0.15, 0.7}) {
    for (const int t : {1, 6}) {
      const AffinityMatrices serial = RunApmiSerial(g, alpha, t);
      const AffinityMatrices parallel = RunPapmi(g, alpha, t, 4);
      EXPECT_EQ(serial.forward.MaxAbsDiff(parallel.forward), 0.0)
          << "alpha=" << alpha << " t=" << t;
      EXPECT_EQ(serial.backward.MaxAbsDiff(parallel.backward), 0.0);
    }
  }
}

}  // namespace
}  // namespace pane
