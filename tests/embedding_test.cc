// Tests for the embedding container: scoring formulas (Equations 21-22)
// against naive evaluation, and save/load round-trips.
#include "src/core/embedding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "src/common/random.h"
#include "src/core/pane.h"
#include "src/matrix/vector_ops.h"
#include "test_util.h"

namespace pane {
namespace {

PaneEmbedding RandomEmbedding(int64_t n, int64_t d, int h, uint64_t seed) {
  Rng rng(seed);
  PaneEmbedding e;
  e.xf.Resize(n, h);
  e.xb.Resize(n, h);
  e.y.Resize(d, h);
  e.xf.FillGaussian(&rng);
  e.xb.FillGaussian(&rng);
  e.y.FillGaussian(&rng);
  return e;
}

TEST(EmbeddingTest, AttributeScoreMatchesEquation21) {
  const PaneEmbedding e = RandomEmbedding(10, 6, 4, 1);
  for (int64_t v = 0; v < 10; ++v) {
    for (int64_t r = 0; r < 6; ++r) {
      double expected = 0.0;
      for (int64_t l = 0; l < 4; ++l) {
        expected += e.xf(v, l) * e.y(r, l) + e.xb(v, l) * e.y(r, l);
      }
      EXPECT_NEAR(e.AttributeScore(v, r), expected, 1e-12);
    }
  }
}

TEST(EdgeScorerTest, MatchesEquation22Naive) {
  const PaneEmbedding e = RandomEmbedding(8, 5, 3, 2);
  const EdgeScorer scorer(e);
  for (int64_t u = 0; u < 8; ++u) {
    for (int64_t w = 0; w < 8; ++w) {
      // p(u, w) = sum_r (Xf[u].Y[r]) * (Xb[w].Y[r])
      double expected = 0.0;
      for (int64_t r = 0; r < 5; ++r) {
        const double f = Dot(e.xf.Row(u), e.y.Row(r), 3);
        const double b = Dot(e.xb.Row(w), e.y.Row(r), 3);
        expected += f * b;
      }
      EXPECT_NEAR(scorer.Score(u, w), expected, 1e-10);
    }
  }
}

TEST(EdgeScorerTest, UndirectedIsSymmetricSum) {
  const PaneEmbedding e = RandomEmbedding(6, 4, 2, 3);
  const EdgeScorer scorer(e);
  for (int64_t u = 0; u < 6; ++u) {
    for (int64_t w = 0; w < 6; ++w) {
      EXPECT_NEAR(scorer.ScoreUndirected(u, w),
                  scorer.Score(u, w) + scorer.Score(w, u), 1e-12);
      EXPECT_NEAR(scorer.ScoreUndirected(u, w), scorer.ScoreUndirected(w, u),
                  1e-12);
    }
  }
}

TEST(EdgeScorerTest, OutlivesTheSourceEmbedding) {
  // The scorer owns copies of everything it scores with: destroying the
  // embedding it was built from must not invalidate it.
  auto embedding = std::make_unique<PaneEmbedding>(RandomEmbedding(6, 4, 2, 5));
  const EdgeScorer scorer(*embedding);
  const double before = scorer.Score(1, 2);
  embedding.reset();
  EXPECT_DOUBLE_EQ(scorer.Score(1, 2), before);
  EXPECT_TRUE(std::isfinite(scorer.ScoreUndirected(3, 4)));
}

TEST(EdgeScorerTest, FactorMatrixConstructorMatchesEmbeddingConstructor) {
  const PaneEmbedding e = RandomEmbedding(7, 5, 3, 6);
  const EdgeScorer from_embedding(e);
  const EdgeScorer from_factors(e.xf, e.xb, e.y);
  for (int64_t u = 0; u < 7; ++u) {
    for (int64_t w = 0; w < 7; ++w) {
      EXPECT_DOUBLE_EQ(from_embedding.Score(u, w), from_factors.Score(u, w));
    }
  }
}

class EmbeddingIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("pane_emb_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(EmbeddingIoTest, SaveLoadRoundTrip) {
  const PaneEmbedding e = RandomEmbedding(20, 10, 8, 4);
  ASSERT_TRUE(e.Save(path_).ok());
  const auto loaded = PaneEmbedding::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(e.xf.MaxAbsDiff(loaded->xf), 0.0);
  EXPECT_EQ(e.xb.MaxAbsDiff(loaded->xb), 0.0);
  EXPECT_EQ(e.y.MaxAbsDiff(loaded->y), 0.0);
}

TEST_F(EmbeddingIoTest, TrainedEmbeddingScoresSurviveRoundTrip) {
  const AttributedGraph g = testing::SmallSbm(91, 200);
  PaneOptions options;
  options.k = 16;
  const auto e = Pane(options).Train(g).ValueOrDie();
  ASSERT_TRUE(e.Save(path_).ok());
  const auto loaded = PaneEmbedding::Load(path_).ValueOrDie();
  for (int64_t v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(e.AttributeScore(v, 0), loaded.AttributeScore(v, 0));
  }
}

TEST_F(EmbeddingIoTest, LoadRejectsGarbage) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an embedding", f);
    std::fclose(f);
  }
  EXPECT_FALSE(PaneEmbedding::Load(path_).ok());
}

TEST_F(EmbeddingIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(PaneEmbedding::Load("/nonexistent/file.bin").status().IsIOError());
}

}  // namespace
}  // namespace pane
