// Tests for the pinning buffer pool: residency accounting, budget-driven
// clock eviction, dirty write-back through MAP_SHARED spill files, behavior
// under thread contention, and the end-to-end guarantee the pool exists for
// — training with pooled spill is bitwise identical to flat spill and to the
// all-in-RAM path.
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pane.h"
#include "src/matrix/factor_slab.h"
#include "src/parallel/thread_pool.h"
#include "src/store/buffer_pool.h"
#include "tests/test_util.h"

namespace pane {
namespace store {
namespace {

/// A MAP_SHARED file mapping the tests register with the pool — the same
/// backing FactorSlab spill files use.
class SharedMapping {
 public:
  explicit SharedMapping(int64_t bytes) : bytes_(bytes) {
    char tmpl[] = "/tmp/pane_pool_test.XXXXXX";
    fd_ = mkstemp(tmpl);
    EXPECT_GE(fd_, 0);
    path_ = tmpl;
    EXPECT_EQ(ftruncate(fd_, bytes), 0);
    base_ = static_cast<char*>(mmap(nullptr, static_cast<size_t>(bytes),
                                    PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                                    0));
    EXPECT_NE(base_, MAP_FAILED);
  }

  ~SharedMapping() {
    munmap(base_, static_cast<size_t>(bytes_));
    close(fd_);
    unlink(path_.c_str());
  }

  char* base() const { return base_; }
  int64_t bytes() const { return bytes_; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string path_;
  char* base_ = nullptr;
  int64_t bytes_ = 0;
};

TEST(BufferPoolTest, RegisterRejectsUnalignedBase) {
  BufferPool pool(BufferPool::Options{});
  SharedMapping map(1 << 20);
  EXPECT_FALSE(pool.Register(map.base() + 1, map.bytes() - 1).ok());
  auto region = pool.Register(map.base(), map.bytes());
  ASSERT_TRUE(region.ok()) << region.status();
  pool.Unregister(*region);
}

TEST(BufferPoolTest, ResidencyAccountingFollowsPinUnpin) {
  BufferPool::Options options;
  options.budget_bytes = 0;  // track-only
  options.page_bytes = 64 * 1024;
  BufferPool pool(options);
  const int64_t page = pool.page_bytes();
  SharedMapping map(8 * page);
  auto region = pool.Register(map.base(), map.bytes());
  ASSERT_TRUE(region.ok()) << region.status();

  ASSERT_TRUE(pool.Pin(*region, 0, 2 * page).ok());
  EXPECT_EQ(pool.stats().resident_bytes, 2 * page);
  // Unpin of a range never pinned still marks it resident (the accounting
  // point for kernels that write through flat pointers).
  ASSERT_TRUE(pool.Unpin(*region, 4 * page, 6 * page, /*dirty=*/true).ok());
  EXPECT_EQ(pool.stats().resident_bytes, 4 * page);
  EXPECT_EQ(pool.stats().registered_bytes, 8 * page);

  ASSERT_TRUE(pool.EvictRegion(*region).ok());
  // The pinned pages survive a region evict; the unpinned dirty ones are
  // written back and dropped.
  EXPECT_EQ(pool.stats().resident_bytes, 2 * page);
  EXPECT_EQ(pool.stats().writeback_pages, 2);
  EXPECT_EQ(pool.stats().evicted_pages, 2);

  ASSERT_TRUE(pool.Unpin(*region, 0, 2 * page, /*dirty=*/false).ok());
  ASSERT_TRUE(pool.EvictRegion(*region).ok());
  EXPECT_EQ(pool.stats().resident_bytes, 0);
  pool.Unregister(*region);
  EXPECT_EQ(pool.stats().registered_bytes, 0);
}

TEST(BufferPoolTest, BudgetTriggersEvictionOfUnpinnedPages) {
  BufferPool::Options options;
  options.page_bytes = 64 * 1024;
  options.budget_bytes = 3 * options.page_bytes;
  BufferPool pool(options);
  const int64_t page = pool.page_bytes();
  SharedMapping map(16 * page);
  auto region = pool.Register(map.base(), map.bytes());
  ASSERT_TRUE(region.ok()) << region.status();

  // Two pages stay pinned; ten more become unpinned-resident, far past the
  // three-page budget — the clock must sweep the excess away.
  ASSERT_TRUE(pool.Pin(*region, 0, 2 * page).ok());
  for (int64_t p = 2; p < 12; ++p) {
    ASSERT_TRUE(pool.Unpin(*region, p * page, (p + 1) * page, true).ok());
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_LE(stats.resident_bytes, options.budget_bytes + 2 * page)
      << "unpinned residency must be driven toward the budget";
  EXPECT_GE(stats.resident_bytes, 2 * page) << "pinned pages may not go";
  EXPECT_GT(stats.evicted_pages, 0);
  EXPECT_GT(stats.resident_peak_bytes, 0);
  ASSERT_TRUE(pool.Unpin(*region, 0, 2 * page, false).ok());
  pool.Unregister(*region);
}

TEST(BufferPoolTest, DirtyWritebackReachesTheFile) {
  BufferPool::Options options;
  options.page_bytes = 64 * 1024;
  BufferPool pool(options);
  const int64_t page = pool.page_bytes();
  SharedMapping map(4 * page);
  auto region = pool.Register(map.base(), map.bytes());
  ASSERT_TRUE(region.ok()) << region.status();

  for (int64_t i = 0; i < map.bytes(); ++i) {
    map.base()[i] = static_cast<char>((i * 31 + 7) & 0xFF);
  }
  ASSERT_TRUE(pool.Unpin(*region, 0, map.bytes(), /*dirty=*/true).ok());
  ASSERT_TRUE(pool.EvictRegion(*region).ok());

  // After MADV_DONTNEED, reads through the mapping refault the page-cache
  // truth — the written pattern, not zeros.
  for (int64_t i = 0; i < map.bytes(); i += 4097) {
    ASSERT_EQ(map.base()[i], static_cast<char>((i * 31 + 7) & 0xFF))
        << "byte " << i << " lost across eviction";
  }
  // And the bytes are durable in the file itself.
  std::vector<char> from_file(static_cast<size_t>(map.bytes()));
  ASSERT_EQ(pread(map.fd(), from_file.data(), from_file.size(), 0),
            static_cast<ssize_t>(from_file.size()));
  for (int64_t i = 0; i < map.bytes(); ++i) {
    ASSERT_EQ(from_file[static_cast<size_t>(i)],
              static_cast<char>((i * 31 + 7) & 0xFF))
        << "file byte " << i;
  }
  pool.Unregister(*region);
}

TEST(BufferPoolTest, ContendedPinUnpinKeepsDataIntact) {
  BufferPool::Options options;
  options.page_bytes = 64 * 1024;
  options.budget_bytes = 2 * options.page_bytes;  // constant pressure
  BufferPool pool(options);
  const int64_t page = pool.page_bytes();
  const int64_t kRegions = 4;
  const int64_t kPagesPerRegion = 6;

  std::vector<std::unique_ptr<SharedMapping>> maps;
  std::vector<BufferPool::RegionId> regions;
  for (int64_t r = 0; r < kRegions; ++r) {
    maps.push_back(std::make_unique<SharedMapping>(kPagesPerRegion * page));
    auto region = pool.Register(maps.back()->base(), maps.back()->bytes());
    ASSERT_TRUE(region.ok()) << region.status();
    regions.push_back(*region);
  }

  // Deterministic per-(region, offset) byte so any cross-thread corruption
  // or lost write-back is detectable afterwards.
  const auto expected = [](int64_t r, int64_t i) {
    return static_cast<char>((r * 131 + i * 17 + 3) & 0xFF);
  };
  ThreadPool workers(static_cast<int>(kRegions));
  ParallelFor(&workers, 0, kRegions, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      char* base = maps[static_cast<size_t>(r)]->base();
      for (int round = 0; round < 3; ++round) {
        for (int64_t p = 0; p < kPagesPerRegion; ++p) {
          ASSERT_TRUE(pool.Pin(regions[static_cast<size_t>(r)], p * page,
                               (p + 1) * page)
                          .ok());
          // First multiple of 13 inside the page, so the write positions
          // line up with the continuous stride the verifier walks.
          for (int64_t i = (p * page + 12) / 13 * 13; i < (p + 1) * page;
               i += 13) {
            base[i] = expected(r, i);
          }
          ASSERT_TRUE(pool.Unpin(regions[static_cast<size_t>(r)], p * page,
                                 (p + 1) * page, /*dirty=*/true)
                          .ok());
        }
      }
    }
  });
  for (int64_t r = 0; r < kRegions; ++r) {
    ASSERT_TRUE(pool.EvictRegion(regions[static_cast<size_t>(r)]).ok());
    const char* base = maps[static_cast<size_t>(r)]->base();
    for (int64_t i = 0; i < kPagesPerRegion * page; i += 13) {
      ASSERT_EQ(base[i], expected(r, i)) << "region " << r << " byte " << i;
    }
    pool.Unregister(regions[static_cast<size_t>(r)]);
  }
}

/// The acceptance bar for the pooled backing: at a budget that forces
/// spilling, Train through the buffer pool returns bitwise the same factors
/// as the flat spill path and as the unbounded in-RAM run.
TEST(BufferPoolTest, PooledSpillTrainsBitwiseIdentical) {
  const AttributedGraph graph = testing::SmallSbm(/*seed=*/77, /*n=*/300);
  const auto train = [&graph](SlabPolicy policy, SpillMode mode,
                              int64_t budget_mb, PaneStats* stats) {
    PaneOptions options;
    options.k = 32;
    options.num_threads = 3;
    options.ccd_iterations = 2;
    options.memory_budget_mb = budget_mb;
    options.slab_policy = policy;
    options.spill_mode = mode;
    auto result = Pane(options).Train(graph, stats);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.MoveValueUnsafe();
  };

  PaneStats ram_stats, pooled_stats, flat_stats;
  const PaneEmbedding in_ram =
      train(SlabPolicy::kInRam, SpillMode::kPooled, 0, &ram_stats);
  const PaneEmbedding pooled =
      train(SlabPolicy::kMmap, SpillMode::kPooled, 1, &pooled_stats);
  const PaneEmbedding flat =
      train(SlabPolicy::kMmap, SpillMode::kFlat, 1, &flat_stats);

  EXPECT_FALSE(ram_stats.slabs_spilled);
  EXPECT_TRUE(pooled_stats.slabs_spilled);
  EXPECT_TRUE(pooled_stats.pooled_spill);
  EXPECT_TRUE(flat_stats.slabs_spilled);
  EXPECT_FALSE(flat_stats.pooled_spill);
  // The pooled run actually exercised the pool.
  EXPECT_GT(pooled_stats.pool.registered_bytes, 0);

  const auto bitwise_equal = [](const DenseMatrix& a, const DenseMatrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.size()) * sizeof(double)),
              0);
  };
  bitwise_equal(in_ram.xf, pooled.xf);
  bitwise_equal(in_ram.xb, pooled.xb);
  bitwise_equal(in_ram.y, pooled.y);
  bitwise_equal(pooled.xf, flat.xf);
  bitwise_equal(pooled.xb, flat.xb);
  bitwise_equal(pooled.y, flat.y);
}

}  // namespace
}  // namespace store
}  // namespace pane
