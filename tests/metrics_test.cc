// Tests for the evaluation metrics with hand-computed expectations.
#include "src/tasks/metrics.h"

#include <gtest/gtest.h>

namespace pane {
namespace {

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(
      AreaUnderRocCurve({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, PerfectInversion) {
  EXPECT_DOUBLE_EQ(
      AreaUnderRocCurve({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, RandomOrderIsHalf) {
  // Identical scores: every positive ties every negative -> 0.5.
  EXPECT_DOUBLE_EQ(AreaUnderRocCurve({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, HandComputedMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8 vs 0.6) win, (0.8 vs 0.2) win, (0.4 vs 0.6) loss,
  // (0.4 vs 0.2) win => 3/4.
  EXPECT_DOUBLE_EQ(
      AreaUnderRocCurve({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, TiesCountHalf) {
  // pos {0.5}, neg {0.5, 0.1}: tie counts 0.5, win counts 1 => 0.75.
  EXPECT_DOUBLE_EQ(AreaUnderRocCurve({0.5, 0.5, 0.1}, {1, 0, 0}), 0.75);
}

TEST(AucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(AreaUnderRocCurve({0.1, 0.2}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AreaUnderRocCurve({0.1, 0.2}, {0, 0}), 0.5);
}

TEST(ApTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(ApTest, HandComputedCase) {
  // Ranking: pos, neg, pos, neg. Precisions at hits: 1/1, 2/3.
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.8, 0.7, 0.6}, {1, 0, 1, 0}),
                   (1.0 + 2.0 / 3.0) / 2.0);
}

TEST(ApTest, NoPositives) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5, 0.4}, {0, 0}), 0.0);
}

TEST(PrecisionAtKTest, Basics) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.9, 0.8, 0.7, 0.6}, {1, 0, 1, 0}, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.9, 0.8, 0.7, 0.6}, {1, 0, 1, 0}, 1), 1.0);
  // k beyond size clamps.
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.9, 0.8}, {1, 1}, 10), 1.0);
}

TEST(F1Test, SingleLabelPerfect) {
  const F1Scores f1 = ComputeF1({{0}, {1}, {2}}, {{0}, {1}, {2}}, 3);
  EXPECT_DOUBLE_EQ(f1.micro, 1.0);
  EXPECT_DOUBLE_EQ(f1.macro, 1.0);
}

TEST(F1Test, SingleLabelHandComputed) {
  // truth:     0 0 1 1
  // predicted: 0 1 1 0
  // class 0: tp=1 fp=1 fn=1 -> F1 = 2/4 = 0.5; class 1 same.
  const F1Scores f1 = ComputeF1({{0}, {0}, {1}, {1}}, {{0}, {1}, {1}, {0}}, 2);
  EXPECT_DOUBLE_EQ(f1.micro, 0.5);
  EXPECT_DOUBLE_EQ(f1.macro, 0.5);
}

TEST(F1Test, MultiLabelPartialOverlap) {
  // truth {0,1}, predicted {1,2}: tp(1)=1, fp(2)=1, fn(0)=1.
  // micro = 2*1 / (2*1 + 1 + 1) = 0.5.
  const F1Scores f1 = ComputeF1({{0, 1}}, {{1, 2}}, 3);
  EXPECT_DOUBLE_EQ(f1.micro, 0.5);
}

TEST(F1Test, MacroIgnoresAbsentClasses) {
  // Class 2 never appears in truth or prediction -> excluded from macro.
  const F1Scores f1 = ComputeF1({{0}, {1}}, {{0}, {1}}, 3);
  EXPECT_DOUBLE_EQ(f1.macro, 1.0);
}

TEST(F1Test, EmptyPredictionsGiveZero) {
  const F1Scores f1 = ComputeF1({{0}, {1}}, {{}, {}}, 2);
  EXPECT_DOUBLE_EQ(f1.micro, 0.0);
}

TEST(ComputeAucApTest, BothComputed) {
  const AucAp both = ComputeAucAp({0.9, 0.1}, {1, 0});
  EXPECT_DOUBLE_EQ(both.auc, 1.0);
  EXPECT_DOUBLE_EQ(both.ap, 1.0);
}

}  // namespace
}  // namespace pane
