// Property tests for the claim that motivates forward + backward
// embeddings (Section 1 / 2.2): edge-direction information survives into
// the embeddings (asymmetric transitivity), which undirected ANE methods
// lose by construction.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/pane.h"
#include "src/tasks/link_prediction.h"
#include "test_util.h"

namespace pane {
namespace {

TEST(DirectionTest, EmbeddingScoresAreAsymmetric) {
  const AttributedGraph g = testing::SmallSbm(111, 400);
  PaneOptions options;
  options.k = 32;
  const auto embedding = Pane(options).Train(g).ValueOrDie();
  const EdgeScorer scorer(embedding);
  // On a directed graph, p(u, v) != p(v, u) in general.
  int64_t asymmetric = 0;
  int64_t checked = 0;
  for (int64_t u = 0; u < 50; ++u) {
    for (int64_t v = u + 1; v < 50; ++v) {
      ++checked;
      if (std::abs(scorer.Score(u, v) - scorer.Score(v, u)) > 1e-9) {
        ++asymmetric;
      }
    }
  }
  EXPECT_GT(asymmetric, checked / 2);
}

TEST(DirectionTest, TrueDirectionOutscoresReverseOnOneWayEdges) {
  // Asymmetric transitivity (Section 1): on a graph whose edges have a
  // genuine direction — here a two-layer "citing -> cited" structure with
  // layer-specific attributes — the trained scorer must prefer the true
  // orientation of held-out edges. (A symmetric-in-distribution SBM cannot
  // exhibit this; undirected baselines lose it by construction.)
  Rng rng(112);
  const int64_t half = 150;
  const int64_t d = 40;
  GraphBuilder builder(2 * half, d);
  // Edges only from layer A (ids < half) to layer B.
  for (int64_t a = 0; a < half; ++a) {
    for (int e = 0; e < 4; ++e) {
      builder.AddEdge(a, half + static_cast<int64_t>(
                             rng.UniformInt(static_cast<uint64_t>(half))));
    }
  }
  // Layer-specific attribute blocks.
  for (int64_t v = 0; v < 2 * half; ++v) {
    const int64_t lo = v < half ? 0 : d / 2;
    for (int e = 0; e < 4; ++e) {
      builder.AddNodeAttribute(
          v, lo + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(d / 2))),
          1.0);
    }
  }
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  const auto split = SplitEdges(g, 0.3, /*seed=*/3).ValueOrDie();
  PaneOptions options;
  options.k = 32;
  const auto embedding =
      Pane(options).Train(split.residual_graph).ValueOrDie();
  const EdgeScorer scorer(embedding);

  int64_t correct = 0;
  int64_t total = 0;
  for (const auto& [u, v] : split.test_positives) {
    ++total;
    if (scorer.Score(u, v) > scorer.Score(v, u)) ++correct;
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(DirectionTest, ReversingEdgesChangesEmbeddings) {
  const AttributedGraph g = testing::SmallSbm(113, 200);
  // Build the edge-reversed graph.
  GraphBuilder builder(g.num_nodes(), g.num_attributes());
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    const CsrMatrix::RowView row = g.adjacency().Row(u);
    for (int64_t p = 0; p < row.length; ++p) builder.AddEdge(row.cols[p], u);
  }
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    const CsrMatrix::RowView row = g.attributes().Row(v);
    for (int64_t p = 0; p < row.length; ++p) {
      builder.AddNodeAttribute(v, row.cols[p], row.vals[p]);
    }
  }
  const AttributedGraph reversed = builder.Build(false).ValueOrDie();

  PaneOptions options;
  options.k = 16;
  const auto fwd = Pane(options).Train(g).ValueOrDie();
  const auto rev = Pane(options).Train(reversed).ValueOrDie();
  // Direction carries signal: the forward embeddings must differ.
  EXPECT_GT(fwd.xf.MaxAbsDiff(rev.xf), 1e-3);
}

}  // namespace
}  // namespace pane
