// Tests for the worker pool and the static partitioning primitives that
// implement the paper's nb-way block decomposition (Algorithm 5).
#include "src/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pane {
namespace {

TEST(PartitionRangeTest, EvenSplit) {
  const auto ranges = PartitionRange(100, 4);
  ASSERT_EQ(ranges.size(), 4u);
  for (const Range& r : ranges) EXPECT_EQ(r.size(), 25);
  EXPECT_EQ(ranges.front().begin, 0);
  EXPECT_EQ(ranges.back().end, 100);
}

TEST(PartitionRangeTest, RemainderGoesToFirstRanges) {
  const auto ranges = PartitionRange(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].size(), 4);
  EXPECT_EQ(ranges[1].size(), 3);
  EXPECT_EQ(ranges[2].size(), 3);
}

TEST(PartitionRangeTest, CoversWithoutGapsOrOverlap) {
  for (int64_t n : {0, 1, 7, 100, 1001}) {
    for (int nb : {1, 2, 3, 8, 13}) {
      const auto ranges = PartitionRange(n, nb);
      int64_t cursor = 0;
      for (const Range& r : ranges) {
        EXPECT_EQ(r.begin, cursor);
        cursor = r.end;
      }
      EXPECT_EQ(cursor, n);
    }
  }
}

TEST(PartitionRangeTest, MoreBlocksThanElements) {
  const auto ranges = PartitionRange(2, 5);
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges[0].size(), 1);
  EXPECT_EQ(ranges[1].size(), 1);
  for (size_t i = 2; i < 5; ++i) EXPECT_EQ(ranges[i].size(), 0);
}

TEST(ThreadPoolTest, SubmitRuns) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id worker;
  pool.Submit([&worker] { worker = std::this_thread::get_id(); }).get();
  EXPECT_EQ(caller, worker);
}

TEST(ThreadPoolTest, RunBlocksCoversAllBlocks) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10);
  pool.RunBlocks(10, [&hits](int b) { hits[static_cast<size_t>(b)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunBlocksExactlyOnceUnderHeavyOversubscription) {
  // The work-conserving barrier claims blocks from a shared counter; with
  // far more blocks than workers every block must still run exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  for (int round = 0; round < 5; ++round) {
    pool.RunBlocks(500, [&hits](int b) {
      hits[static_cast<size_t>(b)].fetch_add(1);
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 5);
}

TEST(ThreadPoolTest, RunBlocksZeroIsNoop) {
  ThreadPool pool(2);
  pool.RunBlocks(0, [](int) { FAIL() << "should not run"; });
}

TEST(ThreadPoolTest, ClampsToOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool_neg(-3);
  EXPECT_EQ(pool_neg.num_threads(), 1);
}

TEST(ParallelForTest, SumsMatchSerial) {
  ThreadPool pool(4);
  const int64_t n = 100000;
  std::vector<int64_t> data(static_cast<size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  std::atomic<int64_t> total{0};
  ParallelFor(&pool, 0, n, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += data[static_cast<size_t>(i)];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ParallelForTest, NullPoolRunsSerial) {
  int64_t sum = 0;
  ParallelFor(nullptr, 5, 10, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  ParallelFor(&pool, 3, 3, [](int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughRunBlocks) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.RunBlocks(4,
                     [](int b) {
                       if (b == 2) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
}

}  // namespace
}  // namespace pane
