// Tests for the Monte-Carlo extended-graph walk simulator — the executable
// definition of Section 2.2's forward/backward walks.
#include "src/graph/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace pane {
namespace {

TEST(WalkSimulatorTest, ForwardWalkReturnsValidAttributeOrDeath) {
  const AttributedGraph g = testing::Figure1Graph();
  WalkSimulator sim(g, 0.3, 1);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const int64_t attr = sim.ForwardWalk(0, &rng);
    EXPECT_GE(attr, -1);
    EXPECT_LT(attr, g.num_attributes());
  }
}

TEST(WalkSimulatorTest, WalkFromAttributeOwnerBiasedToThatAttribute) {
  // A forward walk from v6 (owner of r3 only, out-edge to v4) picks r3
  // whenever it stops immediately — with alpha=0.9 that dominates.
  const AttributedGraph g = testing::Figure1Graph();
  WalkSimulator sim(g, 0.9, 3);
  Rng rng(4);
  int64_t r3 = 0, total = 0;
  for (int i = 0; i < 5000; ++i) {
    const int64_t attr = sim.ForwardWalk(5, &rng);
    if (attr >= 0) {
      ++total;
      r3 += (attr == 2);
    }
  }
  EXPECT_GT(static_cast<double>(r3) / total, 0.85);
}

TEST(WalkSimulatorTest, DanglingNodeAbsorbsWalk) {
  // Node 1 is a sink. A walk that moves there is absorbed and stops there;
  // with no attributes on node 1 the forward walk yields no pair, while a
  // backward walk absorbed there reports node 1.
  GraphBuilder builder(2, 1);
  builder.AddEdge(0, 1);
  builder.AddNodeAttribute(0, 0, 1.0);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  WalkSimulator sim(g, 0.5, 5);
  Rng rng(6);
  int died = 0, emitted = 0;
  for (int i = 0; i < 4000; ++i) {
    const int64_t attr = sim.ForwardWalk(0, &rng);
    if (attr < 0) {
      ++died;
    } else {
      ++emitted;
    }
  }
  // P(stop at 0, emit r0) = 0.5; P(move to dangling 1, absorbed, no
  // attributes) = 0.5.
  EXPECT_NEAR(static_cast<double>(emitted) / 4000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(died) / 4000.0, 0.5, 0.05);
}

TEST(WalkSimulatorTest, BackwardWalkFromUnownedAttributeDies) {
  GraphBuilder builder(2, 2);
  builder.AddEdge(0, 1);
  builder.AddNodeAttribute(0, 0, 1.0);  // attribute 1 has no owners
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  WalkSimulator sim(g, 0.5, 7);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sim.BackwardWalk(1, &rng), -1);
  }
}

TEST(WalkSimulatorTest, BackwardSourceWeightedByColumnNormalization) {
  // r0 owned by node 0 (weight 3) and node 1 (weight 1); with alpha ~ 1 the
  // walk stops where it starts, so stop counts mirror Rc[:, r0].
  GraphBuilder builder(2, 1);
  builder.AddEdge(0, 1).AddEdge(1, 0);
  builder.AddNodeAttribute(0, 0, 3.0).AddNodeAttribute(1, 0, 1.0);
  const AttributedGraph g = builder.Build(false).ValueOrDie();
  WalkSimulator sim(g, 0.99, 9);
  Rng rng(10);
  int64_t at0 = 0, total = 0;
  for (int i = 0; i < 20000; ++i) {
    const int64_t node = sim.BackwardWalk(0, &rng);
    if (node >= 0) {
      ++total;
      at0 += (node == 0);
    }
  }
  EXPECT_NEAR(static_cast<double>(at0) / total, 0.75, 0.02);
}

TEST(WalkSimulatorTest, EstimatesAreProbabilities) {
  const AttributedGraph g = testing::SmallSbm(101, 150);
  WalkSimulator sim(g, 0.5, 11);
  const DenseMatrix pf = sim.EstimateForwardProbabilities(200);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    double row_sum = 0.0;
    for (int64_t r = 0; r < g.num_attributes(); ++r) {
      EXPECT_GE(pf(v, r), 0.0);
      row_sum += pf(v, r);
    }
    EXPECT_LE(row_sum, 1.0 + 1e-9);
  }
  const DenseMatrix pb = sim.EstimateBackwardProbabilities(200);
  const auto col_sums = pb.ColumnSums();
  for (double s : col_sums) EXPECT_LE(s, 1.0 + 1e-9);
}

TEST(WalkSimulatorTest, RejectsInvalidAlpha) {
  const AttributedGraph g = testing::Figure1Graph();
  EXPECT_DEATH(WalkSimulator(g, 0.0, 1), "alpha");
  EXPECT_DEATH(WalkSimulator(g, 1.0, 1), "alpha");
}

}  // namespace
}  // namespace pane
