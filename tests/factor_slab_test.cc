// Tests for the FactorSlab storage layer: backing equivalence, the
// RowBlock acquire/release protocol (content must survive residency drops),
// spill-file lifecycle (created sized, removed on destruction and on error
// paths), and the backing-decision rule the pipeline budget uses.
#include "src/matrix/factor_slab.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>

#include "src/common/random.h"

namespace pane {
namespace {

namespace fs = std::filesystem;

DenseMatrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  m.FillGaussian(&rng);
  return m;
}

TEST(FactorSlabTest, InRamRoundTrip) {
  auto slab = FactorSlab::Create(5, 3, FactorSlab::Backing::kInRam)
                  .ValueOrDie();
  EXPECT_EQ(slab.rows(), 5);
  EXPECT_EQ(slab.cols(), 3);
  EXPECT_FALSE(slab.spilled());
  EXPECT_TRUE(slab.spill_path().empty());
  slab.Row(2)[1] = 7.5;
  EXPECT_EQ(slab.Row(2)[1], 7.5);
  const DenseMatrix dense = slab.ToDense().ValueOrDie();
  EXPECT_EQ(dense(2, 1), 7.5);
  EXPECT_EQ(dense(0, 0), 0.0);
}

TEST(FactorSlabTest, WrapAndTakeDense) {
  const DenseMatrix source = RandomMatrix(8, 4, 1);
  FactorSlab slab(source);
  EXPECT_EQ(slab.MaxAbsDiff(source), 0.0);
  DenseMatrix back = slab.TakeDense();
  EXPECT_EQ(back.MaxAbsDiff(source), 0.0);
  EXPECT_TRUE(slab.empty());
}

TEST(FactorSlabTest, MmapCreateWriteReadAndCleanup) {
  std::string path;
  {
    auto slab = FactorSlab::Create(64, 16, FactorSlab::Backing::kMmap)
                    .ValueOrDie();
    ASSERT_TRUE(slab.spilled());
    path = slab.spill_path();
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(fs::exists(path));
    EXPECT_EQ(static_cast<int64_t>(fs::file_size(path)),
              slab.size_bytes());
    // Zero-initialized like the in-RAM backing.
    EXPECT_EQ(slab.Row(63)[15], 0.0);
    slab.Row(10)[3] = -2.25;
    EXPECT_EQ(slab.Row(10)[3], -2.25);
  }
  // Destruction removes the spill file.
  EXPECT_FALSE(fs::exists(path));
}

TEST(FactorSlabTest, ReleasePreservesContent) {
  // Dirty write-back + residency drop must be lossless: re-acquired rows
  // come back with the written values (from the page cache / spill file).
  auto slab = FactorSlab::Create(2048, 32, FactorSlab::Backing::kMmap)
                  .ValueOrDie();
  FactorSlab::RowBlock block = slab.AcquireRows(256, 1024);
  for (int64_t i = block.row_begin; i < block.row_end; ++i) {
    block.Row(i)[0] = static_cast<double>(i);
  }
  ASSERT_TRUE(slab.ReleaseRows(block, /*dirty=*/true).ok());
  ASSERT_TRUE(slab.DropResidency().ok());
  FactorSlab::RowBlock again = slab.AcquireRows(256, 1024);
  for (int64_t i = again.row_begin; i < again.row_end; ++i) {
    ASSERT_EQ(again.Row(i)[0], static_cast<double>(i)) << "row " << i;
  }
  ASSERT_TRUE(slab.ReleaseRows(again, /*dirty=*/false).ok());
}

TEST(FactorSlabTest, MmapMatchesDenseBitwise) {
  const DenseMatrix source = RandomMatrix(40, 12, 2);
  auto slab =
      FactorSlab::FromDense(source, FactorSlab::Backing::kMmap).ValueOrDie();
  EXPECT_EQ(slab.MaxAbsDiff(source), 0.0);
  EXPECT_EQ(slab.FrobeniusNorm(), source.FrobeniusNorm());
  const DenseMatrix round = slab.ToDense().ValueOrDie();
  EXPECT_EQ(round.MaxAbsDiff(source), 0.0);
}

TEST(FactorSlabTest, CopyPreservesBackingAndData) {
  const DenseMatrix source = RandomMatrix(20, 6, 3);
  auto original =
      FactorSlab::FromDense(source, FactorSlab::Backing::kMmap).ValueOrDie();
  FactorSlab copy = original;
  EXPECT_TRUE(copy.spilled());
  EXPECT_NE(copy.spill_path(), original.spill_path());
  EXPECT_EQ(copy.MaxAbsDiff(original), 0.0);
  // Writes do not alias.
  copy.Row(0)[0] += 1.0;
  EXPECT_EQ(original.MaxAbsDiff(source), 0.0);
}

TEST(FactorSlabTest, MoveTransfersSpillOwnership) {
  auto original = FactorSlab::Create(16, 4, FactorSlab::Backing::kMmap)
                      .ValueOrDie();
  const std::string path = original.spill_path();
  original.Row(3)[2] = 9.0;
  FactorSlab moved = std::move(original);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(moved.spill_path(), path);
  EXPECT_EQ(moved.Row(3)[2], 9.0);
  EXPECT_TRUE(original.spill_path().empty());  // NOLINT(bugprone-use-after-move)
  moved = FactorSlab();
  EXPECT_FALSE(fs::exists(path));  // destroyed with its last owner
}

TEST(FactorSlabTest, CreateFailsCleanlyInMissingDir) {
  const std::string missing = "/nonexistent_pane_spill_dir_for_test";
  ASSERT_FALSE(fs::exists(missing));
  const auto slab =
      FactorSlab::Create(8, 8, FactorSlab::Backing::kMmap, missing);
  EXPECT_FALSE(slab.ok());
  EXPECT_TRUE(slab.status().IsIOError());
  EXPECT_FALSE(fs::exists(missing));  // nothing left behind
}

TEST(FactorSlabTest, EmptySlabNeedsNoFile) {
  auto slab =
      FactorSlab::Create(0, 16, FactorSlab::Backing::kMmap).ValueOrDie();
  EXPECT_TRUE(slab.empty());
  EXPECT_TRUE(slab.spill_path().empty());
  EXPECT_TRUE(slab.DropResidency().ok());
}

TEST(FactorSlabTest, AssignDenseReplacesSpill) {
  auto slab = FactorSlab::Create(16, 4, FactorSlab::Backing::kMmap)
                  .ValueOrDie();
  const std::string path = slab.spill_path();
  slab = DenseMatrix({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(slab.spilled());
  EXPECT_EQ(slab.Row(1)[0], 3.0);
}

TEST(ResolveSlabBackingTest, AutoFollowsBudget) {
  using Backing = FactorSlab::Backing;
  // No budget => always RAM.
  EXPECT_EQ(ResolveSlabBacking(SlabPolicy::kAuto, 0, int64_t{1} << 40),
            Backing::kInRam);
  // Budget covers the slabs => RAM; smaller => spill.
  EXPECT_EQ(ResolveSlabBacking(SlabPolicy::kAuto, 64, 32 << 20),
            Backing::kInRam);
  EXPECT_EQ(ResolveSlabBacking(SlabPolicy::kAuto, 16, 32 << 20),
            Backing::kMmap);
  // Forced policies ignore the budget.
  EXPECT_EQ(ResolveSlabBacking(SlabPolicy::kInRam, 1, 32 << 20),
            Backing::kInRam);
  EXPECT_EQ(ResolveSlabBacking(SlabPolicy::kMmap, 0, 0), Backing::kMmap);
}

}  // namespace
}  // namespace pane
